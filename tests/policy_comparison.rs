//! End-to-end integration tests: the whole stack (kernels → TDG → policies →
//! executors) composed through the public facade, checking the qualitative
//! claims of the paper on small problem instances. Sweeps go through the
//! `Experiment` API; single-run invariants go through the `Executor` trait.

use numadag::prelude::*;

fn executor() -> Box<dyn Executor> {
    Backend::Simulated.executor(ExecutionConfig::bullion_s16())
}

fn run(spec: &TaskGraphSpec, kind: PolicyKind, seed: u64) -> ExecutionReport {
    let mut policy = make_policy(kind, spec, seed).expect("policy must build");
    executor().execute(spec, policy.as_mut())
}

#[test]
fn every_application_completes_under_every_policy() {
    for app in Application::all() {
        let spec = app.build(ProblemScale::Tiny, 8);
        for kind in PolicyKind::all() {
            let report = run(&spec, kind, 3);
            assert_eq!(report.tasks, spec.num_tasks(), "{app} under {kind}");
            assert_eq!(
                report.tasks_per_socket.iter().sum::<usize>(),
                spec.num_tasks(),
                "{app} under {kind}: task accounting"
            );
            assert!(
                report.makespan_ns > 0.0,
                "{app} under {kind}: empty makespan"
            );
            assert!(
                report.makespan_ns >= spec.graph.critical_path_work(),
                "{app} under {kind}: makespan below the critical path"
            );
        }
    }
}

#[test]
fn simulation_is_deterministic_across_runs() {
    for app in [Application::Jacobi, Application::QrFactorization] {
        let spec = app.build(ProblemScale::Tiny, 8);
        for kind in [PolicyKind::Las, PolicyKind::RgpLas, PolicyKind::Dfifo] {
            let a = run(&spec, kind, 17);
            let b = run(&spec, kind, 17);
            assert_eq!(a.makespan_ns, b.makespan_ns, "{app} under {kind}");
            assert_eq!(a.traffic, b.traffic, "{app} under {kind}");
        }
    }
}

#[test]
fn traffic_conservation_holds_for_all_policies() {
    let spec = Application::IntegralHistogram.build(ProblemScale::Tiny, 8);
    let total_declared: u64 = spec.graph.tasks().iter().map(|t| t.bytes_touched()).sum();
    for kind in PolicyKind::all() {
        let report = run(&spec, kind, 5);
        assert_eq!(
            report.traffic.total_bytes(),
            total_declared,
            "{kind}: every declared byte must be charged exactly once"
        );
    }
}

#[test]
fn numa_aware_policies_have_more_local_traffic_than_dfifo() {
    // On stencil-style kernels the locality-aware policies must serve a
    // larger fraction of bytes from the local node than blind round robin.
    // One Experiment covers the whole (app × policy) matrix.
    let report = Experiment::new()
        .apps([
            Application::Jacobi,
            Application::NStream,
            Application::RedBlack,
        ])
        .scale(ProblemScale::Small)
        .policies([PolicyKind::Dfifo, PolicyKind::RgpLas])
        .seed(9)
        .run();
    for app in report.application_labels() {
        let local = |policy: &str| {
            report
                .cells_of(&app, policy)
                .first()
                .map(|c| c.local_fraction)
                .unwrap()
        };
        assert!(
            local("LAS") > local("DFIFO"),
            "{app}: LAS local {:.3} <= DFIFO {:.3}",
            local("LAS"),
            local("DFIFO")
        );
        assert!(
            local("RGP+LAS") > local("DFIFO"),
            "{app}: RGP+LAS local {:.3} <= DFIFO {:.3}",
            local("RGP+LAS"),
            local("DFIFO")
        );
    }
}

#[test]
fn rgp_las_beats_the_baseline_on_the_small_suite_geomean() {
    // The paper's headline claim, in miniature: the geometric mean speedup of
    // RGP+LAS over LAS across the suite is above 1. The aggregation is the
    // SweepReport's own.
    let report = Experiment::new()
        .apps(Application::all())
        .scale(ProblemScale::Small)
        .policies([PolicyKind::RgpLas])
        .seed(23)
        .run();
    let geomean = report.geomean_of("RGP+LAS").unwrap();
    assert!(
        geomean > 1.0,
        "RGP+LAS geometric-mean speedup {geomean:.3} should exceed 1.0"
    );
}

#[test]
fn flat_cost_model_removes_the_policy_gap() {
    // Control experiment: with no NUMA penalty, RGP+LAS and DFIFO perform the
    // same, demonstrating the gap really is a NUMA effect and not a
    // scheduling artefact. The simulator charges identical compute and
    // (flat) memory costs either way, so the measured ratio is exactly 1.0
    // today; the 2% bound below only leaves room for benign tie-breaking
    // drift in the schedule order, not for a real gap (the original 10%
    // bound would have masked one).
    let report = Experiment::new()
        .cost_model(CostModel::flat())
        .app(Application::NStream)
        .scale(ProblemScale::Small)
        .policies([PolicyKind::RgpLas, PolicyKind::Dfifo])
        .seed(1)
        .run();
    let makespan = |policy: &str| {
        report
            .cells_of("NStream", policy)
            .first()
            .map(|c| c.makespan_ns)
            .unwrap()
    };
    let (a, b) = (makespan("RGP+LAS"), makespan("DFIFO"));
    let ratio = a.max(b) / a.min(b);
    assert!(ratio < 1.02, "flat-model ratio {ratio:.3}");
}

#[test]
fn uma_machine_makes_all_policies_equivalent() {
    let report = Experiment::new()
        .topology(Topology::uma(8))
        .app(Application::Jacobi)
        .scale(ProblemScale::Tiny)
        .policies([PolicyKind::RgpLas, PolicyKind::Dfifo])
        .seed(2)
        .run();
    let makespans: Vec<f64> = report.cells.iter().map(|c| c.makespan_ns).collect();
    let max = makespans.iter().cloned().fold(f64::MIN, f64::max);
    let min = makespans.iter().cloned().fold(f64::MAX, f64::min);
    assert!(
        (max - min) / min < 1e-9,
        "single-node machine: policies must be identical, got {makespans:?}"
    );
}

#[test]
fn ep_and_rgp_las_are_competitive_with_each_other() {
    // The paper's figure shows EP and RGP+LAS close together (both ≥ LAS on
    // most codes). Measured today the two policies are within 1.16× of each
    // other on these kernels (Jacobi 1.15, QR 1.01); the 1.3× bound keeps
    // ~12% of slack for cost-model retuning while still catching the class
    // of regression the original 2× bound was too loose to see (e.g. RGP
    // degenerating to round-robin placement costs well over 1.3×).
    let report = Experiment::new()
        .apps([Application::Jacobi, Application::QrFactorization])
        .scale(ProblemScale::Small)
        .policies([PolicyKind::Ep, PolicyKind::RgpLas])
        .seed(31)
        .run();
    for app in report.application_labels() {
        let makespan = |policy: &str| {
            report
                .cells_of(&app, policy)
                .first()
                .map(|c| c.makespan_ns)
                .unwrap()
        };
        let (ep, rgp) = (makespan("EP"), makespan("RGP+LAS"));
        let ratio = ep.max(rgp) / ep.min(rgp);
        assert!(ratio < 1.3, "{app}: EP vs RGP+LAS ratio {ratio:.3}");
    }
}

#[test]
fn window_socket_decisions_are_respected_without_stealing() {
    // With stealing disabled, every task of the initial window must run on
    // the socket the partitioner chose for it.
    let spec = Application::Jacobi.build(ProblemScale::Tiny, 8);
    let config = ExecutionConfig::bullion_s16()
        .with_steal(StealMode::NoStealing)
        .with_trace();
    let executor = Backend::Simulated.executor(config);
    let mut rgp = RgpPolicy::rgp_las();
    let report = executor.execute(&spec, &mut rgp);
    assert_eq!(report.stolen_tasks, 0);
    assert!(!report.trace.is_empty());
    for placement in &report.trace {
        if let Some(expected) = rgp.window_socket_of(placement.task) {
            assert_eq!(
                placement.socket, expected,
                "task {} ran on {} instead of its partition socket {}",
                placement.task, placement.socket, expected
            );
        }
    }
}
