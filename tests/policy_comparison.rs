//! End-to-end integration tests: the whole stack (kernels → TDG → policies →
//! simulator) composed through the public facade, checking the qualitative
//! claims of the paper on small problem instances.

use numadag::prelude::*;

fn simulator() -> Simulator {
    Simulator::new(ExecutionConfig::bullion_s16())
}

fn run(spec: &TaskGraphSpec, kind: PolicyKind, seed: u64) -> ExecutionReport {
    let mut policy = make_policy(kind, spec, seed).expect("policy must build");
    simulator().run(spec, policy.as_mut())
}

#[test]
fn every_application_completes_under_every_policy() {
    for app in Application::all() {
        let spec = app.build(ProblemScale::Tiny, 8);
        for kind in PolicyKind::all() {
            let report = run(&spec, kind, 3);
            assert_eq!(report.tasks, spec.num_tasks(), "{app} under {kind}");
            assert_eq!(
                report.tasks_per_socket.iter().sum::<usize>(),
                spec.num_tasks(),
                "{app} under {kind}: task accounting"
            );
            assert!(
                report.makespan_ns > 0.0,
                "{app} under {kind}: empty makespan"
            );
            assert!(
                report.makespan_ns >= spec.graph.critical_path_work(),
                "{app} under {kind}: makespan below the critical path"
            );
        }
    }
}

#[test]
fn simulation_is_deterministic_across_runs() {
    for app in [Application::Jacobi, Application::QrFactorization] {
        let spec = app.build(ProblemScale::Tiny, 8);
        for kind in [PolicyKind::Las, PolicyKind::RgpLas, PolicyKind::Dfifo] {
            let a = run(&spec, kind, 17);
            let b = run(&spec, kind, 17);
            assert_eq!(a.makespan_ns, b.makespan_ns, "{app} under {kind}");
            assert_eq!(a.traffic, b.traffic, "{app} under {kind}");
        }
    }
}

#[test]
fn traffic_conservation_holds_for_all_policies() {
    let spec = Application::IntegralHistogram.build(ProblemScale::Tiny, 8);
    let total_declared: u64 = spec.graph.tasks().iter().map(|t| t.bytes_touched()).sum();
    for kind in PolicyKind::all() {
        let report = run(&spec, kind, 5);
        assert_eq!(
            report.traffic.total_bytes(),
            total_declared,
            "{kind}: every declared byte must be charged exactly once"
        );
    }
}

#[test]
fn numa_aware_policies_have_more_local_traffic_than_dfifo() {
    // On stencil-style kernels the locality-aware policies must serve a
    // larger fraction of bytes from the local node than blind round robin.
    for app in [
        Application::Jacobi,
        Application::NStream,
        Application::RedBlack,
    ] {
        let spec = app.build(ProblemScale::Small, 8);
        let dfifo = run(&spec, PolicyKind::Dfifo, 9);
        let las = run(&spec, PolicyKind::Las, 9);
        let rgp = run(&spec, PolicyKind::RgpLas, 9);
        assert!(
            las.local_fraction() > dfifo.local_fraction(),
            "{app}: LAS local {:.3} <= DFIFO {:.3}",
            las.local_fraction(),
            dfifo.local_fraction()
        );
        assert!(
            rgp.local_fraction() > dfifo.local_fraction(),
            "{app}: RGP+LAS local {:.3} <= DFIFO {:.3}",
            rgp.local_fraction(),
            dfifo.local_fraction()
        );
    }
}

#[test]
fn rgp_las_beats_the_baseline_on_the_small_suite_geomean() {
    // The paper's headline claim, in miniature: the geometric mean speedup of
    // RGP+LAS over LAS across the suite is above 1.
    let mut speedups = Vec::new();
    for app in Application::all() {
        let spec = app.build(ProblemScale::Small, 8);
        let las = run(&spec, PolicyKind::Las, 23);
        let rgp = run(&spec, PolicyKind::RgpLas, 23);
        speedups.push(las.makespan_ns / rgp.makespan_ns);
    }
    let geomean = (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64).exp();
    assert!(
        geomean > 1.0,
        "RGP+LAS geometric-mean speedup {geomean:.3} should exceed 1.0 (per-app: {speedups:?})"
    );
}

#[test]
fn flat_cost_model_removes_the_policy_gap() {
    // Control experiment: with no NUMA penalty, RGP+LAS and DFIFO perform the
    // same to within a few percent, demonstrating the gap really is a NUMA
    // effect and not a scheduling artefact.
    let config = ExecutionConfig::bullion_s16().with_cost_model(CostModel::flat());
    let simulator = Simulator::new(config);
    let spec = Application::NStream.build(ProblemScale::Small, 8);
    let mut rgp = make_policy(PolicyKind::RgpLas, &spec, 1).unwrap();
    let mut dfifo = make_policy(PolicyKind::Dfifo, &spec, 1).unwrap();
    let a = simulator.run(&spec, rgp.as_mut()).makespan_ns;
    let b = simulator.run(&spec, dfifo.as_mut()).makespan_ns;
    let ratio = a.max(b) / a.min(b);
    assert!(ratio < 1.10, "flat-model ratio {ratio:.3}");
}

#[test]
fn uma_machine_makes_all_policies_equivalent() {
    let simulator = Simulator::new(ExecutionConfig::new(Topology::uma(8)));
    let spec = Application::Jacobi.build(ProblemScale::Tiny, 1);
    let mut makespans = Vec::new();
    for kind in [PolicyKind::Las, PolicyKind::RgpLas, PolicyKind::Dfifo] {
        let mut policy = make_policy(kind, &spec, 2).unwrap();
        makespans.push(simulator.run(&spec, policy.as_mut()).makespan_ns);
    }
    let max = makespans.iter().cloned().fold(f64::MIN, f64::max);
    let min = makespans.iter().cloned().fold(f64::MAX, f64::min);
    assert!(
        (max - min) / min < 1e-9,
        "single-node machine: policies must be identical, got {makespans:?}"
    );
}

#[test]
fn ep_and_rgp_las_are_competitive_with_each_other() {
    // The paper's figure shows EP and RGP+LAS close together (both ≥ LAS on
    // most codes). Check they are within a factor of 2 of each other —
    // a loose sanity bound that catches gross regressions in either policy.
    for app in [Application::Jacobi, Application::QrFactorization] {
        let spec = app.build(ProblemScale::Small, 8);
        let ep = run(&spec, PolicyKind::Ep, 31);
        let rgp = run(&spec, PolicyKind::RgpLas, 31);
        let ratio = ep.makespan_ns.max(rgp.makespan_ns) / ep.makespan_ns.min(rgp.makespan_ns);
        assert!(ratio < 2.0, "{app}: EP vs RGP+LAS ratio {ratio:.3}");
    }
}

#[test]
fn window_socket_decisions_are_respected_without_stealing() {
    // With stealing disabled, every task of the initial window must run on
    // the socket the partitioner chose for it.
    let spec = Application::Jacobi.build(ProblemScale::Tiny, 8);
    let config = ExecutionConfig::bullion_s16()
        .with_steal(StealMode::NoStealing)
        .with_trace();
    let simulator = Simulator::new(config);
    let mut rgp = RgpPolicy::rgp_las();
    let report = simulator.run(&spec, &mut rgp);
    assert_eq!(report.stolen_tasks, 0);
    for placement in &report.trace {
        if let Some(expected) = rgp.window_socket_of(placement.task) {
            assert_eq!(
                placement.socket, expected,
                "task {} ran on {} instead of its partition socket {}",
                placement.task, placement.socket, expected
            );
        }
    }
}
