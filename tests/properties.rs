//! Property-based tests over the core invariants of the stack: the
//! partitioner, the dependence analysis and the simulator must hold their
//! contracts for arbitrary (generated) inputs, not just the hand-written
//! cases.

use proptest::prelude::*;

use numadag::graph::{generators, metrics, partition, PartitionConfig, PartitionScheme};
use numadag::prelude::*;

proptest! {
    // Few cases, big inputs: each case partitions a graph of up to 10k
    // vertices under every scheme, twice (for the determinism check), in
    // debug mode.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The partition contract, for every registered scheme × part count on
    /// random graphs up to 10k vertices: full coverage (the part→members
    /// index is a permutation of the vertices), in-range part ids, balance
    /// within the scheme's budget, and bit-exact seed determinism.
    #[test]
    fn every_scheme_holds_the_partition_contract_at_scale(
        n in 64usize..10_000,
        avg_degree in 2usize..9,
        k in 2usize..9,
        seed in 0u64..10_000,
    ) {
        let graph = generators::random_graph(n, avg_degree, 1 << 12, seed);
        for scheme in PartitionScheme::all() {
            let config = PartitionConfig::new(k).with_seed(seed).with_scheme(scheme);
            let p = partition(&graph, &config);
            // Coverage and range.
            prop_assert_eq!(p.len(), graph.num_vertices());
            prop_assert!(p.assignment().iter().all(|&x| (x as usize) < k),
                "{:?}: part id out of range", scheme);
            let members = p.members();
            let covered: usize = members.iter().map(|(_, m)| m.len()).sum();
            prop_assert_eq!(covered, graph.num_vertices());
            // Balance. The refined schemes enforce the partitioner's own
            // budget (rebalance makes it a hard constraint for feasible,
            // i.e. unit-weight, inputs); the BFS baseline only balances by
            // chunking the BFS order, which with unit weights overshoots the
            // ideal by at most one vertex per part.
            let weights = metrics::part_weights(&graph, &p);
            match scheme {
                PartitionScheme::MultilevelKWay | PartitionScheme::RecursiveBisection => {
                    let max_allowed = config.max_part_weight(graph.total_vertex_weight());
                    prop_assert!(
                        weights.iter().all(|&w| w <= max_allowed),
                        "{:?}: part weights {:?} exceed budget {}", scheme, weights, max_allowed
                    );
                }
                PartitionScheme::BfsGrowing => {
                    let ideal = graph.total_vertex_weight() as f64 / k as f64;
                    let max = *weights.iter().max().unwrap() as f64;
                    prop_assert!(
                        max <= ideal + k as f64,
                        "BFS chunking drifted: max part {} vs ideal {}", max, ideal
                    );
                }
            }
            // Seed determinism, including the derived index.
            let again = partition(&graph, &config);
            prop_assert_eq!(&p, &again, "{:?}: same seed, different partition", scheme);
            prop_assert_eq!(members, again.members());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every partition covers every vertex with a valid part id, respects the
    /// balance constraint on uniform-weight graphs, and never cuts more than
    /// the total edge weight.
    #[test]
    fn partition_invariants(
        width in 3usize..20,
        height in 3usize..20,
        k in 2usize..9,
        seed in 0u64..1000,
    ) {
        let graph = generators::grid_2d(width, height, 3);
        let config = PartitionConfig::new(k).with_seed(seed);
        let p = partition(&graph, &config);
        prop_assert_eq!(p.len(), graph.num_vertices());
        prop_assert!(p.assignment().iter().all(|&x| (x as usize) < k));
        let cut = metrics::edge_cut(&graph, &p);
        prop_assert!(cut >= 0);
        prop_assert!(cut <= graph.total_edge_weight());
        if graph.num_vertices() >= 4 * k {
            // The heaviest part must respect the partitioner's own balance
            // budget (which rounds the ideal weight up, so it can be slightly
            // above (1 + imbalance) × ideal on small odd-sized graphs).
            let weights = metrics::part_weights(&graph, &p);
            let max_allowed = config.max_part_weight(graph.total_vertex_weight());
            prop_assert!(
                weights.iter().all(|&w| w <= max_allowed),
                "part weights {:?} exceed the allowed maximum {}", weights, max_allowed
            );
        }
    }

    /// The multilevel partitioner never produces a worse cut than the naive
    /// BFS baseline — with NO slack. The original seed allowed `1.05× + 1024`
    /// of headroom; an exhaustive sweep of this whole input domain
    /// (12 × 12 × 200 = 28,800 combinations) puts the worst multilevel/naive
    /// ratio at 0.885, i.e. multilevel is always at least ~11% better here,
    /// so the qualitative claim ("the multilevel scheme earns its cost") can
    /// be tested exactly. If this ever fires, the partitioner regressed —
    /// do not widen the bound back.
    #[test]
    fn multilevel_not_worse_than_naive(
        layers in 4usize..16,
        width in 4usize..16,
        seed in 0u64..200,
    ) {
        let graph = generators::layered_dag_skeleton(layers, width, 2, 1024);
        let k = 4;
        let ml = partition(&graph, &PartitionConfig::new(k).with_seed(seed));
        let naive = partition(
            &graph,
            &PartitionConfig::new(k).with_seed(seed).with_scheme(PartitionScheme::BfsGrowing),
        );
        let ml_cut = metrics::edge_cut(&graph, &ml);
        let naive_cut = metrics::edge_cut(&graph, &naive);
        prop_assert!(
            ml_cut <= naive_cut,
            "multilevel cut {} worse than naive {}", ml_cut, naive_cut
        );
    }

    /// Dependence analysis always yields an acyclic graph whose edges point
    /// forward in submission order, no matter the access pattern.
    #[test]
    fn random_access_patterns_build_valid_dags(
        num_regions in 1usize..12,
        tasks in prop::collection::vec((0usize..12, 0usize..12, 0u8..3), 1..80),
    ) {
        let mut builder = TdgBuilder::new();
        let regions: Vec<_> = (0..num_regions).map(|_| builder.region(4096)).collect();
        for (a, b, mode) in &tasks {
            let ra = regions[a % num_regions];
            let rb = regions[b % num_regions];
            let spec = match mode {
                0 => TaskSpec::new("t").work(1.0).reads(ra, 4096).writes(rb, 4096),
                1 => TaskSpec::new("t").work(1.0).reads_writes(ra, 4096),
                _ => TaskSpec::new("t").work(1.0).reads(ra, 4096).reads(rb, 4096).writes(rb, 4096),
            };
            builder.submit(spec);
        }
        let (graph, sizes) = builder.finish();
        prop_assert!(graph.is_acyclic());
        let spec = TaskGraphSpec::new("prop", graph, sizes);
        prop_assert!(spec.validate().is_ok());
        // Critical path never exceeds total work.
        prop_assert!(spec.graph.critical_path_work() <= spec.graph.total_work() + 1e-9);
    }

    /// Simulator conservation: for any generated workload and any policy,
    /// every declared byte is charged exactly once (local + remote), all
    /// tasks run, and the makespan is at least the critical path.
    #[test]
    fn simulator_conservation(
        num_blocks in 2usize..10,
        iterations in 1usize..5,
        policy_idx in 0usize..5,
        seed in 0u64..500,
    ) {
        let mut builder = TdgBuilder::new();
        let block_bytes = 64 * 1024u64;
        let regions: Vec<_> = (0..num_blocks).map(|_| builder.region(block_bytes)).collect();
        for &r in &regions {
            builder.submit(TaskSpec::new("init").work(100.0).writes(r, block_bytes));
        }
        for _ in 0..iterations {
            for (i, &r) in regions.iter().enumerate() {
                let mut t = TaskSpec::new("step").work(500.0).reads_writes(r, block_bytes);
                if i > 0 {
                    t = t.reads(regions[i - 1], block_bytes);
                }
                builder.submit(t);
            }
        }
        let (graph, sizes) = builder.finish();
        let declared: u64 = graph.tasks().iter().map(|t| t.bytes_touched()).sum();
        let num_tasks = graph.num_tasks();
        let spec = TaskGraphSpec::new("prop-sim", graph, sizes)
            .with_ep_placement(vec![0; num_tasks]);
        let kind = PolicyKind::all()[policy_idx % 5];
        let mut policy = make_policy(kind, &spec, seed).unwrap();
        let executor = Backend::Simulated.executor(ExecutionConfig::bullion_s16());
        let report = executor.execute(&spec, policy.as_mut());
        prop_assert_eq!(report.tasks, spec.num_tasks());
        prop_assert_eq!(report.traffic.total_bytes(), declared);
        prop_assert!(report.makespan_ns + 1e-6 >= spec.graph.critical_path_work());
        prop_assert!(report.traffic.local_fraction() >= 0.0);
        prop_assert!(report.traffic.local_fraction() <= 1.0);
    }

    /// The policy registry: every registered kind's canonical label parses
    /// back to exactly that kind, for the base policies and for arbitrary
    /// RGP window parameters, no matter how the label is cased or separated.
    #[test]
    fn policy_kind_labels_round_trip(
        idx in 0usize..5,
        window in 1usize..100_000,
    ) {
        let base = PolicyKind::all()[idx];
        prop_assert_eq!(base.label().parse::<PolicyKind>().unwrap(), base);
        prop_assert_eq!(base.label().to_lowercase().parse::<PolicyKind>().unwrap(), base);
        if let Some(windowed) = base.with_window(window) {
            prop_assert_eq!(windowed.label().parse::<PolicyKind>().unwrap(), windowed);
            prop_assert_eq!(windowed.window(), Some(window));
            prop_assert_eq!(windowed.base_label(), base.base_label());
        } else {
            prop_assert_eq!(base.window(), None);
        }
    }

    /// Deferred allocation places every region on the socket of a task that
    /// touched it: after any simulated run, no region that was accessed is
    /// left unallocated.
    #[test]
    fn no_accessed_region_stays_unallocated(
        num_blocks in 1usize..8,
        seed in 0u64..100,
    ) {
        let mut builder = TdgBuilder::new();
        let regions: Vec<_> = (0..num_blocks).map(|_| builder.region(4096)).collect();
        for &r in &regions {
            builder.submit(TaskSpec::new("touch").work(1.0).writes(r, 4096));
        }
        let (graph, sizes) = builder.finish();
        let spec = TaskGraphSpec::new("prop-defer", graph, sizes);
        let mut policy = LasPolicy::new(seed);
        let executor = Backend::Simulated.executor(ExecutionConfig::bullion_s16());
        let report = executor.execute(&spec, &mut policy);
        // Every region was written exactly once, so all deferred allocations
        // add up to the total data size.
        prop_assert_eq!(report.deferred_bytes, 4096 * num_blocks as u64);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The indexed event queue (slab + index heap) agrees with a
    /// `BinaryHeap<Event>` on arbitrary interleavings of pushes and pops,
    /// with timestamps quantised so hard that most events tie and the `seq`
    /// tie-breaker decides the order — the invariant the simulator's
    /// determinism rests on (event_queue_equivalence).
    #[test]
    fn event_queue_equivalence(
        cores in 1usize..16,
        time_levels in 1u64..5,
        ops in prop::collection::vec((0u8..4, 0u64..1000), 20..400),
    ) {
        use numadag::numa::CoreId;
        use numadag::runtime::{Event, EventQueue};
        use std::collections::BinaryHeap;

        let mut queue = EventQueue::new();
        queue.reset(cores);
        let mut reference: BinaryHeap<Event> = BinaryHeap::new();
        let mut free: Vec<usize> = (0..cores).rev().collect();
        let mut seq = 0u64;
        for (op, raw_time) in ops {
            let push = !free.is_empty() && (reference.is_empty() || op != 0);
            if push {
                seq += 1;
                let event = Event {
                    // Coarse quantisation: collisions on `time` are the
                    // common case, so `(time, seq)` ordering is what's
                    // actually exercised.
                    time: (raw_time % time_levels) as f64,
                    seq,
                    task: TaskId(seq as usize),
                    core: CoreId(free.pop().unwrap()),
                };
                queue.push(event);
                reference.push(event);
            } else {
                let got = queue.pop().unwrap();
                let want = reference.pop().unwrap();
                prop_assert_eq!(got, want);
                prop_assert_eq!(got.task, want.task);
                free.push(got.core.index());
            }
        }
        // Drain: the queues must agree to the very end.
        while let Some(want) = reference.pop() {
            let got = queue.pop().unwrap();
            prop_assert_eq!(got, want);
            prop_assert_eq!(got.task, want.task);
        }
        prop_assert!(queue.is_empty());
        prop_assert!(queue.pop().is_none());
    }
}
