//! Release-mode scaling tests for the partitioner at the problem sizes the
//! paper actually runs (100k+ task windows). Ignored by default — debug
//! builds would take minutes — and wired into CI as a separate step:
//!
//! ```text
//! cargo test --release -- --ignored partition_scales
//! ```

use std::time::Instant;

use numadag::graph::{generators, metrics, partition, PartitionConfig, PartitionScheme};

/// Multilevel partitioning of a 100k-vertex layered-DAG window into 8 parts:
/// must finish promptly, respect the balance budget, and produce a cut no
/// worse than the BFS baseline (in practice ~2× better).
#[test]
#[ignore = "release-mode scaling test; run with: cargo test --release -- --ignored partition_scales"]
fn partition_scales_to_100k_vertex_windows() {
    let g = generators::layered_dag_skeleton(200, 500, 2, 1 << 16);
    assert_eq!(g.num_vertices(), 100_000);
    let k = 8;
    let cfg = PartitionConfig::new(k);

    let start = Instant::now();
    let ml = partition(&g, &cfg);
    let elapsed = start.elapsed();

    let naive = partition(
        &g,
        &PartitionConfig::new(k).with_scheme(PartitionScheme::BfsGrowing),
    );
    let (ml_cut, naive_cut) = (ml.edge_cut(&g), naive.edge_cut(&g));

    assert!(
        ml_cut <= naive_cut,
        "multilevel cut {ml_cut} worse than BFS baseline {naive_cut} at 100k vertices"
    );
    let q = metrics::quality(&g, &ml);
    assert_eq!(q.nonempty_parts, k);
    assert!(
        q.imbalance <= 1.0 + cfg.imbalance + 1e-9,
        "imbalance {} blew the budget",
        q.imbalance
    );
    // Generous wall-clock ceiling (measured ~0.1 s in release on one core):
    // catches an accidental return to quadratic behaviour, not CI jitter.
    assert!(
        elapsed.as_secs() < 30,
        "100k-vertex multilevel partition took {elapsed:?}"
    );
    println!(
        "100k vertices: multilevel {elapsed:?}, cut {ml_cut} vs BFS {naive_cut} \
         ({:.2}x better), imbalance {:.4}",
        naive_cut as f64 / ml_cut.max(1) as f64,
        q.imbalance
    );
}

/// The 500k-vertex stretch size stays tractable and keeps its quality edge.
#[test]
#[ignore = "release-mode scaling test; run with: cargo test --release -- --ignored partition_scales"]
fn partition_scales_to_500k_vertex_windows() {
    let g = generators::layered_dag_skeleton(500, 1000, 2, 1 << 16);
    assert_eq!(g.num_vertices(), 500_000);
    let cfg = PartitionConfig::new(8);

    let start = Instant::now();
    let ml = partition(&g, &cfg);
    let elapsed = start.elapsed();

    let naive = partition(
        &g,
        &PartitionConfig::new(8).with_scheme(PartitionScheme::BfsGrowing),
    );
    assert!(ml.edge_cut(&g) <= naive.edge_cut(&g));
    assert!(
        elapsed.as_secs() < 120,
        "500k-vertex multilevel partition took {elapsed:?}"
    );
}

/// Determinism must survive scale: two runs with the same seed agree on
/// every one of the 100k vertices.
#[test]
#[ignore = "release-mode scaling test; run with: cargo test --release -- --ignored partition_scales"]
fn partition_scales_deterministically() {
    let g = generators::layered_dag_skeleton(200, 500, 2, 1 << 12);
    let cfg = PartitionConfig::new(8).with_seed(77);
    let a = partition(&g, &cfg);
    let b = partition(&g, &cfg);
    assert_eq!(a, b, "same seed must give the same 100k-vertex partition");
}
