//! Integration tests for the threaded executor: real numerical task bodies
//! executed under every scheduling policy must produce exactly the results of
//! the sequential reference, regardless of placement, stealing or
//! interleaving.

use numadag::kernels::{jacobi, nstream};
use numadag::prelude::*;

#[test]
fn nstream_results_are_identical_under_every_policy() {
    let params = nstream::NStreamParams {
        blocks: 8,
        block_elems: 256,
        iterations: 4,
        scalar: 3.0,
    };
    let (spec, layout) = nstream::build_with_layout(params, 4);
    for kind in PolicyKind::all() {
        let store = DenseStore::uniform(spec.num_regions(), params.block_elems);
        let executor = ThreadedExecutor::new(ExecutionConfig::new(Topology::four_socket(2)));
        let mut policy = make_policy(kind, &spec, 13).expect("policy");
        let body = nstream::body(&spec, &layout, &store);
        let report = executor.run(&spec, policy.as_mut(), &body);
        assert_eq!(report.tasks, spec.num_tasks());
        assert_eq!(
            nstream::verify(&layout, &store, &params),
            0.0,
            "{kind}: NStream result corrupted by scheduling"
        );
    }
}

#[test]
fn jacobi_results_match_sequential_reference_under_every_policy() {
    let params = jacobi::JacobiParams {
        nb: 6,
        block_elems: 64,
        iterations: 5,
    };
    let (spec, layout) = jacobi::build_with_layout(params, 4);
    for kind in PolicyKind::all() {
        let store = DenseStore::uniform(spec.num_regions(), params.block_elems);
        let executor = ThreadedExecutor::new(ExecutionConfig::new(Topology::two_socket(4)));
        let mut policy = make_policy(kind, &spec, 29).expect("policy");
        let body = jacobi::body(&spec, &layout, &store);
        executor.run(&spec, policy.as_mut(), &body);
        let err = jacobi::verify(&layout, &store, &params);
        assert!(
            err < 1e-12,
            "{kind}: Jacobi diverged from the sequential reference by {err}"
        );
    }
}

#[test]
fn threaded_executor_handles_wide_and_deep_graphs() {
    // A quick stress of both extremes: a very wide graph (all independent)
    // and a very deep one (a single chain). With precise condvar wakeups the
    // deep chain exercises thousands of sleep/wake transitions.
    let executor = ThreadedExecutor::new(ExecutionConfig::new(Topology::two_socket(2)));

    let mut wide = TdgBuilder::new();
    let regions: Vec<_> = (0..200).map(|_| wide.region(8)).collect();
    for &r in &regions {
        wide.submit(TaskSpec::new("leaf").work(1.0).writes(r, 8));
    }
    let (graph, sizes) = wide.finish();
    let wide_spec = TaskGraphSpec::new("wide", graph, sizes);
    let counter = std::sync::atomic::AtomicUsize::new(0);
    let mut las = LasPolicy::new(1);
    executor.run(&wide_spec, &mut las, &|_| {
        counter.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
    });
    assert_eq!(counter.load(std::sync::atomic::Ordering::SeqCst), 200);

    let mut deep = TdgBuilder::new();
    let r = deep.region(8);
    for _ in 0..300 {
        deep.submit(TaskSpec::new("link").work(1.0).reads_writes(r, 8));
    }
    let (graph, sizes) = deep.finish();
    let deep_spec = TaskGraphSpec::new("deep", graph, sizes);
    let counter = std::sync::atomic::AtomicUsize::new(0);
    let mut rgp = RgpPolicy::rgp_las();
    executor.run(&deep_spec, &mut rgp, &|_| {
        counter.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
    });
    assert_eq!(counter.load(std::sync::atomic::Ordering::SeqCst), 300);
}
