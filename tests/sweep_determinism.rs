//! Parallel-vs-serial determinism of the plan/execute sweep engine.
//!
//! The contract of [`SweepDriver`]: sharding a sweep across worker threads
//! changes who computes each cell, never what the report says. On the
//! deterministic simulator backend that contract is byte-level — the
//! serialized `SweepReport` must be identical for jobs ∈ {1, 2, 8}. On the
//! threaded backend, makespans are wall-clock (and work stealing races by
//! design), so the deterministic subset is asserted instead: cell keys and
//! order, task counts, skip lists, aggregate shape.

use numadag::prelude::*;

/// The full-policy tiny-scale experiment the determinism claims cover.
fn experiment(backend: Backend) -> Experiment {
    Experiment::new()
        // A modest machine so the threaded backend runs everywhere.
        .topology(Topology::four_socket(2))
        .apps([
            Application::Jacobi,
            Application::NStream,
            Application::ConjugateGradient,
        ])
        .scale(ProblemScale::Tiny)
        .policies(PolicyKind::all())
        .backend(backend)
        .repetitions(2)
        .seed(0xD1CE)
}

#[test]
fn simulator_reports_are_byte_identical_for_any_worker_count() {
    let serial = experiment(Backend::Simulated).parallelism(1).run();
    let serial_json = serial.to_json_string();
    // With several repetitions the per-rep LAS speedups scatter around 1
    // (reps use different seeds), but the geomean must stay close.
    assert!((serial.geomean_of("LAS").unwrap() - 1.0).abs() < 0.2);

    for jobs in [2usize, 8] {
        let sharded = experiment(Backend::Simulated).parallelism(jobs).run();
        assert_eq!(
            sharded.to_json_string(),
            serial_json,
            "jobs={jobs} changed the serialized report"
        );
    }
}

#[test]
fn threaded_reports_keep_the_deterministic_subset_for_any_worker_count() {
    // Wall-clock makespans and steal counts vary run to run on the threaded
    // backend, so byte identity is impossible even between two serial runs;
    // what sharding must preserve is everything the scheduler decides
    // deterministically: which cells exist, in which order, over how many
    // tasks, and what was skipped.
    let keys = |report: &SweepReport| -> Vec<(String, String, String, usize, usize)> {
        report
            .cells
            .iter()
            .map(|c| {
                (
                    c.application.clone(),
                    c.scale.clone(),
                    c.policy.clone(),
                    c.repetition,
                    c.tasks,
                )
            })
            .collect()
    };

    let serial = experiment(Backend::Threaded).parallelism(1).run();
    for jobs in [2usize, 8] {
        let sharded = experiment(Backend::Threaded).parallelism(jobs).run();
        assert_eq!(keys(&sharded), keys(&serial), "jobs={jobs}");
        assert_eq!(sharded.skipped, serial.skipped, "jobs={jobs}");
        assert_eq!(
            sharded.policy_labels(),
            serial.policy_labels(),
            "jobs={jobs}"
        );
        assert_eq!(
            sharded.aggregates.len(),
            serial.aggregates.len(),
            "jobs={jobs}"
        );
        for cell in &sharded.cells {
            assert!(cell.makespan_ns > 0.0);
        }
    }
}

#[test]
fn one_plan_executes_identically_under_different_drivers() {
    // Stronger than run()-vs-run(): the *same* plan object (shared specs and
    // all) through different worker counts, as the bins use it.
    let plan = experiment(Backend::Simulated).plan();
    let serial = SweepDriver::new().execute(&plan);
    let sharded = SweepDriver::new().parallelism(8).execute(&plan);
    assert_eq!(serial.to_json_string(), sharded.to_json_string());
    // Timing differs (that's its job) but its shape is consistent.
    assert_eq!(serial.timing.cell_wall_ns.len(), serial.cells.len());
    assert_eq!(sharded.timing.cell_wall_ns.len(), sharded.cells.len());
    assert_eq!(sharded.timing.jobs, 8.min(plan.num_jobs()));
}

#[test]
fn diff_confirms_identity_across_worker_counts() {
    // The bench-diff path agrees with byte comparison: keyed cell diffs see
    // no change between serial and sharded runs, including through a JSON
    // round trip (as CI compares regenerated baselines).
    let serial = experiment(Backend::Simulated).run();
    let sharded = experiment(Backend::Simulated).parallelism(8).run();
    assert!(serial.diff(&sharded).is_empty());
    let reparsed = SweepReport::from_json_str(&sharded.to_json_string()).unwrap();
    assert!(serial.diff(&reparsed).is_empty());
}
