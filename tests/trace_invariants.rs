//! Trace-subsystem invariants, end to end through the public API (CI runs
//! these as part of the workspace tests):
//!
//! * a traced sweep collects one complete trace per cell, with exactly one
//!   assign/start/finish event per task;
//! * the extracted critical-path time never exceeds the makespan, and
//!   equals it under a flat cost model on one socket (where the schedule is
//!   gap-free and the chain must span the whole execution);
//! * trace JSON round-trips through `Trace::from_json_str`;
//! * the two-policy comparison localizes the Figure-1 divergence on a
//!   divergent app (Integral histogram) at Small scale.

use std::sync::Arc;

use numadag::prelude::*;

/// One traced Figure-1 style sweep at Tiny scale, on the given backend.
fn traced_sweep(backend: Backend) -> (Vec<Trace>, SweepReport) {
    let collector = Arc::new(TraceCollector::new());
    let report = Experiment::new()
        .apps([Application::NStream, Application::IntegralHistogram])
        .scale(ProblemScale::Tiny)
        .policies([PolicyKind::Dfifo, PolicyKind::RgpLas])
        .backend(backend)
        .seed(0xF1617E)
        .trace(Arc::clone(&collector))
        .run();
    (collector.take(), report)
}

#[test]
fn traced_sweep_event_counts_match_task_counts_on_both_backends() {
    for backend in [Backend::Simulated, Backend::Threaded] {
        let (traces, report) = traced_sweep(backend);
        assert_eq!(traces.len(), report.cells.len(), "{backend:?}");
        for trace in &traces {
            // One assign, one start, one finish per task — `validate`
            // checks exactly that, plus interval sanity.
            trace
                .validate()
                .unwrap_or_else(|e| panic!("{backend:?} {}/{}: {e}", trace.workload, trace.policy));
            assert_eq!(trace.events_tagged("assign").count(), trace.tasks);
            assert_eq!(trace.events_tagged("start").count(), trace.tasks);
            assert_eq!(trace.events_tagged("finish").count(), trace.tasks);
        }
    }
}

#[test]
fn tracing_does_not_change_simulator_measurements() {
    let collector = Arc::new(TraceCollector::new());
    let experiment = || {
        Experiment::new()
            .apps([Application::Jacobi])
            .policies([PolicyKind::RgpLas])
            .seed(7)
    };
    let plain = experiment().run();
    let traced = experiment().trace(Arc::clone(&collector)).run();
    assert_eq!(plain.to_json_string(), traced.to_json_string());
    assert_eq!(collector.len(), plain.cells.len());
}

#[test]
fn critical_path_time_never_exceeds_makespan_for_any_policy() {
    let spec = Application::IntegralHistogram.build(ProblemScale::Tiny, 8);
    for kind in [
        PolicyKind::Dfifo,
        PolicyKind::Las,
        PolicyKind::RgpLas,
        PolicyKind::Ep,
    ] {
        let sink = Arc::new(MemorySink::new());
        let config = ExecutionConfig::bullion_s16().with_trace_sink(sink.clone());
        let mut policy = make_policy(kind, &spec, 3).expect("policy builds");
        let report = Simulator::new(config).run(&spec, policy.as_mut());
        let trace = Trace {
            workload: spec.name.to_string(),
            policy: report.policy.to_string(),
            backend: "simulator".to_string(),
            scale: "Tiny".to_string(),
            repetition: 0,
            tasks: spec.num_tasks(),
            num_sockets: 8,
            makespan_ns: report.makespan_ns,
            events: sink.take(),
        };
        let cp = trace.critical_path(&spec.graph);
        assert!(!cp.links.is_empty(), "{kind:?}: empty critical path");
        assert!(
            cp.time_ns <= report.makespan_ns * (1.0 + 1e-9),
            "{kind:?}: critical path {} exceeds makespan {}",
            cp.time_ns,
            report.makespan_ns
        );
        // The chain ends at the task that set the makespan.
        let last = cp.links.last().unwrap();
        assert!(
            (last.end - report.makespan_ns).abs() <= 1e-6 * report.makespan_ns,
            "{kind:?}: chain ends at {} not the makespan {}",
            last.end,
            report.makespan_ns
        );
    }
}

#[test]
fn critical_path_equals_makespan_under_flat_cost_on_one_socket() {
    // One socket and a flat cost model: the simulator's schedule is
    // work-conserving and gap-free, so the dependence + core-occupancy
    // chain must account for every nanosecond of the makespan.
    let spec = Application::Jacobi.build(ProblemScale::Tiny, 1);
    for kind in [PolicyKind::Dfifo, PolicyKind::Las] {
        let sink = Arc::new(MemorySink::new());
        let config = ExecutionConfig::new(Topology::uma(4))
            .with_cost_model(CostModel::flat())
            .with_trace_sink(sink.clone());
        let mut policy = make_policy(kind, &spec, 11).expect("policy builds");
        let report = Simulator::new(config).run(&spec, policy.as_mut());
        let trace = Trace {
            workload: spec.name.to_string(),
            policy: report.policy.to_string(),
            backend: "simulator".to_string(),
            scale: "Tiny".to_string(),
            repetition: 0,
            tasks: spec.num_tasks(),
            num_sockets: 1,
            makespan_ns: report.makespan_ns,
            events: sink.take(),
        };
        let cp = trace.critical_path(&spec.graph);
        let relative_gap = (cp.time_ns - report.makespan_ns).abs() / report.makespan_ns;
        assert!(
            relative_gap < 1e-9,
            "{kind:?}: critical path {} != makespan {}",
            cp.time_ns,
            report.makespan_ns
        );
    }
}

#[test]
fn trace_json_round_trips_through_from_json_str() {
    let (traces, _) = traced_sweep(Backend::Simulated);
    for trace in traces {
        let text = trace.to_json_string();
        let reparsed = Trace::from_json_str(&text)
            .unwrap_or_else(|e| panic!("{}/{}: {e}", trace.workload, trace.policy));
        assert_eq!(reparsed, trace);
    }
}

#[test]
fn comparison_localizes_the_integral_histogram_divergence_at_small_scale() {
    // The acceptance case: Integral histogram is one of the apps whose
    // Full-scale speedup diverges from the paper (0.955 < 1.0). The trace
    // comparison must turn that aggregate into a ranked per-task/per-region
    // report at Small scale.
    let collector = Arc::new(TraceCollector::new());
    let report = Experiment::new()
        .app(Application::IntegralHistogram)
        .scale(ProblemScale::Small)
        .policies([PolicyKind::RgpLas])
        .seed(0xF1617E)
        .trace(Arc::clone(&collector))
        .run();
    let rgp = collector.find("Integral histogram", "RGP+LAS").unwrap();
    let las = collector.find("Integral histogram", "LAS").unwrap();
    let spec = Application::IntegralHistogram.build(ProblemScale::Small, 8);
    let comparison = rgp.compare(&las, &spec.graph).unwrap();

    // The comparison is anchored on the same measurements as the report.
    let speedup = report.speedup_of("Integral histogram", "RGP+LAS").unwrap();
    let from_traces = comparison.makespan_other / comparison.makespan_self;
    assert!(
        (speedup - from_traces).abs() < 1e-9,
        "trace makespans ({from_traces}) disagree with the sweep ({speedup})"
    );

    // Ranked per-task report: covers every task, ranked by time lost.
    assert_eq!(comparison.task_deltas.len(), spec.num_tasks());
    let top = comparison.top_task_losses(5);
    assert!(!top.is_empty());
    for pair in top.windows(2) {
        assert!(pair[0].delta_ns() >= pair[1].delta_ns(), "ranking broken");
    }

    // Ranked per-region report: the flows that went farthest first.
    let flows = comparison.top_flow_losses(5);
    assert!(!flows.is_empty());
    for pair in flows.windows(2) {
        assert!(
            pair[0].weighted_delta() >= pair[1].weighted_delta(),
            "flow ranking broken"
        );
    }

    // The report renders (this is what `ablation trace` prints).
    let rendered = comparison.to_string();
    assert!(rendered.contains("Integral histogram"), "{rendered}");
    assert!(rendered.contains("critical path"), "{rendered}");
}
