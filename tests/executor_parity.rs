//! Backend-parity tests: the simulator, the threaded executor and the
//! multi-process proc backend implement the same `Executor` contract,
//! consult the policies identically, and keep the same placement/traffic
//! bookkeeping. Driven entirely through `dyn Executor` trait objects, as
//! the harnesses use them.

use std::sync::{Arc, OnceLock};

use numadag::prelude::*;
use numadag::proc::CONNECT_ENV;
use numadag::runtime::CellContext;

fn backends(config: ExecutionConfig) -> Vec<Box<dyn Executor>> {
    vec![
        Backend::Simulated.executor(config.clone()),
        Backend::Threaded.executor(config),
    ]
}

/// Worker re-entry point for the proc-backend tests: the pool re-execs this
/// test binary with `proc_worker_entry --exact` as the argv, turning this
/// "test" into the worker loop. Without the rendezvous environment it is an
/// instant pass.
#[test]
fn proc_worker_entry() {
    if std::env::var(CONNECT_ENV).is_ok() {
        numadag::proc::run_worker_from_env().expect("worker loop failed");
    }
}

/// One worker pool shared by every proc test in this binary, and a
/// `Backend::Proc` factory bound to it (the default factory's
/// `--proc-worker` argv does not survive libtest's argument parsing).
fn install_test_proc_backend() -> Arc<WorkerPool> {
    static POOL: OnceLock<Arc<WorkerPool>> = OnceLock::new();
    let pool = POOL.get_or_init(|| {
        let config = PoolConfig::new(2)
            .with_worker_args(vec!["proc_worker_entry".to_string(), "--exact".to_string()]);
        WorkerPool::spawn(config).expect("worker pool spawns")
    });
    let factory_pool = pool.clone();
    numadag::runtime::register_proc_backend(Box::new(move |config, _workers| {
        Box::new(ProcExecutor::with_pool(config, factory_pool.clone()))
    }));
    pool.clone()
}

#[test]
fn both_backends_agree_on_counts_placements_and_invariants() {
    // With stealing disabled and the deterministic EP policy, both backends
    // must make identical placement decisions for every task.
    let spec = Application::NStream.build(ProblemScale::Tiny, 4);
    let config = ExecutionConfig::new(Topology::four_socket(2)).with_steal(StealMode::NoStealing);

    let mut reports = Vec::new();
    for executor in backends(config) {
        let mut policy = make_policy(PolicyKind::Ep, &spec, 5).expect("EP placement ships");
        let report = executor.execute(&spec, policy.as_mut());

        // Report invariants that must hold on any backend.
        assert_eq!(
            report.tasks,
            spec.num_tasks(),
            "{}",
            executor.backend_name()
        );
        assert_eq!(
            report.tasks_per_socket.iter().sum::<usize>(),
            spec.num_tasks(),
            "{}: task accounting",
            executor.backend_name()
        );
        assert_eq!(report.stolen_tasks, 0, "{}", executor.backend_name());
        assert!(report.makespan_ns > 0.0, "{}", executor.backend_name());
        let local = report.local_fraction();
        assert!((0.0..=1.0).contains(&local), "{}", executor.backend_name());
        reports.push(report);
    }

    let (sim, thr) = (&reports[0], &reports[1]);
    assert_eq!(sim.tasks, thr.tasks);
    assert_eq!(
        sim.tasks_per_socket, thr.tasks_per_socket,
        "EP placement must be identical in both executors"
    );
    // Same placements → same deferred allocation and same traffic ledger.
    assert_eq!(sim.deferred_bytes, thr.deferred_bytes);
    assert_eq!(sim.traffic.total_bytes(), thr.traffic.total_bytes());
    assert_eq!(sim.traffic.local_bytes, thr.traffic.local_bytes);
    assert_eq!(sim.traffic.remote_bytes, thr.traffic.remote_bytes);
}

#[test]
fn experiment_runs_the_same_sweep_on_both_backends() {
    for backend in [Backend::Simulated, Backend::Threaded] {
        let report = Experiment::new()
            .topology(Topology::two_socket(2))
            .app(Application::NStream)
            .scale(ProblemScale::Tiny)
            .policies([PolicyKind::Dfifo, PolicyKind::RgpLas])
            .backend(backend)
            .seed(11)
            .run();
        assert_eq!(report.backend, backend.label());
        assert_eq!(report.policy_labels(), vec!["DFIFO", "RGP+LAS", "LAS"]);
        assert_eq!(report.cells.len(), 3);
        for cell in &report.cells {
            assert_eq!(cell.tasks, report.cells[0].tasks, "same workload instance");
            assert!(cell.makespan_ns > 0.0);
        }
    }
}

#[test]
fn proc_backend_agrees_with_simulator_and_threaded_on_placements() {
    let pool = install_test_proc_backend();
    let spec = Application::NStream.build(ProblemScale::Tiny, 4);
    let config = ExecutionConfig::new(Topology::four_socket(2)).with_steal(StealMode::NoStealing);

    // The same deterministic EP cell through all three backends.
    let mut reports = Vec::new();
    let mut executors = backends(config.clone());
    executors.push(Box::new(ProcExecutor::with_pool(config, pool)));
    for executor in executors {
        let mut policy = make_policy(PolicyKind::Ep, &spec, 5).expect("EP placement ships");
        let ctx = CellContext {
            policy_label: "ep",
            seed: 5,
        };
        let report = executor.execute_cell(&spec, policy.as_mut(), Some(&ctx));
        assert_eq!(
            report.tasks,
            spec.num_tasks(),
            "{}",
            executor.backend_name()
        );
        reports.push(report);
    }
    let (sim, thr, proc) = (&reports[0], &reports[1], &reports[2]);
    assert_eq!(sim.tasks_per_socket, thr.tasks_per_socket);
    assert_eq!(sim.tasks_per_socket, proc.tasks_per_socket);
    assert_eq!(sim.deferred_bytes, proc.deferred_bytes);
    assert_eq!(
        sim.traffic, proc.traffic,
        "proc ships the simulator's exact ledger"
    );
    // The proc worker runs the simulator in-process, so even the simulated
    // float timeline must survive the wire bit-for-bit.
    assert_eq!(sim.makespan_ns.to_bits(), proc.makespan_ns.to_bits());
}

#[test]
fn experiment_through_the_proc_backend_is_byte_identical_to_simulated() {
    install_test_proc_backend();
    let run = |backend: Backend| {
        Experiment::new()
            .topology(Topology::two_socket(2))
            .app(Application::NStream)
            .scale(ProblemScale::Tiny)
            .policies([PolicyKind::Dfifo, PolicyKind::RgpLas])
            .backend(backend)
            .seed(11)
            .run()
    };
    let sim = run(Backend::Simulated);
    let proc = run(Backend::proc());
    // Proc measurements ARE simulator measurements, so the proc sweep
    // reports itself under the simulator label and the measurement JSON
    // (timing excluded) must match byte for byte.
    assert_eq!(proc.backend, "simulator");
    assert_eq!(sim.to_json_string(), proc.to_json_string());
}

#[test]
fn every_policy_runs_through_every_backend_trait_object() {
    let spec = Application::Jacobi.build(ProblemScale::Tiny, 2);
    let config = ExecutionConfig::new(Topology::two_socket(2));
    for executor in backends(config) {
        for kind in PolicyKind::all() {
            let Some(mut policy) = make_policy(kind, &spec, 3) else {
                continue;
            };
            let report = executor.execute(&spec, policy.as_mut());
            assert_eq!(
                report.tasks,
                spec.num_tasks(),
                "{} under {kind}",
                executor.backend_name()
            );
            assert_eq!(report.policy, kind.base_label(), "{kind}");
        }
    }
}
