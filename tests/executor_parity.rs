//! Backend-parity tests: the simulator and the threaded executor implement
//! the same `Executor` contract, consult the policies identically, and keep
//! the same placement/traffic bookkeeping. Driven entirely through `dyn
//! Executor` trait objects, as the harnesses use them.

use numadag::prelude::*;

fn backends(config: ExecutionConfig) -> Vec<Box<dyn Executor>> {
    vec![
        Backend::Simulated.executor(config.clone()),
        Backend::Threaded.executor(config),
    ]
}

#[test]
fn both_backends_agree_on_counts_placements_and_invariants() {
    // With stealing disabled and the deterministic EP policy, both backends
    // must make identical placement decisions for every task.
    let spec = Application::NStream.build(ProblemScale::Tiny, 4);
    let config = ExecutionConfig::new(Topology::four_socket(2)).with_steal(StealMode::NoStealing);

    let mut reports = Vec::new();
    for executor in backends(config) {
        let mut policy = make_policy(PolicyKind::Ep, &spec, 5).expect("EP placement ships");
        let report = executor.execute(&spec, policy.as_mut());

        // Report invariants that must hold on any backend.
        assert_eq!(
            report.tasks,
            spec.num_tasks(),
            "{}",
            executor.backend_name()
        );
        assert_eq!(
            report.tasks_per_socket.iter().sum::<usize>(),
            spec.num_tasks(),
            "{}: task accounting",
            executor.backend_name()
        );
        assert_eq!(report.stolen_tasks, 0, "{}", executor.backend_name());
        assert!(report.makespan_ns > 0.0, "{}", executor.backend_name());
        let local = report.local_fraction();
        assert!((0.0..=1.0).contains(&local), "{}", executor.backend_name());
        reports.push(report);
    }

    let (sim, thr) = (&reports[0], &reports[1]);
    assert_eq!(sim.tasks, thr.tasks);
    assert_eq!(
        sim.tasks_per_socket, thr.tasks_per_socket,
        "EP placement must be identical in both executors"
    );
    // Same placements → same deferred allocation and same traffic ledger.
    assert_eq!(sim.deferred_bytes, thr.deferred_bytes);
    assert_eq!(sim.traffic.total_bytes(), thr.traffic.total_bytes());
    assert_eq!(sim.traffic.local_bytes, thr.traffic.local_bytes);
    assert_eq!(sim.traffic.remote_bytes, thr.traffic.remote_bytes);
}

#[test]
fn experiment_runs_the_same_sweep_on_both_backends() {
    for backend in [Backend::Simulated, Backend::Threaded] {
        let report = Experiment::new()
            .topology(Topology::two_socket(2))
            .app(Application::NStream)
            .scale(ProblemScale::Tiny)
            .policies([PolicyKind::Dfifo, PolicyKind::RgpLas])
            .backend(backend)
            .seed(11)
            .run();
        assert_eq!(report.backend, backend.label());
        assert_eq!(report.policy_labels(), vec!["DFIFO", "RGP+LAS", "LAS"]);
        assert_eq!(report.cells.len(), 3);
        for cell in &report.cells {
            assert_eq!(cell.tasks, report.cells[0].tasks, "same workload instance");
            assert!(cell.makespan_ns > 0.0);
        }
    }
}

#[test]
fn every_policy_runs_through_every_backend_trait_object() {
    let spec = Application::Jacobi.build(ProblemScale::Tiny, 2);
    let config = ExecutionConfig::new(Topology::two_socket(2));
    for executor in backends(config) {
        for kind in PolicyKind::all() {
            let Some(mut policy) = make_policy(kind, &spec, 3) else {
                continue;
            };
            let report = executor.execute(&spec, policy.as_mut());
            assert_eq!(
                report.tasks,
                spec.num_tasks(),
                "{} under {kind}",
                executor.backend_name()
            );
            assert_eq!(report.policy, kind.base_label(), "{kind}");
        }
    }
}
