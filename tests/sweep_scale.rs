//! Release-mode sweep-scale test (ignored by default; run in CI as its own
//! step): the Small-scale Figure-1 sweep through the sharded driver must
//! finish within a generous time budget and stay bit-identical to the
//! serial driver.
//!
//! ```sh
//! cargo test --release -- --ignored sweep_scale
//! ```

use std::time::{Duration, Instant};

use numadag::prelude::*;

/// The Figure-1 configuration at Small scale (the bins' default machine).
fn small_figure1() -> Experiment {
    Experiment::new()
        .topology(Topology::bullion_s16())
        .apps(Application::all())
        .scale(ProblemScale::Small)
        .policies([PolicyKind::Dfifo, PolicyKind::RgpLas, PolicyKind::Ep])
        .seed(0xF1617E)
}

#[test]
#[ignore = "release-mode scale test; run with --ignored in CI"]
fn sweep_scale_small_sharded_matches_serial_within_budget() {
    let start = Instant::now();
    let serial = small_figure1().parallelism(1).run();
    let serial_elapsed = start.elapsed();

    let start = Instant::now();
    let sharded = small_figure1().parallelism(2).run();
    let sharded_elapsed = start.elapsed();

    // Completion budget: the Small sweep takes tens of milliseconds in
    // release mode on one core; 120 s leaves room for pathological CI hosts
    // while still catching runaway regressions (a 1000× slowdown).
    let budget = Duration::from_secs(120);
    assert!(
        serial_elapsed < budget && sharded_elapsed < budget,
        "Small sweep exceeded its time budget: serial {serial_elapsed:?}, \
         sharded {sharded_elapsed:?} (budget {budget:?})"
    );

    // Sharding must not change a byte of the measurement report.
    assert_eq!(
        serial.to_json_string(),
        sharded.to_json_string(),
        "jobs=2 diverged from serial at Small scale"
    );

    // Spec build accounting: one build per app×scale, cells share the specs.
    assert_eq!(sharded.timing.spec_builds, 8);
    assert_eq!(sharded.timing.spec_cache_hits, 0);
    assert_eq!(sharded.timing.jobs, 2);
    assert_eq!(sharded.timing.cell_wall_ns.len(), sharded.cells.len());

    eprintln!(
        "sweep_scale: Small figure-1 serial {:.1} ms, jobs=2 {:.1} ms \
         (build {:.1} ms, cells {:.1} ms)",
        serial_elapsed.as_secs_f64() * 1e3,
        sharded_elapsed.as_secs_f64() * 1e3,
        sharded.timing.build_wall_ns / 1e6,
        sharded.timing.run_wall_ns / 1e6,
    );
}
