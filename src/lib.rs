//! # numadag — graph-partitioning-based DAG scheduling to reduce NUMA effects
//!
//! A from-scratch Rust reproduction of *"Graph partitioning applied to DAG
//! scheduling to reduce NUMA effects"* (Sánchez Barrera et al., PPoPP 2018).
//!
//! Task-based runtimes know, through the task dependency graph (TDG), which
//! tasks share how much data. This workspace implements the paper's idea of
//! feeding that graph to a graph partitioner (one part per NUMA socket, edge
//! weights = bytes) and using the resulting partition to place tasks — plus
//! everything needed around it: a NUMA machine model, the TDG machinery, the
//! partitioner itself, the baseline scheduling policies, two executors and
//! the eight benchmark applications of the paper's evaluation.
//!
//! ## Quick start
//!
//! Execution is unified behind two pieces: the [`runtime::Executor`] trait
//! (implemented by the discrete-event [`runtime::Simulator`] and the real
//! [`runtime::ThreadedExecutor`]) and the fluent [`runtime::Experiment`]
//! builder, which sweeps an (application × scale × policy) matrix through
//! either backend and returns a structured, JSON-serializable
//! [`runtime::SweepReport`]. Under the hood a sweep is plan/execute:
//! [`runtime::Experiment::plan`] materializes a [`runtime::SweepPlan`] of
//! independent keyed cell jobs (workload specs built once, memoized in a
//! [`kernels::SpecCache`]), and a [`runtime::SweepDriver`] executes it
//! serially or sharded across worker threads (`.parallelism(n)`) — with
//! bit-identical reports on the simulator backend either way:
//!
//! ```rust
//! use numadag::prelude::*;
//!
//! let report = Experiment::new()
//!     .topology(Topology::bullion_s16())        // the paper's machine
//!     .app(Application::Jacobi)                 // one of the eight apps
//!     .scale(ProblemScale::Tiny)
//!     .policies([PolicyKind::Dfifo, PolicyKind::RgpLas])
//!     .backend(Backend::Simulated)              // or Backend::Threaded
//!     .seed(42)
//!     .run();
//!
//! // LAS is the baseline; RGP+LAS is the paper's technique.
//! let speedup = report.speedup_of("Jacobi", "RGP+LAS").unwrap();
//! println!("RGP+LAS speedup over LAS: {speedup:.3}x");
//! assert!(report.geomean_of("RGP+LAS").unwrap() > 0.0);
//! ```
//!
//! Policies are addressed through the string-parseable [`core::PolicyKind`]
//! registry — `"rgp-las:w=512".parse::<PolicyKind>()` selects RGP+LAS with a
//! 512-task window — so CLI tools and configs never hard-code policy lists.
//!
//! For a single run (no sweep), use any backend through the
//! [`runtime::Executor`] trait:
//!
//! ```rust
//! use numadag::prelude::*;
//!
//! let spec = Application::NStream.build(ProblemScale::Tiny, 8);
//! let executor = Backend::Simulated.executor(ExecutionConfig::bullion_s16());
//! let mut policy = make_policy(PolicyKind::RgpLas, &spec, 42).unwrap();
//! let report = executor.execute(&spec, policy.as_mut());
//! assert!(report.makespan_ns > 0.0);
//! ```
//!
//! ## Migrating from the pre-`Experiment` API
//!
//! | old | new |
//! |-----|-----|
//! | `Simulator::new(cfg).run(&spec, &mut policy)` | `executor.execute(&spec, &mut policy)` via `dyn Executor` (or still `Simulator::run`) |
//! | `ThreadedExecutor::run(&spec, Box::new(policy), &body)` | `ThreadedExecutor::run(&spec, &mut policy, &body)`; `execute(..)` for a no-op body |
//! | hand-rolled app × policy sweep + geomean loops | `Experiment::new().apps([..]).policies([..]).run()` |
//! | `make_policy_with_window(kind, &spec, seed, Some(512))` | `make_policy("rgp-las:w=512".parse()?, &spec, seed)` |
//! | `run_figure1(&cfg) -> Vec<Figure1Row>` + `geometric_mean_row` | `run_figure1(&cfg) -> SweepReport` (cells + aggregates) |
//!
//! ## Crate map
//!
//! | crate | contents |
//! |-------|----------|
//! | [`numa`] (`numadag-numa`) | topology, distance matrix, page placement, cost model, traffic stats |
//! | [`graph`] (`numadag-graph`) | CSR graphs + multilevel k-way partitioner (SCOTCH substitute) built from pluggable `Coarsener`/`InitialPartitioner`/`Refiner` stages |
//! | [`tdg`] (`numadag-tdg`) | tasks, dependence analysis, the TDG, windows |
//! | [`core`] (`numadag-core`) | the scheduling policies: DFIFO, EP, LAS, RGP(+LAS) + the `PolicyKind` registry |
//! | [`runtime`] (`numadag-runtime`) | `Executor` trait, simulator + threaded backends, plan/execute sweep engine (`Experiment` → `SweepPlan` → `SweepDriver` → `SweepReport` + `bench-diff`) |
//! | [`kernels`] (`numadag-kernels`) | the eight applications of Figure 1 + dense linalg |
//! | [`trace`] (`numadag-trace`) | execution traces: event model + sinks, critical-path/traffic/locality/queue analytics, two-policy divergence comparison |
//! | [`serve`] (`numadag-serve`) | the sweep service: TCP daemon + client speaking newline-delimited JSON, content-addressed report cache, `numadag-serve`/`serve-client` bins |
//! | [`proc`] (`numadag-proc`) | the multi-process backend: self-exec'd worker processes over newline-JSON IPC, oneCCL-style barriers, crash redispatch (`--backend proc`) |
//! | `numadag-bench` (not re-exported) | benchmark harness: `figure1`/`ablation` bins (incl. `serve-load`) + criterion benches |
//!
//! ## Observability
//!
//! Every execution can emit a full event trace (policy assign decisions,
//! task start/finish with socket and timestamp, steals, deferred
//! placements, per-access traffic with NUMA distance) through the
//! [`trace`] subsystem — zero-cost unless a sink is installed. Sweeps trace
//! per cell:
//!
//! ```rust
//! use std::sync::Arc;
//! use numadag::prelude::*;
//!
//! let collector = Arc::new(TraceCollector::new());
//! Experiment::new()
//!     .app(Application::IntegralHistogram)
//!     .policies([PolicyKind::RgpLas])
//!     .trace(Arc::clone(&collector))
//!     .run();
//!
//! let rgp = collector.find("Integral histogram", "RGP+LAS").unwrap();
//! let las = collector.find("Integral histogram", "LAS").unwrap();
//! let spec = Application::IntegralHistogram.build(ProblemScale::Tiny, 8);
//! let diverging = rgp.compare(&las, &spec.graph).unwrap();
//! println!("{diverging}"); // ranked tasks/regions where RGP+LAS loses time
//! ```
//!
//! ## Sweep service
//!
//! The [`serve`] subsystem turns the sweep engine into a long-running
//! daemon: a TCP listener speaking newline-delimited JSON, one process-wide
//! [`kernels::SpecCache`], one shared [`runtime::SweepDriver`], and a
//! content-addressed LRU report cache keyed by the canonical request
//! fingerprint — repeated requests (however their policy strings are
//! spelled) return byte-identical reports without executing:
//!
//! ```rust,no_run
//! use numadag::prelude::*;
//! use numadag::serve::serve;
//!
//! let handle = serve(ServeConfig::default()).unwrap();
//! let mut client = ServeClient::connect(&handle.addr().to_string()).unwrap();
//! let first = client.submit(SweepSpec::default(), false, |_| ()).unwrap();
//! let again = client.submit(SweepSpec::default(), false, |_| ()).unwrap();
//! assert!(again.cache_hit && again.report_json == first.report_json);
//! client.shutdown().unwrap();
//! handle.join();
//! ```
//!
//! ## Examples
//!
//! Four runnable examples live in `examples/` (`cargo run --example <name> --release`):
//!
//! * `quickstart` — every policy on a small Jacobi instance through one
//!   `Experiment`, with makespans, locality and imbalance side by side.
//! * `cholesky_numa` — the densest DAG of the suite (symmetric matrix
//!   inversion) as a custom `Experiment` workload, with a per-socket
//!   placement breakdown.
//! * `partition_playground` — the multilevel partitioner vs the naive BFS
//!   baseline on synthetic graphs and real task-graph windows, plus a
//!   custom stage composition through `partition_with`.
//! * `stencil_sweep` — the RGP window sweep as a single `Experiment` whose
//!   policy axis is `rgp-las:w=N`.

pub use numadag_core as core;
pub use numadag_graph as graph;
pub use numadag_kernels as kernels;
pub use numadag_numa as numa;
pub use numadag_proc as proc;
pub use numadag_runtime as runtime;
pub use numadag_serve as serve;
pub use numadag_tdg as tdg;
pub use numadag_trace as trace;

/// The most common imports for users of the library.
pub mod prelude {
    pub use numadag_core::{
        make_policy, make_policy_with_window, DfifoPolicy, EpPolicy, LasPolicy, ParsePolicyError,
        PartitionScheme, PartitionTuning, PolicyKind, Propagation, RgpConfig, RgpPolicy, RgpTuning,
        SchedulingPolicy,
    };
    pub use numadag_kernels::{Application, DenseStore, ProblemScale, SpecCache};
    pub use numadag_numa::{CostModel, MemoryMap, NodeId, SocketId, Topology};
    pub use numadag_proc::{PoolConfig, PoolStats, ProcError, ProcExecutor, WorkerPool};
    pub use numadag_runtime::{
        Backend, CellProgress, ExecutionConfig, ExecutionReport, Executor, Experiment, Simulator,
        StealMode, SweepCell, SweepDiff, SweepDriver, SweepPlan, SweepReport, SweepTiming,
        ThreadedExecutor,
    };
    pub use numadag_serve::{ServeClient, ServeConfig, ServeHandle, ServerStats, SweepSpec};
    pub use numadag_tdg::{
        AccessMode, DataAccess, TaskGraph, TaskGraphSpec, TaskId, TaskSpec, TdgBuilder,
        WindowConfig,
    };
    pub use numadag_trace::{
        CriticalPath, MemorySink, NullSink, Trace, TraceCollector, TraceComparison, TraceEvent,
        TraceSink,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_compose() {
        let mut builder = TdgBuilder::new();
        let r = builder.region(1024);
        builder.submit(TaskSpec::new("producer").work(10.0).writes(r, 1024));
        builder.submit(TaskSpec::new("consumer").work(10.0).reads(r, 1024));
        let (graph, sizes) = builder.finish();
        let spec = TaskGraphSpec::new("facade", graph, sizes);
        let executor = Backend::Simulated.executor(ExecutionConfig::new(Topology::two_socket(2)));
        let mut policy = LasPolicy::new(1);
        let report = executor.execute(&spec, &mut policy);
        assert_eq!(report.tasks, 2);
    }

    #[test]
    fn facade_experiment_composes() {
        let mut builder = TdgBuilder::new();
        let r = builder.region(1024);
        for _ in 0..8 {
            builder.submit(TaskSpec::new("step").work(10.0).reads_writes(r, 1024));
        }
        let (graph, sizes) = builder.finish();
        let spec = TaskGraphSpec::new("facade-sweep", graph, sizes);
        let report = Experiment::new()
            .topology(Topology::two_socket(2))
            .workload(spec)
            .policies(["dfifo".parse::<PolicyKind>().unwrap()])
            .run();
        assert_eq!(report.policy_labels(), vec!["DFIFO", "LAS"]);
        assert!(report.to_json_string().contains("\"aggregates\""));
    }
}
