//! # numadag — graph-partitioning-based DAG scheduling to reduce NUMA effects
//!
//! A from-scratch Rust reproduction of *"Graph partitioning applied to DAG
//! scheduling to reduce NUMA effects"* (Sánchez Barrera et al., PPoPP 2018).
//!
//! Task-based runtimes know, through the task dependency graph (TDG), which
//! tasks share how much data. This workspace implements the paper's idea of
//! feeding that graph to a graph partitioner (one part per NUMA socket, edge
//! weights = bytes) and using the resulting partition to place tasks — plus
//! everything needed around it: a NUMA machine model, the TDG machinery, the
//! partitioner itself, the baseline scheduling policies, two executors and
//! the eight benchmark applications of the paper's evaluation.
//!
//! ## Quick start
//!
//! ```rust
//! use numadag::prelude::*;
//!
//! // The machine of the paper: 8 sockets x 4 cores.
//! let config = ExecutionConfig::bullion_s16();
//! let simulator = Simulator::new(config);
//!
//! // One of the paper's eight applications, at test size.
//! let spec = Application::Jacobi.build(ProblemScale::Tiny, 8);
//!
//! // The baseline (LAS) and the paper's technique (RGP+LAS).
//! let mut las = LasPolicy::new(42);
//! let baseline = simulator.run(&spec, &mut las);
//! let mut rgp = RgpPolicy::rgp_las();
//! let report = simulator.run(&spec, &mut rgp);
//!
//! println!("RGP+LAS speedup over LAS: {:.3}x", report.speedup_over(&baseline));
//! assert!(report.makespan_ns > 0.0);
//! ```
//!
//! ## Crate map
//!
//! | crate | contents |
//! |-------|----------|
//! | [`numa`] (`numadag-numa`) | topology, distance matrix, page placement, cost model, traffic stats |
//! | [`graph`] (`numadag-graph`) | CSR graphs + multilevel k-way partitioner (SCOTCH substitute) |
//! | [`tdg`] (`numadag-tdg`) | tasks, dependence analysis, the TDG, windows |
//! | [`core`] (`numadag-core`) | the scheduling policies: DFIFO, EP, LAS, RGP(+LAS) |
//! | [`runtime`] (`numadag-runtime`) | discrete-event simulator + threaded executor |
//! | [`kernels`] (`numadag-kernels`) | the eight applications of Figure 1 + dense linalg |
//! | `numadag-bench` (not re-exported) | benchmark harness: `figure1`/`ablation` bins + criterion benches |
//!
//! ## Examples
//!
//! Four runnable examples live in `examples/` (`cargo run --example <name> --release`):
//!
//! * `quickstart` — every policy on a small Jacobi instance, with makespans,
//!   locality and imbalance side by side.
//! * `cholesky_numa` — the densest DAG of the suite (symmetric matrix
//!   inversion) with a per-socket placement breakdown.
//! * `partition_playground` — the multilevel partitioner vs the naive BFS
//!   baseline on synthetic graphs and real task-graph windows.
//! * `stencil_sweep` — how large an RGP window the three stencil kernels
//!   need before partitioned placement beats plain LAS.

pub use numadag_core as core;
pub use numadag_graph as graph;
pub use numadag_kernels as kernels;
pub use numadag_numa as numa;
pub use numadag_runtime as runtime;
pub use numadag_tdg as tdg;

/// The most common imports for users of the library.
pub mod prelude {
    pub use numadag_core::{
        make_policy, DfifoPolicy, EpPolicy, LasPolicy, PolicyKind, Propagation, RgpConfig,
        RgpPolicy, SchedulingPolicy,
    };
    pub use numadag_kernels::{Application, DenseStore, ProblemScale};
    pub use numadag_numa::{CostModel, MemoryMap, NodeId, SocketId, Topology};
    pub use numadag_runtime::{
        ExecutionConfig, ExecutionReport, Simulator, StealMode, ThreadedExecutor,
    };
    pub use numadag_tdg::{
        AccessMode, DataAccess, TaskGraph, TaskGraphSpec, TaskId, TaskSpec, TdgBuilder,
        WindowConfig,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_compose() {
        let mut builder = TdgBuilder::new();
        let r = builder.region(1024);
        builder.submit(TaskSpec::new("producer").work(10.0).writes(r, 1024));
        builder.submit(TaskSpec::new("consumer").work(10.0).reads(r, 1024));
        let (graph, sizes) = builder.finish();
        let spec = TaskGraphSpec::new("facade", graph, sizes);
        let simulator = Simulator::new(ExecutionConfig::new(Topology::two_socket(2)));
        let report = simulator.run(&spec, &mut LasPolicy::new(1));
        assert_eq!(report.tasks, 2);
    }
}
