//! Plan/execute sweep engine: [`SweepPlan`] materializes a sweep as an
//! explicit list of independent cell jobs, and [`SweepDriver`] executes the
//! plan serially or sharded across worker threads.
//!
//! [`crate::Experiment`] used to run its (workload × policy × repetition)
//! matrix as one monolithic serial loop. The plan/execute split pulls that
//! apart:
//!
//! * **Plan** ([`Experiment::plan`](crate::Experiment::plan)): every
//!   workload spec is built exactly once (memoized through a
//!   [`numadag_kernels::SpecCache`], shared as `Arc<TaskGraphSpec>`), and the
//!   sweep is flattened into keyed [`SweepJob`]s — one per
//!   (workload, policy, repetition) cell, including the baseline's cells.
//! * **Execute** ([`SweepDriver::execute`]): jobs are independent, so the
//!   driver runs them either in order on one executor, or sharded across N
//!   worker threads (each worker owns its own `Box<dyn Executor>` and builds
//!   its own policy instances). Baseline-relative speedups are computed in a
//!   deterministic keyed post-pass, so the report — cells, aggregates,
//!   skip list, serialization — is **bit-identical** for every `jobs` value
//!   on the deterministic simulator backend, and identical to what the old
//!   serial loop produced.
//!
//! The driver also reports progress ([`SweepDriver::on_cell_complete`]) and
//! accounts wall time per cell plus spec-build totals in the report's
//! [`SweepTiming`] section, which is how sweep runtimes are characterized
//! and how tests verify that specs are built once per app×scale.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use numadag_core::{make_policy, PolicyKind};
use numadag_tdg::TaskGraphSpec;
use numadag_trace::{MemorySink, Trace, TraceCollector};
use serde::Serialize;

use crate::config::ExecutionConfig;
use crate::executor::{CellContext, Executor};
use crate::experiment::{aggregate, mean, Backend, SweepCell, SweepReport};

/// One workload of a [`SweepPlan`]: a label, a scale label and the shared,
/// memoized spec every cell of this workload runs.
#[derive(Clone, Debug)]
pub struct PlannedWorkload {
    /// Workload label (application name, or the spec name for custom
    /// workloads).
    pub label: String,
    /// Problem-scale label (`"Tiny"`, `"Small"`, `"Full"` or `"custom"`).
    pub scale_label: String,
    /// Whether the sweep's baseline policy can be built for this workload
    /// (probed at plan time). When `false` the whole workload lands in the
    /// report's skip list, so the driver never runs its cells — speedups
    /// would have no anchor and the measurements would be discarded.
    pub baseline_available: bool,
    /// The workload spec, built once and shared by every job.
    pub spec: Arc<TaskGraphSpec>,
}

/// One independent cell job of a [`SweepPlan`]: run one policy once on one
/// workload. Jobs are keyed by (workload, policy slot, repetition), so
/// results can be assembled in canonical order no matter which worker
/// finished them when.
#[derive(Clone, Copy, Debug)]
pub struct SweepJob {
    /// Index into [`SweepPlan::workloads`].
    pub workload: usize,
    /// Index into [`SweepPlan::policies`] (the baseline is the last slot).
    pub policy_slot: usize,
    /// Repetition index (0-based); the policy seed is derived from it.
    pub repetition: usize,
}

/// A fully materialized sweep: shared workload specs plus the flat list of
/// independent cell jobs. Built by [`Experiment::plan`](crate::Experiment::plan),
/// executed by a [`SweepDriver`].
#[derive(Debug)]
pub struct SweepPlan {
    pub(crate) config: ExecutionConfig,
    pub(crate) backend: Backend,
    pub(crate) baseline: PolicyKind,
    /// Deduped policy list in report order; the baseline is always last.
    pub(crate) policies: Vec<PolicyKind>,
    pub(crate) workloads: Vec<PlannedWorkload>,
    pub(crate) jobs: Vec<SweepJob>,
    pub(crate) repetitions: usize,
    pub(crate) seed: u64,
    /// Wall time spent building specs while planning (ns).
    pub(crate) build_wall_ns: f64,
    /// Specs actually built (cache misses) while planning.
    pub(crate) spec_builds: usize,
    /// Spec lookups served from the cache while planning.
    pub(crate) spec_cache_hits: usize,
    /// Lifetime build counter of the [`numadag_kernels::SpecCache`] this
    /// plan drew from, snapshotted after planning. Unlike `spec_builds`
    /// (this plan's own misses) it accumulates across every experiment and
    /// service request sharing the cache.
    pub(crate) spec_cache_total_builds: usize,
    /// Lifetime hit counter of the shared spec cache (see
    /// [`SweepPlan::spec_cache_total_builds`]).
    pub(crate) spec_cache_total_hits: usize,
    /// When set, every executed cell is traced into this collector (see
    /// [`crate::Experiment::trace`]). Traced cells run on a dedicated
    /// executor whose config carries a fresh
    /// [`numadag_trace::MemorySink`]; on the deterministic simulator the
    /// measurements are identical to the untraced path.
    pub(crate) trace: Option<Arc<TraceCollector>>,
}

impl SweepPlan {
    /// The workloads of the plan, in report order.
    pub fn workloads(&self) -> &[PlannedWorkload] {
        &self.workloads
    }

    /// The flat job list, in canonical (workload, policy, repetition) order.
    pub fn jobs(&self) -> &[SweepJob] {
        &self.jobs
    }

    /// The policy list in report order (baseline last).
    pub fn policies(&self) -> &[PolicyKind] {
        &self.policies
    }

    /// Number of cell jobs in the plan.
    pub fn num_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Specs actually built while planning (cache misses).
    pub fn spec_builds(&self) -> usize {
        self.spec_builds
    }

    /// The backend the plan will execute on.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The job at `index`, resolved to its labels (handy for progress UIs):
    /// `(application, scale, policy)`.
    pub fn job_labels(&self, index: usize) -> (String, String, String) {
        self.labels_of(&self.jobs[index])
    }

    /// The cell job at `index` (workload/policy-slot/repetition indices).
    pub fn job_at(&self, index: usize) -> &SweepJob {
        &self.jobs[index]
    }

    fn labels_of(&self, job: &SweepJob) -> (String, String, String) {
        let wl = &self.workloads[job.workload];
        (
            wl.label.clone(),
            wl.scale_label.clone(),
            self.policies[job.policy_slot].label(),
        )
    }

    /// Builds an executor for the plan's backend and execution config — the
    /// same construction the driver's serial and sharded paths use, exposed
    /// so external schedulers (the sweep service's worker pool) can run
    /// cells through [`SweepPlan::run_cell`] on an executor they own and
    /// reuse across cells.
    pub fn executor(&self) -> Box<dyn Executor> {
        self.backend.executor(self.config.clone())
    }

    /// Runs the single cell job at `index` on `executor` and returns its
    /// outcome — the cell-granular slice of what [`SweepDriver::execute`]
    /// does, exposed so external schedulers can execute a plan's cells in
    /// any order (or fetch some from a cache) and still assemble the exact
    /// report via [`SweepPlan::assemble_report`]. Tracing is not applied on
    /// this path (cells run exactly as the untraced driver runs them).
    ///
    /// # Panics
    /// Panics if `index >= self.num_jobs()`.
    pub fn run_cell(&self, index: usize, executor: &dyn Executor) -> CellOutcome {
        run_job(self, &self.jobs[index], executor, false)
    }

    /// The deterministic keyed post-pass over per-cell outcomes: walks
    /// workloads and policy slots in the plan's canonical order, anchors
    /// every speedup on the baseline's mean makespan, and emits cells, skip
    /// list, aggregates and timing. `outcomes` must be parallel to
    /// [`SweepPlan::jobs`]. Because the pass is keyed, the report is
    /// bit-identical no matter which worker (or cache) produced each
    /// outcome — this is the same function [`SweepDriver::execute`] ends
    /// with, exposed for external schedulers that mix freshly-executed and
    /// cached cell outcomes.
    ///
    /// # Panics
    /// Panics if `outcomes.len() != self.num_jobs()`.
    pub fn assemble_report(
        &self,
        outcomes: Vec<CellOutcome>,
        workers: usize,
        total_wall: std::time::Duration,
    ) -> SweepReport {
        assert_eq!(
            outcomes.len(),
            self.num_jobs(),
            "outcomes must be parallel to the plan's job list"
        );
        let machine = self.config.topology.name().to_string();
        assemble(
            self,
            outcomes,
            &machine,
            self.backend.report_label(),
            workers,
            total_wall,
        )
    }
}

/// Wall-time and build accounting of one sweep execution, serialized in the
/// report's optional `timing` section
/// ([`SweepReport::to_json_string_with_timing`]).
///
/// Timings are real wall-clock measurements and therefore vary run to run;
/// they are kept out of the default measurement serialization
/// ([`SweepReport::to_json_string`]) so perf baselines stay byte-stable, and
/// [`SweepReport::diff`](crate::SweepReport::diff) ignores them.
#[derive(Clone, Debug, Default, Serialize)]
pub struct SweepTiming {
    /// Worker threads the driver used.
    pub jobs: usize,
    /// Wall time of the whole execute phase (ns).
    pub total_wall_ns: f64,
    /// Wall time spent building workload specs during planning (ns).
    pub build_wall_ns: f64,
    /// Sum of per-cell wall times across all workers (ns); with `jobs`
    /// workers this exceeds `total_wall_ns` up to `jobs`-fold.
    pub run_wall_ns: f64,
    /// Workload specs actually built (once per app×scale on a cold cache).
    pub spec_builds: usize,
    /// Workload spec lookups served from the cache.
    pub spec_cache_hits: usize,
    /// Lifetime builds of the shared spec cache at plan time — accumulates
    /// across every sweep (and service request) sharing the cache, whereas
    /// `spec_builds` counts only this plan's own misses.
    pub spec_cache_total_builds: usize,
    /// Lifetime cache hits of the shared spec cache at plan time.
    pub spec_cache_total_hits: usize,
    /// Per-cell wall time (ns), parallel to the report's `cells` array.
    pub cell_wall_ns: Vec<f64>,
    /// Per-cell count of windows the policy handed to the graph
    /// partitioner, parallel to `cells` (0 for non-partitioning policies).
    pub cell_partition_windows: Vec<usize>,
    /// Per-cell wall time spent inside the graph partitioner (ns),
    /// parallel to `cells`.
    pub cell_partition_wall_ns: Vec<f64>,
    /// Per-cell wall time spent inside the scheduling policy (`prepare` +
    /// `assign`, of which the partitioner time is a subset), parallel to
    /// `cells`. All zeros unless the execution config enabled
    /// [`crate::ExecutionConfig::stage_timing`] (assign batches are only
    /// clocked then); `prepare` is always included.
    pub cell_policy_wall_ns: Vec<f64>,
    /// Per-cell wall time of the executor's run minus the policy time — the
    /// event loop plus the memory-cost model (ns), parallel to `cells`.
    pub cell_event_loop_wall_ns: Vec<f64>,
}

/// Progress report passed to [`SweepDriver::on_cell_complete`] after each
/// cell job finishes (from the worker that ran it, when sharded).
#[derive(Clone, Debug)]
pub struct CellProgress {
    /// Jobs completed so far, including this one.
    pub completed: usize,
    /// Total jobs in the plan.
    pub total: usize,
    /// Workload label of the finished cell.
    pub application: String,
    /// Scale label of the finished cell.
    pub scale: String,
    /// Policy label of the finished cell.
    pub policy: String,
    /// Repetition index of the finished cell.
    pub repetition: usize,
    /// Wall time of this cell (ns).
    pub wall_ns: f64,
    /// True if the policy could not be built for this workload (the cell
    /// will appear in the report's skip list, not in its cells).
    pub skipped: bool,
}

/// Shared handle to a progress callback (invoked concurrently by workers).
pub type ProgressCallback = Arc<dyn Fn(&CellProgress) + Send + Sync>;

/// What one cell job produced: a measurement, or a skip marker when the
/// policy cannot be built for the workload (e.g. EP without an expert
/// placement). `Clone` because outcomes are small value bundles — external
/// schedulers (the sweep service) cache them per cell and replay clones
/// into [`SweepPlan::assemble_report`].
#[derive(Clone, Debug)]
pub enum CellOutcome {
    /// The cell ran; its measurements.
    Measured(CellMeasurement),
    /// The policy (or the workload's baseline) could not be built.
    Skipped,
}

/// The per-cell measurements a job extracts from its execution report.
/// Deliberately opaque: producers are [`SweepPlan::run_cell`] (or the
/// driver), the consumer is [`SweepPlan::assemble_report`].
#[derive(Clone, Debug)]
pub struct CellMeasurement {
    makespan_ns: f64,
    tasks: usize,
    local_fraction: f64,
    load_imbalance: f64,
    steal_fraction: f64,
    deferred_bytes: u64,
    wall_ns: f64,
    /// Windows the cell's policy handed to the graph partitioner (0 for
    /// non-partitioning policies).
    partition_windows: usize,
    /// Wall time the cell's policy spent inside the partitioner (ns).
    partition_wall_ns: f64,
    /// Wall time inside the policy (prepare + assign batches), ns.
    policy_wall_ns: f64,
    /// Executor run wall minus policy time, ns.
    event_loop_wall_ns: f64,
}

impl CellMeasurement {
    /// Wall time this cell took to execute (ns). Exposed so external
    /// schedulers can report per-cell progress without unpacking the rest.
    pub fn wall_ns(&self) -> f64 {
        self.wall_ns
    }
}

/// Executes a [`SweepPlan`], serially or sharded across worker threads.
///
/// ```
/// use numadag_runtime::{Experiment, SweepDriver};
/// use numadag_kernels::{Application, ProblemScale};
///
/// let plan = Experiment::new()
///     .app(Application::NStream)
///     .scale(ProblemScale::Tiny)
///     .plan();
/// let report = SweepDriver::new().parallelism(2).execute(&plan);
/// assert_eq!(report.timing.jobs, 2);
/// // Sharded execution is bit-identical to serial on the simulator backend.
/// let serial = SweepDriver::new().execute(&plan);
/// assert_eq!(report.to_json_string(), serial.to_json_string());
/// ```
#[derive(Default)]
pub struct SweepDriver {
    parallelism: usize,
    on_cell_complete: Option<ProgressCallback>,
}

impl SweepDriver {
    /// A serial driver (parallelism 1, no progress callback).
    pub fn new() -> Self {
        SweepDriver::default()
    }

    /// Sets the number of worker threads. `0` means "one per available
    /// core"; `1` (the default) executes in order on the calling thread.
    ///
    /// **Threaded-backend caveat:** every worker constructs its own
    /// executor, so sharding a [`Backend::Threaded`] plan runs that many
    /// complete thread pools at once; their wall-clock makespans contend
    /// for CPUs and come out inflated. Measure the threaded backend
    /// serially; shard the simulator freely (its reports are bit-identical
    /// for any worker count).
    pub fn parallelism(mut self, jobs: usize) -> Self {
        self.parallelism = jobs;
        self
    }

    /// Installs a callback invoked after every finished cell job. When
    /// sharded, workers call it concurrently.
    pub fn on_cell_complete(
        mut self,
        callback: impl Fn(&CellProgress) + Send + Sync + 'static,
    ) -> Self {
        self.on_cell_complete = Some(Arc::new(callback));
        self
    }

    /// Installs an already-shared progress callback (see
    /// [`SweepDriver::on_cell_complete`]).
    pub fn on_cell_complete_shared(mut self, callback: ProgressCallback) -> Self {
        self.on_cell_complete = Some(callback);
        self
    }

    /// The effective worker count for a plan of `num_jobs` jobs.
    fn effective_parallelism(&self, num_jobs: usize) -> usize {
        let requested = if self.parallelism == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.parallelism
        };
        requested.clamp(1, num_jobs.max(1))
    }

    /// Executes every job of the plan and assembles the report.
    ///
    /// Results are keyed, not order-dependent: whichever worker finishes a
    /// cell, the post-pass recomputes baseline means and speedups in the
    /// plan's canonical order, so the report is identical for any worker
    /// count (bit-identical on the deterministic simulator backend).
    pub fn execute(&self, plan: &SweepPlan) -> SweepReport {
        let t0 = Instant::now();
        let workers = self.effective_parallelism(plan.num_jobs());
        let outcomes = if workers <= 1 {
            self.execute_serial(plan)
        } else {
            self.execute_sharded(plan, workers)
        };
        let machine = plan.config.topology.name().to_string();
        assemble(
            plan,
            outcomes,
            &machine,
            plan.backend.report_label(),
            workers,
            t0.elapsed(),
        )
    }

    /// Like [`SweepDriver::execute`] but serially on a caller-supplied
    /// executor (any [`Executor`] implementation, including ones outside
    /// this crate). The plan's backend/config are ignored in favour of the
    /// executor's own — which is why a plan's trace collector is also
    /// ignored here (tracing hooks into the plan's own executor
    /// construction; install a sink on the supplied executor's config to
    /// trace this path).
    pub fn execute_on(&self, plan: &SweepPlan, executor: &dyn Executor) -> SweepReport {
        let t0 = Instant::now();
        let completed = AtomicUsize::new(0);
        let outcomes = plan
            .jobs
            .iter()
            .map(|job| self.run_and_notify(plan, job, executor, false, &completed))
            .collect();
        let machine = executor.config().topology.name().to_string();
        assemble(
            plan,
            outcomes,
            &machine,
            executor.backend_name(),
            1,
            t0.elapsed(),
        )
    }

    /// In-order execution on one owned executor.
    fn execute_serial(&self, plan: &SweepPlan) -> Vec<CellOutcome> {
        let executor = plan.backend.executor(plan.config.clone());
        let completed = AtomicUsize::new(0);
        plan.jobs
            .iter()
            .map(|job| self.run_and_notify(plan, job, executor.as_ref(), true, &completed))
            .collect()
    }

    /// Sharded execution: `workers` threads pull jobs from a shared cursor;
    /// each owns its own executor and policy instances.
    fn execute_sharded(&self, plan: &SweepPlan, workers: usize) -> Vec<CellOutcome> {
        let n = plan.num_jobs();
        let cursor = AtomicUsize::new(0);
        let completed = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<CellOutcome>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let executor = plan.backend.executor(plan.config.clone());
                    loop {
                        let i = cursor.fetch_add(1, Ordering::SeqCst);
                        if i >= n {
                            break;
                        }
                        let outcome = self.run_and_notify(
                            plan,
                            &plan.jobs[i],
                            executor.as_ref(),
                            true,
                            &completed,
                        );
                        *slots[i].lock().unwrap() = Some(outcome);
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap()
                    .expect("every planned job must have been executed")
            })
            .collect()
    }

    /// Runs one job and fires the progress callback.
    fn run_and_notify(
        &self,
        plan: &SweepPlan,
        job: &SweepJob,
        executor: &dyn Executor,
        allow_trace: bool,
        completed: &AtomicUsize,
    ) -> CellOutcome {
        let outcome = run_job(plan, job, executor, allow_trace);
        let done = completed.fetch_add(1, Ordering::SeqCst) + 1;
        if let Some(callback) = &self.on_cell_complete {
            let (application, scale, policy) = plan.labels_of(job);
            let (wall_ns, skipped) = match &outcome {
                CellOutcome::Measured(m) => (m.wall_ns, false),
                CellOutcome::Skipped => (0.0, true),
            };
            callback(&CellProgress {
                completed: done,
                total: plan.num_jobs(),
                application,
                scale,
                policy,
                repetition: job.repetition,
                wall_ns,
                skipped,
            });
        }
        outcome
    }
}

/// Builds the job's policy and runs its cell on the given executor.
fn run_job(
    plan: &SweepPlan,
    job: &SweepJob,
    executor: &dyn Executor,
    allow_trace: bool,
) -> CellOutcome {
    let workload = &plan.workloads[job.workload];
    // A workload whose baseline cannot be built is skipped wholesale: its
    // speedups would have no anchor and `assemble` would discard the
    // measurements, so don't spend executor time producing them.
    if !workload.baseline_available {
        return CellOutcome::Skipped;
    }
    let kind = plan.policies[job.policy_slot];
    let seed = plan.seed.wrapping_add(job.repetition as u64);
    let t = Instant::now();
    let Some(mut policy) = make_policy(kind, &workload.spec, seed) else {
        return CellOutcome::Skipped;
    };
    // The label/seed pair lets out-of-process backends rebuild the policy
    // remotely; in-process backends ignore it (default execute_cell).
    let policy_label = kind.label();
    let ctx = CellContext {
        policy_label: &policy_label,
        seed,
    };
    let report = match plan.trace.as_ref().filter(|_| allow_trace) {
        Some(collector) => {
            // Traced cells run on a dedicated executor whose config carries
            // a fresh memory sink, so events of concurrent cells never mix.
            // The simulator is deterministic, so the measurements are
            // identical to the untraced path.
            let sink = Arc::new(MemorySink::new());
            let traced = plan
                .backend
                .executor(plan.config.clone().with_trace_sink(sink.clone()));
            let report = traced.execute_cell(&workload.spec, policy.as_mut(), Some(&ctx));
            collector.record(Trace {
                workload: workload.label.clone(),
                policy: kind.label(),
                backend: plan.backend.label().to_string(),
                scale: workload.scale_label.clone(),
                repetition: job.repetition,
                tasks: report.tasks,
                num_sockets: plan.config.topology.num_sockets(),
                makespan_ns: report.makespan_ns,
                events: sink.take(),
            });
            report
        }
        None => executor.execute_cell(&workload.spec, policy.as_mut(), Some(&ctx)),
    };
    let partition_stats = policy.partition_stats().unwrap_or_default();
    CellOutcome::Measured(CellMeasurement {
        makespan_ns: report.makespan_ns,
        tasks: report.tasks,
        local_fraction: report.local_fraction(),
        load_imbalance: report.load_imbalance(),
        steal_fraction: report.steal_fraction(),
        deferred_bytes: report.deferred_bytes,
        wall_ns: t.elapsed().as_nanos() as f64,
        partition_windows: partition_stats.windows,
        partition_wall_ns: partition_stats.wall_ns,
        policy_wall_ns: report.policy_wall_ns,
        event_loop_wall_ns: report.event_loop_wall_ns,
    })
}

/// The deterministic post-pass: walks workloads and policy slots in the
/// plan's canonical order, anchors every speedup on the baseline's mean
/// makespan, and emits cells, skip list, aggregates and timing — exactly the
/// shapes (and, on a deterministic backend, bytes) the old serial loop
/// produced.
fn assemble(
    plan: &SweepPlan,
    outcomes: Vec<CellOutcome>,
    machine: &str,
    backend_name: &str,
    workers: usize,
    total_wall: std::time::Duration,
) -> SweepReport {
    let reps = plan.repetitions;
    let num_policies = plan.policies.len();
    let baseline_slot = num_policies - 1; // the plan puts the baseline last
    let job_index =
        |workload: usize, slot: usize, rep: usize| (workload * num_policies + slot) * reps + rep;

    let mut cells = Vec::new();
    let mut cell_wall_ns = Vec::new();
    let mut cell_partition_windows = Vec::new();
    let mut cell_partition_wall_ns = Vec::new();
    let mut cell_policy_wall_ns = Vec::new();
    let mut cell_event_loop_wall_ns = Vec::new();
    let mut skipped = Vec::new();
    for (w, workload) in plan.workloads.iter().enumerate() {
        // The baseline anchors every speedup of this workload; if it cannot
        // run, the whole workload is skipped (matching the serial loop).
        let baseline: Vec<&CellMeasurement> = (0..reps)
            .filter_map(|rep| match &outcomes[job_index(w, baseline_slot, rep)] {
                CellOutcome::Measured(m) => Some(m),
                CellOutcome::Skipped => None,
            })
            .collect();
        if baseline.len() < reps {
            skipped.push(format!("{}/{}", workload.label, plan.baseline.label()));
            continue;
        }
        let baseline_mean = mean(baseline.iter().map(|m| m.makespan_ns));

        for (slot, &kind) in plan.policies.iter().enumerate() {
            let measurements: Vec<&CellMeasurement> = if slot == baseline_slot {
                baseline.clone()
            } else {
                let runs: Vec<&CellMeasurement> = (0..reps)
                    .filter_map(|rep| match &outcomes[job_index(w, slot, rep)] {
                        CellOutcome::Measured(m) => Some(m),
                        CellOutcome::Skipped => None,
                    })
                    .collect();
                if runs.len() < reps {
                    skipped.push(format!("{}/{}", workload.label, kind.label()));
                    continue;
                }
                runs
            };
            for (rep, m) in measurements.iter().enumerate() {
                cells.push(SweepCell {
                    application: workload.label.clone(),
                    scale: workload.scale_label.clone(),
                    policy: kind.label(),
                    repetition: rep,
                    tasks: m.tasks,
                    makespan_ns: m.makespan_ns,
                    speedup_vs_baseline: if m.makespan_ns > 0.0 {
                        baseline_mean / m.makespan_ns
                    } else {
                        1.0
                    },
                    local_fraction: m.local_fraction,
                    load_imbalance: m.load_imbalance,
                    steal_fraction: m.steal_fraction,
                    deferred_bytes: m.deferred_bytes,
                });
                cell_wall_ns.push(m.wall_ns);
                cell_partition_windows.push(m.partition_windows);
                cell_partition_wall_ns.push(m.partition_wall_ns);
                cell_policy_wall_ns.push(m.policy_wall_ns);
                cell_event_loop_wall_ns.push(m.event_loop_wall_ns);
            }
        }
    }

    let run_wall_ns = outcomes
        .iter()
        .map(|o| match o {
            CellOutcome::Measured(m) => m.wall_ns,
            CellOutcome::Skipped => 0.0,
        })
        .sum();
    let aggregates = aggregate(&cells);
    SweepReport {
        machine: machine.to_string(),
        backend: backend_name.to_string(),
        baseline: plan.baseline.label(),
        seed: plan.seed,
        repetitions: reps,
        cells,
        aggregates,
        skipped,
        timing: SweepTiming {
            jobs: workers,
            total_wall_ns: total_wall.as_nanos() as f64,
            build_wall_ns: plan.build_wall_ns,
            run_wall_ns,
            spec_builds: plan.spec_builds,
            spec_cache_hits: plan.spec_cache_hits,
            spec_cache_total_builds: plan.spec_cache_total_builds,
            spec_cache_total_hits: plan.spec_cache_total_hits,
            cell_wall_ns,
            cell_partition_windows,
            cell_partition_wall_ns,
            cell_policy_wall_ns,
            cell_event_loop_wall_ns,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Experiment;
    use numadag_kernels::{Application, ProblemScale, SpecCache};

    fn tiny_experiment() -> Experiment {
        Experiment::new()
            .apps([Application::Jacobi, Application::NStream])
            .scale(ProblemScale::Tiny)
            .policies([PolicyKind::Dfifo, PolicyKind::RgpLas])
            .seed(7)
    }

    #[test]
    fn plan_materializes_the_full_job_matrix() {
        let plan = tiny_experiment().repetitions(2).plan();
        assert_eq!(plan.workloads().len(), 2);
        // DFIFO, RGP+LAS + the LAS baseline, last.
        assert_eq!(plan.policies().len(), 3);
        assert_eq!(*plan.policies().last().unwrap(), PolicyKind::Las);
        // 2 workloads × 3 policies × 2 repetitions.
        assert_eq!(plan.num_jobs(), 12);
        // Jobs are in canonical (workload, policy, repetition) order.
        let first = plan.jobs()[0];
        assert_eq!(
            (first.workload, first.policy_slot, first.repetition),
            (0, 0, 0)
        );
        let last = plan.jobs()[11];
        assert_eq!(
            (last.workload, last.policy_slot, last.repetition),
            (1, 2, 1)
        );
        // Specs were built once per workload, no hits on a private cache.
        assert_eq!(plan.spec_builds(), 2);
        assert_eq!(plan.spec_cache_hits, 0);
    }

    #[test]
    fn sharded_execution_is_bit_identical_to_serial() {
        let plan = tiny_experiment().plan();
        let serial = SweepDriver::new().execute(&plan);
        for jobs in [2, 3, 8] {
            let sharded = SweepDriver::new().parallelism(jobs).execute(&plan);
            assert_eq!(
                serial.to_json_string(),
                sharded.to_json_string(),
                "jobs={jobs} must not change the report"
            );
            assert_eq!(sharded.timing.jobs, jobs.min(plan.num_jobs()));
        }
    }

    #[test]
    fn driver_matches_the_experiment_front_door() {
        let via_run = tiny_experiment().run();
        let via_driver = SweepDriver::new().execute(&tiny_experiment().plan());
        assert_eq!(via_run.to_json_string(), via_driver.to_json_string());
    }

    #[test]
    fn timing_accounts_every_cell_and_build() {
        let report = tiny_experiment().run();
        assert_eq!(report.timing.cell_wall_ns.len(), report.cells.len());
        assert!(report.timing.cell_wall_ns.iter().all(|&ns| ns > 0.0));
        assert!(report.timing.total_wall_ns > 0.0);
        assert!(report.timing.run_wall_ns > 0.0);
        assert!(report.timing.build_wall_ns > 0.0);
        assert_eq!(report.timing.spec_builds, 2);
        assert_eq!(report.timing.jobs, 1);
        // Partitioning cost is accounted per cell: RGP cells partitioned at
        // least one window and spent measurable time doing so, non-RGP
        // cells report zero.
        assert_eq!(
            report.timing.cell_partition_windows.len(),
            report.cells.len()
        );
        assert_eq!(
            report.timing.cell_partition_wall_ns.len(),
            report.cells.len()
        );
        for (i, cell) in report.cells.iter().enumerate() {
            let windows = report.timing.cell_partition_windows[i];
            let wall = report.timing.cell_partition_wall_ns[i];
            if cell.policy.starts_with("RGP") {
                assert!(windows >= 1, "{}: windows={windows}", cell.policy);
                assert!(wall > 0.0, "{}: wall={wall}", cell.policy);
            } else {
                assert_eq!(windows, 0, "{}", cell.policy);
                assert_eq!(wall, 0.0, "{}", cell.policy);
            }
        }
    }

    #[test]
    fn shared_spec_cache_skips_rebuilds_across_experiments() {
        let cache = Arc::new(SpecCache::new());
        let first = tiny_experiment().spec_cache(Arc::clone(&cache)).run();
        assert_eq!(first.timing.spec_builds, 2);
        assert_eq!(first.timing.spec_cache_hits, 0);
        let second = tiny_experiment().spec_cache(Arc::clone(&cache)).run();
        assert_eq!(second.timing.spec_builds, 0);
        assert_eq!(second.timing.spec_cache_hits, 2);
        // The global counters accumulate across both experiments: the first
        // sweep's snapshot sees only its own lookups, the second sees both.
        assert_eq!(first.timing.spec_cache_total_builds, 2);
        assert_eq!(first.timing.spec_cache_total_hits, 0);
        assert_eq!(second.timing.spec_cache_total_builds, 2);
        assert_eq!(second.timing.spec_cache_total_hits, 2);
        // Cached specs change cost, not results.
        assert_eq!(first.to_json_string(), second.to_json_string());
    }

    #[test]
    fn progress_callback_sees_every_cell() {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let report = tiny_experiment()
            .parallelism(2)
            .on_cell_complete(move |p: &CellProgress| {
                sink.lock()
                    .unwrap()
                    .push((p.completed, p.policy.clone(), p.skipped));
            })
            .run();
        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), 6);
        assert_eq!(report.cells.len(), 6);
        // `completed` counts every job exactly once, in completion order.
        let mut counts: Vec<usize> = seen.iter().map(|(c, _, _)| *c).collect();
        counts.sort_unstable();
        assert_eq!(counts, (1..=6).collect::<Vec<_>>());
        assert!(seen.iter().all(|(_, _, skipped)| !skipped));
    }

    #[test]
    fn skipped_policies_are_reported_not_fatal() {
        use numadag_tdg::{TaskSpec, TdgBuilder};
        let mut b = TdgBuilder::new();
        let r = b.region(64);
        b.submit(TaskSpec::new("t").work(1.0).writes(r, 64));
        let (g, sizes) = b.finish();
        let spec = TaskGraphSpec::new("no-ep", g, sizes);
        let plan = Experiment::new()
            .workload(spec)
            .policies([PolicyKind::Ep, PolicyKind::Dfifo])
            .plan();
        for jobs in [1, 4] {
            let report = SweepDriver::new().parallelism(jobs).execute(&plan);
            assert_eq!(report.skipped, vec!["no-ep/EP"], "jobs={jobs}");
            assert_eq!(report.policy_labels(), vec!["DFIFO", "LAS"]);
        }
    }

    #[test]
    fn unbuildable_baseline_short_circuits_the_whole_workload() {
        use numadag_tdg::{TaskSpec, TdgBuilder};
        let mut b = TdgBuilder::new();
        let r = b.region(64);
        b.submit(TaskSpec::new("t").work(1.0).writes(r, 64));
        let (g, sizes) = b.finish();
        let spec = TaskGraphSpec::new("no-ep", g, sizes);
        // EP as baseline on a workload without an expert placement: the plan
        // marks the workload dead, and the driver must not spend executor
        // time on its other policies (their speedups would have no anchor).
        let plan = Experiment::new()
            .workload(spec)
            .baseline(PolicyKind::Ep)
            .policies([PolicyKind::Dfifo, PolicyKind::Las])
            .plan();
        assert!(!plan.workloads()[0].baseline_available);
        let skipped_cells = Arc::new(AtomicUsize::new(0));
        let sink = Arc::clone(&skipped_cells);
        let report = SweepDriver::new()
            .on_cell_complete(move |p: &CellProgress| {
                assert!(
                    p.skipped,
                    "{}/{} must not have run",
                    p.application, p.policy
                );
                sink.fetch_add(1, Ordering::SeqCst);
            })
            .execute(&plan);
        // Matches the old serial loop: one skip entry for the baseline, no
        // cells, nothing else attempted.
        assert_eq!(report.skipped, vec!["no-ep/EP"]);
        assert!(report.cells.is_empty());
        assert_eq!(skipped_cells.load(Ordering::SeqCst), plan.num_jobs());
    }

    #[test]
    fn traced_sweeps_collect_one_trace_per_cell_without_changing_results() {
        let untraced = tiny_experiment().run();
        let collector = Arc::new(TraceCollector::new());
        for jobs in [1, 3] {
            let traced = tiny_experiment()
                .parallelism(jobs)
                .trace(Arc::clone(&collector))
                .run();
            // Tracing observes; it must not move a single measurement byte.
            assert_eq!(
                untraced.to_json_string(),
                traced.to_json_string(),
                "jobs={jobs}"
            );
            let traces = collector.take();
            assert_eq!(traces.len(), traced.cells.len(), "jobs={jobs}");
            for trace in &traces {
                trace.validate().expect("sweep trace must be complete");
                assert_eq!(trace.backend, "simulator");
                assert_eq!(trace.scale, "Tiny");
                let cell = traced
                    .cells
                    .iter()
                    .find(|c| {
                        c.application == trace.workload
                            && c.policy == trace.policy
                            && c.repetition == trace.repetition
                    })
                    .expect("every trace matches a cell");
                assert_eq!(cell.makespan_ns, trace.makespan_ns);
                assert_eq!(cell.tasks, trace.tasks);
            }
        }
    }

    #[test]
    fn skipped_cells_leave_no_trace() {
        use numadag_tdg::{TaskSpec, TdgBuilder};
        let mut b = TdgBuilder::new();
        let r = b.region(64);
        b.submit(TaskSpec::new("t").work(1.0).writes(r, 64));
        let (g, sizes) = b.finish();
        let spec = TaskGraphSpec::new("no-ep", g, sizes);
        let collector = Arc::new(TraceCollector::new());
        let report = Experiment::new()
            .workload(spec)
            .policies([PolicyKind::Ep, PolicyKind::Dfifo])
            .trace(Arc::clone(&collector))
            .run();
        assert_eq!(report.skipped, vec!["no-ep/EP"]);
        // DFIFO + LAS traced, EP skipped.
        assert_eq!(collector.len(), 2);
    }

    #[test]
    fn parallelism_zero_means_available_cores() {
        let report = tiny_experiment().parallelism(0).run();
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        assert_eq!(report.timing.jobs, cores.clamp(1, 6));
    }
}
