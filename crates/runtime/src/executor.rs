//! The [`Executor`] trait: one execution interface for every backend.
//!
//! The paper's claim is validated by running the same (application × scale ×
//! policy) matrix through two backends — the deterministic discrete-event
//! [`crate::Simulator`] and the real [`crate::ThreadedExecutor`]. Both
//! implement this trait, so harnesses, examples and tests are written once
//! against `dyn Executor` (usually via [`crate::Experiment`]) and choose the
//! backend at runtime.

use std::sync::OnceLock;

use numadag_core::SchedulingPolicy;
use numadag_tdg::TaskGraphSpec;

use crate::config::ExecutionConfig;
use crate::report::ExecutionReport;

/// Out-of-band description of the sweep cell an execution belongs to.
///
/// The sharded [`crate::SweepDriver`] knows which [`numadag_core::PolicyKind`]
/// and seed produced the `&mut dyn SchedulingPolicy` it hands to an executor,
/// but the trait object itself cannot be serialized. Backends that ship work
/// to other processes (the `numadag-proc` coordinator) need that provenance to
/// rebuild the policy remotely, so the driver passes it alongside the call via
/// [`Executor::execute_cell`]. In-process backends ignore it — keeping the hot
/// [`SchedulingPolicy::assign`] path free of any extra indirection.
#[derive(Debug, Clone, Copy)]
pub struct CellContext<'a> {
    /// Canonical policy label, parseable by
    /// `numadag_core::PolicyKind::from_str` (e.g. `"rgp-las"`,
    /// `"rgp-las[win=64]"`).
    pub policy_label: &'a str,
    /// The seed the policy instance was built with.
    pub seed: u64,
}

/// A backend that can execute a task-graph workload under a scheduling
/// policy and measure the result.
///
/// Implementations must consult the policy exactly as the paper's runtime
/// does: [`SchedulingPolicy::prepare`] once before execution with the full
/// graph, then [`SchedulingPolicy::assign`] each time a task becomes ready.
///
/// `Send + Sync` are supertraits so executors can be constructed and owned
/// per worker thread by the sharded [`crate::SweepDriver`].
pub trait Executor: Send + Sync {
    /// Short stable backend name (`"simulator"`, `"threaded"`, `"proc"`),
    /// used in sweep reports and CLI arguments.
    fn backend_name(&self) -> &'static str;

    /// The machine configuration this executor runs.
    fn config(&self) -> &ExecutionConfig;

    /// Runs `spec` under `policy` and returns the execution report.
    ///
    /// # Panics
    /// Panics if the workload is invalid (see [`TaskGraphSpec::validate`]).
    fn execute(&self, spec: &TaskGraphSpec, policy: &mut dyn SchedulingPolicy) -> ExecutionReport;

    /// Runs one sweep cell, with optional provenance ([`CellContext`]) for
    /// backends that need to reconstruct the policy elsewhere.
    ///
    /// The default implementation ignores the context and delegates to
    /// [`Executor::execute`]; in-process backends need not override it. The
    /// sweep driver always calls this entry point with `Some(ctx)`.
    fn execute_cell(
        &self,
        spec: &TaskGraphSpec,
        policy: &mut dyn SchedulingPolicy,
        ctx: Option<&CellContext<'_>>,
    ) -> ExecutionReport {
        let _ = ctx;
        self.execute(spec, policy)
    }
}

/// Constructor signature for the out-of-crate `proc` backend: takes the
/// execution config and the worker-process count, returns the executor.
pub type ProcFactory = Box<dyn Fn(ExecutionConfig, usize) -> Box<dyn Executor> + Send + Sync>;

static PROC_FACTORY: OnceLock<ProcFactory> = OnceLock::new();

/// Installs the factory behind `Backend::Proc`.
///
/// `numadag-proc` depends on this crate, so the runtime cannot name the
/// multi-process executor directly; instead `numadag_proc::install()` calls
/// this once at startup. Later registrations are ignored (first wins).
pub fn register_proc_backend(factory: ProcFactory) {
    let _ = PROC_FACTORY.set(factory);
}

/// Builds a proc-backend executor, or `None` if no factory was installed.
pub(crate) fn proc_executor(config: ExecutionConfig, workers: usize) -> Option<Box<dyn Executor>> {
    PROC_FACTORY.get().map(|f| f(config, workers))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Simulator, ThreadedExecutor};
    use numadag_core::LasPolicy;
    use numadag_numa::Topology;
    use numadag_tdg::{TaskSpec, TdgBuilder};

    fn toy_spec() -> TaskGraphSpec {
        let mut b = TdgBuilder::new();
        let r = b.region(4096);
        b.submit(TaskSpec::new("w").work(10.0).writes(r, 4096));
        b.submit(TaskSpec::new("r").work(10.0).reads(r, 4096));
        let (g, sizes) = b.finish();
        TaskGraphSpec::new("toy", g, sizes)
    }

    #[test]
    fn both_backends_execute_through_the_trait_object() {
        let spec = toy_spec();
        let backends: Vec<Box<dyn Executor>> = vec![
            Box::new(Simulator::new(ExecutionConfig::new(Topology::two_socket(
                2,
            )))),
            Box::new(ThreadedExecutor::new(ExecutionConfig::new(
                Topology::two_socket(2),
            ))),
        ];
        let names: Vec<&str> = backends.iter().map(|b| b.backend_name()).collect();
        assert_eq!(names, vec!["simulator", "threaded"]);
        for backend in &backends {
            assert_eq!(backend.config().topology.num_sockets(), 2);
            let mut policy = LasPolicy::new(1);
            let report = backend.execute(&spec, &mut policy);
            assert_eq!(report.tasks, 2);
            assert!(report.makespan_ns > 0.0);
        }
    }

    #[test]
    fn execute_cell_defaults_to_execute_for_in_process_backends() {
        let spec = toy_spec();
        let sim = Simulator::new(ExecutionConfig::new(Topology::two_socket(2)));
        let ctx = CellContext {
            policy_label: "las",
            seed: 7,
        };
        let mut p1 = LasPolicy::new(1);
        let mut p2 = LasPolicy::new(1);
        let with_ctx = sim.execute_cell(&spec, &mut p1, Some(&ctx));
        let without = sim.execute_cell(&spec, &mut p2, None);
        assert_eq!(with_ctx.makespan_ns, without.makespan_ns);
        assert_eq!(with_ctx.tasks_per_socket, without.tasks_per_socket);
    }
}
