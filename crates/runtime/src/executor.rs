//! The [`Executor`] trait: one execution interface for every backend.
//!
//! The paper's claim is validated by running the same (application × scale ×
//! policy) matrix through two backends — the deterministic discrete-event
//! [`crate::Simulator`] and the real [`crate::ThreadedExecutor`]. Both
//! implement this trait, so harnesses, examples and tests are written once
//! against `dyn Executor` (usually via [`crate::Experiment`]) and choose the
//! backend at runtime.

use numadag_core::SchedulingPolicy;
use numadag_tdg::TaskGraphSpec;

use crate::config::ExecutionConfig;
use crate::report::ExecutionReport;

/// A backend that can execute a task-graph workload under a scheduling
/// policy and measure the result.
///
/// Implementations must consult the policy exactly as the paper's runtime
/// does: [`SchedulingPolicy::prepare`] once before execution with the full
/// graph, then [`SchedulingPolicy::assign`] each time a task becomes ready.
///
/// `Send + Sync` are supertraits so executors can be constructed and owned
/// per worker thread by the sharded [`crate::SweepDriver`].
pub trait Executor: Send + Sync {
    /// Short stable backend name (`"simulator"`, `"threaded"`), used in
    /// sweep reports and CLI arguments.
    fn backend_name(&self) -> &'static str;

    /// The machine configuration this executor runs.
    fn config(&self) -> &ExecutionConfig;

    /// Runs `spec` under `policy` and returns the execution report.
    ///
    /// # Panics
    /// Panics if the workload is invalid (see [`TaskGraphSpec::validate`]).
    fn execute(&self, spec: &TaskGraphSpec, policy: &mut dyn SchedulingPolicy) -> ExecutionReport;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Simulator, ThreadedExecutor};
    use numadag_core::LasPolicy;
    use numadag_numa::Topology;
    use numadag_tdg::{TaskSpec, TdgBuilder};

    fn toy_spec() -> TaskGraphSpec {
        let mut b = TdgBuilder::new();
        let r = b.region(4096);
        b.submit(TaskSpec::new("w").work(10.0).writes(r, 4096));
        b.submit(TaskSpec::new("r").work(10.0).reads(r, 4096));
        let (g, sizes) = b.finish();
        TaskGraphSpec::new("toy", g, sizes)
    }

    #[test]
    fn both_backends_execute_through_the_trait_object() {
        let spec = toy_spec();
        let backends: Vec<Box<dyn Executor>> = vec![
            Box::new(Simulator::new(ExecutionConfig::new(Topology::two_socket(
                2,
            )))),
            Box::new(ThreadedExecutor::new(ExecutionConfig::new(
                Topology::two_socket(2),
            ))),
        ];
        let names: Vec<&str> = backends.iter().map(|b| b.backend_name()).collect();
        assert_eq!(names, vec!["simulator", "threaded"]);
        for backend in &backends {
            assert_eq!(backend.config().topology.num_sockets(), 2);
            let mut policy = LasPolicy::new(1);
            let report = backend.execute(&spec, &mut policy);
            assert_eq!(report.tasks, 2);
            assert!(report.makespan_ns > 0.0);
        }
    }
}
