//! Deferred allocation: regions written by a task that have no home NUMA
//! node yet are first-touched on the socket the task executes on.
//!
//! This is one half of the LAS mechanism (Drebes et al.) and the vehicle by
//! which the RGP window partition propagates to the rest of the execution:
//! once window tasks have written "their" blocks on "their" sockets, LAS will
//! keep sending consumers of those blocks to the same sockets.

use numadag_numa::{MemoryMap, NodeId, TrafficStats};
use numadag_tdg::TaskDescriptor;

/// Applies deferred allocation for `task` executing on `node`: every region
/// the task writes (or reads) that is still unallocated is placed on `node`.
/// Returns the number of bytes placed and records them in `stats`.
pub fn apply_deferred_allocation(
    memory: &mut MemoryMap,
    stats: &mut TrafficStats,
    task: &TaskDescriptor,
    node: NodeId,
) -> u64 {
    let mut placed = 0u64;
    for access in &task.accesses {
        if !memory.is_allocated(access.region) {
            memory.place(access.region, node);
            let bytes = memory.size_of(access.region);
            stats.record_deferred_allocation(bytes);
            placed += bytes;
        }
    }
    placed
}

#[cfg(test)]
mod tests {
    use super::*;
    use numadag_tdg::{DataAccess, TaskDescriptor, TaskId};

    fn task(accesses: Vec<DataAccess>) -> TaskDescriptor {
        TaskDescriptor {
            id: TaskId(0),
            kind: "t".into(),
            work_units: 1.0,
            accesses,
        }
    }

    #[test]
    fn unallocated_written_regions_are_placed_locally() {
        let mut mem = MemoryMap::new();
        let out = mem.register(4096);
        let mut stats = TrafficStats::new();
        let t = task(vec![DataAccess::write(out, 4096)]);
        let placed = apply_deferred_allocation(&mut mem, &mut stats, &t, NodeId(3));
        assert_eq!(placed, 4096);
        assert_eq!(mem.placement(out).single_node(), Some(NodeId(3)));
        assert_eq!(stats.deferred_allocated_bytes, 4096);
    }

    #[test]
    fn already_allocated_regions_are_untouched() {
        let mut mem = MemoryMap::new();
        let r = mem.register(100);
        mem.place(r, NodeId(1));
        let mut stats = TrafficStats::new();
        let t = task(vec![DataAccess::read_write(r, 100)]);
        let placed = apply_deferred_allocation(&mut mem, &mut stats, &t, NodeId(5));
        assert_eq!(placed, 0);
        assert_eq!(mem.placement(r).single_node(), Some(NodeId(1)));
        assert_eq!(stats.deferred_allocated_bytes, 0);
    }

    #[test]
    fn unallocated_inputs_are_also_first_touched() {
        // Reading a region nobody wrote yet (cold data) faults it in locally,
        // exactly like the OS first-touch policy would.
        let mut mem = MemoryMap::new();
        let r = mem.register(64);
        let mut stats = TrafficStats::new();
        let t = task(vec![DataAccess::read(r, 64)]);
        let placed = apply_deferred_allocation(&mut mem, &mut stats, &t, NodeId(2));
        assert_eq!(placed, 64);
        assert_eq!(mem.placement(r).single_node(), Some(NodeId(2)));
    }

    #[test]
    fn multiple_regions_accumulate() {
        let mut mem = MemoryMap::new();
        let a = mem.register(10);
        let b = mem.register(20);
        let c = mem.register(40);
        mem.place(b, NodeId(0));
        let mut stats = TrafficStats::new();
        let t = task(vec![
            DataAccess::write(a, 10),
            DataAccess::read(b, 20),
            DataAccess::write(c, 40),
        ]);
        let placed = apply_deferred_allocation(&mut mem, &mut stats, &t, NodeId(1));
        assert_eq!(placed, 50);
    }
}
