//! Discrete-event simulator of a task-based runtime on a NUMA machine.
//!
//! The simulator plays the role of the Atos bullion S16 testbed of the paper:
//! it executes the task dependency graph respecting dependences, queues,
//! work pushing and stealing, and charges every task the time to compute and
//! the time to move its bytes between the socket it runs on and the NUMA
//! nodes holding them. The output is a makespan and a traffic ledger, from
//! which the benchmark harness derives the speedups of Figure 1.
//!
//! The simulation is fully deterministic: the only randomness lives inside
//! the policies (and is seeded).

use std::collections::VecDeque;
use std::sync::Mutex;

use numadag_core::{DataLocator, MemoryLocator, SchedulingPolicy};
use numadag_numa::memory::NodeBytes;
use numadag_numa::{CoreId, CostTransferTable, MemoryMap, SocketId, TrafficStats};
use numadag_tdg::{TaskGraphSpec, TaskId};
use numadag_trace::{TraceEvent, TraceSink};

use crate::config::{ExecutionConfig, StealMode};
use crate::deferred::apply_deferred_allocation;
use crate::event_queue::{Event, EventQueue};
use crate::executor::Executor;
use crate::report::{ExecutionReport, TaskPlacement};

/// Per-run working state, reused across cells of a sweep.
///
/// A Full sweep runs hundreds of simulations on the same executor; rebuilding
/// these vectors per cell dominated the event loop's allocation profile. All
/// fields are reset (lengths and contents), never freed, so steady-state runs
/// allocate nothing here.
#[derive(Debug, Default)]
struct SimScratch {
    /// Remaining unfinished predecessors per task.
    indegree: Vec<usize>,
    /// Socket each task was pushed to by the policy.
    assigned_socket: Vec<Option<SocketId>>,
    /// Per-socket FIFO of assigned-but-not-started tasks.
    queues: Vec<VecDeque<TaskId>>,
    /// Per-socket stack of idle cores (lowest core id on top).
    idle: Vec<Vec<CoreId>>,
    /// Number of running tasks per socket (bandwidth contention input).
    busy_count: Vec<usize>,
    /// Tasks whose last dependence was just released.
    ready: Vec<TaskId>,
    /// In-flight completion events.
    events: EventQueue,
    /// Scratch for region residency lookups in the memory-time loop.
    location: NodeBytes,
    /// Dense per-(home node, executing node) byte matrix, folded into the
    /// report's `TrafficStats` once at the end of the run (the per-access
    /// `BTreeMap` probe it replaces dominated the memory loop).
    link: Vec<u64>,
}

impl SimScratch {
    fn reset(
        &mut self,
        spec: &TaskGraphSpec,
        num_sockets: usize,
        num_cores: usize,
        idle_template: &[Vec<CoreId>],
    ) {
        let n = spec.num_tasks();
        self.indegree.clear();
        self.indegree
            .extend((0..n).map(|t| spec.graph.in_degree(TaskId(t))));
        self.assigned_socket.clear();
        self.assigned_socket.resize(n, None);
        self.queues.truncate(num_sockets);
        self.queues.resize_with(num_sockets, VecDeque::new);
        for q in &mut self.queues {
            q.clear();
        }
        self.idle.truncate(num_sockets);
        self.idle.resize_with(num_sockets, Vec::new);
        for (stack, template) in self.idle.iter_mut().zip(idle_template) {
            stack.clear();
            stack.extend_from_slice(template);
        }
        self.busy_count.clear();
        self.busy_count.resize(num_sockets, 0);
        self.ready.clear();
        self.events.reset(num_cores);
        self.link.clear();
        self.link.resize(num_sockets * num_sockets, 0);
    }
}

/// The discrete-event simulator.
pub struct Simulator {
    config: ExecutionConfig,
    /// Per-socket steal order: the other sockets' indices sorted by NUMA
    /// distance from the stealing socket (ties by node id). Static per
    /// topology — the previous implementation re-derived (and re-allocated)
    /// this inside the dispatch loop via `Topology::nodes_by_distance`.
    steal_order: Vec<Vec<u32>>,
    /// Initial idle-core stack per socket (reversed so `pop()` hands out the
    /// lowest core id first).
    idle_template: Vec<Vec<CoreId>>,
    /// Per-distance latency/bandwidth cache (bit-identical to the cost
    /// model's `transfer_time`, minus its two `powf` calls per access).
    transfer: CostTransferTable,
    /// Reusable run state. A `Mutex` only to satisfy `Executor: Sync`; each
    /// sweep worker owns its executor, so the lock is uncontended and taken
    /// once per cell.
    scratch: Mutex<SimScratch>,
}

impl Simulator {
    /// Creates a simulator for the given machine configuration.
    pub fn new(config: ExecutionConfig) -> Self {
        let topo = &config.topology;
        let steal_order = (0..topo.num_sockets())
            .map(|s| {
                topo.nodes_by_distance(SocketId(s).node())
                    .into_iter()
                    .map(|nd| nd.socket().index() as u32)
                    .filter(|&v| v as usize != s)
                    .collect()
            })
            .collect();
        let idle_template = topo
            .sockets()
            .map(|s| {
                let mut cores: Vec<CoreId> = topo.cores_of(s).collect();
                cores.reverse(); // pop() hands out the lowest core id first
                cores
            })
            .collect();
        let transfer = config
            .cost_model
            .transfer_table(config.topology.distances());
        Simulator {
            config,
            steal_order,
            idle_template,
            transfer,
            scratch: Mutex::new(SimScratch::default()),
        }
    }

    /// The configuration the simulator was built with.
    pub fn config(&self) -> &ExecutionConfig {
        &self.config
    }

    /// Runs `spec` under `policy` and returns the execution report.
    ///
    /// # Panics
    /// Panics if the workload is invalid (see [`TaskGraphSpec::validate`]) or
    /// if the dependence graph deadlocks (which cannot happen for graphs
    /// produced by [`numadag_tdg::TdgBuilder`]).
    pub fn run(&self, spec: &TaskGraphSpec, policy: &mut dyn SchedulingPolicy) -> ExecutionReport {
        spec.validate().expect("invalid workload spec");
        let topo = &self.config.topology;
        let num_sockets = topo.num_sockets();
        let n = spec.num_tasks();

        // Memory state: all regions start unallocated (deferred allocation).
        let mut memory = MemoryMap::new();
        for &size in &spec.region_sizes {
            memory.register(size);
        }
        let mut stats = TrafficStats::new();

        let run_started = std::time::Instant::now();
        let mut policy_wall_ns = 0.0f64;

        // Let the policy look at the graph (RGP partitions its window here).
        {
            let locator = MemoryLocator::new(topo, &memory);
            let t = std::time::Instant::now();
            policy.prepare(&spec.graph, &locator);
            policy_wall_ns += t.elapsed().as_nanos() as f64;
        }

        // Reusable run state (queues, indegrees, idle stacks, event slab):
        // reset, not reallocated, between cells of a sweep.
        let mut scratch_guard = self
            .scratch
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let scratch = &mut *scratch_guard;
        scratch.reset(spec, num_sockets, topo.num_cores(), &self.idle_template);
        let SimScratch {
            indegree,
            assigned_socket,
            queues,
            idle,
            busy_count,
            ready,
            events,
            location,
            link,
        } = scratch;

        // Report accumulators.
        let mut report = ExecutionReport {
            workload: spec.name.clone(),
            policy: policy.name(),
            tasks: n,
            tasks_per_socket: vec![0; num_sockets],
            busy_per_socket: vec![0.0; num_sockets],
            ..Default::default()
        };

        // Event machinery.
        let mut seq = 0u64;
        let mut completed = 0usize;
        let mut makespan = 0.0f64;

        // Per-stage accounting (policy vs event loop) costs two clock reads
        // per assignment batch — only paid when a timing report was asked
        // for.
        let stage_timing = self.config.stage_timing;

        // Assign the initial ready tasks (the graph's sources, in ascending
        // task order — exactly `TaskGraph::sources`, without the Vec).
        // Tasks currently sitting in socket queues; lets the dispatcher skip
        // its socket/steal scans entirely on the (common) events where every
        // queue is empty.
        let mut queued = 0usize;
        ready.extend((0..n).filter(|&t| indegree[t] == 0).map(TaskId));
        {
            queued += ready.len();
            let t = stage_timing.then(std::time::Instant::now);
            Self::assign_tasks(
                ready,
                spec,
                policy,
                topo,
                &memory,
                assigned_socket,
                queues,
                self.config.trace_sink.as_ref(),
                0.0,
            );
            if let Some(t) = t {
                policy_wall_ns += t.elapsed().as_nanos() as f64;
            }
        }

        // Helper closure replaced by a local fn to keep borrows simple.
        #[allow(clippy::too_many_arguments)]
        fn start_task(
            sim: &Simulator,
            spec: &TaskGraphSpec,
            task: TaskId,
            core: CoreId,
            now: f64,
            stolen: bool,
            memory: &mut MemoryMap,
            stats: &mut TrafficStats,
            busy_count: &mut [usize],
            report: &mut ExecutionReport,
            events: &mut EventQueue,
            location: &mut NodeBytes,
            link: &mut [u64],
            seq: &mut u64,
        ) {
            let topo = &sim.config.topology;
            let cost = &sim.config.cost_model;
            let sink = sim.config.trace_sink.as_ref();
            let tracing = sink.is_enabled();
            let socket = topo.socket_of(core);
            let node = socket.node();
            let descriptor = spec.graph.task(task);

            if tracing {
                sink.record(TraceEvent::Start {
                    task,
                    socket,
                    core,
                    time: now,
                    stolen,
                });
            }

            // Deferred allocation / first touch on the executing node.
            let placed = apply_deferred_allocation(memory, stats, descriptor, node);
            report.deferred_bytes += placed;
            if tracing && placed > 0 {
                sink.record(TraceEvent::DeferredAlloc {
                    task,
                    node,
                    bytes: placed,
                    time: now,
                });
            }

            // Memory time: move every accessed byte between its home node and
            // the executing socket.
            let mut memory_time = 0.0f64;
            let num_nodes = topo.num_sockets();
            for access in &descriptor.accesses {
                let region_size = memory.size_of(access.region).max(1);
                memory.bytes_per_node_into(access.region, location);
                for (home, resident) in &location.per_node {
                    let scaled = ((*resident as f64) * (access.bytes as f64) / (region_size as f64))
                        .round() as u64;
                    if scaled == 0 {
                        continue;
                    }
                    let dist = topo.distance(node, *home);
                    memory_time += sim.transfer.transfer_time(scaled, dist);
                    stats.record_access_unlinked(node, *home, dist, scaled);
                    link[home.index() * num_nodes + node.index()] += scaled;
                    if tracing {
                        sink.record(TraceEvent::Traffic {
                            task,
                            region: access.region.index(),
                            from: *home,
                            to: node,
                            distance: dist,
                            bytes: scaled,
                            time: now,
                        });
                    }
                }
            }
            // Bandwidth contention between the cores of this socket.
            let concurrent = busy_count[socket.index()] + 1;
            let duration = cost.compute_time(descriptor.work_units)
                + memory_time * cost.contention_multiplier(concurrent);

            busy_count[socket.index()] += 1;
            report.tasks_per_socket[socket.index()] += 1;
            report.busy_per_socket[socket.index()] += duration;
            if stolen {
                report.stolen_tasks += 1;
            }
            if sim.config.collect_trace {
                report.trace.push(TaskPlacement {
                    task,
                    socket,
                    start: now,
                    end: now + duration,
                    stolen,
                });
            }
            *seq += 1;
            events.push(Event {
                time: now + duration,
                seq: *seq,
                task,
                core,
            });
        }

        // Dispatch: match idle cores with queued tasks (local first, then
        // steal from the nearest socket).
        macro_rules! dispatch {
            ($now:expr) => {{
                for s in 0..num_sockets {
                    if queued == 0 {
                        break;
                    }
                    while !queues[s].is_empty() && !idle[s].is_empty() {
                        let task = queues[s].pop_front().unwrap();
                        let core = idle[s].pop().unwrap();
                        queued -= 1;
                        start_task(
                            self,
                            spec,
                            task,
                            core,
                            $now,
                            false,
                            &mut memory,
                            &mut stats,
                            busy_count,
                            &mut report,
                            events,
                            location,
                            link,
                            &mut seq,
                        );
                    }
                }
                if self.config.steal == StealMode::NearestSocket && queued > 0 {
                    for s in 0..num_sockets {
                        if queued == 0 {
                            break;
                        }
                        while !idle[s].is_empty() {
                            let victim = self.steal_order[s]
                                .iter()
                                .map(|&v| v as usize)
                                .find(|&v| !queues[v].is_empty());
                            let Some(victim) = victim else { break };
                            let task = queues[victim].pop_back().unwrap();
                            let core = idle[s].pop().unwrap();
                            queued -= 1;
                            start_task(
                                self,
                                spec,
                                task,
                                core,
                                $now,
                                true,
                                &mut memory,
                                &mut stats,
                                busy_count,
                                &mut report,
                                events,
                                location,
                                link,
                                &mut seq,
                            );
                        }
                    }
                }
            }};
        }

        dispatch!(0.0);

        while completed < n {
            let Some(event) = events.pop() else {
                panic!(
                    "simulation deadlock: {} of {} tasks completed but no task is running",
                    completed, n
                );
            };
            let now = event.time;
            makespan = makespan.max(now);
            completed += 1;

            // Free the core.
            let socket = topo.socket_of(event.core);
            busy_count[socket.index()] -= 1;
            idle[socket.index()].push(event.core);
            if self.config.trace_sink.is_enabled() {
                self.config.trace_sink.record(TraceEvent::Finish {
                    task: event.task,
                    socket,
                    core: event.core,
                    time: now,
                });
            }

            // Release successors.
            ready.clear();
            for &(succ, _) in spec.graph.successors(event.task) {
                indegree[succ.index()] -= 1;
                if indegree[succ.index()] == 0 {
                    ready.push(succ);
                }
            }
            if ready.is_empty() {
                // Nothing to hand to the policy; skip the batch (and its
                // clock reads under stage timing).
            } else {
                queued += ready.len();
                let t = stage_timing.then(std::time::Instant::now);
                Self::assign_tasks(
                    ready,
                    spec,
                    policy,
                    topo,
                    &memory,
                    assigned_socket,
                    queues,
                    self.config.trace_sink.as_ref(),
                    now,
                );
                if let Some(t) = t {
                    policy_wall_ns += t.elapsed().as_nanos() as f64;
                }
            }

            dispatch!(now);
        }

        report.makespan_ns = makespan;
        stats.add_link_matrix(link, num_sockets);
        report.traffic = stats;
        report.policy_wall_ns = policy_wall_ns;
        report.event_loop_wall_ns = run_started.elapsed().as_nanos() as f64 - policy_wall_ns;
        report
    }

    /// Runs the workload under every policy in `policies` and returns the
    /// reports in the same order. Convenience for harnesses and examples.
    pub fn run_all(
        &self,
        spec: &TaskGraphSpec,
        policies: &mut [Box<dyn SchedulingPolicy>],
    ) -> Vec<ExecutionReport> {
        policies
            .iter_mut()
            .map(|p| self.run(spec, p.as_mut()))
            .collect()
    }

    #[allow(clippy::too_many_arguments)]
    fn assign_tasks(
        tasks: &[TaskId],
        spec: &TaskGraphSpec,
        policy: &mut dyn SchedulingPolicy,
        topo: &numadag_numa::Topology,
        memory: &MemoryMap,
        assigned_socket: &mut [Option<SocketId>],
        queues: &mut [VecDeque<TaskId>],
        sink: &dyn TraceSink,
        now: f64,
    ) {
        let locator = MemoryLocator::new(topo, memory);
        for &task in tasks {
            let socket = {
                let s = policy.assign(spec.graph.task(task), &locator);
                debug_assert!(s.index() < locator.topology().num_sockets());
                s
            };
            assigned_socket[task.index()] = Some(socket);
            queues[socket.index()].push_back(task);
            if sink.is_enabled() {
                sink.record(TraceEvent::Assign {
                    task,
                    socket,
                    time: now,
                });
            }
        }
    }
}

impl Executor for Simulator {
    fn backend_name(&self) -> &'static str {
        "simulator"
    }

    fn config(&self) -> &ExecutionConfig {
        &self.config
    }

    fn execute(&self, spec: &TaskGraphSpec, policy: &mut dyn SchedulingPolicy) -> ExecutionReport {
        self.run(spec, policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numadag_core::{DfifoPolicy, LasPolicy, RgpPolicy};
    use numadag_numa::CostModel;
    use numadag_tdg::{TaskGraphSpec, TaskSpec, TdgBuilder};

    /// `blocks` independent chains of `iters` tasks, each chain repeatedly
    /// rewriting its own 1 MiB block. The archetype of an iterative blocked
    /// kernel.
    fn chains(blocks: usize, iters: usize) -> TaskGraphSpec {
        let mut b = TdgBuilder::new();
        let block_bytes = 1 << 20;
        let regions: Vec<_> = (0..blocks).map(|_| b.region(block_bytes)).collect();
        for _ in 0..iters {
            for &r in &regions {
                b.submit(
                    TaskSpec::new("update")
                        .work(1000.0)
                        .reads_writes(r, block_bytes),
                );
            }
        }
        let (g, sizes) = b.finish();
        TaskGraphSpec::new("chains", g, sizes)
    }

    fn sim() -> Simulator {
        Simulator::new(ExecutionConfig::bullion_s16())
    }

    #[test]
    fn all_tasks_complete_and_accounting_is_consistent() {
        let spec = chains(16, 4);
        let mut policy = LasPolicy::new(3);
        let report = sim().run(&spec, &mut policy);
        assert_eq!(report.tasks, 64);
        assert_eq!(report.tasks_per_socket.iter().sum::<usize>(), 64);
        assert!(report.makespan_ns > 0.0);
        // Conservation: every byte accessed is either local or remote.
        assert_eq!(
            report.traffic.total_bytes(),
            report.traffic.local_bytes + report.traffic.remote_bytes
        );
        // Each task touches one 1 MiB block.
        assert_eq!(report.traffic.total_bytes(), 64 * (1 << 20));
        // Deferred allocation placed every block exactly once.
        assert_eq!(report.deferred_bytes, 16 * (1 << 20));
    }

    #[test]
    fn makespan_at_least_critical_path() {
        let spec = chains(4, 8);
        let cfg = ExecutionConfig::bullion_s16().with_cost_model(CostModel::flat());
        let simulator = Simulator::new(cfg);
        let mut policy = DfifoPolicy::new();
        let report = simulator.run(&spec, &mut policy);
        let cp = spec.graph.critical_path_work(); // work units == ns here
        assert!(
            report.makespan_ns >= cp - 1e-6,
            "makespan {} below critical path {}",
            report.makespan_ns,
            cp
        );
    }

    #[test]
    fn locality_policy_beats_round_robin_on_numa() {
        let spec = chains(25, 8);
        let simulator = sim();
        let mut las = LasPolicy::new(7);
        let mut dfifo = DfifoPolicy::new();
        let las_report = simulator.run(&spec, &mut las);
        let dfifo_report = simulator.run(&spec, &mut dfifo);
        // LAS keeps each chain on the socket that first touched its block;
        // DFIFO moves it around every iteration.
        assert!(
            las_report.local_fraction() > dfifo_report.local_fraction(),
            "LAS local {} <= DFIFO local {}",
            las_report.local_fraction(),
            dfifo_report.local_fraction()
        );
        assert!(
            las_report.makespan_ns < dfifo_report.makespan_ns,
            "LAS {} not faster than DFIFO {}",
            las_report.makespan_ns,
            dfifo_report.makespan_ns
        );
    }

    #[test]
    fn flat_cost_model_equalises_policies() {
        // Without NUMA penalties and with plenty of parallel slack the
        // policies should produce very similar makespans.
        let spec = chains(32, 4);
        let cfg = ExecutionConfig::bullion_s16().with_cost_model(CostModel::flat());
        let simulator = Simulator::new(cfg);
        let mut las = LasPolicy::new(1);
        let mut dfifo = DfifoPolicy::new();
        let a = simulator.run(&spec, &mut las).makespan_ns;
        let b = simulator.run(&spec, &mut dfifo).makespan_ns;
        let ratio = a.max(b) / a.min(b);
        assert!(
            ratio < 1.10,
            "flat model should equalise policies, ratio {ratio}"
        );
    }

    #[test]
    fn simulation_is_deterministic() {
        let spec = chains(8, 4);
        let simulator = sim();
        let r1 = simulator.run(&spec, &mut LasPolicy::new(5));
        let r2 = simulator.run(&spec, &mut LasPolicy::new(5));
        assert_eq!(r1.makespan_ns, r2.makespan_ns);
        assert_eq!(r1.traffic, r2.traffic);
        assert_eq!(r1.tasks_per_socket, r2.tasks_per_socket);
    }

    #[test]
    fn trace_collects_every_task() {
        let spec = chains(4, 2);
        let cfg = ExecutionConfig::bullion_s16().with_trace();
        let simulator = Simulator::new(cfg);
        let report = simulator.run(&spec, &mut DfifoPolicy::new());
        assert_eq!(report.trace.len(), 8);
        for placement in &report.trace {
            assert!(placement.end >= placement.start);
            assert!(placement.socket.index() < 8);
        }
    }

    #[test]
    fn trace_sink_sees_one_assign_start_finish_per_task() {
        use numadag_trace::{MemorySink, Trace};
        use std::sync::Arc;
        let spec = chains(4, 2);
        let sink = Arc::new(MemorySink::new());
        let cfg = ExecutionConfig::bullion_s16().with_trace_sink(sink.clone());
        let report = Simulator::new(cfg).run(&spec, &mut LasPolicy::new(3));
        let trace = Trace {
            workload: spec.name.to_string(),
            policy: report.policy.to_string(),
            backend: "simulator".to_string(),
            scale: "custom".to_string(),
            repetition: 0,
            tasks: spec.num_tasks(),
            num_sockets: 8,
            makespan_ns: report.makespan_ns,
            events: sink.take(),
        };
        trace.validate().expect("simulator trace must be complete");
        // The traffic ledger and the trace agree byte for byte.
        let matrix = trace.traffic_matrix();
        assert_eq!(matrix.total_bytes(), report.traffic.total_bytes());
        assert_eq!(matrix.local_bytes(), report.traffic.local_bytes);
        // Deferred placements in the trace match the report.
        let deferred: u64 = trace
            .events_tagged("deferred_alloc")
            .map(|e| match e {
                numadag_trace::TraceEvent::DeferredAlloc { bytes, .. } => *bytes,
                _ => unreachable!(),
            })
            .sum();
        assert_eq!(deferred, report.deferred_bytes);
    }

    #[test]
    fn tracing_does_not_change_the_simulation() {
        use numadag_trace::MemorySink;
        use std::sync::Arc;
        let spec = chains(8, 4);
        let plain = sim().run(&spec, &mut LasPolicy::new(5));
        let traced_cfg =
            ExecutionConfig::bullion_s16().with_trace_sink(Arc::new(MemorySink::new()));
        let traced = Simulator::new(traced_cfg).run(&spec, &mut LasPolicy::new(5));
        assert_eq!(plain.makespan_ns, traced.makespan_ns);
        assert_eq!(plain.traffic, traced.traffic);
        assert_eq!(plain.tasks_per_socket, traced.tasks_per_socket);
    }

    #[test]
    fn no_stealing_mode_keeps_tasks_on_assigned_socket() {
        let spec = chains(4, 4);
        let cfg = ExecutionConfig::bullion_s16().with_steal(StealMode::NoStealing);
        let simulator = Simulator::new(cfg);
        let report = simulator.run(&spec, &mut LasPolicy::new(2));
        assert_eq!(report.stolen_tasks, 0);
    }

    #[test]
    fn rgp_prepare_is_invoked_by_run() {
        let spec = chains(16, 4);
        let mut rgp = RgpPolicy::rgp_las();
        let report = sim().run(&spec, &mut rgp);
        assert_eq!(report.policy, "RGP+LAS");
        assert!(rgp.window_size_used() > 0);
        // Independent chains: the partitioner should achieve a zero-byte cut.
        assert_eq!(rgp.window_edge_cut(), 0);
        // And an all-local execution (beyond unavoidable steals).
        assert!(report.local_fraction() > 0.9);
    }

    #[test]
    fn single_task_workload() {
        let mut b = TdgBuilder::new();
        let r = b.region(4096);
        b.submit(TaskSpec::new("only").work(10.0).writes(r, 4096));
        let (g, sizes) = b.finish();
        let spec = TaskGraphSpec::new("single", g, sizes);
        let report = sim().run(&spec, &mut LasPolicy::new(0));
        assert_eq!(report.tasks, 1);
        assert!(report.makespan_ns > 0.0);
        assert_eq!(report.traffic.remote_bytes, 0);
    }

    #[test]
    fn run_all_produces_one_report_per_policy() {
        let spec = chains(8, 2);
        let mut policies: Vec<Box<dyn SchedulingPolicy>> = vec![
            Box::new(DfifoPolicy::new()),
            Box::new(LasPolicy::new(1)),
            Box::new(RgpPolicy::rgp_las()),
        ];
        let reports = sim().run_all(&spec, &mut policies);
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[0].policy, "DFIFO");
        assert_eq!(reports[2].policy, "RGP+LAS");
    }
}
