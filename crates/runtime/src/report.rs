//! Execution reports: the measurements both executors produce.

use std::sync::Arc;

use numadag_numa::{SocketId, TrafficStats};
use numadag_tdg::TaskId;

/// Where and when one task ran (collected when tracing is enabled).
#[derive(Clone, Debug, PartialEq)]
pub struct TaskPlacement {
    /// The task.
    pub task: TaskId,
    /// Socket it executed on.
    pub socket: SocketId,
    /// Simulated start time (ns). Zero for the threaded executor.
    pub start: f64,
    /// Simulated end time (ns). Zero for the threaded executor.
    pub end: f64,
    /// True if the task was stolen (executed on a different socket than the
    /// one the policy pushed it to).
    pub stolen: bool,
}

/// The result of executing a workload under one policy.
///
/// The labels are deliberately cheap: the workload name is shared with the
/// spec (`Arc`) and the policy name is the policy's `'static` literal, so
/// building a report allocates nothing for either — sweeps build thousands.
#[derive(Clone, Debug, Default)]
pub struct ExecutionReport {
    /// Name of the workload.
    pub workload: Arc<str>,
    /// Name of the scheduling policy.
    pub policy: &'static str,
    /// Simulated makespan in nanoseconds (wall-clock nanoseconds for the
    /// threaded executor).
    pub makespan_ns: f64,
    /// Number of tasks executed.
    pub tasks: usize,
    /// Memory traffic ledger.
    pub traffic: TrafficStats,
    /// Tasks executed per socket.
    pub tasks_per_socket: Vec<usize>,
    /// Busy time per socket (sum of task durations, ns).
    pub busy_per_socket: Vec<f64>,
    /// Number of tasks executed on a socket other than the one the policy
    /// chose (work stealing).
    pub stolen_tasks: usize,
    /// Bytes placed by deferred allocation.
    pub deferred_bytes: u64,
    /// Real wall time spent inside the scheduling policy (`prepare` plus all
    /// `assign` batches), ns. Filled by the simulator; the threaded executor
    /// leaves it 0. Varies run to run — never part of measurement baselines.
    pub policy_wall_ns: f64,
    /// Real wall time of the executor's run minus `policy_wall_ns` — the
    /// event loop plus the memory-cost model, ns. Filled by the simulator.
    pub event_loop_wall_ns: f64,
    /// Per-task placement trace (empty unless tracing was enabled).
    pub trace: Vec<TaskPlacement>,
}

impl ExecutionReport {
    /// Fraction of accessed bytes served from the local NUMA node.
    pub fn local_fraction(&self) -> f64 {
        self.traffic.local_fraction()
    }

    /// Load imbalance across sockets: max busy time / mean busy time.
    /// 1.0 means perfectly balanced; returns 1.0 for degenerate inputs.
    pub fn load_imbalance(&self) -> f64 {
        if self.busy_per_socket.is_empty() {
            return 1.0;
        }
        let total: f64 = self.busy_per_socket.iter().sum();
        let mean = total / self.busy_per_socket.len() as f64;
        if mean <= 0.0 {
            return 1.0;
        }
        let max = self.busy_per_socket.iter().cloned().fold(0.0, f64::max);
        max / mean
    }

    /// Fraction of tasks that were stolen.
    pub fn steal_fraction(&self) -> f64 {
        if self.tasks == 0 {
            0.0
        } else {
            self.stolen_tasks as f64 / self.tasks as f64
        }
    }

    /// Speedup of this report relative to a baseline (baseline makespan /
    /// this makespan), the metric of the paper's Figure 1.
    pub fn speedup_over(&self, baseline: &ExecutionReport) -> f64 {
        if self.makespan_ns <= 0.0 {
            return 1.0;
        }
        baseline.makespan_ns / self.makespan_ns
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{:<22} {:<8} makespan={:>12.0} ns  local={:>5.1}%  imbalance={:.2}  stolen={:.1}%",
            self.workload,
            self.policy,
            self.makespan_ns,
            100.0 * self.local_fraction(),
            self.load_imbalance(),
            100.0 * self.steal_fraction(),
        )
    }
}

/// Geometric mean of a slice of positive numbers (used for the "geometric
/// mean" bar of Figure 1). Returns 0.0 for an empty slice.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(f64::MIN_POSITIVE).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use numadag_numa::NodeId;

    fn report(makespan: f64, busy: Vec<f64>) -> ExecutionReport {
        ExecutionReport {
            workload: "toy".into(),
            policy: "LAS",
            makespan_ns: makespan,
            tasks: 10,
            busy_per_socket: busy,
            tasks_per_socket: vec![5, 5],
            ..Default::default()
        }
    }

    #[test]
    fn speedup_is_baseline_over_self() {
        let baseline = report(200.0, vec![100.0, 100.0]);
        let faster = report(100.0, vec![50.0, 50.0]);
        assert!((faster.speedup_over(&baseline) - 2.0).abs() < 1e-12);
        assert!((baseline.speedup_over(&baseline) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn load_imbalance_measures_skew() {
        let balanced = report(1.0, vec![10.0, 10.0, 10.0, 10.0]);
        assert!((balanced.load_imbalance() - 1.0).abs() < 1e-12);
        let skewed = report(1.0, vec![40.0, 0.0, 0.0, 0.0]);
        assert!((skewed.load_imbalance() - 4.0).abs() < 1e-12);
        let empty = report(1.0, vec![]);
        assert_eq!(empty.load_imbalance(), 1.0);
    }

    #[test]
    fn local_fraction_delegates_to_traffic() {
        let mut r = report(1.0, vec![1.0]);
        r.traffic.record_access(NodeId(0), NodeId(0), 10, 300);
        r.traffic.record_access(NodeId(0), NodeId(1), 21, 100);
        assert!((r.local_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn steal_fraction() {
        let mut r = report(1.0, vec![1.0]);
        r.stolen_tasks = 5;
        assert!((r.steal_fraction() - 0.5).abs() < 1e-12);
        r.tasks = 0;
        assert_eq!(r.steal_fraction(), 0.0);
    }

    #[test]
    fn geometric_mean_basics() {
        assert_eq!(geometric_mean(&[]), 0.0);
        assert!((geometric_mean(&[4.0]) - 4.0).abs() < 1e-12);
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn summary_contains_key_fields() {
        let r = report(1234.0, vec![1.0, 2.0]);
        let s = r.summary();
        assert!(s.contains("toy"));
        assert!(s.contains("LAS"));
    }
}
