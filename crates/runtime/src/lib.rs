//! # numadag-runtime — executors for NUMA-aware task scheduling
//!
//! The paper's techniques were implemented inside the Nanos++ runtime and
//! measured on an 8-socket machine. This crate provides the two executors the
//! reproduction uses instead:
//!
//! * [`simulator::Simulator`] — a deterministic discrete-event simulator of a
//!   NUMA machine. Every task is charged its compute time plus the time to
//!   move its input/output bytes between the socket it runs on and the NUMA
//!   nodes holding them (with bandwidth contention between cores of the same
//!   socket). This is what produces the makespans behind the figures in
//!   EXPERIMENTS.md.
//! * [`threaded::ThreadedExecutor`] — a real work-pushing/work-stealing
//!   thread pool that executes actual task bodies (closures) while following
//!   the same scheduling-policy decisions and deferred-allocation
//!   bookkeeping. It demonstrates the public API end to end and is used by
//!   the integration tests to check that every policy preserves the numerical
//!   results of the kernels.
//!
//! Both executors implement the paper's *deferred allocation*: regions
//! written by a task that have no home yet are first-touched on the socket
//! the task runs on ([`deferred`]).

#![warn(missing_docs)]

pub mod config;
pub mod deferred;
pub mod report;
pub mod simulator;
pub mod threaded;

pub use config::{ExecutionConfig, StealMode};
pub use report::{ExecutionReport, TaskPlacement};
pub use simulator::Simulator;
pub use threaded::ThreadedExecutor;
