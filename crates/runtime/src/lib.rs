//! # numadag-runtime — executors and the plan/execute sweep engine
//!
//! The paper's techniques were implemented inside the Nanos++ runtime and
//! measured on an 8-socket machine. This crate provides the two executors the
//! reproduction uses instead:
//!
//! * [`simulator::Simulator`] — a deterministic discrete-event simulator of a
//!   NUMA machine. Every task is charged its compute time plus the time to
//!   move its input/output bytes between the socket it runs on and the NUMA
//!   nodes holding them (with bandwidth contention between cores of the same
//!   socket). This is what produces the makespans behind the figures in
//!   EXPERIMENTS.md.
//! * [`threaded::ThreadedExecutor`] — a real work-pushing/work-stealing
//!   thread pool that executes actual task bodies (closures) while following
//!   the same scheduling-policy decisions and deferred-allocation
//!   bookkeeping. It demonstrates the public API end to end and is used by
//!   the integration tests to check that every policy preserves the numerical
//!   results of the kernels.
//!
//! Both backends implement the [`executor::Executor`] trait, so harnesses
//! and tests are written once against `dyn Executor` and pick the backend at
//! runtime.
//!
//! Sweeps run through a **plan/execute** split on top of that trait:
//!
//! 1. The fluent [`experiment::Experiment`] builder declares the
//!    (application × scale × policy × repetition) matrix;
//!    [`Experiment::plan`](experiment::Experiment::plan) materializes it as
//!    a [`driver::SweepPlan`] — a flat list of independent, keyed cell jobs
//!    over workload specs built exactly once (memoized through a
//!    [`numadag_kernels::SpecCache`] and shared as `Arc<TaskGraphSpec>`).
//! 2. A [`driver::SweepDriver`] executes the plan, serially or sharded
//!    across N worker threads (each owning its own `Box<dyn Executor>` and
//!    policy instances), reports per-cell progress, and assembles the
//!    structured, JSON-serializable [`experiment::SweepReport`] in a
//!    deterministic keyed post-pass — so the report is bit-identical for
//!    every worker count on the simulator backend.
//!
//! `Experiment::new()…​.parallelism(n).run()` is the one-call front door;
//! reports carry wall-time and spec-build accounting ([`driver::SweepTiming`])
//! and diff against each other ([`experiment::SweepReport::diff`]) for the
//! `BENCH_*.json` perf baselines.
//!
//! Both executors implement the paper's *deferred allocation*: regions
//! written by a task that have no home yet are first-touched on the socket
//! the task runs on ([`deferred`]).
//!
//! Executions are **observable** through the `numadag-trace` subsystem:
//! both executors emit [`numadag_trace::TraceEvent`]s (assign decisions,
//! task start/finish with socket and timestamp, steals, deferred
//! placements, per-access traffic with NUMA distance) into the sink carried
//! by [`config::ExecutionConfig::trace_sink`]. The default
//! [`numadag_trace::NullSink`] is disabled and the emission sites guard on
//! it, so tracing is zero-cost unless requested. Sweeps trace per cell via
//! [`experiment::Experiment::trace`], which records one labelled
//! [`numadag_trace::Trace`] per cell into a
//! [`numadag_trace::TraceCollector`] for the analytics layer (critical
//! paths, traffic matrices, two-policy divergence reports).

#![warn(missing_docs)]

pub mod config;
pub mod deferred;
pub mod diff;
pub mod driver;
pub mod event_queue;
pub mod executor;
pub mod experiment;
pub mod framing;
pub mod report;
pub mod simulator;
pub mod threaded;

pub use config::{ExecutionConfig, StealMode};
pub use diff::{CellDelta, FieldDelta, SweepDiff};
pub use driver::{
    CellMeasurement, CellOutcome, CellProgress, PlannedWorkload, ProgressCallback, SweepDriver,
    SweepJob, SweepPlan, SweepTiming,
};
pub use event_queue::{Event, EventQueue};
pub use executor::{register_proc_backend, CellContext, Executor, ProcFactory};
pub use experiment::{Backend, Experiment, SweepAggregate, SweepCell, SweepReport};
pub use framing::FrameError;
pub use report::{ExecutionReport, TaskPlacement};
pub use simulator::Simulator;
pub use threaded::ThreadedExecutor;
