//! # numadag-runtime — executors for NUMA-aware task scheduling
//!
//! The paper's techniques were implemented inside the Nanos++ runtime and
//! measured on an 8-socket machine. This crate provides the two executors the
//! reproduction uses instead:
//!
//! * [`simulator::Simulator`] — a deterministic discrete-event simulator of a
//!   NUMA machine. Every task is charged its compute time plus the time to
//!   move its input/output bytes between the socket it runs on and the NUMA
//!   nodes holding them (with bandwidth contention between cores of the same
//!   socket). This is what produces the makespans behind the figures in
//!   EXPERIMENTS.md.
//! * [`threaded::ThreadedExecutor`] — a real work-pushing/work-stealing
//!   thread pool that executes actual task bodies (closures) while following
//!   the same scheduling-policy decisions and deferred-allocation
//!   bookkeeping. It demonstrates the public API end to end and is used by
//!   the integration tests to check that every policy preserves the numerical
//!   results of the kernels.
//!
//! Both backends implement the [`executor::Executor`] trait, so harnesses
//! and tests are written once against `dyn Executor` and pick the backend at
//! runtime. The usual entry point is the fluent [`experiment::Experiment`]
//! builder, which sweeps an (application × scale × policy) matrix through
//! either backend and returns a structured, JSON-serializable
//! [`experiment::SweepReport`].
//!
//! Both executors implement the paper's *deferred allocation*: regions
//! written by a task that have no home yet are first-touched on the socket
//! the task runs on ([`deferred`]).

#![warn(missing_docs)]

pub mod config;
pub mod deferred;
pub mod executor;
pub mod experiment;
pub mod report;
pub mod simulator;
pub mod threaded;

pub use config::{ExecutionConfig, StealMode};
pub use executor::Executor;
pub use experiment::{Backend, Experiment, SweepAggregate, SweepCell, SweepReport};
pub use report::{ExecutionReport, TaskPlacement};
pub use simulator::Simulator;
pub use threaded::ThreadedExecutor;
