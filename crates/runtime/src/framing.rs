//! Newline-delimited JSON framing, shared by every socket protocol in the
//! workspace.
//!
//! The sweep service (`numadag-serve`) proved this framing: every message is
//! one compact JSON value on one line (compact serialization never emits raw
//! newlines — string contents are escaped), so reading frames is reading
//! lines. This module hoists that layer out of the service so the
//! multi-process executor (`numadag-proc`) speaks the same wire format, and
//! hardens it against hostile or truncated input:
//!
//! * lines longer than an explicit limit are rejected as
//!   [`FrameError::Oversized`] instead of buffering without bound,
//! * EOF in the middle of a line is [`FrameError::Truncated`], distinct from
//!   the clean EOF between frames (`Ok(None)`),
//! * invalid UTF-8 is [`FrameError::InvalidUtf8`] instead of a panic or a
//!   lossy re-decode.
//!
//! On top of the line layer it carries the envelope helpers both protocols
//! use to decode serde's externally-tagged enum encoding (`"Stats"`,
//! `{"Status": {"job": 1}}`): [`untag`] plus typed field accessors. Values
//! that must cross the wire bit-exactly but do not survive the `f64`-backed
//! JSON number representation (u64 fingerprints and seeds above 2^53, u128
//! counters) travel as lowercase hex strings via [`hex_u64`]/[`hex_u128`]
//! and their parsing counterparts.

use std::io::{BufRead, Read, Write};

use serde::{Serialize, Value};

/// Default per-frame size limit: generous enough for a full-scale report or
/// trace payload embedded in one line, small enough to bound a hostile
/// connection's memory.
pub const DEFAULT_FRAME_LIMIT: usize = 64 * 1024 * 1024;

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// Socket-level failure (including read timeouts, surfaced as
    /// `WouldBlock`/`TimedOut` io errors).
    Io(std::io::Error),
    /// The line exceeded the frame limit. The rest of the line is still in
    /// the stream, so the connection is unrecoverable — callers must close
    /// it after replying.
    Oversized {
        /// The limit that was exceeded, in bytes.
        limit: usize,
    },
    /// The stream ended in the middle of a line (no terminating newline):
    /// the peer died mid-message.
    Truncated {
        /// Bytes of the incomplete line that were received.
        bytes: usize,
    },
    /// The line is not valid UTF-8.
    InvalidUtf8,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "I/O error: {e}"),
            FrameError::Oversized { limit } => {
                write!(f, "frame exceeds the {limit}-byte limit")
            }
            FrameError::Truncated { bytes } => {
                write!(f, "stream ended mid-frame after {bytes} bytes")
            }
            FrameError::InvalidUtf8 => write!(f, "frame is not valid UTF-8"),
        }
    }
}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl FrameError {
    /// True when the error means the peer's connection is gone or poisoned
    /// (as opposed to a single malformed-but-framed message).
    pub fn is_fatal(&self) -> bool {
        // Every frame error poisons the stream: Io and Truncated mean the
        // connection died, Oversized leaves unread line bytes in the stream,
        // and InvalidUtf8 means the peer does not speak the protocol.
        true
    }
}

/// Serializes a message to its one-line wire form (no trailing newline).
pub fn to_line(value: &impl Serialize) -> String {
    serde_json::to_string(&value.to_value()).expect("message values are always encodable")
}

/// Writes one frame: the compact one-line serialization plus the newline.
pub fn write_frame(writer: &mut impl Write, value: &impl Serialize) -> std::io::Result<()> {
    let mut line = to_line(value);
    line.push('\n');
    writer.write_all(line.as_bytes())
}

/// Reads one frame with the [`DEFAULT_FRAME_LIMIT`]. `Ok(None)` is clean
/// EOF between frames; the returned line has its terminating newline (and
/// any `\r` before it) stripped.
pub fn read_frame(reader: &mut impl BufRead) -> Result<Option<String>, FrameError> {
    read_frame_with_limit(reader, DEFAULT_FRAME_LIMIT)
}

/// [`read_frame`] with an explicit per-line byte limit (newline excluded).
pub fn read_frame_with_limit(
    reader: &mut impl BufRead,
    limit: usize,
) -> Result<Option<String>, FrameError> {
    let mut buf = Vec::new();
    // Read at most limit+1 bytes: a line of exactly `limit` content bytes
    // plus its newline fits; anything longer trips the limit before the
    // buffer can grow unboundedly.
    let take_limit = (limit as u64).saturating_add(1);
    let n = reader
        .by_ref()
        .take(take_limit)
        .read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Ok(None);
    }
    if buf.last() == Some(&b'\n') {
        buf.pop();
        if buf.last() == Some(&b'\r') {
            buf.pop();
        }
    } else if buf.len() > limit {
        return Err(FrameError::Oversized { limit });
    } else {
        return Err(FrameError::Truncated { bytes: buf.len() });
    }
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| FrameError::InvalidUtf8)
}

/// Splits an externally-tagged envelope into `(variant, payload)`. Unit
/// variants arrive as bare strings and yield `Value::Null` payloads.
pub fn untag(value: &Value) -> Result<(String, &Value), String> {
    match value {
        Value::String(tag) => Ok((tag.clone(), &Value::Null)),
        Value::Object(entries) if entries.len() == 1 => Ok((entries[0].0.clone(), &entries[0].1)),
        _ => Err("expected a string tag or a single-key object envelope".to_string()),
    }
}

/// Looks up a required field of a payload object, naming the enclosing
/// variant in the error.
pub fn field<'v>(value: &'v Value, variant: &str, name: &str) -> Result<&'v Value, String> {
    value
        .get(name)
        .ok_or_else(|| format!("{variant} is missing field {name:?}"))
}

/// A required string field.
pub fn str_field(value: &Value, variant: &str, name: &str) -> Result<String, String> {
    field(value, variant, name)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("{variant}.{name} must be a string"))
}

/// A required unsigned-integer field. JSON numbers are `f64`-backed, so this
/// is only exact below 2^53 — use [`hex_u64_field`] for full-range values.
pub fn u64_field(value: &Value, variant: &str, name: &str) -> Result<u64, String> {
    field(value, variant, name)?
        .as_u64()
        .ok_or_else(|| format!("{variant}.{name} must be an unsigned integer"))
}

/// A required boolean field.
pub fn bool_field(value: &Value, variant: &str, name: &str) -> Result<bool, String> {
    field(value, variant, name)?
        .as_bool()
        .ok_or_else(|| format!("{variant}.{name} must be a boolean"))
}

/// A required floating-point field.
pub fn f64_field(value: &Value, variant: &str, name: &str) -> Result<f64, String> {
    field(value, variant, name)?
        .as_f64()
        .ok_or_else(|| format!("{variant}.{name} must be a number"))
}

/// Lowercase-hex wire form of a `u64`. JSON numbers are `f64`-backed in the
/// vendored `serde_json`, so integers above 2^53 (fingerprints, seeds) must
/// travel as strings to round-trip bit-exactly.
pub fn hex_u64(value: u64) -> String {
    format!("{value:x}")
}

/// Lowercase-hex wire form of a `u128` (see [`hex_u64`]).
pub fn hex_u128(value: u128) -> String {
    format!("{value:x}")
}

/// Parses a [`hex_u64`]-encoded value.
pub fn parse_hex_u64(text: &str) -> Result<u64, String> {
    u64::from_str_radix(text, 16).map_err(|_| format!("invalid hex u64 {text:?}"))
}

/// Parses a [`hex_u128`]-encoded value.
pub fn parse_hex_u128(text: &str) -> Result<u128, String> {
    u128::from_str_radix(text, 16).map_err(|_| format!("invalid hex u128 {text:?}"))
}

/// A required [`hex_u64`]-encoded field.
pub fn hex_u64_field(value: &Value, variant: &str, name: &str) -> Result<u64, String> {
    parse_hex_u64(&str_field(value, variant, name)?).map_err(|e| format!("{variant}.{name}: {e}"))
}

/// A required [`hex_u128`]-encoded field.
pub fn hex_u128_field(value: &Value, variant: &str, name: &str) -> Result<u128, String> {
    parse_hex_u128(&str_field(value, variant, name)?).map_err(|e| format!("{variant}.{name}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn read_all(input: &[u8], limit: usize) -> Vec<Result<Option<String>, FrameError>> {
        let mut reader = BufReader::new(input);
        let mut out = Vec::new();
        loop {
            let result = read_frame_with_limit(&mut reader, limit);
            let stop = !matches!(result, Ok(Some(_)));
            out.push(result);
            if stop {
                break;
            }
        }
        out
    }

    #[test]
    fn frames_round_trip_through_a_buffer() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &"Stats".to_string()).unwrap();
        write_frame(&mut wire, &42u64).unwrap();
        let mut reader = BufReader::new(wire.as_slice());
        assert_eq!(
            read_frame(&mut reader).unwrap(),
            Some("\"Stats\"".to_string())
        );
        assert_eq!(read_frame(&mut reader).unwrap(), Some("42".to_string()));
        assert_eq!(read_frame(&mut reader).unwrap(), None);
    }

    #[test]
    fn crlf_line_endings_are_stripped() {
        let mut reader = BufReader::new(&b"\"ok\"\r\n"[..]);
        assert_eq!(read_frame(&mut reader).unwrap(), Some("\"ok\"".to_string()));
    }

    #[test]
    fn oversized_lines_are_rejected_not_buffered() {
        let line = vec![b'x'; 100];
        let mut wire = line.clone();
        wire.push(b'\n');
        // Limit below the line length: rejected.
        let results = read_all(&wire, 10);
        assert!(
            matches!(results[0], Err(FrameError::Oversized { limit: 10 })),
            "{results:?}"
        );
        // Limit exactly the line length: accepted.
        let mut reader = BufReader::new(wire.as_slice());
        assert_eq!(
            read_frame_with_limit(&mut reader, 100)
                .unwrap()
                .unwrap()
                .len(),
            100
        );
    }

    #[test]
    fn eof_mid_message_is_truncated_not_a_frame() {
        let results = read_all(b"{\"half\":", 1024);
        assert!(
            matches!(results[0], Err(FrameError::Truncated { bytes: 8 })),
            "{results:?}"
        );
        // Clean EOF after a complete frame is Ok(None), not an error.
        let results = read_all(b"\"done\"\n", 1024);
        assert!(matches!(results[0], Ok(Some(_))));
        assert!(matches!(results[1], Ok(None)));
    }

    #[test]
    fn invalid_utf8_is_a_structured_error() {
        let results = read_all(b"\xff\xfe\xfd\n", 1024);
        assert!(
            matches!(results[0], Err(FrameError::InvalidUtf8)),
            "{results:?}"
        );
    }

    #[test]
    fn every_frame_error_is_fatal_and_displays() {
        for err in [
            FrameError::Io(std::io::Error::other("boom")),
            FrameError::Oversized { limit: 7 },
            FrameError::Truncated { bytes: 3 },
            FrameError::InvalidUtf8,
        ] {
            assert!(err.is_fatal());
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn untag_handles_unit_and_data_envelopes() {
        let unit = serde_json::from_str("\"Stats\"").unwrap();
        assert_eq!(untag(&unit).unwrap().0, "Stats");
        let data = serde_json::from_str(r#"{"Status": {"job": 1}}"#).unwrap();
        let (tag, payload) = untag(&data).unwrap();
        assert_eq!(tag, "Status");
        assert_eq!(u64_field(payload, "Status", "job"), Ok(1));
        // Unknown envelope shapes are structured errors, never panics.
        let multi = serde_json::from_str(r#"{"a": 1, "b": 2}"#).unwrap();
        assert!(untag(&multi).is_err());
        let number = serde_json::from_str("17").unwrap();
        assert!(untag(&number).is_err());
    }

    #[test]
    fn typed_field_accessors_name_the_variant_in_errors() {
        let value = serde_json::from_str(r#"{"n": 3, "s": "x", "b": true, "f": 1.5}"#).unwrap();
        assert_eq!(u64_field(&value, "V", "n"), Ok(3));
        assert_eq!(str_field(&value, "V", "s"), Ok("x".to_string()));
        assert_eq!(bool_field(&value, "V", "b"), Ok(true));
        assert_eq!(f64_field(&value, "V", "f"), Ok(1.5));
        let err = u64_field(&value, "V", "missing").unwrap_err();
        assert!(err.contains('V') && err.contains("missing"), "{err}");
        let err = str_field(&value, "V", "n").unwrap_err();
        assert!(err.contains("must be a string"), "{err}");
    }

    #[test]
    fn hex_wire_form_round_trips_full_range_integers() {
        for v in [0u64, 1, 0xF1617E, u64::MAX, (1 << 53) + 1] {
            assert_eq!(parse_hex_u64(&hex_u64(v)), Ok(v));
        }
        for v in [0u128, u128::from(u64::MAX) + 1, u128::MAX] {
            assert_eq!(parse_hex_u128(&hex_u128(v)), Ok(v));
        }
        assert!(parse_hex_u64("not hex").is_err());
        let value =
            serde_json::from_str(&format!("{{\"fp\": \"{}\"}}", hex_u64(u64::MAX))).unwrap();
        assert_eq!(hex_u64_field(&value, "V", "fp"), Ok(u64::MAX));
    }
}
