//! The fluent [`Experiment`] API: declare an (application × scale × policy)
//! sweep once, run it through any [`Executor`] backend, get a structured
//! [`SweepReport`].
//!
//! Before this API every harness, example and test hand-rolled the same
//! loop: build the spec, run the LAS baseline, run each policy, divide
//! makespans, geometric-mean the speedups. `Experiment` owns that loop:
//!
//! ```
//! use numadag_runtime::{Backend, Experiment};
//! use numadag_core::PolicyKind;
//! use numadag_kernels::{Application, ProblemScale};
//!
//! let report = Experiment::new()
//!     .app(Application::Jacobi)
//!     .scale(ProblemScale::Tiny)
//!     .policies([PolicyKind::Dfifo, PolicyKind::RgpLas])
//!     .backend(Backend::Simulated)
//!     .repetitions(1)
//!     .run();
//! assert!(report.speedup_of("Jacobi", "RGP+LAS").unwrap() > 0.0);
//! assert!(report.geomean_of("DFIFO").unwrap() > 0.0);
//! ```
//!
//! The report serializes to JSON through the workspace's serde subset, which
//! is how the `BENCH_*.json` perf baselines are produced.

use numadag_core::{make_policy, PolicyKind};
use numadag_kernels::{Application, ProblemScale};
use numadag_numa::{CostModel, Topology};
use numadag_tdg::TaskGraphSpec;
use serde::Serialize;

use crate::config::{ExecutionConfig, StealMode};
use crate::executor::Executor;
use crate::report::{geometric_mean, ExecutionReport};
use crate::simulator::Simulator;
use crate::threaded::ThreadedExecutor;

/// Which [`Executor`] backend an [`Experiment`] runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Backend {
    /// The deterministic discrete-event NUMA simulator (the backend all
    /// timing claims come from).
    #[default]
    Simulated,
    /// The real work-stealing thread pool (placement and traffic statistics
    /// only; wall-clock makespans depend on the host machine).
    Threaded,
}

impl Backend {
    /// Stable name, matching [`Executor::backend_name`].
    pub fn label(&self) -> &'static str {
        match self {
            Backend::Simulated => "simulator",
            Backend::Threaded => "threaded",
        }
    }

    /// Builds the executor for this backend.
    pub fn executor(&self, config: ExecutionConfig) -> Box<dyn Executor> {
        match self {
            Backend::Simulated => Box::new(Simulator::new(config)),
            Backend::Threaded => Box::new(ThreadedExecutor::new(config)),
        }
    }
}

impl std::str::FromStr for Backend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "sim" | "simulated" | "simulator" => Ok(Backend::Simulated),
            "thread" | "threads" | "threaded" => Ok(Backend::Threaded),
            other => Err(format!(
                "unknown backend {other:?} (expected \"simulated\" or \"threaded\")"
            )),
        }
    }
}

/// One (workload × scale × policy × repetition) measurement of a sweep.
#[derive(Clone, Debug, Serialize)]
pub struct SweepCell {
    /// Workload label (application name, or the spec name for custom
    /// workloads).
    pub application: String,
    /// Problem-scale label (`"Tiny"`, `"Small"`, `"Full"` or `"custom"`).
    pub scale: String,
    /// Canonical policy label ([`PolicyKind::label`]), so windowed RGP
    /// variants stay distinguishable in the report.
    pub policy: String,
    /// Repetition index (0-based).
    pub repetition: usize,
    /// Number of tasks in the workload instance.
    pub tasks: usize,
    /// Makespan of this run (simulated ns, or wall-clock ns for the threaded
    /// backend).
    pub makespan_ns: f64,
    /// Speedup over the baseline policy's mean makespan on the same
    /// workload (the metric of the paper's Figure 1).
    pub speedup_vs_baseline: f64,
    /// Fraction of accessed bytes served from the local NUMA node.
    pub local_fraction: f64,
    /// Load imbalance (max/mean busy time over sockets).
    pub load_imbalance: f64,
    /// Fraction of tasks stolen across sockets.
    pub steal_fraction: f64,
    /// Bytes placed by deferred allocation.
    pub deferred_bytes: u64,
}

/// Geometric-mean aggregation of one policy over every workload of a scale.
#[derive(Clone, Debug, Serialize)]
pub struct SweepAggregate {
    /// Problem-scale label this aggregate covers.
    pub scale: String,
    /// Canonical policy label.
    pub policy: String,
    /// Geometric mean over workloads of the per-workload mean speedup — the
    /// "geometric mean" bar of Figure 1.
    pub geomean_speedup: f64,
    /// Number of workloads aggregated.
    pub applications: usize,
}

/// The structured result of an [`Experiment`] run: every cell measurement
/// plus the per-policy geometric-mean aggregation, serializable to JSON for
/// the `BENCH_*.json` baselines.
#[derive(Clone, Debug, Serialize)]
pub struct SweepReport {
    /// Machine (topology) name.
    pub machine: String,
    /// Backend that produced the measurements.
    pub backend: String,
    /// Canonical label of the baseline policy speedups are relative to.
    pub baseline: String,
    /// Seed all seeded components derived from.
    pub seed: u64,
    /// Repetitions per cell.
    pub repetitions: usize,
    /// Every measurement, in (scale, workload, policy, repetition) order.
    pub cells: Vec<SweepCell>,
    /// Per-(scale, policy) geometric means across workloads.
    pub aggregates: Vec<SweepAggregate>,
    /// `"workload/policy"` pairs that could not run (e.g. EP on a workload
    /// without an expert placement).
    pub skipped: Vec<String>,
}

impl SweepReport {
    /// The distinct policy labels in cell order of first appearance.
    pub fn policy_labels(&self) -> Vec<String> {
        let mut labels: Vec<String> = Vec::new();
        for cell in &self.cells {
            if !labels.contains(&cell.policy) {
                labels.push(cell.policy.clone());
            }
        }
        labels
    }

    /// The distinct workload labels in cell order of first appearance.
    pub fn application_labels(&self) -> Vec<String> {
        let mut labels: Vec<String> = Vec::new();
        for cell in &self.cells {
            if !labels.contains(&cell.application) {
                labels.push(cell.application.clone());
            }
        }
        labels
    }

    /// The cells of one (workload, policy) pair, across scales/repetitions.
    pub fn cells_of(&self, application: &str, policy: &str) -> Vec<&SweepCell> {
        self.cells
            .iter()
            .filter(|c| c.application == application && c.policy == policy)
            .collect()
    }

    /// Mean speedup of `policy` over the baseline on `application` (averaged
    /// over repetitions; first scale if several were swept).
    pub fn speedup_of(&self, application: &str, policy: &str) -> Option<f64> {
        let cells = self.cells_of(application, policy);
        let scale = &cells.first()?.scale;
        let reps: Vec<f64> = cells
            .iter()
            .filter(|c| &c.scale == scale)
            .map(|c| c.speedup_vs_baseline)
            .collect();
        Some(reps.iter().sum::<f64>() / reps.len() as f64)
    }

    /// Geometric-mean speedup of `policy` across workloads (first scale if
    /// several were swept) — the headline metric of the paper.
    pub fn geomean_of(&self, policy: &str) -> Option<f64> {
        self.aggregates
            .iter()
            .find(|a| a.policy == policy)
            .map(|a| a.geomean_speedup)
    }

    /// Pretty-printed JSON of the whole report.
    pub fn to_json_string(&self) -> String {
        serde_json::to_string_pretty(self).expect("SweepReport serialization cannot fail")
    }
}

/// A named workload of a sweep: an [`Application`] at a [`ProblemScale`], or
/// a (borrowed) custom [`TaskGraphSpec`].
enum Workload<'a> {
    App(Application, ProblemScale),
    Custom(&'a TaskGraphSpec),
}

/// Fluent builder for a policy-comparison sweep. See the [module
/// docs](self) for an example.
///
/// Defaults: bullion S16 topology, default cost model, nearest-socket
/// stealing, simulated backend, LAS baseline, Figure-1 policies
/// (DFIFO, RGP+LAS, EP), Tiny scale, 1 repetition, a fixed seed.
pub struct Experiment {
    topology: Topology,
    cost_model: CostModel,
    steal: StealMode,
    backend: Backend,
    baseline: PolicyKind,
    policies: Vec<PolicyKind>,
    apps: Vec<Application>,
    scales: Vec<ProblemScale>,
    workloads: Vec<TaskGraphSpec>,
    repetitions: usize,
    seed: u64,
}

impl Default for Experiment {
    fn default() -> Self {
        Experiment {
            topology: Topology::bullion_s16(),
            cost_model: CostModel::default(),
            steal: StealMode::default(),
            backend: Backend::default(),
            baseline: PolicyKind::Las,
            policies: vec![PolicyKind::Dfifo, PolicyKind::RgpLas, PolicyKind::Ep],
            apps: Vec::new(),
            scales: Vec::new(),
            workloads: Vec::new(),
            repetitions: 1,
            seed: 0xF1617E,
        }
    }
}

impl Experiment {
    /// A new experiment with the defaults listed on the type.
    pub fn new() -> Self {
        Experiment::default()
    }

    /// Sets the machine topology (default: the paper's bullion S16).
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Sets the cost model (default: the calibrated NUMA model).
    pub fn cost_model(mut self, cost_model: CostModel) -> Self {
        self.cost_model = cost_model;
        self
    }

    /// Sets the work-stealing mode (default: nearest socket).
    pub fn steal(mut self, steal: StealMode) -> Self {
        self.steal = steal;
        self
    }

    /// Sets the backend (default: the discrete-event simulator).
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the baseline policy speedups are computed against (default:
    /// LAS, as in the paper). The baseline is always run and reported last
    /// for each workload.
    pub fn baseline(mut self, baseline: PolicyKind) -> Self {
        self.baseline = baseline;
        self
    }

    /// Replaces the policy list (default: DFIFO, RGP+LAS, EP).
    pub fn policies(mut self, policies: impl IntoIterator<Item = PolicyKind>) -> Self {
        self.policies = policies.into_iter().collect();
        self
    }

    /// Adds one policy to the list.
    pub fn policy(mut self, policy: PolicyKind) -> Self {
        self.policies.push(policy);
        self
    }

    /// Replaces the application list.
    pub fn apps(mut self, apps: impl IntoIterator<Item = Application>) -> Self {
        self.apps = apps.into_iter().collect();
        self
    }

    /// Adds one application.
    pub fn app(mut self, app: Application) -> Self {
        self.apps.push(app);
        self
    }

    /// Replaces the scale list (default: Tiny if any application is set).
    pub fn scales(mut self, scales: impl IntoIterator<Item = ProblemScale>) -> Self {
        self.scales = scales.into_iter().collect();
        self
    }

    /// Adds one scale.
    pub fn scale(mut self, scale: ProblemScale) -> Self {
        self.scales.push(scale);
        self
    }

    /// Adds a custom workload spec (reported under its spec name with scale
    /// label `"custom"`), for task graphs outside the Figure-1 suite.
    pub fn workload(mut self, spec: TaskGraphSpec) -> Self {
        self.workloads.push(spec);
        self
    }

    /// Sets repetitions per cell (default 1; meaningful for the threaded
    /// backend, whose wall-clock makespans vary).
    pub fn repetitions(mut self, repetitions: usize) -> Self {
        self.repetitions = repetitions.max(1);
        self
    }

    /// Sets the seed all seeded components derive from.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Runs the sweep: every workload under the baseline and every
    /// configured policy, `repetitions` times each, on the configured
    /// backend.
    pub fn run(self) -> SweepReport {
        let config = ExecutionConfig::new(self.topology.clone())
            .with_cost_model(self.cost_model.clone())
            .with_steal(self.steal)
            .with_seed(self.seed);
        let executor = self.backend.executor(config);
        self.run_on(executor.as_ref())
    }

    /// Like [`Experiment::run`] but on a caller-supplied executor (any
    /// [`Executor`] implementation, including ones outside this crate). The
    /// executor's own topology is used to size the workloads.
    pub fn run_on(&self, executor: &dyn Executor) -> SweepReport {
        let topology = &executor.config().topology;
        let num_sockets = topology.num_sockets();
        let scales = if self.scales.is_empty() {
            vec![ProblemScale::Tiny]
        } else {
            self.scales.clone()
        };

        // The baseline is reported last, as in the paper's figure; dedupe it
        // out of the configured policy list.
        let mut policies: Vec<PolicyKind> = self
            .policies
            .iter()
            .copied()
            .filter(|&k| k != self.baseline)
            .collect();
        policies.push(self.baseline);

        let mut cells = Vec::new();
        let mut skipped = Vec::new();
        let mut sweep: Vec<(String, Workload)> = Vec::new();
        for &scale in &scales {
            for &app in &self.apps {
                sweep.push((format!("{scale:?}"), Workload::App(app, scale)));
            }
        }
        for spec in &self.workloads {
            sweep.push(("custom".to_string(), Workload::Custom(spec)));
        }

        for (scale_label, workload) in &sweep {
            let built;
            let (label, spec): (String, &TaskGraphSpec) = match workload {
                Workload::App(app, scale) => {
                    built = app.build(*scale, num_sockets);
                    (app.label().to_string(), &built)
                }
                Workload::Custom(spec) => (spec.name.clone(), spec),
            };

            // Baseline first: its mean makespan anchors every speedup.
            let baseline_reports = match self.measure(executor, spec, self.baseline) {
                Some(reports) => reports,
                None => {
                    skipped.push(format!("{label}/{}", self.baseline.label()));
                    continue;
                }
            };
            let baseline_mean = mean(baseline_reports.iter().map(|r| r.makespan_ns));

            for &kind in &policies {
                let reports = if kind == self.baseline {
                    baseline_reports.clone()
                } else {
                    match self.measure(executor, spec, kind) {
                        Some(reports) => reports,
                        None => {
                            skipped.push(format!("{label}/{}", kind.label()));
                            continue;
                        }
                    }
                };
                for (rep, report) in reports.iter().enumerate() {
                    cells.push(SweepCell {
                        application: label.clone(),
                        scale: scale_label.clone(),
                        policy: kind.label(),
                        repetition: rep,
                        tasks: report.tasks,
                        makespan_ns: report.makespan_ns,
                        speedup_vs_baseline: if report.makespan_ns > 0.0 {
                            baseline_mean / report.makespan_ns
                        } else {
                            1.0
                        },
                        local_fraction: report.local_fraction(),
                        load_imbalance: report.load_imbalance(),
                        steal_fraction: report.steal_fraction(),
                        deferred_bytes: report.deferred_bytes,
                    });
                }
            }
        }

        let aggregates = aggregate(&cells);
        SweepReport {
            machine: topology.name().to_string(),
            backend: executor.backend_name().to_string(),
            baseline: self.baseline.label(),
            seed: self.seed,
            repetitions: self.repetitions,
            cells,
            aggregates,
            skipped,
        }
    }

    /// Runs one (workload, policy) cell `repetitions` times. `None` if the
    /// policy cannot be built for this workload.
    fn measure(
        &self,
        executor: &dyn Executor,
        spec: &TaskGraphSpec,
        kind: PolicyKind,
    ) -> Option<Vec<ExecutionReport>> {
        (0..self.repetitions)
            .map(|rep| {
                let mut policy = make_policy(kind, spec, self.seed.wrapping_add(rep as u64))?;
                Some(executor.execute(spec, policy.as_mut()))
            })
            .collect()
    }
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let values: Vec<f64> = values.collect();
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Per-(scale, policy) geometric means of the per-workload mean speedups.
fn aggregate(cells: &[SweepCell]) -> Vec<SweepAggregate> {
    let mut keys: Vec<(String, String)> = Vec::new();
    for cell in cells {
        let key = (cell.scale.clone(), cell.policy.clone());
        if !keys.contains(&key) {
            keys.push(key);
        }
    }
    keys.into_iter()
        .map(|(scale, policy)| {
            let mut apps: Vec<&str> = Vec::new();
            for c in cells {
                if c.scale == scale && c.policy == policy && !apps.contains(&c.application.as_str())
                {
                    apps.push(&c.application);
                }
            }
            let speedups: Vec<f64> = apps
                .iter()
                .map(|app| {
                    mean(
                        cells
                            .iter()
                            .filter(|c| {
                                c.scale == scale && c.policy == policy && &c.application == app
                            })
                            .map(|c| c.speedup_vs_baseline),
                    )
                })
                .collect();
            SweepAggregate {
                scale,
                policy,
                geomean_speedup: geometric_mean(&speedups),
                applications: speedups.len(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use numadag_tdg::{TaskSpec, TdgBuilder};

    fn tiny_experiment() -> Experiment {
        Experiment::new()
            .apps([Application::Jacobi, Application::NStream])
            .scale(ProblemScale::Tiny)
            .policies([PolicyKind::Dfifo, PolicyKind::RgpLas])
            .seed(7)
    }

    #[test]
    fn sweep_covers_the_full_matrix_with_baseline_last() {
        let report = tiny_experiment().run();
        assert_eq!(report.backend, "simulator");
        assert_eq!(report.baseline, "LAS");
        // 2 apps × (2 policies + baseline) × 1 repetition.
        assert_eq!(report.cells.len(), 6);
        assert_eq!(report.policy_labels(), vec!["DFIFO", "RGP+LAS", "LAS"]);
        assert_eq!(report.application_labels(), vec!["Jacobi", "NStream"]);
        for app in ["Jacobi", "NStream"] {
            let las = report.speedup_of(app, "LAS").unwrap();
            assert!((las - 1.0).abs() < 1e-12, "{app}: baseline speedup {las}");
        }
        assert!(report.skipped.is_empty());
    }

    #[test]
    fn aggregates_hold_one_geomean_per_policy() {
        let report = tiny_experiment().run();
        assert_eq!(report.aggregates.len(), 3);
        for agg in &report.aggregates {
            assert_eq!(agg.applications, 2);
            assert!(agg.geomean_speedup > 0.0);
        }
        let las = report.geomean_of("LAS").unwrap();
        assert!((las - 1.0).abs() < 1e-9);
    }

    #[test]
    fn repetitions_multiply_cells_and_average_cleanly() {
        let report = tiny_experiment().repetitions(2).run();
        // 2 apps × 3 policies × 2 repetitions.
        assert_eq!(report.cells.len(), 12);
        // The simulator is deterministic only for identical seeds; reps use
        // different seeds, so just check the mean is finite and positive.
        let s = report.speedup_of("Jacobi", "DFIFO").unwrap();
        assert!(s.is_finite() && s > 0.0);
    }

    #[test]
    fn custom_workloads_ride_alongside_apps() {
        let mut b = TdgBuilder::new();
        let r = b.region(1 << 16);
        for _ in 0..32 {
            b.submit(TaskSpec::new("step").work(100.0).reads_writes(r, 1 << 16));
        }
        let (g, sizes) = b.finish();
        let spec = TaskGraphSpec::new("custom-chain", g, sizes);
        let report = Experiment::new()
            .workload(spec)
            .policies([PolicyKind::Dfifo])
            .run();
        assert_eq!(report.application_labels(), vec!["custom-chain"]);
        assert_eq!(report.cells[0].scale, "custom");
        assert_eq!(report.cells.len(), 2);
    }

    #[test]
    fn ep_without_placement_is_skipped_not_fatal() {
        let mut b = TdgBuilder::new();
        let r = b.region(64);
        b.submit(TaskSpec::new("t").work(1.0).writes(r, 64));
        let (g, sizes) = b.finish();
        let spec = TaskGraphSpec::new("no-ep", g, sizes);
        let report = Experiment::new()
            .workload(spec)
            .policies([PolicyKind::Ep, PolicyKind::Dfifo])
            .run();
        assert_eq!(report.skipped, vec!["no-ep/EP"]);
        assert_eq!(report.policy_labels(), vec!["DFIFO", "LAS"]);
    }

    #[test]
    fn windowed_policy_kinds_are_distinct_columns() {
        let report = Experiment::new()
            .app(Application::Jacobi)
            .policies([
                PolicyKind::rgp_las_window(64),
                PolicyKind::rgp_las_window(1024),
            ])
            .run();
        assert_eq!(
            report.policy_labels(),
            vec!["RGP+LAS:w=64", "RGP+LAS:w=1024", "LAS"]
        );
    }

    #[test]
    fn partitioner_ablations_are_distinct_columns() {
        // Partitioner knobs ride the same registry/sweep path as window
        // knobs: one tuned spelling per scheme, each its own column.
        use numadag_core::{PartitionScheme, RgpTuning};
        let report = Experiment::new()
            .app(Application::Jacobi)
            .policies(
                PartitionScheme::all()
                    .map(|s| PolicyKind::rgp_las(RgpTuning::default().with_scheme(s))),
            )
            .run();
        assert_eq!(
            report.policy_labels(),
            vec![
                "RGP+LAS:scheme=ml",
                "RGP+LAS:scheme=rb",
                "RGP+LAS:scheme=bfs",
                "LAS"
            ]
        );
        for label in report.policy_labels() {
            assert!(report.geomean_of(&label).unwrap() > 0.0);
        }
    }

    #[test]
    fn threaded_backend_runs_the_same_sweep() {
        let report = Experiment::new()
            .topology(Topology::two_socket(2))
            .app(Application::NStream)
            .policies([PolicyKind::Dfifo])
            .backend(Backend::Threaded)
            .run();
        assert_eq!(report.backend, "threaded");
        assert_eq!(report.cells.len(), 2);
        for cell in &report.cells {
            assert!(cell.makespan_ns > 0.0);
            assert!(cell.tasks > 0);
        }
    }

    #[test]
    fn report_serializes_to_json() {
        let report = Experiment::new()
            .topology(Topology::two_socket(2))
            .app(Application::NStream)
            .policies([PolicyKind::Dfifo])
            .run();
        let json = report.to_json_string();
        for key in [
            "\"machine\"",
            "\"backend\"",
            "\"baseline\"",
            "\"cells\"",
            "\"aggregates\"",
            "\"speedup_vs_baseline\"",
        ] {
            assert!(json.contains(key), "JSON missing {key}");
        }
    }

    #[test]
    fn backend_labels_parse_back() {
        for backend in [Backend::Simulated, Backend::Threaded] {
            assert_eq!(backend.label().parse::<Backend>(), Ok(backend));
        }
        assert!("gpu".parse::<Backend>().is_err());
    }
}
