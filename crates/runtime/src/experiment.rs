//! The fluent [`Experiment`] API: declare an (application × scale × policy)
//! sweep once, run it through any [`Executor`] backend, get a structured
//! [`SweepReport`].
//!
//! Before this API every harness, example and test hand-rolled the same
//! loop: build the spec, run the LAS baseline, run each policy, divide
//! makespans, geometric-mean the speedups. `Experiment` owns that loop, and
//! since the plan/execute split it runs in two phases: [`Experiment::plan`]
//! materializes a [`crate::SweepPlan`] (independent keyed cell jobs over
//! shared, memoized `Arc<TaskGraphSpec>` workloads), and a
//! [`crate::SweepDriver`] executes the plan — serially, or sharded across
//! worker threads via [`Experiment::parallelism`]:
//!
//! ```
//! use numadag_runtime::{Backend, Experiment};
//! use numadag_core::PolicyKind;
//! use numadag_kernels::{Application, ProblemScale};
//!
//! let report = Experiment::new()
//!     .app(Application::Jacobi)
//!     .scale(ProblemScale::Tiny)
//!     .policies([PolicyKind::Dfifo, PolicyKind::RgpLas])
//!     .backend(Backend::Simulated)
//!     .parallelism(2) // shard cells over 2 worker threads
//!     .repetitions(1)
//!     .run();
//! assert!(report.speedup_of("Jacobi", "RGP+LAS").unwrap() > 0.0);
//! assert!(report.geomean_of("DFIFO").unwrap() > 0.0);
//! ```
//!
//! The report serializes to JSON through the workspace's serde subset, which
//! is how the `BENCH_*.json` perf baselines are produced:
//! [`SweepReport::to_json_string`] emits only the deterministic measurement
//! fields (byte-stable across runs and worker counts on the simulator
//! backend), while [`SweepReport::to_json_string_with_timing`] appends the
//! wall-time accounting ([`crate::SweepTiming`]).

use std::sync::Arc;
use std::time::Instant;

use numadag_core::{make_policy, PolicyKind};
use numadag_kernels::{Application, ProblemScale, SpecCache};
use numadag_numa::{CostModel, Topology};
use numadag_tdg::TaskGraphSpec;
use numadag_trace::TraceCollector;
use serde::{Serialize, Value};

use crate::config::{ExecutionConfig, StealMode};
use crate::driver::{
    CellProgress, PlannedWorkload, ProgressCallback, SweepDriver, SweepJob, SweepPlan, SweepTiming,
};
use crate::executor::Executor;
use crate::report::geometric_mean;
use crate::simulator::Simulator;
use crate::threaded::ThreadedExecutor;

/// Which [`Executor`] backend an [`Experiment`] runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Backend {
    /// The deterministic discrete-event NUMA simulator (the backend all
    /// timing claims come from).
    #[default]
    Simulated,
    /// The real work-stealing thread pool (placement and traffic statistics
    /// only; wall-clock makespans depend on the host machine).
    Threaded,
    /// The multi-process message-passing coordinator (`numadag-proc`):
    /// sweep cells are shipped over local-socket JSON IPC to worker
    /// processes, each running the deterministic simulator. Requires
    /// `numadag_proc::install()` to have been called.
    Proc {
        /// Number of worker processes to spawn.
        workers: usize,
    },
}

impl Backend {
    /// The proc backend with its default worker count (2).
    pub fn proc() -> Backend {
        Backend::Proc { workers: 2 }
    }

    /// Stable name, matching [`Executor::backend_name`]. The proc backend's
    /// label is `"proc"` for every worker count — the pool size is an
    /// execution detail, not part of the sweep's identity.
    pub fn label(&self) -> &'static str {
        match self {
            Backend::Simulated => "simulator",
            Backend::Threaded => "threaded",
            Backend::Proc { .. } => "proc",
        }
    }

    /// Backend name to record in measurement reports.
    ///
    /// The proc backend distributes cells to worker processes that each run
    /// the deterministic [`Simulator`], so its measurements *are* simulator
    /// measurements — reports label them `"simulator"` and stay
    /// byte-identical to in-process simulator baselines. The other backends
    /// report their own [`Backend::label`].
    pub fn report_label(&self) -> &'static str {
        match self {
            Backend::Proc { .. } => Backend::Simulated.label(),
            other => other.label(),
        }
    }

    /// Builds the executor for this backend.
    ///
    /// # Panics
    /// Panics for [`Backend::Proc`] if no proc factory was registered (call
    /// `numadag_proc::install()` at startup).
    pub fn executor(&self, config: ExecutionConfig) -> Box<dyn Executor> {
        match self {
            Backend::Simulated => Box::new(Simulator::new(config)),
            Backend::Threaded => Box::new(ThreadedExecutor::new(config)),
            Backend::Proc { workers } => crate::executor::proc_executor(config, *workers)
                .expect("proc backend not installed: call numadag_proc::install() at startup"),
        }
    }
}

impl std::str::FromStr for Backend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let text = s.trim().to_ascii_lowercase();
        if let Some(count) = text
            .strip_prefix("proc:w=")
            .or_else(|| text.strip_prefix("proc:workers="))
        {
            let workers: usize = count
                .parse()
                .map_err(|_| format!("invalid proc worker count {count:?}"))?;
            if workers == 0 {
                return Err("proc backend needs at least 1 worker".to_string());
            }
            return Ok(Backend::Proc { workers });
        }
        match text.as_str() {
            "sim" | "simulated" | "simulator" => Ok(Backend::Simulated),
            "thread" | "threads" | "threaded" => Ok(Backend::Threaded),
            "proc" | "process" | "processes" => Ok(Backend::proc()),
            other => Err(format!(
                "unknown backend {other:?} (expected \"simulated\", \"threaded\", \
                 \"proc\" or \"proc:w=N\")"
            )),
        }
    }
}

/// One (workload × scale × policy × repetition) measurement of a sweep.
#[derive(Clone, Debug, Serialize)]
pub struct SweepCell {
    /// Workload label (application name, or the spec name for custom
    /// workloads).
    pub application: String,
    /// Problem-scale label (`"Tiny"`, `"Small"`, `"Full"` or `"custom"`).
    pub scale: String,
    /// Canonical policy label ([`PolicyKind::label`]), so windowed RGP
    /// variants stay distinguishable in the report.
    pub policy: String,
    /// Repetition index (0-based).
    pub repetition: usize,
    /// Number of tasks in the workload instance.
    pub tasks: usize,
    /// Makespan of this run (simulated ns, or wall-clock ns for the threaded
    /// backend).
    pub makespan_ns: f64,
    /// Speedup over the baseline policy's mean makespan on the same
    /// workload (the metric of the paper's Figure 1).
    pub speedup_vs_baseline: f64,
    /// Fraction of accessed bytes served from the local NUMA node.
    pub local_fraction: f64,
    /// Load imbalance (max/mean busy time over sockets).
    pub load_imbalance: f64,
    /// Fraction of tasks stolen across sockets.
    pub steal_fraction: f64,
    /// Bytes placed by deferred allocation.
    pub deferred_bytes: u64,
}

/// Geometric-mean aggregation of one policy over every workload of a scale.
#[derive(Clone, Debug, Serialize)]
pub struct SweepAggregate {
    /// Problem-scale label this aggregate covers.
    pub scale: String,
    /// Canonical policy label.
    pub policy: String,
    /// Geometric mean over workloads of the per-workload mean speedup — the
    /// "geometric mean" bar of Figure 1.
    pub geomean_speedup: f64,
    /// Number of workloads aggregated.
    pub applications: usize,
}

/// The structured result of an [`Experiment`] run: every cell measurement
/// plus the per-policy geometric-mean aggregation, serializable to JSON for
/// the `BENCH_*.json` baselines.
///
/// The `timing` section is wall-clock accounting and therefore varies run to
/// run; it is excluded from the default [`SweepReport::to_json_string`]
/// serialization (keeping perf baselines byte-stable) and included by
/// [`SweepReport::to_json_string_with_timing`].
#[derive(Clone, Debug)]
pub struct SweepReport {
    /// Machine (topology) name.
    pub machine: String,
    /// Backend that produced the measurements.
    pub backend: String,
    /// Canonical label of the baseline policy speedups are relative to.
    pub baseline: String,
    /// Seed all seeded components derived from.
    pub seed: u64,
    /// Repetitions per cell.
    pub repetitions: usize,
    /// Every measurement, in (scale, workload, policy, repetition) order.
    pub cells: Vec<SweepCell>,
    /// Per-(scale, policy) geometric means across workloads.
    pub aggregates: Vec<SweepAggregate>,
    /// `"workload/policy"` pairs that could not run (e.g. EP on a workload
    /// without an expert placement).
    pub skipped: Vec<String>,
    /// Wall-time and spec-build accounting of the run (not part of the
    /// measurement serialization).
    pub timing: SweepTiming,
}

impl Serialize for SweepReport {
    // Hand-written (not derived) so `timing` stays out of the measurement
    // serialization: the field order below must match the struct exactly,
    // because the `BENCH_*.json` baselines are compared byte for byte.
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("machine".to_string(), self.machine.to_value()),
            ("backend".to_string(), self.backend.to_value()),
            ("baseline".to_string(), self.baseline.to_value()),
            ("seed".to_string(), self.seed.to_value()),
            ("repetitions".to_string(), self.repetitions.to_value()),
            ("cells".to_string(), self.cells.to_value()),
            ("aggregates".to_string(), self.aggregates.to_value()),
            ("skipped".to_string(), self.skipped.to_value()),
        ])
    }
}

impl SweepReport {
    /// The distinct policy labels in cell order of first appearance.
    pub fn policy_labels(&self) -> Vec<String> {
        let mut labels: Vec<String> = Vec::new();
        for cell in &self.cells {
            if !labels.contains(&cell.policy) {
                labels.push(cell.policy.clone());
            }
        }
        labels
    }

    /// The distinct workload labels in cell order of first appearance.
    pub fn application_labels(&self) -> Vec<String> {
        let mut labels: Vec<String> = Vec::new();
        for cell in &self.cells {
            if !labels.contains(&cell.application) {
                labels.push(cell.application.clone());
            }
        }
        labels
    }

    /// The cells of one (workload, policy) pair, across scales/repetitions.
    pub fn cells_of(&self, application: &str, policy: &str) -> Vec<&SweepCell> {
        self.cells
            .iter()
            .filter(|c| c.application == application && c.policy == policy)
            .collect()
    }

    /// Mean speedup of `policy` over the baseline on `application` (averaged
    /// over repetitions; first scale if several were swept).
    pub fn speedup_of(&self, application: &str, policy: &str) -> Option<f64> {
        let cells = self.cells_of(application, policy);
        let scale = &cells.first()?.scale;
        let reps: Vec<f64> = cells
            .iter()
            .filter(|c| &c.scale == scale)
            .map(|c| c.speedup_vs_baseline)
            .collect();
        Some(reps.iter().sum::<f64>() / reps.len() as f64)
    }

    /// Geometric-mean speedup of `policy` across workloads (first scale if
    /// several were swept) — the headline metric of the paper.
    pub fn geomean_of(&self, policy: &str) -> Option<f64> {
        self.aggregates
            .iter()
            .find(|a| a.policy == policy)
            .map(|a| a.geomean_speedup)
    }

    /// Pretty-printed JSON of the measurement fields (no timing section):
    /// deterministic on the simulator backend, used for the byte-compared
    /// `BENCH_*.json` baselines.
    pub fn to_json_string(&self) -> String {
        serde_json::to_string_pretty(self).expect("SweepReport serialization cannot fail")
    }

    /// Pretty-printed JSON including the wall-time accounting as a trailing
    /// `"timing"` section.
    pub fn to_json_string_with_timing(&self) -> String {
        let mut value = self.to_value();
        if let Value::Object(entries) = &mut value {
            entries.push(("timing".to_string(), self.timing.to_value()));
        }
        serde_json::to_string_pretty(&value).expect("SweepReport serialization cannot fail")
    }
}

/// Fluent builder for a policy-comparison sweep. See the [module
/// docs](self) for an example.
///
/// Defaults: bullion S16 topology, default cost model, nearest-socket
/// stealing, simulated backend, LAS baseline, Figure-1 policies
/// (DFIFO, RGP+LAS, EP), Tiny scale, 1 repetition, a fixed seed, serial
/// execution (parallelism 1), a private spec cache, no progress callback.
pub struct Experiment {
    topology: Topology,
    cost_model: CostModel,
    steal: StealMode,
    backend: Backend,
    baseline: PolicyKind,
    policies: Vec<PolicyKind>,
    apps: Vec<Application>,
    scales: Vec<ProblemScale>,
    workloads: Vec<TaskGraphSpec>,
    repetitions: usize,
    seed: u64,
    parallelism: usize,
    spec_cache: Option<Arc<SpecCache>>,
    progress: Option<ProgressCallback>,
    trace: Option<Arc<TraceCollector>>,
    stage_timing: bool,
}

impl Default for Experiment {
    fn default() -> Self {
        Experiment {
            topology: Topology::bullion_s16(),
            cost_model: CostModel::default(),
            steal: StealMode::default(),
            backend: Backend::default(),
            baseline: PolicyKind::Las,
            policies: vec![PolicyKind::Dfifo, PolicyKind::RgpLas, PolicyKind::Ep],
            apps: Vec::new(),
            scales: Vec::new(),
            workloads: Vec::new(),
            repetitions: 1,
            seed: 0xF1617E,
            parallelism: 1,
            spec_cache: None,
            progress: None,
            trace: None,
            stage_timing: false,
        }
    }
}

impl Experiment {
    /// A new experiment with the defaults listed on the type.
    pub fn new() -> Self {
        Experiment::default()
    }

    /// Sets the machine topology (default: the paper's bullion S16).
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Sets the cost model (default: the calibrated NUMA model).
    pub fn cost_model(mut self, cost_model: CostModel) -> Self {
        self.cost_model = cost_model;
        self
    }

    /// Sets the work-stealing mode (default: nearest socket).
    pub fn steal(mut self, steal: StealMode) -> Self {
        self.steal = steal;
        self
    }

    /// Sets the backend (default: the discrete-event simulator).
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Enables per-stage wall-time accounting (policy vs event loop) in the
    /// simulator; see [`crate::ExecutionConfig::stage_timing`]. Off by
    /// default because it clocks every assignment batch in the hot loop.
    pub fn stage_timing(mut self, on: bool) -> Self {
        self.stage_timing = on;
        self
    }

    /// Sets the baseline policy speedups are computed against (default:
    /// LAS, as in the paper). The baseline is always run and reported last
    /// for each workload.
    pub fn baseline(mut self, baseline: PolicyKind) -> Self {
        self.baseline = baseline;
        self
    }

    /// Replaces the policy list (default: DFIFO, RGP+LAS, EP).
    pub fn policies(mut self, policies: impl IntoIterator<Item = PolicyKind>) -> Self {
        self.policies = policies.into_iter().collect();
        self
    }

    /// Adds one policy to the list.
    pub fn policy(mut self, policy: PolicyKind) -> Self {
        self.policies.push(policy);
        self
    }

    /// Replaces the application list.
    pub fn apps(mut self, apps: impl IntoIterator<Item = Application>) -> Self {
        self.apps = apps.into_iter().collect();
        self
    }

    /// Adds one application.
    pub fn app(mut self, app: Application) -> Self {
        self.apps.push(app);
        self
    }

    /// Replaces the scale list (default: Tiny if any application is set).
    pub fn scales(mut self, scales: impl IntoIterator<Item = ProblemScale>) -> Self {
        self.scales = scales.into_iter().collect();
        self
    }

    /// Adds one scale.
    pub fn scale(mut self, scale: ProblemScale) -> Self {
        self.scales.push(scale);
        self
    }

    /// Adds a custom workload spec (reported under its spec name with scale
    /// label `"custom"`), for task graphs outside the Figure-1 suite.
    pub fn workload(mut self, spec: TaskGraphSpec) -> Self {
        self.workloads.push(spec);
        self
    }

    /// Sets repetitions per cell (default 1; meaningful for the threaded
    /// backend, whose wall-clock makespans vary).
    pub fn repetitions(mut self, repetitions: usize) -> Self {
        self.repetitions = repetitions.max(1);
        self
    }

    /// Sets the seed all seeded components derive from.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets how many worker threads the sweep is sharded across (default 1,
    /// i.e. serial; `0` means one per available core). On the deterministic
    /// simulator backend the report is bit-identical for every value.
    ///
    /// **Threaded-backend caveat:** each worker owns a full
    /// [`ThreadedExecutor`] (one OS thread per core of the topology), so
    /// `parallelism(n)` runs `n` complete thread pools concurrently. The
    /// threaded backend's makespans *are* wall-clock, so they then contend
    /// for CPUs and come out inflated versus a serial sweep — shard the
    /// simulator freely, but measure the threaded backend with
    /// `parallelism(1)`.
    pub fn parallelism(mut self, jobs: usize) -> Self {
        self.parallelism = jobs;
        self
    }

    /// Shares a [`SpecCache`] with this experiment, so workload specs built
    /// by earlier experiments (same app × scale × socket count) are reused
    /// instead of rebuilt. Each experiment otherwise uses a private cache.
    pub fn spec_cache(mut self, cache: Arc<SpecCache>) -> Self {
        self.spec_cache = Some(cache);
        self
    }

    /// Installs a progress callback invoked after every finished cell (see
    /// [`SweepDriver::on_cell_complete`]); long sweeps use it to report live
    /// progress instead of going dark.
    pub fn on_cell_complete(
        mut self,
        callback: impl Fn(&CellProgress) + Send + Sync + 'static,
    ) -> Self {
        self.progress = Some(Arc::new(callback));
        self
    }

    /// Traces every cell of the sweep into `collector`: each cell's
    /// execution emits [`numadag_trace::TraceEvent`]s into a fresh
    /// [`numadag_trace::MemorySink`], and the finished
    /// [`numadag_trace::Trace`] (labelled with the cell's workload, scale,
    /// policy and repetition) is recorded in the collector. Drain it after
    /// [`Experiment::run`] with [`TraceCollector::take`].
    ///
    /// Tracing never changes the measurements on the deterministic
    /// simulator backend — it only observes. It is ignored by
    /// [`Experiment::run_on`], whose caller-supplied executor owns its own
    /// configuration (install a sink there instead).
    pub fn trace(mut self, collector: Arc<TraceCollector>) -> Self {
        self.trace = Some(collector);
        self
    }

    /// Materializes the sweep as a [`SweepPlan`]: builds every workload spec
    /// exactly once (memoized through the experiment's [`SpecCache`]) and
    /// flattens the (workload × policy × repetition) matrix into independent
    /// keyed cell jobs for a [`SweepDriver`].
    pub fn plan(&self) -> SweepPlan {
        self.plan_for_sockets(self.topology.num_sockets())
    }

    /// Plans the sweep for a machine with `num_sockets` sockets (used by
    /// [`Experiment::run_on`], where the executor's topology sizes the
    /// workloads).
    fn plan_for_sockets(&self, num_sockets: usize) -> SweepPlan {
        let scales = if self.scales.is_empty() {
            vec![ProblemScale::Tiny]
        } else {
            self.scales.clone()
        };

        // The baseline is reported last, as in the paper's figure; dedupe it
        // out of the configured policy list.
        let mut policies: Vec<PolicyKind> = self
            .policies
            .iter()
            .copied()
            .filter(|&k| k != self.baseline)
            .collect();
        policies.push(self.baseline);

        let cache = self
            .spec_cache
            .clone()
            .unwrap_or_else(|| Arc::new(SpecCache::new()));
        // Builds/hits are counted per lookup of *this* plan, not as deltas of
        // the cache's global counters: a cache shared across concurrently
        // planning experiments would otherwise misattribute their work.
        let mut spec_builds = 0;
        let mut spec_cache_hits = 0;
        let build_start = Instant::now();
        let mut workloads = Vec::new();
        for &scale in &scales {
            for &app in &self.apps {
                let (spec, built) = cache.get_with_stats(app, scale, num_sockets);
                if built {
                    spec_builds += 1;
                } else {
                    spec_cache_hits += 1;
                }
                workloads.push(PlannedWorkload {
                    label: app.label().to_string(),
                    scale_label: format!("{scale:?}"),
                    baseline_available: make_policy(self.baseline, &spec, self.seed).is_some(),
                    spec,
                });
            }
        }
        for spec in &self.workloads {
            let spec = Arc::new(spec.clone());
            workloads.push(PlannedWorkload {
                label: spec.name.to_string(),
                scale_label: "custom".to_string(),
                baseline_available: make_policy(self.baseline, &spec, self.seed).is_some(),
                spec,
            });
        }
        let build_wall_ns = build_start.elapsed().as_nanos() as f64;

        let mut jobs = Vec::with_capacity(workloads.len() * policies.len() * self.repetitions);
        for workload in 0..workloads.len() {
            for policy_slot in 0..policies.len() {
                for repetition in 0..self.repetitions {
                    jobs.push(SweepJob {
                        workload,
                        policy_slot,
                        repetition,
                    });
                }
            }
        }

        SweepPlan {
            config: {
                let mut config = ExecutionConfig::new(self.topology.clone())
                    .with_cost_model(self.cost_model.clone())
                    .with_steal(self.steal)
                    .with_seed(self.seed);
                config.stage_timing = self.stage_timing;
                config
            },
            backend: self.backend,
            baseline: self.baseline,
            policies,
            workloads,
            jobs,
            repetitions: self.repetitions,
            seed: self.seed,
            build_wall_ns,
            spec_builds,
            spec_cache_hits,
            // Global counters of the (possibly shared) cache, after this
            // plan's lookups: the sweep service surfaces these in `Stats`
            // and `--json-timing` so operators can see cross-request reuse.
            spec_cache_total_builds: cache.builds(),
            spec_cache_total_hits: cache.hits(),
            trace: self.trace.clone(),
        }
    }

    /// The driver configured by this experiment (parallelism + progress).
    fn driver(&self) -> SweepDriver {
        let mut driver = SweepDriver::new().parallelism(self.parallelism);
        if let Some(progress) = self.progress.clone() {
            driver = driver.on_cell_complete_shared(progress);
        }
        driver
    }

    /// Runs the sweep: every workload under the baseline and every
    /// configured policy, `repetitions` times each, on the configured
    /// backend — serially, or sharded across [`Experiment::parallelism`]
    /// worker threads (each owning its own executor and policy instances).
    pub fn run(self) -> SweepReport {
        self.driver().execute(&self.plan())
    }

    /// Like [`Experiment::run`] but serially on a caller-supplied executor
    /// (any [`Executor`] implementation, including ones outside this
    /// crate). The executor's own topology is used to size the workloads.
    pub fn run_on(&self, executor: &dyn Executor) -> SweepReport {
        let plan = self.plan_for_sockets(executor.config().topology.num_sockets());
        self.driver().execute_on(&plan, executor)
    }
}

pub(crate) fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let values: Vec<f64> = values.collect();
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Per-(scale, policy) geometric means of the per-workload mean speedups.
pub(crate) fn aggregate(cells: &[SweepCell]) -> Vec<SweepAggregate> {
    let mut keys: Vec<(String, String)> = Vec::new();
    for cell in cells {
        let key = (cell.scale.clone(), cell.policy.clone());
        if !keys.contains(&key) {
            keys.push(key);
        }
    }
    keys.into_iter()
        .map(|(scale, policy)| {
            let mut apps: Vec<&str> = Vec::new();
            for c in cells {
                if c.scale == scale && c.policy == policy && !apps.contains(&c.application.as_str())
                {
                    apps.push(&c.application);
                }
            }
            let speedups: Vec<f64> = apps
                .iter()
                .map(|app| {
                    mean(
                        cells
                            .iter()
                            .filter(|c| {
                                c.scale == scale && c.policy == policy && &c.application == app
                            })
                            .map(|c| c.speedup_vs_baseline),
                    )
                })
                .collect();
            SweepAggregate {
                scale,
                policy,
                geomean_speedup: geometric_mean(&speedups),
                applications: speedups.len(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use numadag_tdg::{TaskSpec, TdgBuilder};

    fn tiny_experiment() -> Experiment {
        Experiment::new()
            .apps([Application::Jacobi, Application::NStream])
            .scale(ProblemScale::Tiny)
            .policies([PolicyKind::Dfifo, PolicyKind::RgpLas])
            .seed(7)
    }

    #[test]
    fn sweep_covers_the_full_matrix_with_baseline_last() {
        let report = tiny_experiment().run();
        assert_eq!(report.backend, "simulator");
        assert_eq!(report.baseline, "LAS");
        // 2 apps × (2 policies + baseline) × 1 repetition.
        assert_eq!(report.cells.len(), 6);
        assert_eq!(report.policy_labels(), vec!["DFIFO", "RGP+LAS", "LAS"]);
        assert_eq!(report.application_labels(), vec!["Jacobi", "NStream"]);
        for app in ["Jacobi", "NStream"] {
            let las = report.speedup_of(app, "LAS").unwrap();
            assert!((las - 1.0).abs() < 1e-12, "{app}: baseline speedup {las}");
        }
        assert!(report.skipped.is_empty());
    }

    #[test]
    fn aggregates_hold_one_geomean_per_policy() {
        let report = tiny_experiment().run();
        assert_eq!(report.aggregates.len(), 3);
        for agg in &report.aggregates {
            assert_eq!(agg.applications, 2);
            assert!(agg.geomean_speedup > 0.0);
        }
        let las = report.geomean_of("LAS").unwrap();
        assert!((las - 1.0).abs() < 1e-9);
    }

    #[test]
    fn repetitions_multiply_cells_and_average_cleanly() {
        let report = tiny_experiment().repetitions(2).run();
        // 2 apps × 3 policies × 2 repetitions.
        assert_eq!(report.cells.len(), 12);
        // The simulator is deterministic only for identical seeds; reps use
        // different seeds, so just check the mean is finite and positive.
        let s = report.speedup_of("Jacobi", "DFIFO").unwrap();
        assert!(s.is_finite() && s > 0.0);
    }

    #[test]
    fn custom_workloads_ride_alongside_apps() {
        let mut b = TdgBuilder::new();
        let r = b.region(1 << 16);
        for _ in 0..32 {
            b.submit(TaskSpec::new("step").work(100.0).reads_writes(r, 1 << 16));
        }
        let (g, sizes) = b.finish();
        let spec = TaskGraphSpec::new("custom-chain", g, sizes);
        let report = Experiment::new()
            .workload(spec)
            .policies([PolicyKind::Dfifo])
            .run();
        assert_eq!(report.application_labels(), vec!["custom-chain"]);
        assert_eq!(report.cells[0].scale, "custom");
        assert_eq!(report.cells.len(), 2);
    }

    #[test]
    fn ep_without_placement_is_skipped_not_fatal() {
        let mut b = TdgBuilder::new();
        let r = b.region(64);
        b.submit(TaskSpec::new("t").work(1.0).writes(r, 64));
        let (g, sizes) = b.finish();
        let spec = TaskGraphSpec::new("no-ep", g, sizes);
        let report = Experiment::new()
            .workload(spec)
            .policies([PolicyKind::Ep, PolicyKind::Dfifo])
            .run();
        assert_eq!(report.skipped, vec!["no-ep/EP"]);
        assert_eq!(report.policy_labels(), vec!["DFIFO", "LAS"]);
    }

    #[test]
    fn windowed_policy_kinds_are_distinct_columns() {
        let report = Experiment::new()
            .app(Application::Jacobi)
            .policies([
                PolicyKind::rgp_las_window(64),
                PolicyKind::rgp_las_window(1024),
            ])
            .run();
        assert_eq!(
            report.policy_labels(),
            vec!["RGP+LAS:w=64", "RGP+LAS:w=1024", "LAS"]
        );
    }

    #[test]
    fn partitioner_ablations_are_distinct_columns() {
        // Partitioner knobs ride the same registry/sweep path as window
        // knobs: one tuned spelling per scheme, each its own column.
        use numadag_core::{PartitionScheme, RgpTuning};
        let report = Experiment::new()
            .app(Application::Jacobi)
            .policies(
                PartitionScheme::all()
                    .map(|s| PolicyKind::rgp_las(RgpTuning::default().with_scheme(s))),
            )
            .run();
        assert_eq!(
            report.policy_labels(),
            vec![
                "RGP+LAS:scheme=ml",
                "RGP+LAS:scheme=rb",
                "RGP+LAS:scheme=bfs",
                "LAS"
            ]
        );
        for label in report.policy_labels() {
            assert!(report.geomean_of(&label).unwrap() > 0.0);
        }
    }

    #[test]
    fn threaded_backend_runs_the_same_sweep() {
        let report = Experiment::new()
            .topology(Topology::two_socket(2))
            .app(Application::NStream)
            .policies([PolicyKind::Dfifo])
            .backend(Backend::Threaded)
            .run();
        assert_eq!(report.backend, "threaded");
        assert_eq!(report.cells.len(), 2);
        for cell in &report.cells {
            assert!(cell.makespan_ns > 0.0);
            assert!(cell.tasks > 0);
        }
    }

    #[test]
    fn report_serializes_to_json() {
        let report = Experiment::new()
            .topology(Topology::two_socket(2))
            .app(Application::NStream)
            .policies([PolicyKind::Dfifo])
            .run();
        let json = report.to_json_string();
        for key in [
            "\"machine\"",
            "\"backend\"",
            "\"baseline\"",
            "\"cells\"",
            "\"aggregates\"",
            "\"speedup_vs_baseline\"",
        ] {
            assert!(json.contains(key), "JSON missing {key}");
        }
    }

    #[test]
    fn backend_labels_parse_back() {
        for backend in [Backend::Simulated, Backend::Threaded, Backend::proc()] {
            assert_eq!(backend.label().parse::<Backend>(), Ok(backend));
        }
        assert!("gpu".parse::<Backend>().is_err());
    }

    #[test]
    fn proc_backend_parses_worker_counts_and_reports_as_simulator() {
        assert_eq!("proc".parse::<Backend>(), Ok(Backend::Proc { workers: 2 }));
        assert_eq!(
            "proc:w=4".parse::<Backend>(),
            Ok(Backend::Proc { workers: 4 })
        );
        assert_eq!(
            "proc:workers=3".parse::<Backend>(),
            Ok(Backend::Proc { workers: 3 })
        );
        assert!("proc:w=0".parse::<Backend>().is_err());
        assert!("proc:w=x".parse::<Backend>().is_err());
        // Proc workers run the deterministic simulator, so measurement
        // reports carry the simulator label and stay baseline-compatible.
        assert_eq!(Backend::proc().label(), "proc");
        assert_eq!(Backend::proc().report_label(), "simulator");
        assert_eq!(Backend::Threaded.report_label(), "threaded");
        assert_eq!(Backend::Simulated.report_label(), "simulator");
    }
}
