//! A real work-pushing / work-stealing thread pool that follows the
//! scheduling policies.
//!
//! One worker thread is spawned per (virtual) core of the topology; the cores
//! of a socket share one task queue, mirroring the socket-level queues of
//! NUMA-aware runtimes. When a task's dependences are satisfied the policy is
//! consulted and the task is *pushed* to the chosen socket's queue; idle
//! workers first drain their own socket's queue and then *steal* from other
//! sockets (nearest first).
//!
//! Idle workers block on a condition variable and are woken precisely: a
//! completing worker notifies only when it published newly ready tasks (or
//! when the last task finished, for termination). There is no timeout
//! polling.
//!
//! The executor runs arbitrary task bodies supplied as a `Fn(TaskId)`
//! callback, so the kernels crate can execute real numerical kernels under
//! every policy and the integration tests can verify that scheduling does not
//! change results. The machine this reproduction runs on is not a NUMA
//! machine, so no performance claims are derived from this executor — the
//! timing claims all come from [`crate::simulator::Simulator`].

use std::collections::VecDeque;

use parking_lot::{Condvar, Mutex};

use numadag_core::{MemoryLocator, SchedulingPolicy};
use numadag_numa::{CoreId, MemoryMap, SocketId, TrafficStats};
use numadag_tdg::{TaskGraphSpec, TaskId};
use numadag_trace::TraceEvent;

use crate::config::{ExecutionConfig, StealMode};
use crate::deferred::apply_deferred_allocation;
use crate::executor::Executor;
use crate::report::ExecutionReport;

/// Shared scheduler state protected by one lock (contention is irrelevant at
/// the scale of the functional tests this executor serves).
struct Shared<'p> {
    queues: Vec<VecDeque<TaskId>>,
    indegree: Vec<usize>,
    memory: MemoryMap,
    stats: TrafficStats,
    policy: &'p mut dyn SchedulingPolicy,
    remaining: usize,
    tasks_per_socket: Vec<usize>,
    stolen: usize,
    deferred_bytes: u64,
}

/// The threaded executor.
pub struct ThreadedExecutor {
    config: ExecutionConfig,
}

impl ThreadedExecutor {
    /// Creates a threaded executor for the given machine configuration. The
    /// number of worker threads equals the number of cores in the topology.
    pub fn new(config: ExecutionConfig) -> Self {
        ThreadedExecutor { config }
    }

    /// The configuration the executor was built with.
    pub fn config(&self) -> &ExecutionConfig {
        &self.config
    }

    /// Executes the workload: `body(task_id)` is invoked exactly once per
    /// task, respecting all dependences, on whichever worker the scheduling
    /// decisions place it. Returns an [`ExecutionReport`] whose `makespan_ns`
    /// is the wall-clock time of the parallel section (placement and traffic
    /// statistics use the same virtual-NUMA bookkeeping as the simulator).
    pub fn run(
        &self,
        spec: &TaskGraphSpec,
        policy: &mut dyn SchedulingPolicy,
        body: &(dyn Fn(TaskId) + Sync),
    ) -> ExecutionReport {
        spec.validate().expect("invalid workload spec");
        let topo = &self.config.topology;
        let num_sockets = topo.num_sockets();
        let n = spec.num_tasks();
        let policy_name = policy.name();

        let mut memory = MemoryMap::new();
        for &size in &spec.region_sizes {
            memory.register(size);
        }
        {
            let locator = MemoryLocator::new(topo, &memory);
            policy.prepare(&spec.graph, &locator);
        }

        let mut shared = Shared {
            queues: vec![VecDeque::new(); num_sockets],
            indegree: (0..n).map(|t| spec.graph.in_degree(TaskId(t))).collect(),
            memory,
            stats: TrafficStats::new(),
            policy,
            remaining: n,
            tasks_per_socket: vec![0; num_sockets],
            stolen: 0,
            deferred_bytes: 0,
        };

        // Seed the queues with the source tasks. Seeding happens before the
        // makespan clock starts (the parallel section is what is measured),
        // so the seeding `Assign` events are stamped 0.0.
        let sink = self.config.trace_sink.as_ref();
        let sources = spec.graph.sources();
        for &task in &sources {
            let socket = {
                let locator = MemoryLocator::new(topo, &shared.memory);
                shared.policy.assign(spec.graph.task(task), &locator)
            };
            shared.queues[socket.index()].push_back(task);
            if sink.is_enabled() {
                sink.record(TraceEvent::Assign {
                    task,
                    socket,
                    time: 0.0,
                });
            }
        }

        let sync = (Mutex::new(shared), Condvar::new());
        let start = std::time::Instant::now();

        std::thread::scope(|scope| {
            for core in topo.cores() {
                let my_socket = topo.socket_of(core);
                let sync = &sync;
                let config = &self.config;
                scope.spawn(move || {
                    worker_loop(spec, config, my_socket, core, start, sync, body);
                });
            }
        });

        let elapsed = start.elapsed();
        let guard = sync.0.lock();
        let mut report = ExecutionReport {
            workload: spec.name.clone(),
            policy: policy_name,
            makespan_ns: elapsed.as_nanos() as f64,
            tasks: n,
            traffic: guard.stats.clone(),
            tasks_per_socket: guard.tasks_per_socket.clone(),
            busy_per_socket: vec![0.0; num_sockets],
            stolen_tasks: guard.stolen,
            deferred_bytes: guard.deferred_bytes,
            policy_wall_ns: 0.0,
            event_loop_wall_ns: 0.0,
            trace: Vec::new(),
        };
        // Busy time is not meaningful for the host machine; report task
        // counts as a proxy so load_imbalance() still says something useful.
        for (s, &count) in guard.tasks_per_socket.iter().enumerate() {
            report.busy_per_socket[s] = count as f64;
        }
        report
    }
}

impl Executor for ThreadedExecutor {
    fn backend_name(&self) -> &'static str {
        "threaded"
    }

    fn config(&self) -> &ExecutionConfig {
        &self.config
    }

    fn execute(&self, spec: &TaskGraphSpec, policy: &mut dyn SchedulingPolicy) -> ExecutionReport {
        self.run(spec, policy, &|_| {})
    }
}

fn worker_loop(
    spec: &TaskGraphSpec,
    config: &ExecutionConfig,
    my_socket: SocketId,
    my_core: CoreId,
    t0: std::time::Instant,
    sync: &(Mutex<Shared<'_>>, Condvar),
    body: &(dyn Fn(TaskId) + Sync),
) {
    let topo = &config.topology;
    let sink = config.trace_sink.as_ref();
    let tracing = sink.is_enabled();
    let (lock, cv) = sync;
    loop {
        // Grab a task: local queue first, then steal (nearest socket first).
        let grabbed = {
            let mut s = lock.lock();
            loop {
                if s.remaining == 0 {
                    return;
                }
                let mut found: Option<(TaskId, bool)> = None;
                if let Some(task) = s.queues[my_socket.index()].pop_front() {
                    found = Some((task, false));
                } else if config.steal == StealMode::NearestSocket {
                    let order = topo.nodes_by_distance(my_socket.node());
                    for node in order {
                        let v = node.socket().index();
                        if v == my_socket.index() {
                            continue;
                        }
                        if let Some(task) = s.queues[v].pop_back() {
                            found = Some((task, true));
                            break;
                        }
                    }
                }
                match found {
                    Some((task, stolen)) => {
                        let now = t0.elapsed().as_nanos() as f64;
                        if tracing {
                            sink.record(TraceEvent::Start {
                                task,
                                socket: my_socket,
                                core: my_core,
                                time: now,
                                stolen,
                            });
                        }
                        // Deferred allocation happens when the task is picked
                        // up by the socket that will actually run it.
                        let node = my_socket.node();
                        let descriptor = spec.graph.task(task);
                        let placed = {
                            let Shared { memory, stats, .. } = &mut *s;
                            apply_deferred_allocation(memory, stats, descriptor, node)
                        };
                        s.deferred_bytes += placed;
                        if tracing && placed > 0 {
                            sink.record(TraceEvent::DeferredAlloc {
                                task,
                                node,
                                bytes: placed,
                                time: now,
                            });
                        }
                        // Account traffic against the virtual NUMA map.
                        for access in &descriptor.accesses {
                            let region_size = s.memory.size_of(access.region).max(1);
                            let per_node = s.memory.bytes_per_node(access.region);
                            for (home, resident) in &per_node.per_node {
                                let scaled = ((*resident as f64) * (access.bytes as f64)
                                    / (region_size as f64))
                                    .round() as u64;
                                if scaled == 0 {
                                    continue;
                                }
                                let dist = topo.distance(node, *home);
                                s.stats.record_access(node, *home, dist, scaled);
                                if tracing {
                                    sink.record(TraceEvent::Traffic {
                                        task,
                                        region: access.region.index(),
                                        from: *home,
                                        to: node,
                                        distance: dist,
                                        bytes: scaled,
                                        time: now,
                                    });
                                }
                            }
                        }
                        s.tasks_per_socket[my_socket.index()] += 1;
                        if stolen {
                            s.stolen += 1;
                        }
                        break task;
                    }
                    None => {
                        // Nothing runnable: sleep until a completion publishes
                        // new ready tasks or the last task finishes. `wait`
                        // releases the lock atomically, so a notification
                        // cannot be missed between the check and the sleep.
                        cv.wait(&mut s);
                    }
                }
            }
        };

        // Execute the real task body outside the lock.
        body(grabbed);

        // Publish completion: release successors and push newly ready tasks.
        let mut s = lock.lock();
        let now = t0.elapsed().as_nanos() as f64;
        if tracing {
            sink.record(TraceEvent::Finish {
                task: grabbed,
                socket: my_socket,
                core: my_core,
                time: now,
            });
        }
        s.remaining -= 1;
        let mut newly_ready = Vec::new();
        for &(succ, _) in spec.graph.successors(grabbed) {
            s.indegree[succ.index()] -= 1;
            if s.indegree[succ.index()] == 0 {
                newly_ready.push(succ);
            }
        }
        let published = !newly_ready.is_empty();
        for ready in newly_ready {
            let socket = {
                let Shared { memory, policy, .. } = &mut *s;
                let locator = MemoryLocator::new(topo, memory);
                policy.assign(spec.graph.task(ready), &locator)
            };
            s.queues[socket.index()].push_back(ready);
            if tracing {
                sink.record(TraceEvent::Assign {
                    task: ready,
                    socket,
                    time: now,
                });
            }
        }
        let finished = s.remaining == 0;
        drop(s);
        // Precise wakeups: only a task-ready transition or termination can
        // unblock a sleeping worker. `notify_all` (not `notify_one`) because
        // with stealing disabled only the pushed-to socket's workers can take
        // the task, and the condvar cannot target a socket.
        if published || finished {
            cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numadag_core::{DfifoPolicy, LasPolicy, RgpPolicy};
    use numadag_numa::Topology;
    use numadag_tdg::{TaskSpec, TdgBuilder};
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A reduction tree: `leaves` leaf tasks each produce a value; inner
    /// tasks sum pairs. The final task must see the sum of all leaves
    /// regardless of scheduling.
    fn reduction_spec(leaves: usize) -> (TaskGraphSpec, usize) {
        let mut b = TdgBuilder::new();
        let regions: Vec<_> = (0..2 * leaves - 1).map(|_| b.region(8)).collect();
        // Leaf tasks write regions [0, leaves).
        for r in regions.iter().take(leaves) {
            b.submit(TaskSpec::new("leaf").work(1.0).writes(*r, 8));
        }
        // Inner tasks: region leaves+i = sum of regions 2i and 2i+1.
        let mut next = leaves;
        let mut frontier: Vec<usize> = (0..leaves).collect();
        while frontier.len() > 1 {
            let mut new_frontier = Vec::new();
            for pair in frontier.chunks(2) {
                if pair.len() == 2 {
                    b.submit(
                        TaskSpec::new("sum")
                            .work(1.0)
                            .reads(regions[pair[0]], 8)
                            .reads(regions[pair[1]], 8)
                            .writes(regions[next], 8),
                    );
                    new_frontier.push(next);
                    next += 1;
                } else {
                    new_frontier.push(pair[0]);
                }
            }
            frontier = new_frontier;
        }
        let root = frontier[0];
        let (g, sizes) = b.finish();
        (TaskGraphSpec::new("reduction", g, sizes), root)
    }

    #[test]
    fn executes_every_task_exactly_once() {
        let (spec, _) = reduction_spec(32);
        let counter = AtomicU64::new(0);
        let executed: Vec<AtomicU64> = (0..spec.num_tasks()).map(|_| AtomicU64::new(0)).collect();
        let exec = ThreadedExecutor::new(ExecutionConfig::new(Topology::two_socket(2)));
        let mut policy = DfifoPolicy::new();
        let report = exec.run(&spec, &mut policy, &|t| {
            executed[t.index()].fetch_add(1, Ordering::SeqCst);
            counter.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst) as usize, spec.num_tasks());
        assert!(executed.iter().all(|e| e.load(Ordering::SeqCst) == 1));
        assert_eq!(
            report.tasks_per_socket.iter().sum::<usize>(),
            spec.num_tasks()
        );
    }

    #[test]
    fn dependences_are_respected() {
        // A chain: each task appends its index; the result must be ordered.
        let mut b = TdgBuilder::new();
        let r = b.region(8);
        for i in 0..64 {
            b.submit(TaskSpec::new(format!("s{i}")).work(1.0).reads_writes(r, 8));
        }
        let (g, sizes) = b.finish();
        let spec = TaskGraphSpec::new("chain", g, sizes);
        let log = Mutex::new(Vec::new());
        let exec = ThreadedExecutor::new(ExecutionConfig::new(Topology::two_socket(2)));
        let mut policy = LasPolicy::new(1);
        exec.run(&spec, &mut policy, &|t| {
            log.lock().push(t.index());
        });
        let log = log.into_inner();
        assert_eq!(log, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn reduction_result_is_policy_independent() {
        let (spec, _) = reduction_spec(16);
        let run = |policy: &mut dyn SchedulingPolicy| {
            // values[r] holds the value of region r; leaves write 1.0.
            let values: Vec<Mutex<f64>> =
                (0..spec.num_regions()).map(|_| Mutex::new(0.0)).collect();
            let exec = ThreadedExecutor::new(ExecutionConfig::new(Topology::four_socket(1)));
            exec.run(&spec, policy, &|t| {
                let task = spec.graph.task(t);
                if task.kind == "leaf" {
                    let out = task.accesses[0].region.index();
                    *values[out].lock() = 1.0;
                } else {
                    let a = task.accesses[0].region.index();
                    let b = task.accesses[1].region.index();
                    let out = task.accesses[2].region.index();
                    let sum = *values[a].lock() + *values[b].lock();
                    *values[out].lock() = sum;
                }
            });
            let root = spec.num_regions() - 1;
            let v = *values[root].lock();
            v
        };
        assert_eq!(run(&mut DfifoPolicy::new()), 16.0);
        assert_eq!(run(&mut LasPolicy::new(9)), 16.0);
        assert_eq!(run(&mut RgpPolicy::rgp_las()), 16.0);
    }

    #[test]
    fn traffic_bookkeeping_matches_simulator_semantics() {
        let (spec, _) = reduction_spec(8);
        let exec = ThreadedExecutor::new(ExecutionConfig::new(Topology::two_socket(2)));
        let mut policy = LasPolicy::new(4);
        let report = exec.run(&spec, &mut policy, &|_| {});
        // Every leaf region is deferred-allocated exactly once.
        assert!(report.deferred_bytes >= 8 * 8);
        assert!(report.traffic.total_bytes() > 0);
        assert_eq!(report.tasks, spec.num_tasks());
    }

    #[test]
    fn no_stealing_mode_terminates_with_precise_wakeups() {
        // A chain forces repeated sleep/wake cycles: only one task is ever
        // ready, and under NoStealing only the pushed-to socket may run it.
        // With imprecise notifications this test would hang.
        let mut b = TdgBuilder::new();
        let r = b.region(8);
        for _ in 0..128 {
            b.submit(TaskSpec::new("link").work(1.0).reads_writes(r, 8));
        }
        let (g, sizes) = b.finish();
        let spec = TaskGraphSpec::new("chain", g, sizes);
        let config =
            ExecutionConfig::new(Topology::four_socket(2)).with_steal(StealMode::NoStealing);
        let exec = ThreadedExecutor::new(config);
        let counter = AtomicU64::new(0);
        let mut policy = DfifoPolicy::new();
        let report = exec.run(&spec, &mut policy, &|_| {
            counter.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 128);
        assert_eq!(report.stolen_tasks, 0);
    }

    #[test]
    fn trace_sink_sees_a_complete_wall_clock_trace() {
        use numadag_trace::{MemorySink, Trace};
        use std::sync::Arc;
        let (spec, _) = reduction_spec(16);
        let sink = Arc::new(MemorySink::new());
        let cfg = ExecutionConfig::new(Topology::two_socket(2)).with_trace_sink(sink.clone());
        let exec = ThreadedExecutor::new(cfg);
        let mut policy = LasPolicy::new(4);
        let report = exec.run(&spec, &mut policy, &|_| {});
        let trace = Trace {
            workload: spec.name.to_string(),
            policy: report.policy.to_string(),
            backend: "threaded".to_string(),
            scale: "custom".to_string(),
            repetition: 0,
            tasks: spec.num_tasks(),
            num_sockets: 2,
            makespan_ns: report.makespan_ns,
            events: sink.take(),
        };
        trace.validate().expect("threaded trace must be complete");
        assert_eq!(
            trace.traffic_matrix().total_bytes(),
            report.traffic.total_bytes()
        );
        // Wall-clock ordering: every task finishes no earlier than it starts.
        for interval in trace.task_intervals().into_iter().flatten() {
            assert!(interval.end >= interval.start);
        }
    }

    #[test]
    fn empty_workload_returns_immediately() {
        let (g, sizes) = TdgBuilder::new().finish();
        let spec = TaskGraphSpec::new("empty", g, sizes);
        let exec = ThreadedExecutor::new(ExecutionConfig::new(Topology::two_socket(2)));
        let mut policy = DfifoPolicy::new();
        let report = exec.run(&spec, &mut policy, &|_| panic!("no tasks to run"));
        assert_eq!(report.tasks, 0);
    }

    #[test]
    fn execute_via_trait_object_matches_run() {
        let (spec, _) = reduction_spec(8);
        let exec: Box<dyn Executor> = Box::new(ThreadedExecutor::new(ExecutionConfig::new(
            Topology::two_socket(2),
        )));
        assert_eq!(exec.backend_name(), "threaded");
        let mut policy = LasPolicy::new(4);
        let report = exec.execute(&spec, &mut policy);
        assert_eq!(report.tasks, spec.num_tasks());
        assert_eq!(
            report.tasks_per_socket.iter().sum::<usize>(),
            spec.num_tasks()
        );
    }
}
