//! Index-keyed min-heap of simulator events over a preallocated slab.
//!
//! The discrete-event simulator has at most one in-flight completion event
//! per core, so the event "slab" is simply a vector indexed by core id and
//! the heap orders core indices by the `(time, seq)` key of the event each
//! slot holds. Compared to a `BinaryHeap<Event>` rebuilt per cell, this
//! structure allocates nothing after the first run of a sweep: both the slab
//! and the heap vector are reset (not freed) between cells.
//!
//! `(time, seq)` is a total order — `seq` is unique per event — so any
//! correct min-heap pops events in exactly the same order as the previous
//! `BinaryHeap` implementation. Determinism of the simulation therefore does
//! not depend on heap internals, and the swap is bit-identical by
//! construction (a property the `event_queue_equivalence` proptest pins
//! down).

use std::cmp::Ordering;

use numadag_numa::CoreId;
use numadag_tdg::TaskId;

/// A task-completion event in the simulation clock.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// Simulated completion time (ns).
    pub time: f64,
    /// Tie-breaker: monotonically increasing push sequence number. Unique,
    /// which makes `(time, seq)` a total order.
    pub seq: u64,
    /// The completing task.
    pub task: TaskId,
    /// The core it ran on. Doubles as the slab slot index: a core has at
    /// most one event in flight.
    pub core: CoreId,
}

impl Event {
    #[inline]
    fn key_lt(&self, other: &Event) -> bool {
        match self.time.total_cmp(&other.time) {
            Ordering::Less => true,
            Ordering::Greater => false,
            Ordering::Equal => self.seq < other.seq,
        }
    }
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering so a `BinaryHeap<Event>` is a min-heap on
        // (time, seq) — kept for the equivalence tests against the reference
        // implementation.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Min-heap of events keyed on `(time, seq)`, storing core indices into a
/// preallocated per-core slab. `reset` reuses both allocations across runs.
#[derive(Debug, Default)]
pub struct EventQueue {
    /// One slot per core; slot `c` holds the in-flight event of core `c`
    /// (stale once popped — the heap is the source of truth for liveness).
    slab: Vec<Event>,
    /// Heap of live slot indices, min on the slot's `(time, seq)`.
    heap: Vec<u32>,
}

impl EventQueue {
    /// An empty queue; call [`EventQueue::reset`] before use.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Clears the queue and sizes the slab for `num_cores` slots.
    pub fn reset(&mut self, num_cores: usize) {
        self.heap.clear();
        let filler = Event {
            time: 0.0,
            seq: 0,
            task: TaskId(0),
            core: CoreId(0),
        };
        self.slab.clear();
        self.slab.resize(num_cores, filler);
        if self.heap.capacity() < num_cores {
            self.heap.reserve(num_cores - self.heap.capacity());
        }
    }

    /// Number of in-flight events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no event is in flight.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Inserts a completion event. The event's core must not already have an
    /// event in flight (guaranteed by the simulator: a core runs one task at
    /// a time).
    pub fn push(&mut self, event: Event) {
        let slot = event.core.index();
        debug_assert!(slot < self.slab.len(), "core {slot} outside slab");
        debug_assert!(
            !self.heap.contains(&(slot as u32)),
            "core {slot} already has an event in flight"
        );
        self.slab[slot] = event;
        self.heap.push(slot as u32);
        self.sift_up(self.heap.len() - 1);
    }

    /// Removes and returns the event with the smallest `(time, seq)`.
    pub fn pop(&mut self) -> Option<Event> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap.swap_remove(0);
        if !self.heap.is_empty() {
            self.sift_down(0);
        }
        Some(self.slab[top as usize])
    }

    #[inline]
    fn lt(&self, a: u32, b: u32) -> bool {
        self.slab[a as usize].key_lt(&self.slab[b as usize])
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if !self.lt(self.heap[i], self.heap[parent]) {
                break;
            }
            self.heap.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.heap.len();
        loop {
            let left = 2 * i + 1;
            if left >= n {
                break;
            }
            let right = left + 1;
            let mut best = left;
            if right < n && self.lt(self.heap[right], self.heap[left]) {
                best = right;
            }
            if !self.lt(self.heap[best], self.heap[i]) {
                break;
            }
            self.heap.swap(i, best);
            i = best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    fn ev(time: f64, seq: u64, core: usize) -> Event {
        Event {
            time,
            seq,
            task: TaskId(seq as usize),
            core: CoreId(core),
        }
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = EventQueue::new();
        q.reset(4);
        q.push(ev(5.0, 1, 0));
        q.push(ev(3.0, 2, 1));
        q.push(ev(3.0, 3, 2));
        q.push(ev(1.0, 4, 3));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.seq).collect();
        assert_eq!(order, vec![4, 2, 3, 1]);
        assert!(q.is_empty());
    }

    #[test]
    fn slot_reuse_after_pop() {
        let mut q = EventQueue::new();
        q.reset(2);
        q.push(ev(1.0, 1, 0));
        q.push(ev(2.0, 2, 1));
        assert_eq!(q.pop().unwrap().seq, 1);
        // Core 0 finished; it can carry a new event.
        q.push(ev(1.5, 3, 0));
        assert_eq!(q.pop().unwrap().seq, 3);
        assert_eq!(q.pop().unwrap().seq, 2);
        assert!(q.pop().is_none());
    }

    #[test]
    fn reset_clears_previous_contents() {
        let mut q = EventQueue::new();
        q.reset(2);
        q.push(ev(1.0, 1, 0));
        q.reset(2);
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    fn matches_binary_heap_on_interleaved_ops() {
        // Deterministic pseudo-random interleaving of pushes and pops with
        // heavy timestamp ties, mirroring the simulator's access pattern
        // (push after pop frees the same core slot).
        let mut q = EventQueue::new();
        let cores = 8;
        q.reset(cores);
        let mut reference: BinaryHeap<Event> = BinaryHeap::new();
        let mut free: Vec<usize> = (0..cores).rev().collect();
        let mut state = 0x243F_6A88_85A3_08D3u64;
        let mut seq = 0u64;
        for _ in 0..2000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let do_push = !free.is_empty() && (reference.is_empty() || !state.is_multiple_of(3));
            if do_push {
                let core = free.pop().unwrap();
                seq += 1;
                // Coarse times force (time, seq) ties to matter.
                let e = ev(((state >> 32) % 4) as f64, seq, core);
                q.push(e);
                reference.push(e);
            } else {
                let got = q.pop().unwrap();
                let want = reference.pop().unwrap();
                assert_eq!(got, want, "divergence at seq {}", want.seq);
                free.push(got.core.index());
            }
        }
        while let Some(want) = reference.pop() {
            assert_eq!(q.pop().unwrap(), want);
        }
        assert!(q.is_empty());
    }
}
