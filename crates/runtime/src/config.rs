//! Executor configuration.

use std::sync::Arc;

use numadag_numa::{CostModel, Topology};
use numadag_trace::{NullSink, TraceSink};

/// What an idle core does when its socket's queue is empty.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum StealMode {
    /// Steal from the nearest socket (by NUMA distance) that has queued
    /// tasks. This is how socket-aware runtimes (Nanos++, OpenStream) behave
    /// and is the default.
    #[default]
    NearestSocket,
    /// Never steal: cores only execute tasks pushed to their own socket.
    /// Exposes the raw load imbalance of a policy (used by ablations/tests).
    NoStealing,
}

/// Configuration shared by the executors.
#[derive(Clone)]
pub struct ExecutionConfig {
    /// Machine topology (sockets, cores, distances).
    pub topology: Topology,
    /// Cost model translating bytes and work units into simulated time.
    pub cost_model: CostModel,
    /// Work-stealing behaviour of idle cores.
    pub steal: StealMode,
    /// Whether to collect a per-task placement trace in the report.
    pub collect_trace: bool,
    /// Seed forwarded to components that need randomness (none in the
    /// simulator itself — determinism comes from the policies' own seeds).
    pub seed: u64,
    /// Whether the simulator accumulates per-stage wall time (policy vs
    /// event loop) into the report. Costs two clock reads per assignment
    /// batch in the hot loop, so it is off unless a timing report was asked
    /// for (`figure1 --json-timing` turns it on).
    pub stage_timing: bool,
    /// Where executors emit [`numadag_trace::TraceEvent`]s. The default
    /// [`NullSink`] reports itself disabled, so both executors skip event
    /// construction entirely — tracing is zero-cost unless a real sink
    /// (e.g. a [`numadag_trace::MemorySink`]) is installed via
    /// [`ExecutionConfig::with_trace_sink`].
    pub trace_sink: Arc<dyn TraceSink>,
}

impl std::fmt::Debug for ExecutionConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecutionConfig")
            .field("topology", &self.topology)
            .field("cost_model", &self.cost_model)
            .field("steal", &self.steal)
            .field("collect_trace", &self.collect_trace)
            .field("seed", &self.seed)
            .field("trace_sink_enabled", &self.trace_sink.is_enabled())
            .finish()
    }
}

impl ExecutionConfig {
    /// Configuration for the paper's evaluation machine (bullion S16,
    /// 8 sockets × 4 cores) with the default cost model.
    pub fn bullion_s16() -> Self {
        ExecutionConfig::new(Topology::bullion_s16())
    }

    /// Configuration for an arbitrary topology with the default cost model.
    pub fn new(topology: Topology) -> Self {
        ExecutionConfig {
            topology,
            cost_model: CostModel::default(),
            steal: StealMode::default(),
            collect_trace: false,
            seed: 0xE0,
            stage_timing: false,
            trace_sink: Arc::new(NullSink),
        }
    }

    /// Replaces the cost model.
    pub fn with_cost_model(mut self, cost_model: CostModel) -> Self {
        self.cost_model = cost_model;
        self
    }

    /// Replaces the stealing mode.
    pub fn with_steal(mut self, steal: StealMode) -> Self {
        self.steal = steal;
        self
    }

    /// Enables the per-task placement trace.
    pub fn with_trace(mut self) -> Self {
        self.collect_trace = true;
        self
    }

    /// Enables per-stage wall-time accounting in the simulator (see
    /// [`ExecutionConfig::stage_timing`]).
    pub fn with_stage_timing(mut self) -> Self {
        self.stage_timing = true;
        self
    }

    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Installs a trace sink both executors emit
    /// [`numadag_trace::TraceEvent`]s into (default: the disabled
    /// [`NullSink`]).
    pub fn with_trace_sink(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.trace_sink = sink;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bullion_preset_matches_paper_machine() {
        let cfg = ExecutionConfig::bullion_s16();
        assert_eq!(cfg.topology.num_sockets(), 8);
        assert_eq!(cfg.topology.num_cores(), 32);
        assert_eq!(cfg.steal, StealMode::NearestSocket);
        assert!(!cfg.collect_trace);
    }

    #[test]
    fn builder_methods_chain() {
        let cfg = ExecutionConfig::new(Topology::two_socket(2))
            .with_cost_model(CostModel::flat())
            .with_steal(StealMode::NoStealing)
            .with_trace()
            .with_seed(99);
        assert_eq!(cfg.cost_model, CostModel::flat());
        assert_eq!(cfg.steal, StealMode::NoStealing);
        assert!(cfg.collect_trace);
        assert_eq!(cfg.seed, 99);
    }

    #[test]
    fn trace_sink_defaults_disabled_and_installs() {
        use numadag_trace::MemorySink;
        let cfg = ExecutionConfig::new(Topology::two_socket(2));
        assert!(!cfg.trace_sink.is_enabled());
        assert!(format!("{cfg:?}").contains("trace_sink_enabled: false"));
        let cfg = cfg.with_trace_sink(Arc::new(MemorySink::new()));
        assert!(cfg.trace_sink.is_enabled());
    }
}
