//! Loading and diffing sweep reports: how `BENCH_*.json` perf baselines are
//! regenerated and compared without hand-rolled `jq` pipelines.
//!
//! [`SweepReport::from_json_str`] parses a report the workspace previously
//! serialized (either measurement-only or with the timing section), and
//! [`SweepReport::diff`] compares two reports cell by cell, keyed by
//! (application, scale, policy, repetition) — never by cell order. Timing
//! sections are ignored: wall-clock accounting varies run to run and must
//! not make a baseline comparison fail. The `ablation bench-diff` CLI mode
//! wraps this for the command line, and CI uses it to assert that a
//! regenerated `BENCH_figure1_tiny.json` is measurement-identical to the
//! committed one.

use serde::Value;

use crate::driver::SweepTiming;
use crate::experiment::{SweepAggregate, SweepCell, SweepReport};

/// The changes one measurement field underwent between two reports.
#[derive(Clone, Debug, PartialEq)]
pub struct FieldDelta {
    /// Field name (`"makespan_ns"`, `"speedup_vs_baseline"`, …).
    pub field: &'static str,
    /// Value in `self` (the report `diff` was called on).
    pub before: f64,
    /// Value in `other`.
    pub after: f64,
}

/// All measurement changes of one cell, keyed like the report cells.
#[derive(Clone, Debug, PartialEq)]
pub struct CellDelta {
    /// `application/scale/policy/rep` key of the cell.
    pub key: String,
    /// Every measurement field whose value changed.
    pub fields: Vec<FieldDelta>,
}

/// The structured difference between two [`SweepReport`]s. Empty
/// ([`SweepDiff::is_empty`]) when every measurement matches; timing
/// sections are never compared.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SweepDiff {
    /// Header fields that differ, as `"field: before -> after"` lines
    /// (machine, backend, baseline, seed, repetitions).
    pub header: Vec<String>,
    /// Cell keys (or `"aggregate scale/policy"` entries) present only in
    /// `other`.
    pub added: Vec<String>,
    /// Cell keys (or `"aggregate scale/policy"` entries) present only in
    /// `self`.
    pub removed: Vec<String>,
    /// Cells present in both whose measurements differ.
    pub changed: Vec<CellDelta>,
    /// `scale/policy` aggregates present in both reports whose geomean
    /// changed, with before/after (aggregates present in only one report go
    /// to `added`/`removed`).
    pub aggregates: Vec<(String, f64, f64)>,
    /// Skip-list entries that appear in exactly one report, as
    /// `"+entry"`/`"-entry"` lines.
    pub skipped: Vec<String>,
}

impl SweepDiff {
    /// True when the two reports are measurement-identical.
    pub fn is_empty(&self) -> bool {
        self.header.is_empty()
            && self.added.is_empty()
            && self.removed.is_empty()
            && self.changed.is_empty()
            && self.aggregates.is_empty()
            && self.skipped.is_empty()
    }
}

impl std::fmt::Display for SweepDiff {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_empty() {
            return writeln!(f, "reports are measurement-identical");
        }
        for line in &self.header {
            writeln!(f, "header   {line}")?;
        }
        for key in &self.removed {
            writeln!(f, "removed  {key}")?;
        }
        for key in &self.added {
            writeln!(f, "added    {key}")?;
        }
        for cell in &self.changed {
            for delta in &cell.fields {
                let rel = if delta.before != 0.0 {
                    format!(
                        " ({:+.2}%)",
                        100.0 * (delta.after - delta.before) / delta.before
                    )
                } else {
                    String::new()
                };
                writeln!(
                    f,
                    "changed  {:<58} {:<20} {} -> {}{rel}",
                    cell.key, delta.field, delta.before, delta.after
                )?;
            }
        }
        for (key, before, after) in &self.aggregates {
            writeln!(
                f,
                "geomean  {key:<58} {before:.6} -> {after:.6} ({:+.2}%)",
                100.0 * (after - before) / before
            )?;
        }
        for line in &self.skipped {
            writeln!(f, "skipped  {line}")?;
        }
        Ok(())
    }
}

/// Cell key used for matching across reports.
fn cell_key(cell: &SweepCell) -> String {
    format!(
        "{}/{}/{}/rep{}",
        cell.application, cell.scale, cell.policy, cell.repetition
    )
}

impl SweepReport {
    /// Compares `self` (typically the committed baseline) against `other`
    /// (typically a fresh regeneration). Cells are matched by
    /// (application, scale, policy, repetition), so reorderings do not
    /// register as changes; timing sections are ignored entirely.
    pub fn diff(&self, other: &SweepReport) -> SweepDiff {
        let mut diff = SweepDiff::default();

        for (field, before, after) in [
            ("machine", &self.machine, &other.machine),
            ("backend", &self.backend, &other.backend),
            ("baseline", &self.baseline, &other.baseline),
        ] {
            if before != after {
                diff.header
                    .push(format!("{field}: {before:?} -> {after:?}"));
            }
        }
        if self.seed != other.seed {
            diff.header
                .push(format!("seed: {} -> {}", self.seed, other.seed));
        }
        if self.repetitions != other.repetitions {
            diff.header.push(format!(
                "repetitions: {} -> {}",
                self.repetitions, other.repetitions
            ));
        }

        for cell in &self.cells {
            let key = cell_key(cell);
            match other.cells.iter().find(|c| cell_key(c) == key) {
                None => diff.removed.push(key),
                Some(theirs) => {
                    let fields: Vec<FieldDelta> = [
                        ("tasks", cell.tasks as f64, theirs.tasks as f64),
                        ("makespan_ns", cell.makespan_ns, theirs.makespan_ns),
                        (
                            "speedup_vs_baseline",
                            cell.speedup_vs_baseline,
                            theirs.speedup_vs_baseline,
                        ),
                        ("local_fraction", cell.local_fraction, theirs.local_fraction),
                        ("load_imbalance", cell.load_imbalance, theirs.load_imbalance),
                        ("steal_fraction", cell.steal_fraction, theirs.steal_fraction),
                        (
                            "deferred_bytes",
                            cell.deferred_bytes as f64,
                            theirs.deferred_bytes as f64,
                        ),
                    ]
                    .into_iter()
                    .filter(|(_, before, after)| before != after)
                    .map(|(field, before, after)| FieldDelta {
                        field,
                        before,
                        after,
                    })
                    .collect();
                    if !fields.is_empty() {
                        diff.changed.push(CellDelta { key, fields });
                    }
                }
            }
        }
        for cell in &other.cells {
            let key = cell_key(cell);
            if !self.cells.iter().any(|c| cell_key(c) == key) {
                diff.added.push(key);
            }
        }

        for agg in &self.aggregates {
            let key = format!("{}/{}", agg.scale, agg.policy);
            match other
                .aggregates
                .iter()
                .find(|a| a.scale == agg.scale && a.policy == agg.policy)
            {
                None => diff.removed.push(format!("aggregate {key}")),
                Some(theirs) if theirs.geomean_speedup != agg.geomean_speedup => {
                    diff.aggregates
                        .push((key, agg.geomean_speedup, theirs.geomean_speedup));
                }
                Some(_) => {}
            }
        }
        for agg in &other.aggregates {
            if !self
                .aggregates
                .iter()
                .any(|a| a.scale == agg.scale && a.policy == agg.policy)
            {
                diff.added
                    .push(format!("aggregate {}/{}", agg.scale, agg.policy));
            }
        }

        for entry in &self.skipped {
            if !other.skipped.contains(entry) {
                diff.skipped.push(format!("-{entry}"));
            }
        }
        for entry in &other.skipped {
            if !self.skipped.contains(entry) {
                diff.skipped.push(format!("+{entry}"));
            }
        }

        diff
    }

    /// Parses a report previously serialized by [`SweepReport::to_json_string`]
    /// or [`SweepReport::to_json_string_with_timing`]. A missing timing
    /// section parses as zeroed accounting.
    pub fn from_json_str(text: &str) -> Result<SweepReport, String> {
        let value = serde_json::from_str(text).map_err(|e| format!("invalid JSON: {e}"))?;
        let cells = get_array(&value, "cells")?
            .iter()
            .map(parse_cell)
            .collect::<Result<Vec<_>, _>>()?;
        let aggregates = get_array(&value, "aggregates")?
            .iter()
            .map(parse_aggregate)
            .collect::<Result<Vec<_>, _>>()?;
        let skipped = get_array(&value, "skipped")?
            .iter()
            .map(|v| {
                v.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| "skipped entries must be strings".to_string())
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(SweepReport {
            machine: get_str(&value, "machine")?,
            backend: get_str(&value, "backend")?,
            baseline: get_str(&value, "baseline")?,
            seed: get_u64(&value, "seed")?,
            repetitions: get_u64(&value, "repetitions")? as usize,
            cells,
            aggregates,
            skipped,
            timing: value
                .get("timing")
                .map(parse_timing)
                .transpose()?
                .unwrap_or_default(),
        })
    }
}

fn get_str(value: &Value, key: &str) -> Result<String, String> {
    value
        .get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field {key:?}"))
}

fn get_f64(value: &Value, key: &str) -> Result<f64, String> {
    value
        .get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("missing numeric field {key:?}"))
}

fn get_u64(value: &Value, key: &str) -> Result<u64, String> {
    value
        .get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing integer field {key:?}"))
}

fn get_array<'v>(value: &'v Value, key: &str) -> Result<&'v Vec<Value>, String> {
    value
        .get(key)
        .and_then(Value::as_array)
        .ok_or_else(|| format!("missing array field {key:?}"))
}

fn parse_cell(value: &Value) -> Result<SweepCell, String> {
    Ok(SweepCell {
        application: get_str(value, "application")?,
        scale: get_str(value, "scale")?,
        policy: get_str(value, "policy")?,
        repetition: get_u64(value, "repetition")? as usize,
        tasks: get_u64(value, "tasks")? as usize,
        makespan_ns: get_f64(value, "makespan_ns")?,
        speedup_vs_baseline: get_f64(value, "speedup_vs_baseline")?,
        local_fraction: get_f64(value, "local_fraction")?,
        load_imbalance: get_f64(value, "load_imbalance")?,
        steal_fraction: get_f64(value, "steal_fraction")?,
        deferred_bytes: get_u64(value, "deferred_bytes")?,
    })
}

fn parse_aggregate(value: &Value) -> Result<SweepAggregate, String> {
    Ok(SweepAggregate {
        scale: get_str(value, "scale")?,
        policy: get_str(value, "policy")?,
        geomean_speedup: get_f64(value, "geomean_speedup")?,
        applications: get_u64(value, "applications")? as usize,
    })
}

fn parse_timing(value: &Value) -> Result<SweepTiming, String> {
    Ok(SweepTiming {
        jobs: get_u64(value, "jobs")? as usize,
        total_wall_ns: get_f64(value, "total_wall_ns")?,
        build_wall_ns: get_f64(value, "build_wall_ns")?,
        run_wall_ns: get_f64(value, "run_wall_ns")?,
        spec_builds: get_u64(value, "spec_builds")? as usize,
        spec_cache_hits: get_u64(value, "spec_cache_hits")? as usize,
        // Global-cache counters arrived with the sweep service; reports
        // written before then simply lack the fields.
        spec_cache_total_builds: get_u64(value, "spec_cache_total_builds").unwrap_or(0) as usize,
        spec_cache_total_hits: get_u64(value, "spec_cache_total_hits").unwrap_or(0) as usize,
        cell_wall_ns: get_array(value, "cell_wall_ns")?
            .iter()
            .map(|v| {
                v.as_f64()
                    .ok_or_else(|| "cell_wall_ns entries must be numbers".to_string())
            })
            .collect::<Result<Vec<_>, _>>()?,
        // Partition-cost vectors arrived after the first timed reports were
        // written; older files simply have none.
        cell_partition_windows: match get_array(value, "cell_partition_windows") {
            Ok(values) => values
                .iter()
                .map(|v| {
                    v.as_u64().map(|n| n as usize).ok_or_else(|| {
                        "cell_partition_windows entries must be integers".to_string()
                    })
                })
                .collect::<Result<Vec<_>, _>>()?,
            Err(_) => Vec::new(),
        },
        cell_partition_wall_ns: parse_f64_vec(value, "cell_partition_wall_ns")?,
        // Per-stage vectors (policy vs event loop) arrived with the hot-path
        // overhaul; older reports lack them.
        cell_policy_wall_ns: parse_f64_vec(value, "cell_policy_wall_ns")?,
        cell_event_loop_wall_ns: parse_f64_vec(value, "cell_event_loop_wall_ns")?,
    })
}

/// Parses an optional array of numbers from a timing section: a missing key
/// yields an empty vector (reports written before the field existed), a
/// present key with non-numeric entries is an error.
fn parse_f64_vec(value: &Value, key: &str) -> Result<Vec<f64>, String> {
    match get_array(value, key) {
        Ok(values) => values
            .iter()
            .map(|v| {
                v.as_f64()
                    .ok_or_else(|| format!("{key} entries must be numbers"))
            })
            .collect(),
        Err(_) => Ok(Vec::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Experiment;
    use numadag_core::PolicyKind;
    use numadag_kernels::{Application, ProblemScale};

    fn report() -> SweepReport {
        Experiment::new()
            .apps([Application::Jacobi, Application::NStream])
            .scale(ProblemScale::Tiny)
            .policies([PolicyKind::Dfifo, PolicyKind::RgpLas])
            .seed(7)
            .run()
    }

    #[test]
    fn json_round_trip_preserves_every_measurement() {
        let original = report();
        for text in [
            original.to_json_string(),
            original.to_json_string_with_timing(),
        ] {
            let reparsed = SweepReport::from_json_str(&text).unwrap();
            assert_eq!(reparsed.to_json_string(), original.to_json_string());
            assert!(original.diff(&reparsed).is_empty());
        }
        // The timing section itself round-trips through the full spelling.
        let full = SweepReport::from_json_str(&original.to_json_string_with_timing()).unwrap();
        assert_eq!(full.timing.cell_wall_ns.len(), original.cells.len());
        assert_eq!(full.timing.spec_builds, original.timing.spec_builds);
    }

    #[test]
    fn identical_reports_diff_empty() {
        let a = report();
        let b = report();
        let diff = a.diff(&b);
        assert!(diff.is_empty(), "{diff}");
        assert!(diff.to_string().contains("measurement-identical"));
    }

    #[test]
    fn timing_differences_are_invisible_to_diff() {
        let a = report();
        let mut b = report();
        b.timing.total_wall_ns = 1e12;
        b.timing.cell_wall_ns.iter_mut().for_each(|ns| *ns *= 3.0);
        assert!(a.diff(&b).is_empty());
    }

    #[test]
    fn measurement_changes_are_keyed_not_positional() {
        let a = report();
        let mut b = report();
        // Reordering cells alone is not a difference…
        b.cells.reverse();
        assert!(a.diff(&b).is_empty());
        // …but changing a measurement is, under its key.
        let i = b
            .cells
            .iter()
            .position(|c| c.application == "Jacobi" && c.policy == "RGP+LAS")
            .unwrap();
        b.cells[i].makespan_ns *= 2.0;
        let diff = a.diff(&b);
        assert_eq!(diff.changed.len(), 1);
        assert_eq!(diff.changed[0].key, "Jacobi/Tiny/RGP+LAS/rep0");
        assert!(diff.changed[0]
            .fields
            .iter()
            .any(|d| d.field == "makespan_ns"));
        let rendered = diff.to_string();
        assert!(rendered.contains("makespan_ns"), "{rendered}");
    }

    #[test]
    fn added_removed_and_skips_are_reported() {
        let a = report();
        let mut b = report();
        let moved = b.cells.pop().unwrap();
        b.skipped
            .push(format!("{}/{}", moved.application, moved.policy));
        let diff = a.diff(&b);
        assert_eq!(diff.removed.len(), 1);
        assert!(diff.added.is_empty());
        assert_eq!(diff.skipped.len(), 1);
        assert!(diff.skipped[0].starts_with('+'));
        assert!(!diff.is_empty());
        // The reverse direction flips the signs.
        let reverse = b.diff(&a);
        assert_eq!(reverse.added.len(), 1);
        assert!(reverse.skipped[0].starts_with('-'));
    }

    #[test]
    fn header_and_aggregate_changes_are_reported() {
        let a = report();
        let mut b = report();
        b.seed = 8;
        b.aggregates[0].geomean_speedup += 0.5;
        let diff = a.diff(&b);
        assert_eq!(diff.header, vec!["seed: 7 -> 8"]);
        assert_eq!(diff.aggregates.len(), 1);
        // An aggregate present in only one report is an add/remove, not a
        // NaN-valued change.
        let dropped = b.aggregates.remove(1);
        let diff = a.diff(&b);
        assert!(diff
            .removed
            .contains(&format!("aggregate {}/{}", dropped.scale, dropped.policy)));
        assert!(diff
            .aggregates
            .iter()
            .all(|(_, x, y)| x.is_finite() && y.is_finite()));
        let reverse = b.diff(&a);
        assert!(reverse
            .added
            .contains(&format!("aggregate {}/{}", dropped.scale, dropped.policy)));
    }

    #[test]
    fn malformed_reports_are_rejected_with_context() {
        assert!(SweepReport::from_json_str("not json").is_err());
        assert!(SweepReport::from_json_str("{}")
            .unwrap_err()
            .contains("cells"));
        let missing_field = r#"{"machine":"m","backend":"b","baseline":"LAS","seed":1,
            "repetitions":1,"cells":[{"application":"a"}],"aggregates":[],"skipped":[]}"#;
        assert!(SweepReport::from_json_str(missing_field).is_err());
    }
}
