//! NStream: a STREAM-triad style kernel, `a = b + scalar * c`, blocked and
//! iterated.
//!
//! The TDG is a set of fully independent per-block chains (no communication
//! between blocks), which makes it the purest test of *data placement*: once
//! the blocks have a home, the only thing a policy can get wrong is running a
//! block's update far from the block or overloading one socket.

use numadag_tdg::{TaskGraphSpec, TaskId, TaskSpec, TdgBuilder};

use crate::common::{block_owner, ProblemScale};
use crate::storage::DenseStore;

/// Parameters of the NStream kernel.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NStreamParams {
    /// Number of vector blocks.
    pub blocks: usize,
    /// Elements (f64) per block.
    pub block_elems: usize,
    /// Number of triad iterations.
    pub iterations: usize,
    /// The scalar of the triad.
    pub scalar: f64,
}

impl NStreamParams {
    /// Parameters for a given problem scale.
    pub fn with_scale(scale: ProblemScale) -> Self {
        match scale {
            ProblemScale::Tiny => NStreamParams {
                blocks: 6,
                block_elems: 64,
                iterations: 3,
                scalar: 3.0,
            },
            ProblemScale::Small => NStreamParams {
                blocks: 24,
                block_elems: 16 * 1024,
                iterations: 10,
                scalar: 3.0,
            },
            ProblemScale::Full => NStreamParams {
                blocks: 48,
                block_elems: 256 * 1024,
                iterations: 20,
                scalar: 3.0,
            },
        }
    }
}

impl Default for NStreamParams {
    fn default() -> Self {
        NStreamParams::with_scale(ProblemScale::Full)
    }
}

/// Region layout of the built workload, needed to attach real bodies.
#[derive(Clone, Debug)]
pub struct NStreamLayout {
    /// `a[b]` region index (as usize).
    pub a: Vec<usize>,
    /// `b[b]` region index.
    pub b: Vec<usize>,
    /// `c[b]` region index.
    pub c: Vec<usize>,
    /// Elements per block.
    pub block_elems: usize,
    /// Triad scalar.
    pub scalar: f64,
}

/// Builds the NStream task graph with its expert placement for `num_sockets`
/// sockets.
pub fn build(params: NStreamParams, num_sockets: usize) -> TaskGraphSpec {
    build_with_layout(params, num_sockets).0
}

/// Builds the task graph and also returns the region layout (used to attach
/// real numerical bodies).
pub fn build_with_layout(
    params: NStreamParams,
    num_sockets: usize,
) -> (TaskGraphSpec, NStreamLayout) {
    let block_bytes = (params.block_elems * std::mem::size_of::<f64>()) as u64;
    let mut builder = TdgBuilder::new();
    let a: Vec<_> = (0..params.blocks)
        .map(|i| builder.labelled_region(block_bytes, format!("a[{i}]")))
        .collect();
    let b: Vec<_> = (0..params.blocks)
        .map(|i| builder.labelled_region(block_bytes, format!("b[{i}]")))
        .collect();
    let c: Vec<_> = (0..params.blocks)
        .map(|i| builder.labelled_region(block_bytes, format!("c[{i}]")))
        .collect();

    let mut ep = Vec::new();
    let owner = |i: usize| block_owner(i, params.blocks, num_sockets);

    // Initialisation tasks (the benchmark's parallel first-touch loop).
    for i in 0..params.blocks {
        builder.submit(
            TaskSpec::new("init_b")
                .work(params.block_elems as f64)
                .writes(b[i], block_bytes),
        );
        ep.push(owner(i));
        builder.submit(
            TaskSpec::new("init_c")
                .work(params.block_elems as f64)
                .writes(c[i], block_bytes),
        );
        ep.push(owner(i));
        builder.submit(
            TaskSpec::new("init_a")
                .work(params.block_elems as f64)
                .writes(a[i], block_bytes),
        );
        ep.push(owner(i));
    }

    // Triad iterations.
    for _ in 0..params.iterations {
        for i in 0..params.blocks {
            builder.submit(
                TaskSpec::new("triad")
                    .work(2.0 * params.block_elems as f64)
                    .reads(b[i], block_bytes)
                    .reads(c[i], block_bytes)
                    .writes(a[i], block_bytes),
            );
            ep.push(owner(i));
        }
    }

    let (graph, sizes) = builder.finish();
    let layout = NStreamLayout {
        a: a.iter().map(|r| r.index()).collect(),
        b: b.iter().map(|r| r.index()).collect(),
        c: c.iter().map(|r| r.index()).collect(),
        block_elems: params.block_elems,
        scalar: params.scalar,
    };
    let spec = TaskGraphSpec::new("NStream", graph, sizes).with_ep_placement(ep);
    (spec, layout)
}

/// Returns a task body executing the real triad over `store`, suitable for
/// [`numadag_runtime::ThreadedExecutor`]. The store must have one region per
/// spec region, each with `layout.block_elems` elements.
pub fn body<'a>(
    spec: &'a TaskGraphSpec,
    layout: &'a NStreamLayout,
    store: &'a DenseStore,
) -> impl Fn(TaskId) + Sync + 'a {
    move |task: TaskId| {
        let descriptor = spec.graph.task(task);
        match descriptor.kind.as_str() {
            "init_b" => store.write(descriptor.accesses[0].region.index(), |v| v.fill(1.0)),
            "init_c" => store.write(descriptor.accesses[0].region.index(), |v| v.fill(2.0)),
            "init_a" => store.write(descriptor.accesses[0].region.index(), |v| v.fill(0.0)),
            "triad" => {
                let b = store.snapshot(descriptor.accesses[0].region.index());
                let c = store.snapshot(descriptor.accesses[1].region.index());
                store.write(descriptor.accesses[2].region.index(), |a| {
                    for i in 0..a.len() {
                        a[i] = b[i] + layout.scalar * c[i];
                    }
                });
            }
            other => panic!("unknown NStream task kind {other}"),
        }
    }
}

/// The value every element of `a` must hold after any number of iterations.
pub fn expected_a_value(params: &NStreamParams) -> f64 {
    1.0 + params.scalar * 2.0
}

/// Verifies the store against the sequential semantics. Returns the maximum
/// absolute error over all `a` blocks.
pub fn verify(layout: &NStreamLayout, store: &DenseStore, params: &NStreamParams) -> f64 {
    let expected = expected_a_value(params);
    let mut max_err = 0.0f64;
    for &r in &layout.a {
        store.read(r, |v| {
            for x in v {
                max_err = max_err.max((x - expected).abs());
            }
        });
    }
    max_err
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_count_and_structure() {
        let p = NStreamParams::with_scale(ProblemScale::Tiny);
        let spec = build(p, 4);
        assert_eq!(&*spec.name, "NStream");
        // 3 init tasks per block + blocks per iteration.
        assert_eq!(spec.num_tasks(), 3 * p.blocks + p.iterations * p.blocks);
        assert_eq!(spec.num_regions(), 3 * p.blocks);
        assert!(spec.validate().is_ok());
        assert!(spec.graph.is_acyclic());
        assert!(spec.ep_socket.is_some());
    }

    #[test]
    fn blocks_are_independent_chains() {
        let p = NStreamParams::with_scale(ProblemScale::Tiny);
        let spec = build(p, 4);
        // Average parallelism must be at least the number of blocks (each
        // block's chain is independent).
        assert!(spec.graph.average_parallelism() >= p.blocks as f64 * 0.9);
    }

    #[test]
    fn ep_placement_is_block_contiguous() {
        let p = NStreamParams {
            blocks: 8,
            block_elems: 16,
            iterations: 2,
            scalar: 3.0,
        };
        let spec = build(p, 4);
        let ep = spec.ep_socket.as_ref().unwrap();
        // The first three tasks (inits of block 0) are on socket 0; the
        // last triad of block 7 is on socket 3.
        assert_eq!(ep[0], 0);
        assert_eq!(*ep.last().unwrap(), 3);
        assert!(ep.iter().all(|&s| s < 4));
    }

    #[test]
    fn sequential_body_execution_matches_reference() {
        let p = NStreamParams::with_scale(ProblemScale::Tiny);
        let (spec, layout) = build_with_layout(p, 2);
        let store = DenseStore::uniform(spec.num_regions(), p.block_elems);
        let run = body(&spec, &layout, &store);
        for t in spec.graph.task_ids() {
            run(t);
        }
        assert_eq!(verify(&layout, &store, &p), 0.0);
        assert_eq!(expected_a_value(&p), 7.0);
    }
}
