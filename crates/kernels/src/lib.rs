//! # numadag-kernels — the eight task-based applications of the evaluation
//!
//! The paper evaluates its scheduling techniques on eight OmpSs/OpenMP
//! task-based applications. This crate re-creates each of them as a
//! *task-graph builder*: given problem parameters it produces a
//! [`numadag_tdg::TaskGraphSpec`] — the blocked data regions, the tasks with
//! their `in`/`out`/`inout` accesses and compute-cost estimates, and the
//! expert-programmer (EP) placement the benchmark author would hard-code.
//!
//! | module | application | TDG shape |
//! |--------|-------------|-----------|
//! | [`nstream`]            | STREAM-triad style vector update | independent per-block chains |
//! | [`jacobi`]             | 2-D Jacobi heat diffusion        | 5-point stencil, two grids |
//! | [`gauss_seidel`]       | 2-D Gauss–Seidel (in place)      | wavefront |
//! | [`red_black`]          | red–black Gauss–Seidel           | bipartite stencil phases |
//! | [`integral_histogram`] | integral histogram over frames   | right/down propagation |
//! | [`cg`]                 | blocked conjugate gradient       | SpMV + global reductions |
//! | [`qr`]                 | tiled QR factorisation           | dense factorisation DAG |
//! | [`symm_inv`]           | symmetric (SPD) matrix inversion | Cholesky + triangular inverse + multiply |
//!
//! Two of the kernels ([`nstream`], [`jacobi`]) additionally ship *real*
//! numerical task bodies over a [`storage::DenseStore`], together with
//! sequential references, so the threaded executor can demonstrate that the
//! numerical results are identical under every scheduling policy.
//!
//! [`linalg`] is a small dense linear-algebra substrate (GEMM, SYRK, TRSM,
//! Cholesky, Householder QR) with its own tests; it provides the per-tile
//! flop counts used as task work units by the dense kernels.

#![warn(missing_docs)]

pub mod cache;
pub mod cg;
pub mod common;
pub mod gauss_seidel;
pub mod integral_histogram;
pub mod jacobi;
pub mod linalg;
pub mod nstream;
pub mod qr;
pub mod red_black;
pub mod storage;
pub mod suite;
pub mod symm_inv;

pub use cache::SpecCache;
pub use common::ProblemScale;
pub use storage::DenseStore;
pub use suite::{figure1_suite, Application};
