//! Symmetric (SPD) matrix inversion via Cholesky, in three tiled sweeps:
//!
//! 1. `POTRF` sweep — Cholesky factorisation `A = L Lᵀ`
//!    (potrf / trsm / syrk / gemm tiles on the lower triangle),
//! 2. `TRTRI` sweep — inversion of the triangular factor `W = L⁻¹`,
//! 3. `LAUUM` sweep — the product `A⁻¹ = Wᵀ W` accumulated tile by tile.
//!
//! This is the OmpSs "symmetric matrix inversion" benchmark of the paper's
//! Figure 1 and the richest DAG of the suite: three phases with different
//! parallelism profiles chained on the same tiles.

use numadag_tdg::{TaskGraphSpec, TaskSpec, TdgBuilder};

use crate::common::{block_cyclic_2d, ProblemScale};
use crate::linalg::{gemm_flops, potrf_flops, syrk_flops, trsm_flops};

/// Parameters of the symmetric-matrix-inversion kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SymmInvParams {
    /// Tiles per dimension.
    pub nt: usize,
    /// Tile side length in elements.
    pub tile_n: usize,
}

impl SymmInvParams {
    /// Parameters for a given problem scale.
    pub fn with_scale(scale: ProblemScale) -> Self {
        match scale {
            ProblemScale::Tiny => SymmInvParams { nt: 4, tile_n: 16 },
            ProblemScale::Small => SymmInvParams { nt: 8, tile_n: 128 },
            ProblemScale::Full => SymmInvParams {
                nt: 12,
                tile_n: 256,
            },
        }
    }
}

impl Default for SymmInvParams {
    fn default() -> Self {
        SymmInvParams::with_scale(ProblemScale::Full)
    }
}

/// Builds the symmetric-matrix-inversion task graph with a 2-D block-cyclic
/// expert placement.
pub fn build(params: SymmInvParams, num_sockets: usize) -> TaskGraphSpec {
    let nt = params.nt;
    let b = params.tile_n;
    let tile_bytes = (b * b * std::mem::size_of::<f64>()) as u64;

    let mut builder = TdgBuilder::new();
    // Lower-triangular tile storage: region for tile (i, j) with i >= j.
    let mut tile = vec![usize::MAX; nt * nt];
    let mut regions = Vec::new();
    for i in 0..nt {
        for j in 0..=i {
            let r = builder.labelled_region(tile_bytes, format!("A[{i}][{j}]"));
            tile[i * nt + j] = regions.len();
            regions.push(r);
        }
    }
    let region = |i: usize, j: usize| regions[tile[i * nt + j]];

    let mut ep = Vec::new();
    let owner = |i: usize, j: usize| block_cyclic_2d(i, j, num_sockets);

    // Initialise the lower triangle.
    for i in 0..nt {
        for j in 0..=i {
            builder.submit(
                TaskSpec::new("init_tile")
                    .work((b * b) as f64)
                    .writes(region(i, j), tile_bytes),
            );
            ep.push(owner(i, j));
        }
    }

    // Sweep 1: Cholesky factorisation.
    for k in 0..nt {
        builder.submit(
            TaskSpec::new("potrf")
                .work(potrf_flops(b))
                .reads_writes(region(k, k), tile_bytes),
        );
        ep.push(owner(k, k));
        for i in (k + 1)..nt {
            builder.submit(
                TaskSpec::new("trsm")
                    .work(trsm_flops(b))
                    .reads(region(k, k), tile_bytes)
                    .reads_writes(region(i, k), tile_bytes),
            );
            ep.push(owner(i, k));
        }
        for i in (k + 1)..nt {
            builder.submit(
                TaskSpec::new("syrk")
                    .work(syrk_flops(b))
                    .reads(region(i, k), tile_bytes)
                    .reads_writes(region(i, i), tile_bytes),
            );
            ep.push(owner(i, i));
            for j in (k + 1)..i {
                builder.submit(
                    TaskSpec::new("gemm")
                        .work(gemm_flops(b))
                        .reads(region(i, k), tile_bytes)
                        .reads(region(j, k), tile_bytes)
                        .reads_writes(region(i, j), tile_bytes),
                );
                ep.push(owner(i, j));
            }
        }
    }

    // Sweep 2: invert the triangular factor in place (W = L⁻¹).
    for k in 0..nt {
        for i in (k + 1)..nt {
            // Update column k below the diagonal with the tiles between.
            let mut task = TaskSpec::new("trtri_gemm")
                .work(gemm_flops(b))
                .reads(region(k, k), tile_bytes)
                .reads(region(i, i), tile_bytes)
                .reads_writes(region(i, k), tile_bytes);
            if i > k + 1 {
                task = task.reads(region(i, k + 1), tile_bytes);
            }
            builder.submit(task);
            ep.push(owner(i, k));
        }
        builder.submit(
            TaskSpec::new("trtri_diag")
                .work(potrf_flops(b))
                .reads_writes(region(k, k), tile_bytes),
        );
        ep.push(owner(k, k));
    }

    // Sweep 3: A⁻¹ = Wᵀ W (LAUUM), accumulating into the lower triangle.
    for k in 0..nt {
        for j in 0..=k {
            if j < k {
                builder.submit(
                    TaskSpec::new("lauum_gemm")
                        .work(gemm_flops(b))
                        .reads(region(k, k), tile_bytes)
                        .reads(region(k, j), tile_bytes)
                        .reads_writes(region(j, j), tile_bytes),
                );
                ep.push(owner(j, j));
                for i in (j + 1)..=k {
                    builder.submit(
                        TaskSpec::new("lauum_update")
                            .work(gemm_flops(b))
                            .reads(region(k, i), tile_bytes)
                            .reads(region(k, j), tile_bytes)
                            .reads_writes(region(i, j), tile_bytes),
                    );
                    ep.push(owner(i, j));
                }
            }
        }
        builder.submit(
            TaskSpec::new("lauum_diag")
                .work(syrk_flops(b))
                .reads_writes(region(k, k), tile_bytes),
        );
        ep.push(owner(k, k));
    }

    let (graph, sizes) = builder.finish();
    TaskGraphSpec::new("Symm. mat. inv.", graph, sizes).with_ep_placement(ep)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_validity() {
        let p = SymmInvParams::with_scale(ProblemScale::Tiny);
        let spec = build(p, 4);
        assert!(spec.validate().is_ok());
        assert!(spec.graph.is_acyclic());
        assert!(spec.ep_socket.is_some());
        // Lower triangle has nt(nt+1)/2 tiles.
        assert_eq!(spec.num_regions(), p.nt * (p.nt + 1) / 2);
        // More tasks than the Cholesky sweep alone.
        let cholesky_tasks: usize = (0..p.nt)
            .map(|k| {
                let rem = p.nt - 1 - k;
                1 + rem + rem + rem * (rem.saturating_sub(1)) / 2
            })
            .sum();
        assert!(spec.num_tasks() > cholesky_tasks);
    }

    #[test]
    fn three_phases_are_chained_on_the_diagonal() {
        let p = SymmInvParams { nt: 3, tile_n: 8 };
        let spec = build(p, 2);
        let kinds: Vec<&str> = spec.graph.tasks().iter().map(|t| t.kind.as_str()).collect();
        // potrf of the first sweep appears before trtri_diag, which appears
        // before lauum_diag.
        let first_potrf = kinds.iter().position(|k| *k == "potrf").unwrap();
        let first_trtri = kinds.iter().position(|k| *k == "trtri_diag").unwrap();
        let first_lauum = kinds.iter().position(|k| *k == "lauum_diag").unwrap();
        assert!(first_potrf < first_trtri);
        assert!(first_trtri < first_lauum);
        // And the last lauum_diag transitively depends on the first potrf
        // (the graph has a long spine).
        let depth = spec.graph.levels().into_iter().max().unwrap();
        assert!(depth >= 3 * p.nt - 2, "depth {depth}");
    }

    #[test]
    fn gemm_updates_read_two_panel_tiles() {
        let p = SymmInvParams { nt: 4, tile_n: 8 };
        let spec = build(p, 4);
        let gemm = spec
            .graph
            .tasks()
            .iter()
            .find(|t| t.kind == "gemm")
            .unwrap();
        assert_eq!(gemm.accesses.len(), 3);
        assert_eq!(gemm.bytes_written(), (8 * 8 * 8) as u64);
    }

    #[test]
    fn ep_placement_covers_all_sockets() {
        let p = SymmInvParams { nt: 8, tile_n: 8 };
        let spec = build(p, 8);
        let ep = spec.ep_socket.as_ref().unwrap();
        let mut seen: Vec<usize> = ep.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 8, "expert placement should use all sockets");
    }
}
