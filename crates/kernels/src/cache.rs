//! Memoized workload building: [`SpecCache`] builds each (application ×
//! scale × socket-count) task graph exactly once and hands out shared
//! [`Arc<TaskGraphSpec>`] handles.
//!
//! Sweeps run the same workload under many policies and repetitions; at Full
//! scale building a spec means generating thousands of tasks and their
//! dependence edges, so rebuilding per cell would dominate the sweep. The
//! cache is internally synchronized and can be shared across experiments
//! (and across sweep worker threads) behind an `Arc`. The build/hit counters
//! feed the sweep report's build-count accounting, which is how tests verify
//! that specs really are built once per app×scale.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use numadag_tdg::TaskGraphSpec;

use crate::common::ProblemScale;
use crate::suite::Application;

/// Key of one cached workload instance.
pub type SpecKey = (Application, ProblemScale, usize);

/// A thread-safe memo of built task-graph specs, keyed by
/// (application, scale, socket count).
#[derive(Debug, Default)]
pub struct SpecCache {
    specs: Mutex<HashMap<SpecKey, Arc<TaskGraphSpec>>>,
    fingerprints: Mutex<HashMap<SpecKey, u64>>,
    builds: AtomicUsize,
    hits: AtomicUsize,
}

impl SpecCache {
    /// An empty cache.
    pub fn new() -> Self {
        SpecCache::default()
    }

    /// The spec of `app` at `scale` for a `num_sockets`-socket machine,
    /// building it on first use and returning the shared handle afterwards.
    pub fn get(
        &self,
        app: Application,
        scale: ProblemScale,
        num_sockets: usize,
    ) -> Arc<TaskGraphSpec> {
        self.get_with_stats(app, scale, num_sockets).0
    }

    /// Like [`SpecCache::get`], but also reports whether *this* call built
    /// the spec (`true`) or was served from the cache (`false`) — so callers
    /// sharing the cache across threads can account their own builds/hits
    /// without racing on the global counters.
    pub fn get_with_stats(
        &self,
        app: Application,
        scale: ProblemScale,
        num_sockets: usize,
    ) -> (Arc<TaskGraphSpec>, bool) {
        let key = (app, scale, num_sockets);
        // Fast path: already built.
        if let Some(spec) = self.specs.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (Arc::clone(spec), false);
        }
        // Build outside the lock: Full-scale builds take real time and other
        // workloads' lookups should not serialize behind them. Two threads
        // racing on the same key both build; the first insert wins and the
        // loser's copy is dropped (counted as a build, not a hit — the work
        // did happen).
        let built = Arc::new(app.build(scale, num_sockets));
        self.builds.fetch_add(1, Ordering::Relaxed);
        let mut specs = self.specs.lock().unwrap();
        (Arc::clone(specs.entry(key).or_insert(built)), true)
    }

    /// The content fingerprint (see [`TaskGraphSpec::fingerprint`]) of a
    /// workload instance, memoized per key so repeated service requests pay
    /// the hash at most once per distinct (app × scale × sockets). Builds the
    /// spec on first use — subsequent `get` calls for the same key then hit
    /// the spec cache.
    pub fn fingerprint(&self, app: Application, scale: ProblemScale, num_sockets: usize) -> u64 {
        let key = (app, scale, num_sockets);
        if let Some(&fp) = self.fingerprints.lock().unwrap().get(&key) {
            return fp;
        }
        let fp = self.get(app, scale, num_sockets).fingerprint();
        self.fingerprints.lock().unwrap().insert(key, fp);
        fp
    }

    /// How many specs were actually built (cache misses, including both
    /// sides of a racing build).
    pub fn builds(&self) -> usize {
        self.builds.load(Ordering::Relaxed)
    }

    /// How many lookups were served from the cache.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of distinct workload instances currently cached.
    pub fn len(&self) -> usize {
        self.specs.lock().unwrap().len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caches_one_build_per_key() {
        let cache = SpecCache::new();
        let a = cache.get(Application::NStream, ProblemScale::Tiny, 4);
        let b = cache.get(Application::NStream, ProblemScale::Tiny, 4);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must share the build");
        assert_eq!(cache.builds(), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_build_distinct_specs() {
        let cache = SpecCache::new();
        let tiny = cache.get(Application::Jacobi, ProblemScale::Tiny, 4);
        let small = cache.get(Application::Jacobi, ProblemScale::Small, 4);
        let other_sockets = cache.get(Application::Jacobi, ProblemScale::Tiny, 8);
        assert!(tiny.num_tasks() < small.num_tasks());
        assert!(!Arc::ptr_eq(&tiny, &other_sockets));
        assert_eq!(cache.builds(), 3);
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.len(), 3);
        assert!(!cache.is_empty());
    }

    #[test]
    fn fingerprints_are_memoized_and_content_stable() {
        let cache = SpecCache::new();
        let fp1 = cache.fingerprint(Application::NStream, ProblemScale::Tiny, 4);
        let builds_after_first = cache.builds();
        let fp2 = cache.fingerprint(Application::NStream, ProblemScale::Tiny, 4);
        assert_eq!(fp1, fp2);
        assert_eq!(
            cache.builds(),
            builds_after_first,
            "memoized fingerprint must not rebuild the spec"
        );
        // A fresh cache (fresh build) produces the same content hash.
        let other = SpecCache::new();
        assert_eq!(
            other.fingerprint(Application::NStream, ProblemScale::Tiny, 4),
            fp1
        );
        assert_ne!(
            cache.fingerprint(Application::Jacobi, ProblemScale::Tiny, 4),
            fp1
        );
    }

    #[test]
    fn concurrent_lookups_share_one_entry() {
        let cache = Arc::new(SpecCache::new());
        let specs: Vec<Arc<TaskGraphSpec>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let cache = Arc::clone(&cache);
                    s.spawn(move || cache.get(Application::NStream, ProblemScale::Tiny, 2))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(cache.len(), 1);
        for spec in &specs[1..] {
            assert!(Arc::ptr_eq(&specs[0], spec));
        }
        assert_eq!(cache.builds() + cache.hits(), 4);
    }
}
