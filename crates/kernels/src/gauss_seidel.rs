//! 2-D Gauss–Seidel relaxation, blocked and in place.
//!
//! Unlike Jacobi, Gauss–Seidel updates the grid in place: a tile update reads
//! the *already updated* left and upper neighbours of the current sweep and
//! the not-yet-updated right and lower neighbours of the previous sweep. The
//! dependence analysis turns this into the classic wavefront DAG, whose
//! limited parallelism makes placement and stealing decisions much more
//! visible than in embarrassingly parallel kernels.

use numadag_tdg::{TaskGraphSpec, TaskSpec, TdgBuilder};

use crate::common::{row_block_owner, ProblemScale};

/// Parameters of the Gauss–Seidel kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GaussSeidelParams {
    /// Blocks per dimension.
    pub nb: usize,
    /// Elements per tile.
    pub block_elems: usize,
    /// Number of sweeps.
    pub iterations: usize,
}

impl GaussSeidelParams {
    /// Parameters for a given problem scale.
    pub fn with_scale(scale: ProblemScale) -> Self {
        match scale {
            ProblemScale::Tiny => GaussSeidelParams {
                nb: 4,
                block_elems: 64,
                iterations: 3,
            },
            ProblemScale::Small => GaussSeidelParams {
                nb: 8,
                block_elems: 16 * 1024,
                iterations: 6,
            },
            ProblemScale::Full => GaussSeidelParams {
                nb: 12,
                block_elems: 64 * 1024,
                iterations: 10,
            },
        }
    }
}

impl Default for GaussSeidelParams {
    fn default() -> Self {
        GaussSeidelParams::with_scale(ProblemScale::Full)
    }
}

/// Builds the Gauss–Seidel task graph with expert placement.
pub fn build(params: GaussSeidelParams, num_sockets: usize) -> TaskGraphSpec {
    let nb = params.nb;
    let block_bytes = (params.block_elems * std::mem::size_of::<f64>()) as u64;
    let mut builder = TdgBuilder::new();
    let idx = |i: usize, j: usize| i * nb + j;
    let u: Vec<_> = (0..nb * nb)
        .map(|k| builder.labelled_region(block_bytes, format!("u[{}][{}]", k / nb, k % nb)))
        .collect();

    let mut ep = Vec::new();
    let owner = |i: usize, j: usize| row_block_owner(i, j, nb, num_sockets);

    for i in 0..nb {
        for j in 0..nb {
            builder.submit(
                TaskSpec::new("init")
                    .work(params.block_elems as f64)
                    .writes(u[idx(i, j)], block_bytes),
            );
            ep.push(owner(i, j));
        }
    }

    for _ in 0..params.iterations {
        for i in 0..nb {
            for j in 0..nb {
                let mut task = TaskSpec::new("gs_update")
                    .work(5.0 * params.block_elems as f64)
                    .reads_writes(u[idx(i, j)], block_bytes);
                if i > 0 {
                    task = task.reads(u[idx(i - 1, j)], block_bytes);
                }
                if i + 1 < nb {
                    task = task.reads(u[idx(i + 1, j)], block_bytes);
                }
                if j > 0 {
                    task = task.reads(u[idx(i, j - 1)], block_bytes);
                }
                if j + 1 < nb {
                    task = task.reads(u[idx(i, j + 1)], block_bytes);
                }
                builder.submit(task);
                ep.push(owner(i, j));
            }
        }
    }

    let (graph, sizes) = builder.finish();
    TaskGraphSpec::new("Gauss-Seidel", graph, sizes).with_ep_placement(ep)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_validity() {
        let p = GaussSeidelParams::with_scale(ProblemScale::Tiny);
        let spec = build(p, 4);
        assert_eq!(spec.num_regions(), p.nb * p.nb);
        assert_eq!(spec.num_tasks(), p.nb * p.nb * (1 + p.iterations));
        assert!(spec.validate().is_ok());
        assert!(spec.graph.is_acyclic());
        assert!(spec.ep_socket.is_some());
    }

    #[test]
    fn in_place_update_creates_wavefront() {
        let p = GaussSeidelParams {
            nb: 6,
            block_elems: 8,
            iterations: 1,
        };
        let spec = build(p, 2);
        let jacobi_like = crate::jacobi::build(
            crate::jacobi::JacobiParams {
                nb: 6,
                block_elems: 8,
                iterations: 1,
            },
            2,
        );
        // The wavefront serialises tiles within a sweep, so Gauss–Seidel has
        // strictly less average parallelism than Jacobi on the same grid.
        assert!(
            spec.graph.average_parallelism() < jacobi_like.graph.average_parallelism(),
            "GS parallelism {} should be below Jacobi {}",
            spec.graph.average_parallelism(),
            jacobi_like.graph.average_parallelism()
        );
    }

    #[test]
    fn sweep_depends_on_previous_sweep_of_same_tile() {
        let p = GaussSeidelParams {
            nb: 2,
            block_elems: 4,
            iterations: 2,
        };
        let spec = build(p, 2);
        // Task ids: 4 inits, 4 first-sweep, 4 second-sweep.
        let second_sweep_t00 = numadag_tdg::TaskId(8);
        assert_eq!(spec.graph.task(second_sweep_t00).kind, "gs_update");
        let preds: Vec<usize> = spec
            .graph
            .predecessors(second_sweep_t00)
            .iter()
            .map(|(t, _)| t.index())
            .collect();
        // Must depend on at least one task of the first sweep (ids 4..8).
        assert!(preds.iter().any(|&t| (4..8).contains(&t)), "{preds:?}");
    }

    #[test]
    fn deeper_graph_than_task_count_over_blocks() {
        let p = GaussSeidelParams {
            nb: 4,
            block_elems: 4,
            iterations: 3,
        };
        let spec = build(p, 2);
        let levels = spec.graph.levels();
        let depth = levels.iter().max().copied().unwrap_or(0);
        // Each sweep adds at least a diagonal wavefront of depth ~2*nb-1.
        assert!(depth >= p.iterations * (p.nb - 1), "depth {depth}");
    }
}
