//! Integral histogram: for a stream of image frames, each tile's cumulative
//! histogram is the histogram of its own pixels plus the integral histograms
//! of the tile above and the tile to the left. The per-frame propagation
//! pattern (down and to the right) produces a dense wavefront with large
//! histogram regions flowing between neighbouring tiles, which is why the
//! paper's DFIFO does so poorly on it (0.40× in Figure 1).

use numadag_tdg::{TaskGraphSpec, TaskSpec, TdgBuilder};

use crate::common::{row_block_owner, ProblemScale};

/// Parameters of the integral-histogram kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IntegralHistogramParams {
    /// Tiles per dimension.
    pub nb: usize,
    /// Pixels per tile.
    pub tile_pixels: usize,
    /// Histogram bins per tile.
    pub bins: usize,
    /// Number of frames processed.
    pub frames: usize,
}

impl IntegralHistogramParams {
    /// Parameters for a given problem scale.
    pub fn with_scale(scale: ProblemScale) -> Self {
        match scale {
            ProblemScale::Tiny => IntegralHistogramParams {
                nb: 4,
                tile_pixels: 256,
                bins: 32,
                frames: 2,
            },
            ProblemScale::Small => IntegralHistogramParams {
                nb: 8,
                tile_pixels: 16 * 1024,
                bins: 128,
                frames: 4,
            },
            ProblemScale::Full => IntegralHistogramParams {
                nb: 10,
                tile_pixels: 64 * 1024,
                bins: 256,
                frames: 8,
            },
        }
    }
}

impl Default for IntegralHistogramParams {
    fn default() -> Self {
        IntegralHistogramParams::with_scale(ProblemScale::Full)
    }
}

/// Builds the integral-histogram task graph with expert placement.
pub fn build(params: IntegralHistogramParams, num_sockets: usize) -> TaskGraphSpec {
    let nb = params.nb;
    let img_bytes = params.tile_pixels as u64; // one byte per pixel
    let hist_bytes = (params.bins * std::mem::size_of::<u32>()) as u64 * 64; // per-tile integral histograms are large
    let mut builder = TdgBuilder::new();
    let idx = |i: usize, j: usize| i * nb + j;
    let img: Vec<_> = (0..nb * nb)
        .map(|k| builder.labelled_region(img_bytes, format!("img[{}][{}]", k / nb, k % nb)))
        .collect();
    let hist: Vec<_> = (0..nb * nb)
        .map(|k| builder.labelled_region(hist_bytes, format!("hist[{}][{}]", k / nb, k % nb)))
        .collect();

    let mut ep = Vec::new();
    let owner = |i: usize, j: usize| row_block_owner(i, j, nb, num_sockets);

    for frame in 0..params.frames {
        // Capture the new frame tile by tile.
        for i in 0..nb {
            for j in 0..nb {
                builder.submit(
                    TaskSpec::new(if frame == 0 { "capture" } else { "recapture" })
                        .work(params.tile_pixels as f64 * 0.25)
                        .writes(img[idx(i, j)], img_bytes),
                );
                ep.push(owner(i, j));
            }
        }
        // Integral histogram propagation (row-major, so the dependence
        // analysis links each tile to its up and left neighbours).
        for i in 0..nb {
            for j in 0..nb {
                let mut task = TaskSpec::new("integral_histogram")
                    .work(params.tile_pixels as f64 + 2.0 * params.bins as f64)
                    .reads(img[idx(i, j)], img_bytes)
                    .writes(hist[idx(i, j)], hist_bytes);
                if i > 0 {
                    task = task.reads(hist[idx(i - 1, j)], hist_bytes);
                }
                if j > 0 {
                    task = task.reads(hist[idx(i, j - 1)], hist_bytes);
                }
                builder.submit(task);
                ep.push(owner(i, j));
            }
        }
    }

    let (graph, sizes) = builder.finish();
    TaskGraphSpec::new("Integral histogram", graph, sizes).with_ep_placement(ep)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_validity() {
        let p = IntegralHistogramParams::with_scale(ProblemScale::Tiny);
        let spec = build(p, 4);
        assert_eq!(spec.num_regions(), 2 * p.nb * p.nb);
        assert_eq!(spec.num_tasks(), p.frames * 2 * p.nb * p.nb);
        assert!(spec.validate().is_ok());
        assert!(spec.graph.is_acyclic());
    }

    #[test]
    fn corner_tile_waits_for_the_whole_wavefront() {
        let p = IntegralHistogramParams {
            nb: 4,
            tile_pixels: 64,
            bins: 8,
            frames: 1,
        };
        let spec = build(p, 2);
        // The last integral-histogram task (bottom-right tile) is at depth at
        // least 2*(nb-1) below the first one (a diagonal wavefront).
        let levels = spec.graph.levels();
        let depth = levels.iter().max().copied().unwrap();
        assert!(depth >= 2 * (p.nb - 1), "depth {depth}");
    }

    #[test]
    fn second_frame_reuses_histogram_regions() {
        let p = IntegralHistogramParams {
            nb: 2,
            tile_pixels: 64,
            bins: 8,
            frames: 2,
        };
        let spec = build(p, 2);
        // Frame 1 histogram of tile (0,0) is rewritten: the frame-2 task must
        // be ordered after every frame-1 reader of that histogram (WAR).
        assert!(spec.graph.is_acyclic());
        assert_eq!(spec.num_tasks(), 16);
        // Total edge bytes must include the large histogram transfers.
        assert!(spec.graph.total_edge_bytes() > 0);
    }
}
