//! A small dense linear-algebra substrate.
//!
//! The tiled QR and symmetric-inversion kernels of the paper are built on
//! BLAS/LAPACK tile operations (GEMM, SYRK, TRSM, POTRF, GEQRT, ...). This
//! module implements straightforward, well-tested versions of those
//! operations on a column-major [`Matrix`] type. They are used to compute
//! per-tile flop counts (task work units) and to verify, at small sizes, that
//! the tile algorithms the task graphs encode are numerically sound.

/// A dense column-major matrix of `f64`.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major slice (convenient in tests).
    pub fn from_rows(rows: usize, cols: usize, values: &[f64]) -> Self {
        assert_eq!(values.len(), rows * cols);
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m[(r, c)] = values[r * cols + c];
            }
        }
        m
    }

    /// A deterministic pseudo-random symmetric positive definite matrix
    /// (diagonally dominant), used by the factorisation tests.
    pub fn spd(n: usize, seed: u64) -> Self {
        let mut m = Matrix::zeros(n, n);
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for i in 0..n {
            for j in 0..=i {
                let v = next() - 0.5;
                m[(i, j)] = v;
                m[(j, i)] = v;
            }
        }
        for i in 0..n {
            m[(i, i)] += n as f64;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// `‖self - other‖_F`.
    pub fn distance(&self, other: &Matrix) -> f64 {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[c * self.rows + r]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[c * self.rows + r]
    }
}

/// `C = alpha * A * B + beta * C` (GEMM).
pub fn gemm(alpha: f64, a: &Matrix, b: &Matrix, beta: f64, c: &mut Matrix) {
    assert_eq!(a.cols(), b.rows(), "gemm: inner dimensions must agree");
    assert_eq!(c.rows(), a.rows());
    assert_eq!(c.cols(), b.cols());
    for j in 0..c.cols() {
        for i in 0..c.rows() {
            let mut acc = 0.0;
            for k in 0..a.cols() {
                acc += a[(i, k)] * b[(k, j)];
            }
            c[(i, j)] = alpha * acc + beta * c[(i, j)];
        }
    }
}

/// Matrix product `A * B`.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    gemm(1.0, a, b, 0.0, &mut c);
    c
}

/// Symmetric rank-k update on the lower triangle: `C = C - A * Aᵀ`
/// (the SYRK used by tiled Cholesky).
pub fn syrk_lower(a: &Matrix, c: &mut Matrix) {
    assert_eq!(c.rows(), c.cols());
    assert_eq!(a.rows(), c.rows());
    for j in 0..c.cols() {
        for i in j..c.rows() {
            let mut acc = 0.0;
            for k in 0..a.cols() {
                acc += a[(i, k)] * a[(j, k)];
            }
            c[(i, j)] -= acc;
        }
    }
    // Keep the matrix symmetric for easier verification.
    for j in 0..c.cols() {
        for i in 0..j {
            c[(i, j)] = c[(j, i)];
        }
    }
}

/// In-place Cholesky factorisation of a symmetric positive definite matrix:
/// on return the lower triangle of `a` holds `L` with `L * Lᵀ = A`.
/// Returns `Err` if the matrix is not positive definite.
pub fn potrf(a: &mut Matrix) -> Result<(), String> {
    assert_eq!(a.rows(), a.cols());
    let n = a.rows();
    for j in 0..n {
        let mut d = a[(j, j)];
        for k in 0..j {
            d -= a[(j, k)] * a[(j, k)];
        }
        if d <= 0.0 {
            return Err(format!("matrix not positive definite at column {j}"));
        }
        let d = d.sqrt();
        a[(j, j)] = d;
        for i in (j + 1)..n {
            let mut s = a[(i, j)];
            for k in 0..j {
                s -= a[(i, k)] * a[(j, k)];
            }
            a[(i, j)] = s / d;
        }
        for i in 0..j {
            a[(i, j)] = 0.0;
        }
    }
    Ok(())
}

/// Triangular solve `X * Lᵀ = B` for `X` (right, lower-transposed — the TRSM
/// of the tiled Cholesky panel update), overwriting `b` with `X`.
pub fn trsm_right_lower_transposed(l: &Matrix, b: &mut Matrix) {
    assert_eq!(l.rows(), l.cols());
    assert_eq!(b.cols(), l.rows());
    let n = l.rows();
    for i in 0..b.rows() {
        for j in 0..n {
            let mut s = b[(i, j)];
            for k in 0..j {
                s -= b[(i, k)] * l[(j, k)];
            }
            b[(i, j)] = s / l[(j, j)];
        }
    }
}

/// Inverse of a lower-triangular matrix.
pub fn trtri_lower(l: &Matrix) -> Matrix {
    assert_eq!(l.rows(), l.cols());
    let n = l.rows();
    let mut inv = Matrix::zeros(n, n);
    for j in 0..n {
        inv[(j, j)] = 1.0 / l[(j, j)];
        for i in (j + 1)..n {
            let mut s = 0.0;
            for k in j..i {
                s += l[(i, k)] * inv[(k, j)];
            }
            inv[(i, j)] = -s / l[(i, i)];
        }
    }
    inv
}

/// Householder QR factorisation: returns `(q, r)` with `q * r = a`,
/// `q` orthogonal (`m × m`) and `r` upper trapezoidal (`m × n`).
pub fn householder_qr(a: &Matrix) -> (Matrix, Matrix) {
    let m = a.rows();
    let n = a.cols();
    let mut r = a.clone();
    let mut q = Matrix::identity(m);
    for k in 0..n.min(m.saturating_sub(1)) {
        // Build the Householder vector for column k.
        let mut norm = 0.0;
        for i in k..m {
            norm += r[(i, k)] * r[(i, k)];
        }
        let norm = norm.sqrt();
        if norm < 1e-300 {
            continue;
        }
        let alpha = if r[(k, k)] >= 0.0 { -norm } else { norm };
        let mut v = vec![0.0; m];
        for i in k..m {
            v[i] = r[(i, k)];
        }
        v[k] -= alpha;
        let vnorm2: f64 = v.iter().map(|x| x * x).sum();
        if vnorm2 < 1e-300 {
            continue;
        }
        // R = (I - 2 v vᵀ / vᵀv) R
        for j in 0..n {
            let mut dot = 0.0;
            for i in k..m {
                dot += v[i] * r[(i, j)];
            }
            let scale = 2.0 * dot / vnorm2;
            for i in k..m {
                r[(i, j)] -= scale * v[i];
            }
        }
        // Q = Q (I - 2 v vᵀ / vᵀv)
        for i in 0..m {
            let mut dot = 0.0;
            for j in k..m {
                dot += q[(i, j)] * v[j];
            }
            let scale = 2.0 * dot / vnorm2;
            for j in k..m {
                q[(i, j)] -= scale * v[j];
            }
        }
    }
    // Clean tiny sub-diagonal noise in R.
    for j in 0..n {
        for i in (j + 1)..m {
            if r[(i, j)].abs() < 1e-12 {
                r[(i, j)] = 0.0;
            }
        }
    }
    (q, r)
}

/// Flop count of a `b × b` GEMM tile (used as task work units).
pub fn gemm_flops(b: usize) -> f64 {
    2.0 * (b as f64).powi(3)
}

/// Flop count of a `b × b` POTRF tile.
pub fn potrf_flops(b: usize) -> f64 {
    (b as f64).powi(3) / 3.0
}

/// Flop count of a `b × b` TRSM tile.
pub fn trsm_flops(b: usize) -> f64 {
    (b as f64).powi(3)
}

/// Flop count of a `b × b` SYRK tile.
pub fn syrk_flops(b: usize) -> f64 {
    (b as f64).powi(3)
}

/// Flop count of a `b × b` GEQRT tile (Householder panel factorisation).
pub fn geqrt_flops(b: usize) -> f64 {
    4.0 / 3.0 * (b as f64).powi(3)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-9;

    #[test]
    fn index_is_column_major_consistent() {
        let m = Matrix::from_rows(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 1)], 5.0);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
    }

    #[test]
    fn gemm_matches_hand_computation() {
        let a = Matrix::from_rows(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_rows(2, 2, &[5.0, 6.0, 7.0, 8.0]);
        let c = matmul(&a, &b);
        let expected = Matrix::from_rows(2, 2, &[19.0, 22.0, 43.0, 50.0]);
        assert!(c.distance(&expected) < TOL);
    }

    #[test]
    fn gemm_alpha_beta() {
        let a = Matrix::identity(3);
        let b = Matrix::from_rows(3, 3, &[1.0, 0.0, 0.0, 0.0, 2.0, 0.0, 0.0, 0.0, 3.0]);
        let mut c = Matrix::identity(3);
        gemm(2.0, &a, &b, -1.0, &mut c);
        // 2*B - I
        assert_eq!(c[(0, 0)], 1.0);
        assert_eq!(c[(1, 1)], 3.0);
        assert_eq!(c[(2, 2)], 5.0);
        assert_eq!(c[(0, 1)], 0.0);
    }

    #[test]
    fn identity_times_anything_is_identity_map() {
        let a = Matrix::spd(5, 3);
        let i = Matrix::identity(5);
        assert!(matmul(&i, &a).distance(&a) < TOL);
        assert!(matmul(&a, &i).distance(&a) < TOL);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Matrix::from_rows(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert!(a.transpose().transpose().distance(&a) < TOL);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn cholesky_reconstructs_the_matrix() {
        let a = Matrix::spd(12, 7);
        let mut l = a.clone();
        potrf(&mut l).expect("SPD matrix must factorise");
        let reconstructed = matmul(&l, &l.transpose());
        assert!(
            reconstructed.distance(&a) < 1e-8,
            "‖LLᵀ − A‖ = {}",
            reconstructed.distance(&a)
        );
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let mut m = Matrix::from_rows(2, 2, &[1.0, 2.0, 2.0, 1.0]); // eigenvalues 3, -1
        assert!(potrf(&mut m).is_err());
    }

    #[test]
    fn trsm_solves_right_lower_transposed() {
        let a = Matrix::spd(6, 11);
        let mut l = a.clone();
        potrf(&mut l).unwrap();
        let b0 = Matrix::spd(6, 5);
        let mut x = b0.clone();
        trsm_right_lower_transposed(&l, &mut x);
        // X * Lᵀ must equal B.
        let recovered = matmul(&x, &l.transpose());
        assert!(recovered.distance(&b0) < 1e-8);
    }

    #[test]
    fn trtri_inverts_lower_triangle() {
        let a = Matrix::spd(8, 2);
        let mut l = a.clone();
        potrf(&mut l).unwrap();
        let linv = trtri_lower(&l);
        let prod = matmul(&l, &linv);
        assert!(prod.distance(&Matrix::identity(8)) < 1e-8);
    }

    #[test]
    fn spd_inverse_via_cholesky() {
        // A⁻¹ = L⁻ᵀ L⁻¹ — exactly what the symmetric-matrix-inversion kernel
        // computes tile by tile.
        let a = Matrix::spd(10, 42);
        let mut l = a.clone();
        potrf(&mut l).unwrap();
        let linv = trtri_lower(&l);
        let ainv = matmul(&linv.transpose(), &linv);
        let prod = matmul(&a, &ainv);
        assert!(
            prod.distance(&Matrix::identity(10)) < 1e-7,
            "‖A·A⁻¹ − I‖ = {}",
            prod.distance(&Matrix::identity(10))
        );
    }

    #[test]
    fn syrk_matches_gemm() {
        let a = Matrix::spd(5, 9);
        let b = Matrix::from_rows(
            5,
            3,
            &(0..15).map(|x| x as f64 * 0.3 - 2.0).collect::<Vec<_>>(),
        );
        let mut c1 = a.clone();
        syrk_lower(&b, &mut c1);
        // Reference: C - B Bᵀ.
        let mut c2 = a.clone();
        let bbt = matmul(&b, &b.transpose());
        for i in 0..5 {
            for j in 0..5 {
                c2[(i, j)] -= bbt[(i, j)];
            }
        }
        assert!(c1.distance(&c2) < TOL);
    }

    #[test]
    fn qr_reconstructs_and_q_is_orthogonal() {
        let a = Matrix::spd(9, 17);
        let (q, r) = householder_qr(&a);
        assert!(matmul(&q, &r).distance(&a) < 1e-8, "QR != A");
        let qtq = matmul(&q.transpose(), &q);
        assert!(
            qtq.distance(&Matrix::identity(9)) < 1e-8,
            "Q not orthogonal"
        );
        // R is upper triangular.
        for j in 0..9 {
            for i in (j + 1)..9 {
                assert!(r[(i, j)].abs() < 1e-8, "R[{i}][{j}] = {}", r[(i, j)]);
            }
        }
    }

    #[test]
    fn qr_of_rectangular_matrix() {
        let a = Matrix::from_rows(4, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.5]);
        let (q, r) = householder_qr(&a);
        assert!(matmul(&q, &r).distance(&a) < 1e-9);
        let qtq = matmul(&q.transpose(), &q);
        assert!(qtq.distance(&Matrix::identity(4)) < 1e-9);
    }

    #[test]
    fn flop_counts_scale_cubically() {
        assert_eq!(gemm_flops(10), 2000.0);
        assert!(potrf_flops(12) < trsm_flops(12));
        assert!(geqrt_flops(8) > potrf_flops(8));
        assert_eq!(syrk_flops(4), 64.0);
    }

    #[test]
    fn frobenius_norm_and_distance() {
        let a = Matrix::from_rows(2, 2, &[3.0, 0.0, 0.0, 4.0]);
        assert!((a.frobenius_norm() - 5.0).abs() < TOL);
        assert!((a.distance(&Matrix::zeros(2, 2)) - 5.0).abs() < TOL);
    }
}
