//! The application suite of the paper's Figure 1 and the entry point the
//! benchmark harness uses to build it.

use numadag_tdg::TaskGraphSpec;

use crate::common::ProblemScale;
use crate::{cg, gauss_seidel, integral_histogram, jacobi, nstream, qr, red_black, symm_inv};

/// The eight applications of the paper's evaluation, in the order Figure 1
/// plots them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Application {
    /// Blocked conjugate gradient.
    ConjugateGradient,
    /// In-place Gauss–Seidel relaxation.
    GaussSeidel,
    /// Integral histogram over a stream of frames.
    IntegralHistogram,
    /// Jacobi heat diffusion (two grids).
    Jacobi,
    /// STREAM-triad style vector update.
    NStream,
    /// Tiled Householder QR factorisation.
    QrFactorization,
    /// Red–black Gauss–Seidel.
    RedBlack,
    /// Symmetric (SPD) matrix inversion via Cholesky.
    SymmetricMatrixInversion,
}

impl Application {
    /// All eight applications in Figure 1 order.
    pub fn all() -> [Application; 8] {
        [
            Application::ConjugateGradient,
            Application::GaussSeidel,
            Application::IntegralHistogram,
            Application::Jacobi,
            Application::NStream,
            Application::QrFactorization,
            Application::RedBlack,
            Application::SymmetricMatrixInversion,
        ]
    }

    /// The display name the paper uses.
    pub fn label(&self) -> &'static str {
        match self {
            Application::ConjugateGradient => "Conjugate gradient",
            Application::GaussSeidel => "Gauss-Seidel",
            Application::IntegralHistogram => "Integral histogram",
            Application::Jacobi => "Jacobi",
            Application::NStream => "NStream",
            Application::QrFactorization => "QR factorization",
            Application::RedBlack => "Red-Black",
            Application::SymmetricMatrixInversion => "Symm. mat. inv.",
        }
    }

    /// Builds the application's task graph at the given scale for a machine
    /// with `num_sockets` sockets.
    pub fn build(&self, scale: ProblemScale, num_sockets: usize) -> TaskGraphSpec {
        match self {
            Application::ConjugateGradient => {
                cg::build(cg::CgParams::with_scale(scale), num_sockets)
            }
            Application::GaussSeidel => gauss_seidel::build(
                gauss_seidel::GaussSeidelParams::with_scale(scale),
                num_sockets,
            ),
            Application::IntegralHistogram => integral_histogram::build(
                integral_histogram::IntegralHistogramParams::with_scale(scale),
                num_sockets,
            ),
            Application::Jacobi => {
                jacobi::build(jacobi::JacobiParams::with_scale(scale), num_sockets)
            }
            Application::NStream => {
                nstream::build(nstream::NStreamParams::with_scale(scale), num_sockets)
            }
            Application::QrFactorization => qr::build(qr::QrParams::with_scale(scale), num_sockets),
            Application::RedBlack => {
                red_black::build(red_black::RedBlackParams::with_scale(scale), num_sockets)
            }
            Application::SymmetricMatrixInversion => {
                symm_inv::build(symm_inv::SymmInvParams::with_scale(scale), num_sockets)
            }
        }
    }
}

impl std::fmt::Display for Application {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for Application {
    type Err = String;

    /// Parses either the Figure-1 display label (`"Symm. mat. inv."`,
    /// case-insensitive, punctuation-tolerant) or a short CLI/wire token
    /// (`cg`, `gs`, `ih`, `jacobi`, `nstream`, `qr`, `rb`, `symm`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        // Normalize: drop dots, lower-case, map spaces/underscores to dashes
        // so "Symm. mat. inv." and "symm-mat-inv" both match.
        let mut norm = String::with_capacity(s.len());
        for c in s.trim().chars() {
            match c {
                '.' => {}
                ' ' | '_' => {
                    if !norm.ends_with('-') {
                        norm.push('-');
                    }
                }
                c => norm.push(c.to_ascii_lowercase()),
            }
        }
        match norm.trim_matches('-') {
            "conjugate-gradient" | "cg" => Ok(Application::ConjugateGradient),
            "gauss-seidel" | "gs" => Ok(Application::GaussSeidel),
            "integral-histogram" | "ih" => Ok(Application::IntegralHistogram),
            "jacobi" => Ok(Application::Jacobi),
            "nstream" => Ok(Application::NStream),
            "qr-factorization" | "qr" => Ok(Application::QrFactorization),
            "red-black" | "rb" => Ok(Application::RedBlack),
            "symm-mat-inv" | "symm" | "smi" => Ok(Application::SymmetricMatrixInversion),
            other => Err(format!(
                "unknown application '{other}' (expected cg|gs|ih|jacobi|nstream|qr|rb|symm or a Figure-1 label)"
            )),
        }
    }
}

impl Application {
    /// Parses a comma-separated application list; empty input or `"all"`
    /// selects the whole Figure-1 suite in plot order.
    pub fn parse_list(s: &str) -> Result<Vec<Application>, String> {
        let s = s.trim();
        if s.is_empty() || s.eq_ignore_ascii_case("all") {
            return Ok(Application::all().to_vec());
        }
        s.split(',')
            .map(|token| token.parse::<Application>())
            .collect()
    }
}

/// Builds the whole Figure-1 suite at the given scale.
pub fn figure1_suite(scale: ProblemScale, num_sockets: usize) -> Vec<(Application, TaskGraphSpec)> {
    Application::all()
        .into_iter()
        .map(|app| (app, app.build(scale, num_sockets)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_eight_applications_build_and_validate() {
        for (app, spec) in figure1_suite(ProblemScale::Tiny, 8) {
            assert!(spec.validate().is_ok(), "{app}: invalid spec");
            assert!(spec.num_tasks() > 0, "{app}: no tasks");
            assert!(spec.graph.is_acyclic(), "{app}: cyclic graph");
            assert!(spec.ep_socket.is_some(), "{app}: missing expert placement");
            assert_eq!(&*spec.name, app.label());
        }
    }

    #[test]
    fn labels_match_figure_order() {
        let labels: Vec<&str> = Application::all().iter().map(|a| a.label()).collect();
        assert_eq!(
            labels,
            vec![
                "Conjugate gradient",
                "Gauss-Seidel",
                "Integral histogram",
                "Jacobi",
                "NStream",
                "QR factorization",
                "Red-Black",
                "Symm. mat. inv.",
            ]
        );
        assert_eq!(Application::NStream.to_string(), "NStream");
    }

    #[test]
    fn every_label_parses_back_to_its_application() {
        for app in Application::all() {
            assert_eq!(app.label().parse::<Application>().unwrap(), app);
        }
    }

    #[test]
    fn short_tokens_and_case_variants_parse() {
        assert_eq!(
            "cg".parse::<Application>().unwrap(),
            Application::ConjugateGradient
        );
        assert_eq!(
            "symm-mat-inv".parse::<Application>().unwrap(),
            Application::SymmetricMatrixInversion
        );
        assert_eq!(
            "QR".parse::<Application>().unwrap(),
            Application::QrFactorization
        );
        assert_eq!(
            "red_black".parse::<Application>().unwrap(),
            Application::RedBlack
        );
        assert!("fft".parse::<Application>().is_err());
    }

    #[test]
    fn parse_list_handles_all_and_explicit_subsets() {
        assert_eq!(
            Application::parse_list("all").unwrap(),
            Application::all().to_vec()
        );
        assert_eq!(
            Application::parse_list("").unwrap(),
            Application::all().to_vec()
        );
        assert_eq!(
            Application::parse_list("jacobi,nstream").unwrap(),
            vec![Application::Jacobi, Application::NStream]
        );
        assert!(Application::parse_list("jacobi,bogus").is_err());
    }

    #[test]
    fn full_scale_produces_substantial_graphs() {
        // Only build the cheapest kernels at full scale in unit tests; the
        // dense ones are exercised by the bench harness.
        let spec = Application::NStream.build(ProblemScale::Full, 8);
        assert!(spec.num_tasks() > 500);
        let spec = Application::Jacobi.build(ProblemScale::Full, 8);
        assert!(spec.num_tasks() > 1000);
    }

    #[test]
    fn scales_are_ordered_by_size() {
        for app in Application::all() {
            let tiny = app.build(ProblemScale::Tiny, 4).num_tasks();
            let small = app.build(ProblemScale::Small, 4).num_tasks();
            assert!(
                tiny < small,
                "{app}: tiny {tiny} not smaller than small {small}"
            );
        }
    }
}
