//! Blocked conjugate gradient on a block-tridiagonal SPD system.
//!
//! Every iteration performs a blocked SpMV (each block row of the matrix
//! touches its own and its two neighbouring vector blocks), two global dot
//! products with reduction tasks, and three AXPY-style vector updates. The
//! global reductions periodically pull data from every socket to a single
//! task, making CG sensitive both to data placement and to where the small
//! reduction tasks run.

use numadag_tdg::{TaskGraphSpec, TaskSpec, TdgBuilder};

use crate::common::{block_owner, ProblemScale};

/// Parameters of the conjugate-gradient kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CgParams {
    /// Number of vector blocks (the matrix has `blocks` block rows).
    pub blocks: usize,
    /// Elements per vector block.
    pub block_elems: usize,
    /// CG iterations.
    pub iterations: usize,
}

impl CgParams {
    /// Parameters for a given problem scale.
    pub fn with_scale(scale: ProblemScale) -> Self {
        match scale {
            ProblemScale::Tiny => CgParams {
                blocks: 6,
                block_elems: 64,
                iterations: 3,
            },
            ProblemScale::Small => CgParams {
                blocks: 24,
                block_elems: 8 * 1024,
                iterations: 8,
            },
            ProblemScale::Full => CgParams {
                blocks: 48,
                block_elems: 32 * 1024,
                iterations: 12,
            },
        }
    }
}

impl Default for CgParams {
    fn default() -> Self {
        CgParams::with_scale(ProblemScale::Full)
    }
}

/// Builds the CG task graph with expert placement.
pub fn build(params: CgParams, num_sockets: usize) -> TaskGraphSpec {
    let nb = params.blocks;
    let vec_bytes = (params.block_elems * std::mem::size_of::<f64>()) as u64;
    // Block-tridiagonal matrix: each block row stores three dense blocks.
    let mat_bytes = 3 * (params.block_elems * std::mem::size_of::<f64>()) as u64;
    let scalar_bytes = std::mem::size_of::<f64>() as u64;

    let mut builder = TdgBuilder::new();
    let a: Vec<_> = (0..nb)
        .map(|i| builder.labelled_region(mat_bytes, format!("A[{i}]")))
        .collect();
    let x: Vec<_> = (0..nb)
        .map(|i| builder.labelled_region(vec_bytes, format!("x[{i}]")))
        .collect();
    let r: Vec<_> = (0..nb)
        .map(|i| builder.labelled_region(vec_bytes, format!("r[{i}]")))
        .collect();
    let p: Vec<_> = (0..nb)
        .map(|i| builder.labelled_region(vec_bytes, format!("p[{i}]")))
        .collect();
    let q: Vec<_> = (0..nb)
        .map(|i| builder.labelled_region(vec_bytes, format!("q[{i}]")))
        .collect();
    let dot_pq: Vec<_> = (0..nb)
        .map(|i| builder.labelled_region(scalar_bytes, format!("dot_pq[{i}]")))
        .collect();
    let dot_rr: Vec<_> = (0..nb)
        .map(|i| builder.labelled_region(scalar_bytes, format!("dot_rr[{i}]")))
        .collect();
    let alpha = builder.labelled_region(scalar_bytes, "alpha");
    let beta = builder.labelled_region(scalar_bytes, "beta");

    let mut ep = Vec::new();
    let owner = |i: usize| block_owner(i, nb, num_sockets);
    let elems = params.block_elems as f64;

    // Initialisation of the matrix and the vectors.
    for i in 0..nb {
        builder.submit(
            TaskSpec::new("init_A")
                .work(3.0 * elems)
                .writes(a[i], mat_bytes),
        );
        ep.push(owner(i));
        builder.submit(TaskSpec::new("init_x").work(elems).writes(x[i], vec_bytes));
        ep.push(owner(i));
        builder.submit(TaskSpec::new("init_r").work(elems).writes(r[i], vec_bytes));
        ep.push(owner(i));
        builder.submit(TaskSpec::new("init_p").work(elems).writes(p[i], vec_bytes));
        ep.push(owner(i));
    }

    for _ in 0..params.iterations {
        // q = A p  (block-tridiagonal SpMV).
        for i in 0..nb {
            let mut task = TaskSpec::new("spmv")
                .work(6.0 * elems)
                .reads(a[i], mat_bytes)
                .reads(p[i], vec_bytes)
                .writes(q[i], vec_bytes);
            if i > 0 {
                task = task.reads(p[i - 1], vec_bytes);
            }
            if i + 1 < nb {
                task = task.reads(p[i + 1], vec_bytes);
            }
            builder.submit(task);
            ep.push(owner(i));
        }
        // Partial dot products p·q and the alpha reduction.
        for i in 0..nb {
            builder.submit(
                TaskSpec::new("dot_pq")
                    .work(2.0 * elems)
                    .reads(p[i], vec_bytes)
                    .reads(q[i], vec_bytes)
                    .writes(dot_pq[i], scalar_bytes),
            );
            ep.push(owner(i));
        }
        let mut reduce_alpha = TaskSpec::new("reduce_alpha")
            .work(nb as f64)
            .writes(alpha, scalar_bytes);
        for &d in &dot_pq {
            reduce_alpha = reduce_alpha.reads(d, scalar_bytes);
        }
        builder.submit(reduce_alpha);
        ep.push(0); // the expert runs tiny reductions on socket 0

        // x += alpha p ; r -= alpha q.
        for i in 0..nb {
            builder.submit(
                TaskSpec::new("axpy_x")
                    .work(2.0 * elems)
                    .reads(alpha, scalar_bytes)
                    .reads(p[i], vec_bytes)
                    .reads_writes(x[i], vec_bytes),
            );
            ep.push(owner(i));
            builder.submit(
                TaskSpec::new("axpy_r")
                    .work(2.0 * elems)
                    .reads(alpha, scalar_bytes)
                    .reads(q[i], vec_bytes)
                    .reads_writes(r[i], vec_bytes),
            );
            ep.push(owner(i));
        }

        // rr = r·r and the beta reduction.
        for i in 0..nb {
            builder.submit(
                TaskSpec::new("dot_rr")
                    .work(2.0 * elems)
                    .reads(r[i], vec_bytes)
                    .writes(dot_rr[i], scalar_bytes),
            );
            ep.push(owner(i));
        }
        let mut reduce_beta = TaskSpec::new("reduce_beta")
            .work(nb as f64)
            .writes(beta, scalar_bytes);
        for &d in &dot_rr {
            reduce_beta = reduce_beta.reads(d, scalar_bytes);
        }
        builder.submit(reduce_beta);
        ep.push(0);

        // p = r + beta p.
        for i in 0..nb {
            builder.submit(
                TaskSpec::new("update_p")
                    .work(2.0 * elems)
                    .reads(beta, scalar_bytes)
                    .reads(r[i], vec_bytes)
                    .reads_writes(p[i], vec_bytes),
            );
            ep.push(owner(i));
        }
    }

    let (graph, sizes) = builder.finish();
    TaskGraphSpec::new("Conjugate gradient", graph, sizes).with_ep_placement(ep)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_validity() {
        let p = CgParams::with_scale(ProblemScale::Tiny);
        let spec = build(p, 4);
        // Per iteration: spmv + dot_pq + axpy_x + axpy_r + dot_rr + update_p
        // (6 per block) + 2 reductions.
        let expected = 4 * p.blocks + p.iterations * (6 * p.blocks + 2);
        assert_eq!(spec.num_tasks(), expected);
        assert!(spec.validate().is_ok());
        assert!(spec.graph.is_acyclic());
    }

    #[test]
    fn reductions_fan_in_from_every_block() {
        let p = CgParams {
            blocks: 5,
            block_elems: 32,
            iterations: 1,
        };
        let spec = build(p, 2);
        let reduce = spec
            .graph
            .tasks()
            .iter()
            .find(|t| t.kind == "reduce_alpha")
            .unwrap();
        assert_eq!(spec.graph.in_degree(reduce.id), p.blocks);
    }

    #[test]
    fn spmv_couples_neighbouring_blocks() {
        let p = CgParams {
            blocks: 4,
            block_elems: 32,
            iterations: 1,
        };
        let spec = build(p, 2);
        let spmv1 = spec
            .graph
            .tasks()
            .iter()
            .filter(|t| t.kind == "spmv")
            .nth(1)
            .unwrap();
        // Interior block: reads A, p[i], p[i-1], p[i+1] and writes q[i].
        assert_eq!(spmv1.accesses.len(), 5);
    }

    #[test]
    fn iteration_boundary_serialises_on_scalars() {
        let p = CgParams {
            blocks: 3,
            block_elems: 16,
            iterations: 2,
        };
        let spec = build(p, 2);
        // The graph must have depth much larger than a single iteration's
        // depth because alpha/beta serialise successive iterations.
        let depth = spec.graph.levels().into_iter().max().unwrap();
        assert!(depth >= 8, "depth {depth}");
    }
}
