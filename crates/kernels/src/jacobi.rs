//! 2-D Jacobi heat diffusion, blocked into an `nb × nb` grid of tiles with a
//! 5-point stencil and two grids (read the old one, write the new one,
//! swap).
//!
//! Each tile update reads its own tile and its four neighbours from the
//! "old" grid and writes its tile of the "new" grid, so the TDG couples
//! neighbouring tiles: a good placement keeps a tile and its neighbours on
//! the same (or a nearby) socket.

use numadag_tdg::{TaskGraphSpec, TaskId, TaskSpec, TdgBuilder};

use crate::common::{row_block_owner, ProblemScale};
use crate::storage::DenseStore;

/// Parameters of the Jacobi kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JacobiParams {
    /// Blocks per dimension (the grid has `nb × nb` tiles).
    pub nb: usize,
    /// Elements (f64) per tile.
    pub block_elems: usize,
    /// Number of sweeps.
    pub iterations: usize,
}

impl JacobiParams {
    /// Parameters for a given problem scale.
    pub fn with_scale(scale: ProblemScale) -> Self {
        match scale {
            ProblemScale::Tiny => JacobiParams {
                nb: 4,
                block_elems: 64,
                iterations: 3,
            },
            ProblemScale::Small => JacobiParams {
                nb: 8,
                block_elems: 16 * 1024,
                iterations: 6,
            },
            ProblemScale::Full => JacobiParams {
                nb: 12,
                block_elems: 64 * 1024,
                iterations: 10,
            },
        }
    }
}

impl Default for JacobiParams {
    fn default() -> Self {
        JacobiParams::with_scale(ProblemScale::Full)
    }
}

/// Region layout for attaching real bodies: `u[grid][i][j]` flattened.
#[derive(Clone, Debug)]
pub struct JacobiLayout {
    /// `grid[0]` and `grid[1]` region indices, row-major over tiles.
    pub grids: [Vec<usize>; 2],
    /// Blocks per dimension.
    pub nb: usize,
    /// Elements per tile.
    pub block_elems: usize,
    /// Number of sweeps performed.
    pub iterations: usize,
}

/// Builds the Jacobi task graph with expert placement.
pub fn build(params: JacobiParams, num_sockets: usize) -> TaskGraphSpec {
    build_with_layout(params, num_sockets).0
}

/// Builds the task graph and the region layout.
pub fn build_with_layout(
    params: JacobiParams,
    num_sockets: usize,
) -> (TaskGraphSpec, JacobiLayout) {
    let nb = params.nb;
    let block_bytes = (params.block_elems * std::mem::size_of::<f64>()) as u64;
    let mut builder = TdgBuilder::new();
    let idx = |i: usize, j: usize| i * nb + j;
    let u: Vec<_> = (0..nb * nb)
        .map(|k| builder.labelled_region(block_bytes, format!("u[{}][{}]", k / nb, k % nb)))
        .collect();
    let v: Vec<_> = (0..nb * nb)
        .map(|k| builder.labelled_region(block_bytes, format!("v[{}][{}]", k / nb, k % nb)))
        .collect();
    let grids = [u, v];

    let mut ep = Vec::new();
    let owner = |i: usize, j: usize| row_block_owner(i, j, nb, num_sockets);

    // Initialise grid 0.
    for i in 0..nb {
        for j in 0..nb {
            builder.submit(
                TaskSpec::new("init")
                    .work(params.block_elems as f64)
                    .writes(grids[0][idx(i, j)], block_bytes),
            );
            ep.push(owner(i, j));
        }
    }

    // Sweeps: read `src`, write `dst`, alternate.
    for iter in 0..params.iterations {
        let src = &grids[iter % 2];
        let dst = &grids[(iter + 1) % 2];
        for i in 0..nb {
            for j in 0..nb {
                let mut task = TaskSpec::new("sweep")
                    .work(5.0 * params.block_elems as f64)
                    .reads(src[idx(i, j)], block_bytes)
                    .writes(dst[idx(i, j)], block_bytes);
                if i > 0 {
                    task = task.reads(src[idx(i - 1, j)], block_bytes);
                }
                if i + 1 < nb {
                    task = task.reads(src[idx(i + 1, j)], block_bytes);
                }
                if j > 0 {
                    task = task.reads(src[idx(i, j - 1)], block_bytes);
                }
                if j + 1 < nb {
                    task = task.reads(src[idx(i, j + 1)], block_bytes);
                }
                builder.submit(task);
                ep.push(owner(i, j));
            }
        }
    }

    let (graph, sizes) = builder.finish();
    let layout = JacobiLayout {
        grids: [
            grids[0].iter().map(|r| r.index()).collect(),
            grids[1].iter().map(|r| r.index()).collect(),
        ],
        nb,
        block_elems: params.block_elems,
        iterations: params.iterations,
    };
    let spec = TaskGraphSpec::new("Jacobi", graph, sizes).with_ep_placement(ep);
    (spec, layout)
}

/// Initial tile value used by both the task body and the reference: tile
/// `(i, j)` starts at `(i + 2 j + 1)` in every element.
pub fn initial_value(i: usize, j: usize) -> f64 {
    (i + 2 * j + 1) as f64
}

/// Real task bodies over a [`DenseStore`]. Each tile is kept spatially
/// constant (all its elements hold the tile average), which preserves the
/// communication pattern while keeping the reference computation simple.
pub fn body<'a>(
    spec: &'a TaskGraphSpec,
    layout: &'a JacobiLayout,
    store: &'a DenseStore,
) -> impl Fn(TaskId) + Sync + 'a {
    let nb = layout.nb;
    move |task: TaskId| {
        let descriptor = spec.graph.task(task);
        match descriptor.kind.as_str() {
            "init" => {
                let region = descriptor.accesses[0].region.index();
                let k = layout.grids[0]
                    .iter()
                    .position(|&r| r == region)
                    .expect("init writes grid 0");
                let value = initial_value(k / nb, k % nb);
                store.write(region, |v| v.fill(value));
            }
            "sweep" => {
                // accesses[0] = own tile (read), accesses[1] = output tile,
                // the rest are the neighbours.
                let own = descriptor.accesses[0].region.index();
                let out = descriptor.accesses[1].region.index();
                let mut sum = store.read(own, |v| v[0]);
                let mut count = 1.0;
                for access in &descriptor.accesses[2..] {
                    sum += store.read(access.region.index(), |v| v[0]);
                    count += 1.0;
                }
                let new = sum / count;
                store.write(out, |v| v.fill(new));
            }
            other => panic!("unknown Jacobi task kind {other}"),
        }
    }
}

/// Sequential reference: one value per tile, same averaging rule.
pub fn reference(params: &JacobiParams) -> Vec<f64> {
    let nb = params.nb;
    let mut current: Vec<f64> = (0..nb * nb)
        .map(|k| initial_value(k / nb, k % nb))
        .collect();
    for _ in 0..params.iterations {
        let mut next = vec![0.0; nb * nb];
        for i in 0..nb {
            for j in 0..nb {
                let mut sum = current[i * nb + j];
                let mut count = 1.0;
                if i > 0 {
                    sum += current[(i - 1) * nb + j];
                    count += 1.0;
                }
                if i + 1 < nb {
                    sum += current[(i + 1) * nb + j];
                    count += 1.0;
                }
                if j > 0 {
                    sum += current[i * nb + (j - 1)];
                    count += 1.0;
                }
                if j + 1 < nb {
                    sum += current[i * nb + (j + 1)];
                    count += 1.0;
                }
                next[i * nb + j] = sum / count;
            }
        }
        current = next;
    }
    current
}

/// Verifies the store against the sequential reference. Returns the maximum
/// absolute error across all tiles.
pub fn verify(layout: &JacobiLayout, store: &DenseStore, params: &JacobiParams) -> f64 {
    let expected = reference(params);
    let result_grid = &layout.grids[params.iterations % 2];
    let mut max_err = 0.0f64;
    for (k, &region) in result_grid.iter().enumerate() {
        let got = store.read(region, |v| v[0]);
        max_err = max_err.max((got - expected[k]).abs());
    }
    max_err
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_and_region_counts() {
        let p = JacobiParams::with_scale(ProblemScale::Tiny);
        let spec = build(p, 4);
        assert_eq!(spec.num_regions(), 2 * p.nb * p.nb);
        assert_eq!(spec.num_tasks(), p.nb * p.nb * (1 + p.iterations));
        assert!(spec.validate().is_ok());
        assert!(spec.graph.is_acyclic());
    }

    #[test]
    fn stencil_edges_exist_between_neighbours() {
        let p = JacobiParams {
            nb: 3,
            block_elems: 8,
            iterations: 1,
        };
        let spec = build(p, 2);
        // First sweep task of tile (0,0) is task 9 (after 9 init tasks); it
        // must depend on the init tasks of (0,0), (1,0) and (0,1).
        let sweep00 = numadag_tdg::TaskId(9);
        assert_eq!(spec.graph.task(sweep00).kind, "sweep");
        let preds: Vec<usize> = spec
            .graph
            .predecessors(sweep00)
            .iter()
            .map(|(t, _)| t.index())
            .collect();
        assert!(preds.contains(&0)); // init (0,0)
        assert!(preds.contains(&1)); // init (0,1)
        assert!(preds.contains(&3)); // init (1,0)
        assert_eq!(preds.len(), 3);
    }

    #[test]
    fn ep_placement_splits_rows() {
        let p = JacobiParams {
            nb: 8,
            block_elems: 8,
            iterations: 1,
        };
        let spec = build(p, 4);
        let ep = spec.ep_socket.as_ref().unwrap();
        // Init of tile (0, *) on socket 0, tile (7, *) on socket 3.
        assert_eq!(ep[0], 0);
        assert_eq!(ep[7 * 8], 3);
    }

    #[test]
    fn bodies_match_sequential_reference() {
        let p = JacobiParams {
            nb: 4,
            block_elems: 16,
            iterations: 5,
        };
        let (spec, layout) = build_with_layout(p, 2);
        let store = DenseStore::uniform(spec.num_regions(), p.block_elems);
        let run = body(&spec, &layout, &store);
        for t in spec.graph.task_ids() {
            run(t);
        }
        assert!(verify(&layout, &store, &p) < 1e-12);
    }

    #[test]
    fn reference_converges_towards_mean() {
        let p = JacobiParams {
            nb: 4,
            block_elems: 1,
            iterations: 200,
        };
        let r = reference(&p);
        let spread =
            r.iter().cloned().fold(f64::MIN, f64::max) - r.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            spread < 0.5,
            "diffusion should smooth the field, spread {spread}"
        );
    }
}
