//! Helpers shared by the kernel builders: expert placements and problem
//! scaling.

/// How large the Figure-1 problem instances should be. The paper uses inputs
/// sized for a 32-core machine; the reproduction offers three scales so tests
/// can run tiny instances while the benchmark harness runs the full ones.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum ProblemScale {
    /// Tiny instances for unit/integration tests (tens of tasks).
    Tiny,
    /// Small instances for quick local runs (hundreds of tasks).
    Small,
    /// The default evaluation size (one to a few thousand tasks per kernel).
    #[default]
    Full,
}

impl ProblemScale {
    /// The lower-case token the CLIs and the sweep service use on the wire.
    pub fn label(&self) -> &'static str {
        match self {
            ProblemScale::Tiny => "tiny",
            ProblemScale::Small => "small",
            ProblemScale::Full => "full",
        }
    }
}

impl std::fmt::Display for ProblemScale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for ProblemScale {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "tiny" => Ok(ProblemScale::Tiny),
            "small" => Ok(ProblemScale::Small),
            "full" => Ok(ProblemScale::Full),
            other => Err(format!(
                "unknown scale '{other}' (expected tiny|small|full)"
            )),
        }
    }
}

/// Owner-computes block distribution: block `i` of `n` blocks goes to socket
/// `i * sockets / n` (contiguous chunks, the classic expert choice for
/// streams and stencils).
pub fn block_owner(i: usize, n: usize, sockets: usize) -> usize {
    if n == 0 || sockets == 0 {
        return 0;
    }
    (i * sockets / n).min(sockets - 1)
}

/// Cyclic distribution: block `i` goes to socket `i % sockets`.
pub fn cyclic_owner(i: usize, sockets: usize) -> usize {
    if sockets == 0 {
        0
    } else {
        i % sockets
    }
}

/// 2-D block-cyclic distribution over a near-square process grid — the
/// placement an expert would use for tiled dense factorisations (ScaLAPACK
/// style). Returns the socket owning tile `(i, j)`.
pub fn block_cyclic_2d(i: usize, j: usize, sockets: usize) -> usize {
    if sockets == 0 {
        return 0;
    }
    let p = (1..=sockets)
        .filter(|d| sockets.is_multiple_of(*d))
        .min_by_key(|&d| {
            let q = sockets / d;
            (d as isize - q as isize).unsigned_abs()
        })
        .unwrap_or(1);
    let q = sockets / p;
    (i % p) * q + (j % q)
}

/// 2-D row-block distribution for an `nb × nb` grid of blocks: the grid is
/// cut into `sockets` horizontal slabs.
pub fn row_block_owner(i: usize, _j: usize, nb: usize, sockets: usize) -> usize {
    block_owner(i, nb, sockets)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_owner_is_contiguous_and_balanced() {
        let owners: Vec<usize> = (0..16).map(|i| block_owner(i, 16, 4)).collect();
        assert_eq!(owners, vec![0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3]);
        // Non-divisible case still covers all sockets and is monotone.
        let owners: Vec<usize> = (0..10).map(|i| block_owner(i, 10, 4)).collect();
        assert!(owners.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*owners.last().unwrap(), 3);
        assert_eq!(owners[0], 0);
    }

    #[test]
    fn block_owner_degenerate_inputs() {
        assert_eq!(block_owner(3, 0, 4), 0);
        assert_eq!(block_owner(3, 10, 0), 0);
        assert_eq!(block_owner(9, 10, 1), 0);
    }

    #[test]
    fn cyclic_owner_wraps() {
        assert_eq!(cyclic_owner(0, 4), 0);
        assert_eq!(cyclic_owner(5, 4), 1);
        assert_eq!(cyclic_owner(7, 0), 0);
    }

    #[test]
    fn block_cyclic_grid_is_balanced() {
        // 8 sockets → 2x4 or 4x2 grid; over an 8x8 tile grid every socket
        // owns exactly 8 tiles.
        let mut counts = vec![0usize; 8];
        for i in 0..8 {
            for j in 0..8 {
                counts[block_cyclic_2d(i, j, 8)] += 1;
            }
        }
        assert!(counts.iter().all(|&c| c == 8), "{counts:?}");
    }

    #[test]
    fn block_cyclic_perfect_square() {
        let mut counts = [0usize; 4];
        for i in 0..4 {
            for j in 0..4 {
                counts[block_cyclic_2d(i, j, 4)] += 1;
            }
        }
        assert!(counts.iter().all(|&c| c == 4));
        assert_eq!(block_cyclic_2d(0, 0, 0), 0);
    }

    #[test]
    fn row_block_owner_splits_rows() {
        assert_eq!(row_block_owner(0, 5, 8, 4), 0);
        assert_eq!(row_block_owner(7, 0, 8, 4), 3);
    }

    #[test]
    fn problem_scale_default_is_full() {
        assert_eq!(ProblemScale::default(), ProblemScale::Full);
    }

    #[test]
    fn problem_scale_labels_round_trip() {
        for scale in [ProblemScale::Tiny, ProblemScale::Small, ProblemScale::Full] {
            assert_eq!(scale.label().parse::<ProblemScale>().unwrap(), scale);
            assert_eq!(scale.to_string(), scale.label());
        }
        assert_eq!("FULL".parse::<ProblemScale>().unwrap(), ProblemScale::Full);
        assert!("huge".parse::<ProblemScale>().is_err());
    }
}
