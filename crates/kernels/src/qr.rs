//! Tiled QR factorisation (Householder, PLASMA-style kernel set:
//! GEQRT / ORMQR / TSQRT / TSMQR).
//!
//! The tile DAG is the classic dense-factorisation shape: a serial panel
//! chain down the diagonal, trailing-matrix updates fanning out from it, and
//! decreasing parallelism as the factorisation proceeds. Expert programmers
//! place tiles 2-D block-cyclically; the interesting question for RGP is
//! whether the partitioner discovers an equally good grouping from the byte
//! weights alone.

use numadag_tdg::{TaskGraphSpec, TaskSpec, TdgBuilder};

use crate::common::{block_cyclic_2d, ProblemScale};
use crate::linalg::{gemm_flops, geqrt_flops, trsm_flops};

/// Parameters of the tiled QR kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QrParams {
    /// Tiles per dimension (the matrix is `nt × nt` tiles).
    pub nt: usize,
    /// Tile side length in elements.
    pub tile_n: usize,
}

impl QrParams {
    /// Parameters for a given problem scale.
    pub fn with_scale(scale: ProblemScale) -> Self {
        match scale {
            ProblemScale::Tiny => QrParams { nt: 4, tile_n: 16 },
            ProblemScale::Small => QrParams { nt: 8, tile_n: 128 },
            ProblemScale::Full => QrParams {
                nt: 12,
                tile_n: 256,
            },
        }
    }
}

impl Default for QrParams {
    fn default() -> Self {
        QrParams::with_scale(ProblemScale::Full)
    }
}

/// Builds the tiled-QR task graph with a 2-D block-cyclic expert placement.
pub fn build(params: QrParams, num_sockets: usize) -> TaskGraphSpec {
    let nt = params.nt;
    let tile_bytes = (params.tile_n * params.tile_n * std::mem::size_of::<f64>()) as u64;
    let t_bytes = (params.tile_n * std::mem::size_of::<f64>()) as u64 * 32;

    let mut builder = TdgBuilder::new();
    let idx = |i: usize, j: usize| i * nt + j;
    let a: Vec<_> = (0..nt * nt)
        .map(|k| builder.labelled_region(tile_bytes, format!("A[{}][{}]", k / nt, k % nt)))
        .collect();
    let t_diag: Vec<_> = (0..nt)
        .map(|k| builder.labelled_region(t_bytes, format!("T[{k}]")))
        .collect();
    let t_sub: Vec<_> = (0..nt * nt)
        .map(|k| builder.labelled_region(t_bytes, format!("T2[{}][{}]", k / nt, k % nt)))
        .collect();

    let mut ep = Vec::new();
    let owner = |i: usize, j: usize| block_cyclic_2d(i, j, num_sockets);
    let b = params.tile_n;

    // Initialise the matrix tiles.
    for i in 0..nt {
        for j in 0..nt {
            builder.submit(
                TaskSpec::new("init_tile")
                    .work((b * b) as f64)
                    .writes(a[idx(i, j)], tile_bytes),
            );
            ep.push(owner(i, j));
        }
    }

    for k in 0..nt {
        // Panel factorisation of the diagonal tile.
        builder.submit(
            TaskSpec::new("geqrt")
                .work(geqrt_flops(b))
                .reads_writes(a[idx(k, k)], tile_bytes)
                .writes(t_diag[k], t_bytes),
        );
        ep.push(owner(k, k));

        // Apply the panel reflectors to the tiles right of the diagonal.
        for j in (k + 1)..nt {
            builder.submit(
                TaskSpec::new("ormqr")
                    .work(gemm_flops(b))
                    .reads(a[idx(k, k)], tile_bytes)
                    .reads(t_diag[k], t_bytes)
                    .reads_writes(a[idx(k, j)], tile_bytes),
            );
            ep.push(owner(k, j));
        }

        // Eliminate the tiles below the diagonal.
        for i in (k + 1)..nt {
            builder.submit(
                TaskSpec::new("tsqrt")
                    .work(geqrt_flops(b) + trsm_flops(b))
                    .reads_writes(a[idx(k, k)], tile_bytes)
                    .reads_writes(a[idx(i, k)], tile_bytes)
                    .writes(t_sub[idx(i, k)], t_bytes),
            );
            ep.push(owner(i, k));

            for j in (k + 1)..nt {
                builder.submit(
                    TaskSpec::new("tsmqr")
                        .work(2.0 * gemm_flops(b))
                        .reads(a[idx(i, k)], tile_bytes)
                        .reads(t_sub[idx(i, k)], t_bytes)
                        .reads_writes(a[idx(k, j)], tile_bytes)
                        .reads_writes(a[idx(i, j)], tile_bytes),
                );
                ep.push(owner(i, j));
            }
        }
    }

    let (graph, sizes) = builder.finish();
    TaskGraphSpec::new("QR factorization", graph, sizes).with_ep_placement(ep)
}

/// Number of factorisation tasks (excluding tile initialisation) for `nt`
/// tiles: `Σ_k 1 + (nt-1-k) + (nt-1-k) + (nt-1-k)²`.
pub fn factorization_task_count(nt: usize) -> usize {
    (0..nt)
        .map(|k| {
            let rem = nt - 1 - k;
            1 + rem + rem + rem * rem
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_validity() {
        let p = QrParams::with_scale(ProblemScale::Tiny);
        let spec = build(p, 4);
        assert_eq!(
            spec.num_tasks(),
            p.nt * p.nt + factorization_task_count(p.nt)
        );
        assert!(spec.validate().is_ok());
        assert!(spec.graph.is_acyclic());
        assert!(spec.ep_socket.is_some());
    }

    #[test]
    fn task_count_formula() {
        assert_eq!(factorization_task_count(1), 1);
        assert_eq!(factorization_task_count(2), 1 + 1 + 1 + 1 + 1);
        // nt=3: k=0 → 1+2+2+4=9, k=1 → 1+1+1+1=4, k=2 → 1. Total 14.
        assert_eq!(factorization_task_count(3), 14);
    }

    #[test]
    fn diagonal_chain_serialises_panels() {
        let p = QrParams { nt: 4, tile_n: 8 };
        let spec = build(p, 4);
        // The second geqrt must be (transitively) after the first: its level
        // is strictly greater.
        let levels = spec.graph.levels();
        let geqrt_levels: Vec<usize> = spec
            .graph
            .tasks()
            .iter()
            .filter(|t| t.kind == "geqrt")
            .map(|t| levels[t.id.index()])
            .collect();
        assert_eq!(geqrt_levels.len(), 4);
        for w in geqrt_levels.windows(2) {
            assert!(w[1] > w[0], "geqrt levels must increase: {geqrt_levels:?}");
        }
    }

    #[test]
    fn trailing_update_reads_panel_tiles() {
        let p = QrParams { nt: 3, tile_n: 8 };
        let spec = build(p, 2);
        let tsmqr = spec
            .graph
            .tasks()
            .iter()
            .find(|t| t.kind == "tsmqr")
            .unwrap();
        assert_eq!(tsmqr.accesses.len(), 4);
        assert!(tsmqr.bytes_read() > tsmqr.bytes_written());
    }

    #[test]
    fn parallelism_shrinks_with_factorisation_progress() {
        let p = QrParams { nt: 6, tile_n: 8 };
        let spec = build(p, 4);
        // Average parallelism is positive but far below the task count
        // (the diagonal chain is serial).
        let ap = spec.graph.average_parallelism();
        assert!(ap > 1.5);
        assert!(ap < spec.num_tasks() as f64 / 4.0);
    }
}
