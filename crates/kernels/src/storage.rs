//! Real data storage for kernels that execute actual numerics.
//!
//! Each data region of a workload maps to one `Vec<f64>` guarded by an
//! `RwLock`. Task bodies lock exactly the regions they declared as accesses,
//! which both keeps the execution safe under any interleaving the threaded
//! executor produces and mirrors the "regions are the unit of dependence"
//! model of OmpSs.

use std::sync::RwLock;

/// One `Vec<f64>` per region.
#[derive(Debug, Default)]
pub struct DenseStore {
    blocks: Vec<RwLock<Vec<f64>>>,
}

impl DenseStore {
    /// Creates a store with one zero-initialised block of `block_elems[i]`
    /// elements per region.
    pub fn new(block_elems: &[usize]) -> Self {
        DenseStore {
            blocks: block_elems
                .iter()
                .map(|&n| RwLock::new(vec![0.0; n]))
                .collect(),
        }
    }

    /// Creates a store where every region has the same number of elements.
    pub fn uniform(num_regions: usize, elems: usize) -> Self {
        DenseStore {
            blocks: (0..num_regions)
                .map(|_| RwLock::new(vec![0.0; elems]))
                .collect(),
        }
    }

    /// Number of regions in the store.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True if the store holds no regions.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Reads region `r` through a closure.
    pub fn read<T>(&self, r: usize, f: impl FnOnce(&[f64]) -> T) -> T {
        f(&self.blocks[r].read().expect("poisoned region lock"))
    }

    /// Mutates region `r` through a closure.
    pub fn write<T>(&self, r: usize, f: impl FnOnce(&mut Vec<f64>) -> T) -> T {
        f(&mut self.blocks[r].write().expect("poisoned region lock"))
    }

    /// Copies region `r` out (convenient in verifications).
    pub fn snapshot(&self, r: usize) -> Vec<f64> {
        self.read(r, |s| s.to_vec())
    }

    /// Sum of all elements of region `r`.
    pub fn sum(&self, r: usize) -> f64 {
        self.read(r, |s| s.iter().sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_store_has_zeroed_blocks() {
        let s = DenseStore::uniform(4, 8);
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        assert_eq!(s.snapshot(3), vec![0.0; 8]);
        assert_eq!(s.sum(0), 0.0);
    }

    #[test]
    fn per_region_sizes() {
        let s = DenseStore::new(&[2, 5, 0]);
        assert_eq!(s.snapshot(0).len(), 2);
        assert_eq!(s.snapshot(1).len(), 5);
        assert!(s.snapshot(2).is_empty());
    }

    #[test]
    fn read_write_round_trip() {
        let s = DenseStore::uniform(2, 3);
        s.write(1, |v| {
            v[0] = 1.5;
            v[2] = 2.5;
        });
        assert_eq!(s.sum(1), 4.0);
        let total = s.read(1, |v| v.iter().filter(|x| **x > 0.0).count());
        assert_eq!(total, 2);
    }

    #[test]
    fn concurrent_access_is_safe() {
        let s = DenseStore::uniform(8, 16);
        std::thread::scope(|scope| {
            for r in 0..8 {
                let s = &s;
                scope.spawn(move || {
                    for _ in 0..100 {
                        s.write(r, |v| v[0] += 1.0);
                    }
                });
            }
        });
        for r in 0..8 {
            assert_eq!(s.read(r, |v| v[0]), 100.0);
        }
    }
}
