//! Red–black Gauss–Seidel: the grid's tiles are coloured like a
//! checkerboard; all red tiles update in one phase (reading only black
//! neighbours), then all black tiles update. Within a phase every tile is
//! independent, giving far more parallelism than plain Gauss–Seidel while
//! still reusing neighbour data across sockets.

use numadag_tdg::{TaskGraphSpec, TaskSpec, TdgBuilder};

use crate::common::{row_block_owner, ProblemScale};

/// Parameters of the red–black kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RedBlackParams {
    /// Blocks per dimension.
    pub nb: usize,
    /// Elements per tile.
    pub block_elems: usize,
    /// Number of full (red + black) sweeps.
    pub iterations: usize,
}

impl RedBlackParams {
    /// Parameters for a given problem scale.
    pub fn with_scale(scale: ProblemScale) -> Self {
        match scale {
            ProblemScale::Tiny => RedBlackParams {
                nb: 4,
                block_elems: 64,
                iterations: 3,
            },
            ProblemScale::Small => RedBlackParams {
                nb: 8,
                block_elems: 16 * 1024,
                iterations: 6,
            },
            ProblemScale::Full => RedBlackParams {
                nb: 12,
                block_elems: 64 * 1024,
                iterations: 10,
            },
        }
    }
}

impl Default for RedBlackParams {
    fn default() -> Self {
        RedBlackParams::with_scale(ProblemScale::Full)
    }
}

/// Builds the red–black task graph with expert placement.
pub fn build(params: RedBlackParams, num_sockets: usize) -> TaskGraphSpec {
    let nb = params.nb;
    let block_bytes = (params.block_elems * std::mem::size_of::<f64>()) as u64;
    let mut builder = TdgBuilder::new();
    let idx = |i: usize, j: usize| i * nb + j;
    let u: Vec<_> = (0..nb * nb)
        .map(|k| builder.labelled_region(block_bytes, format!("u[{}][{}]", k / nb, k % nb)))
        .collect();

    let mut ep = Vec::new();
    let owner = |i: usize, j: usize| row_block_owner(i, j, nb, num_sockets);

    for i in 0..nb {
        for j in 0..nb {
            builder.submit(
                TaskSpec::new("init")
                    .work(params.block_elems as f64)
                    .writes(u[idx(i, j)], block_bytes),
            );
            ep.push(owner(i, j));
        }
    }

    for _ in 0..params.iterations {
        for colour in 0..2usize {
            for i in 0..nb {
                for j in 0..nb {
                    if (i + j) % 2 != colour {
                        continue;
                    }
                    let kind = if colour == 0 {
                        "red_update"
                    } else {
                        "black_update"
                    };
                    let mut task = TaskSpec::new(kind)
                        .work(5.0 * params.block_elems as f64)
                        .reads_writes(u[idx(i, j)], block_bytes);
                    if i > 0 {
                        task = task.reads(u[idx(i - 1, j)], block_bytes);
                    }
                    if i + 1 < nb {
                        task = task.reads(u[idx(i + 1, j)], block_bytes);
                    }
                    if j > 0 {
                        task = task.reads(u[idx(i, j - 1)], block_bytes);
                    }
                    if j + 1 < nb {
                        task = task.reads(u[idx(i, j + 1)], block_bytes);
                    }
                    builder.submit(task);
                    ep.push(owner(i, j));
                }
            }
        }
    }

    let (graph, sizes) = builder.finish();
    TaskGraphSpec::new("Red-Black", graph, sizes).with_ep_placement(ep)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_validity() {
        let p = RedBlackParams::with_scale(ProblemScale::Tiny);
        let spec = build(p, 4);
        assert_eq!(spec.num_regions(), p.nb * p.nb);
        assert_eq!(spec.num_tasks(), p.nb * p.nb * (1 + p.iterations));
        assert!(spec.validate().is_ok());
        assert!(spec.graph.is_acyclic());
    }

    #[test]
    fn more_parallel_than_gauss_seidel() {
        let rb = build(
            RedBlackParams {
                nb: 6,
                block_elems: 8,
                iterations: 2,
            },
            2,
        );
        let gs = crate::gauss_seidel::build(
            crate::gauss_seidel::GaussSeidelParams {
                nb: 6,
                block_elems: 8,
                iterations: 2,
            },
            2,
        );
        assert!(rb.graph.average_parallelism() > gs.graph.average_parallelism());
    }

    #[test]
    fn phases_alternate_colours() {
        let p = RedBlackParams {
            nb: 2,
            block_elems: 4,
            iterations: 1,
        };
        let spec = build(p, 2);
        let kinds: Vec<&str> = spec.graph.tasks().iter().map(|t| t.kind.as_str()).collect();
        // 4 inits, then 2 red tiles ((0,0), (1,1)), then 2 black tiles.
        assert_eq!(
            kinds,
            vec![
                "init",
                "init",
                "init",
                "init",
                "red_update",
                "red_update",
                "black_update",
                "black_update"
            ]
        );
        // A black tile depends on its red neighbours from the same sweep.
        let black = numadag_tdg::TaskId(6);
        let preds: Vec<usize> = spec
            .graph
            .predecessors(black)
            .iter()
            .map(|(t, _)| t.index())
            .collect();
        assert!(preds.iter().any(|&t| t == 4 || t == 5), "{preds:?}");
    }
}
