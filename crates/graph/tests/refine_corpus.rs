//! Bit-identity corpus for the queue-driven rebalance: the `GainQueue`
//! implementation must produce the exact assignment (and move count) of the
//! retained `O(n·k)`-per-move linear-scan reference on every case of a
//! 162-case corpus — the same corpus size PR 3 used to pin the multilevel
//! pipeline against the seed partitioner, re-targeted at the rebalance
//! selection loop this PR put behind a priority queue.
//!
//! The corpus spans the generator families (random, grid, layered DAG),
//! sizes from 50 to 1000 vertices, part counts 2/4/8, and two imbalance
//! shapes per combination: "everything crammed into the low parts" (what a
//! degenerate projection produces) and "balanced with one part overloaded"
//! (what real projections produce).

use numadag_graph::generators;
use numadag_graph::partition::refine::{rebalance, rebalance_reference};
use numadag_graph::CsrGraph;

/// The two imbalance shapes seeded per (graph, k) combination.
fn seeds(n: usize, k: usize) -> [Vec<u32>; 2] {
    let crammed: Vec<u32> = (0..n as u32).map(|v| v % (k as u32 / 2).max(1)).collect();
    let skewed: Vec<u32> = (0..n as u32)
        .map(|v| if v % 5 == 0 { 0 } else { v % k as u32 })
        .collect();
    [crammed, skewed]
}

fn corpus() -> Vec<CsrGraph> {
    let mut graphs = Vec::new();
    for &n in &[50usize, 200, 1000] {
        for &degree in &[2usize, 4] {
            for seed in 1..=3u64 {
                graphs.push(generators::random_graph(n, degree, 1 << 12, seed));
            }
        }
    }
    for &(w, h) in &[(4usize, 4usize), (8, 8), (16, 16)] {
        graphs.push(generators::grid_2d(w, h, 8));
    }
    for &(layers, width) in &[
        (8usize, 8usize),
        (8, 16),
        (16, 16),
        (16, 32),
        (32, 16),
        (32, 32),
    ] {
        graphs.push(generators::layered_dag_skeleton(layers, width, 2, 1 << 10));
    }
    graphs
}

#[test]
fn rebalance_queue_matches_linear_reference_on_corpus() {
    let graphs = corpus();
    let mut cases = 0usize;
    for graph in &graphs {
        let n = graph.num_vertices();
        let total: i64 = graph.vertex_weights().iter().sum();
        for &k in &[2usize, 4, 8] {
            let max_part_weight = (total + k as i64 - 1) / k as i64 + total / 20;
            for seed in seeds(n, k) {
                let mut queued = seed.clone();
                let mut linear = seed.clone();
                let queued_moves = rebalance(graph, &mut queued, k, max_part_weight);
                let linear_moves = rebalance_reference(graph, &mut linear, k, max_part_weight);
                assert_eq!(
                    queued_moves, linear_moves,
                    "move count diverged (n={n}, k={k})"
                );
                assert_eq!(queued, linear, "assignment diverged (n={n}, k={k})");
                cases += 1;
            }
        }
    }
    // 27 graphs × 3 part counts × 2 imbalance shapes.
    assert_eq!(cases, 162, "corpus drifted from the 162-fingerprint size");
}
