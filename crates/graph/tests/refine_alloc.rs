//! Allocation gate for the pooled refinement scratch: once a
//! `RefineScratch` has been warmed by one call, further
//! `refine_kway_anchored_with` calls of the same working-set size must not
//! allocate at all — that is the contract that makes threading the scratch
//! through `PartitionCtx` (one partition per RGP window, several
//! uncoarsening levels per partition) worthwhile.
//!
//! The gate counts every `alloc`/`realloc` through a counting global
//! allocator armed only around the measured call, so the test is exact
//! rather than statistical: a single reintroduced per-level or per-pass
//! allocation fails it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use numadag_graph::generators;
use numadag_graph::partition::refine::{refine_kway_anchored_with, RefineScratch};
use numadag_graph::partition::{AffinityCosts, PartitionConfig};

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);
static ARMED: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// A seed assignment that crams every vertex into the low half of the parts,
/// so the rebalance phase (and its per-part queues) actually runs.
fn crammed(n: usize, k: usize) -> Vec<u32> {
    (0..n as u32).map(|v| v % (k as u32 / 2).max(1)).collect()
}

fn measured_run(
    graph: &numadag_graph::CsrGraph,
    cfg: &PartitionConfig,
    affinity: Option<&AffinityCosts>,
    scratch: &mut RefineScratch,
    seed: &[u32],
) -> (Vec<u32>, i64, usize) {
    let mut assignment = seed.to_vec();
    ALLOCATIONS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    let cut = refine_kway_anchored_with(
        graph,
        &mut assignment,
        cfg,
        cfg.refine_passes,
        affinity,
        scratch,
    );
    ARMED.store(false, Ordering::SeqCst);
    (assignment, cut, ALLOCATIONS.load(Ordering::SeqCst))
}

#[test]
fn warmed_refine_scratch_is_allocation_free_and_bit_identical() {
    let graph = generators::random_graph(600, 5, 64, 11);
    let n = graph.num_vertices();
    let k = 8usize;
    let cfg = PartitionConfig::new(k);
    let seed = crammed(n, k);
    let mut affinity = AffinityCosts::zeros(n, k);
    for v in (0..n as u32).step_by(7) {
        affinity.add(v, v % k as u32, 256);
    }

    for aff in [None, Some(&affinity)] {
        // Cold call: sizes every buffer (and is the bit-identity baseline —
        // a fresh scratch is exactly the public refine_kway_anchored path).
        let mut scratch = RefineScratch::default();
        let mut cold = seed.clone();
        let cold_cut = refine_kway_anchored_with(
            &graph,
            &mut cold,
            &cfg,
            cfg.refine_passes,
            aff,
            &mut scratch,
        );

        // Warmed call: identical result, zero allocations.
        let (warm, warm_cut, allocs) = measured_run(&graph, &cfg, aff, &mut scratch, &seed);
        assert_eq!(cold, warm, "reused scratch changed the refinement result");
        assert_eq!(cold_cut, warm_cut, "reused scratch changed the edge cut");
        assert_eq!(
            allocs,
            0,
            "warmed refinement allocated {allocs} times (anchored: {})",
            aff.is_some()
        );
    }
}

#[test]
fn warmed_scratch_absorbs_smaller_working_sets() {
    // A scratch warmed on a large level must stay allocation-free on the
    // smaller levels of the same hierarchy (the common multilevel pattern:
    // coarse levels are strictly smaller than the finest one).
    let big = generators::random_graph(600, 5, 64, 3);
    let small = generators::grid_2d(12, 12, 4);
    let k = 4usize;
    let cfg = PartitionConfig::new(k);
    let mut scratch = RefineScratch::default();

    let warm_seed = crammed(big.num_vertices(), k);
    let mut warm = warm_seed.clone();
    refine_kway_anchored_with(&big, &mut warm, &cfg, cfg.refine_passes, None, &mut scratch);

    let small_seed = crammed(small.num_vertices(), k);
    let (_, _, allocs) = measured_run(&small, &cfg, None, &mut scratch, &small_seed);
    assert_eq!(allocs, 0, "smaller level allocated {allocs} times");
}
