//! # numadag-graph — weighted graphs and a multilevel k-way partitioner
//!
//! The paper partitions the task dependency graph with SCOTCH. SCOTCH is not
//! available in this environment, so this crate provides the same capability
//! from scratch:
//!
//! * [`csr::CsrGraph`] — an undirected, vertex- and edge-weighted graph in
//!   compressed sparse row form, plus a convenient [`csr::GraphBuilder`].
//! * [`partition`] — a multilevel k-way edge-cut partitioner in the
//!   SCOTCH/METIS family, structured as a pipeline of pluggable stage traits
//!   ([`partition::pipeline::Coarsener`],
//!   [`partition::pipeline::InitialPartitioner`],
//!   [`partition::pipeline::Refiner`]): heavy-edge-matching coarsening,
//!   greedy graph-growing / recursive-bisection initial partitioning, and
//!   Fiduccia–Mattheyses-style boundary refinement over an incremental gain
//!   table. A deliberately naive BFS-growing scheme is included as an
//!   ablation baseline.
//! * [`metrics`] — edge cut, communication volume and balance metrics.
//! * [`generators`] — synthetic graphs (grids, layered DAG skeletons, random
//!   graphs) used by tests and microbenchmarks.
//!
//! The partitioner is deterministic for a fixed seed, which the runtime
//! relies on for reproducible scheduling decisions.

#![warn(missing_docs)]

pub mod csr;
pub mod generators;
pub mod metrics;
pub mod partition;

pub use csr::{CsrGraph, GraphBuilder};
pub use partition::pipeline::MultilevelPipeline;
pub use partition::{
    partition, partition_anchored, partition_anchored_ctx, partition_ctx, partition_with,
    partition_with_anchored, partition_with_anchored_ctx, partition_with_ctx, AffinityCosts,
    PartMembers, Partition, PartitionConfig, PartitionCtx, PartitionScheme, PartitionTuning,
};
