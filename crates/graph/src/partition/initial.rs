//! Initial partitioning: greedy graph growing, recursive bisection and the
//! naive BFS baseline.

use rand::rngs::StdRng;
use rand::Rng;

use crate::csr::CsrGraph;

/// Grows one side of a bisection of the vertex subset `vertices` until its
/// weight reaches `target_left`, preferring at each step the candidate most
/// strongly connected to the growing side (greedy graph growing, GGG).
///
/// `slack` is the fraction of `target_left` the split may deviate by: the
/// left side always grows to at least `target_left * (1 - slack)`, and keeps
/// growing up to `target_left * (1 + slack)` as long as the best candidate
/// still *reduces* the cut (positive gain). A natural cluster boundary just
/// past the proportional target is therefore respected instead of sliced
/// through. `slack = 0.0` reproduces the exact-target behaviour.
///
/// Returns the `(left, right)` vertex sets. Both are non-empty as long as
/// `vertices` has at least two elements and `target_left` is positive and
/// below the subset weight.
pub fn greedy_bisection(
    graph: &CsrGraph,
    vertices: &[u32],
    target_left: i64,
    slack: f64,
    rng: &mut StdRng,
) -> (Vec<u32>, Vec<u32>) {
    let n_total = graph.num_vertices();
    if vertices.len() < 2 {
        return (vertices.to_vec(), Vec::new());
    }
    let mut in_subset = vec![false; n_total];
    for &v in vertices {
        in_subset[v as usize] = true;
    }
    let total: i64 = vertices.iter().map(|&v| graph.vertex_weight(v)).sum();
    let target_left = target_left.clamp(1, total - 1);
    let slack = slack.max(0.0);
    let min_left = ((target_left as f64) * (1.0 - slack)).floor() as i64;
    let min_left = min_left.clamp(1, target_left);
    let max_left = ((target_left as f64) * (1.0 + slack)).ceil() as i64;
    let max_left = max_left.clamp(target_left, total - 1);

    let mut in_left = vec![false; n_total];
    let mut left_weight = 0i64;
    let mut left: Vec<u32> = Vec::new();
    // gain[v] = (weight to left) - (weight to right), only meaningful for
    // candidates (subset vertices not yet in left).
    let mut gain = vec![i64::MIN; n_total];
    // Compact list of vertices whose gain is set: the candidate scan walks
    // this (boundary-sized) list instead of every vertex of the graph.
    let mut cand: Vec<u32> = Vec::new();

    while left_weight < max_left {
        // Pick the best candidate among subset vertices adjacent to the left
        // side; if none exists (left is empty or its component is exhausted),
        // seed with a pseudo-peripheral vertex of the remaining subset.
        let candidate = best_candidate(&gain, &in_left, &mut cand);
        let v = match candidate {
            Some(v) => v,
            None => match seed_vertex(graph, vertices, &in_left, &in_subset, rng) {
                Some(v) => v,
                None => break,
            },
        };
        // Inside the slack band the mandatory growth is done: only keep
        // absorbing vertices that strictly reduce the cut (a fresh seed of a
        // disconnected component never does).
        if left_weight >= min_left && gain[v as usize] <= 0 {
            break;
        }
        // Adding v to the left may overshoot the target slightly; the
        // refinement phase restores exact balance; stopping early risks an
        // empty side.
        in_left[v as usize] = true;
        left_weight += graph.vertex_weight(v);
        left.push(v);
        gain[v as usize] = i64::MIN;
        // Update candidate gains around v.
        for (u, w) in graph.edges_of(v) {
            if !in_subset[u as usize] || in_left[u as usize] {
                continue;
            }
            if gain[u as usize] == i64::MIN {
                gain[u as usize] = initial_gain(graph, u, &in_left, &in_subset);
                cand.push(u);
            } else {
                // Edge (u, v) moved from the "right" side to the "left" side
                // of u's gain: +w for the left term, +w for removing it from
                // the right term.
                gain[u as usize] += 2 * w;
            }
        }
    }
    let right: Vec<u32> = vertices
        .iter()
        .copied()
        .filter(|&v| !in_left[v as usize])
        .collect();
    (left, right)
}

fn initial_gain(graph: &CsrGraph, v: u32, in_left: &[bool], in_subset: &[bool]) -> i64 {
    let mut g = 0i64;
    for (u, w) in graph.edges_of(v) {
        if !in_subset[u as usize] {
            continue;
        }
        if in_left[u as usize] {
            g += w;
        } else {
            g -= w;
        }
    }
    g
}

/// Scans the candidate list for the best `(gain desc, vertex asc)` entry,
/// dropping vertices that joined the left side on the way. The maximum over
/// a set does not depend on scan order, so the swap-removals leave the
/// selection identical to the previous full-vertex scan.
fn best_candidate(gain: &[i64], in_left: &[bool], cand: &mut Vec<u32>) -> Option<u32> {
    let mut best: Option<(i64, u32)> = None;
    let mut i = 0;
    while i < cand.len() {
        let v = cand[i];
        if in_left[v as usize] {
            cand.swap_remove(i);
            continue;
        }
        let g = gain[v as usize];
        match best {
            None => best = Some((g, v)),
            Some((bg, bv)) => {
                if g > bg || (g == bg && v < bv) {
                    best = Some((g, v));
                }
            }
        }
        i += 1;
    }
    best.map(|(_, v)| v)
}

/// Picks a pseudo-peripheral seed: a random unassigned subset vertex, then
/// the farthest vertex from it by BFS (restricted to the subset and to
/// unassigned vertices).
fn seed_vertex(
    graph: &CsrGraph,
    vertices: &[u32],
    in_left: &[bool],
    in_subset: &[bool],
    rng: &mut StdRng,
) -> Option<u32> {
    let remaining: Vec<u32> = vertices
        .iter()
        .copied()
        .filter(|&v| !in_left[v as usize])
        .collect();
    if remaining.is_empty() {
        return None;
    }
    let start = remaining[rng.gen_range(0..remaining.len())];
    // BFS to find the farthest reachable unassigned vertex.
    let mut visited = vec![false; graph.num_vertices()];
    let mut queue = std::collections::VecDeque::new();
    visited[start as usize] = true;
    queue.push_back(start);
    let mut last = start;
    while let Some(v) = queue.pop_front() {
        last = v;
        for &u in graph.neighbors(v) {
            if in_subset[u as usize] && !in_left[u as usize] && !visited[u as usize] {
                visited[u as usize] = true;
                queue.push_back(u);
            }
        }
    }
    Some(last)
}

/// Recursive bisection into `k` parts. Part ids are contiguous from 0.
///
/// The `imbalance` budget is honoured: it is split evenly across the
/// ~`log2(k)` bisection levels, and each greedy bisection may deviate from
/// its proportional target by that per-level slack when doing so cuts fewer
/// edges. The product of per-level deviations stays within the overall
/// budget (refinement then tightens balance further).
pub fn recursive_bisection(
    graph: &CsrGraph,
    k: usize,
    imbalance: f64,
    rng: &mut StdRng,
) -> Vec<u32> {
    let n = graph.num_vertices();
    let mut assignment = vec![0u32; n];
    let vertices: Vec<u32> = (0..n as u32).collect();
    // Distribute the budget over the bisection levels so the compounded
    // per-level deviations stay within `imbalance` overall:
    // (1 + slack)^levels = 1 + imbalance.
    let levels = k.next_power_of_two().trailing_zeros().max(1) as f64;
    let slack = (1.0 + imbalance.max(0.0)).powf(1.0 / levels) - 1.0;
    rb_recurse(graph, &vertices, k, 0, slack, rng, &mut assignment);
    assignment
}

fn rb_recurse(
    graph: &CsrGraph,
    vertices: &[u32],
    k: usize,
    part_offset: u32,
    slack: f64,
    rng: &mut StdRng,
    assignment: &mut [u32],
) {
    if k <= 1 || vertices.len() <= 1 {
        for &v in vertices {
            assignment[v as usize] = part_offset;
        }
        return;
    }
    let k_left = k.div_ceil(2);
    let total: i64 = vertices.iter().map(|&v| graph.vertex_weight(v)).sum();
    let target_left = ((total as f64) * (k_left as f64) / (k as f64)).round() as i64;
    let (left, right) = greedy_bisection(graph, vertices, target_left, slack, rng);
    // Guard against degenerate splits on pathological graphs: fall back to a
    // weight-balanced split of the vertex list.
    let (left, right) = if left.is_empty() || right.is_empty() {
        split_by_weight(graph, vertices, target_left)
    } else {
        (left, right)
    };
    rb_recurse(graph, &left, k_left, part_offset, slack, rng, assignment);
    rb_recurse(
        graph,
        &right,
        k - k_left,
        part_offset + k_left as u32,
        slack,
        rng,
        assignment,
    );
}

fn split_by_weight(graph: &CsrGraph, vertices: &[u32], target_left: i64) -> (Vec<u32>, Vec<u32>) {
    let mut left = Vec::new();
    let mut right = Vec::new();
    let mut acc = 0i64;
    for &v in vertices {
        if acc < target_left {
            acc += graph.vertex_weight(v);
            left.push(v);
        } else {
            right.push(v);
        }
    }
    if left.is_empty() && !right.is_empty() {
        left.push(right.remove(0));
    }
    if right.is_empty() && left.len() > 1 {
        right.push(left.pop().unwrap());
    }
    (left, right)
}

/// Naive baseline: breadth-first growth from random seeds, ignoring edge
/// weights entirely. Parts are contiguous chunks of the BFS order balanced by
/// vertex weight. This is the "simple heuristic" the paper contrasts graph
/// partitioning against, and the ABL-PART ablation baseline.
pub fn bfs_growing(graph: &CsrGraph, k: usize, rng: &mut StdRng) -> Vec<u32> {
    let n = graph.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    while order.len() < n {
        // Start a BFS from a random unvisited vertex.
        let unvisited: Vec<u32> = (0..n as u32).filter(|&v| !visited[v as usize]).collect();
        let start = unvisited[rng.gen_range(0..unvisited.len())];
        visited[start as usize] = true;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for &u in graph.neighbors(v) {
                if !visited[u as usize] {
                    visited[u as usize] = true;
                    queue.push_back(u);
                }
            }
        }
    }
    // Chop the order into k chunks of roughly equal vertex weight.
    let total = graph.total_vertex_weight();
    let ideal = total as f64 / k as f64;
    let mut assignment = vec![0u32; n];
    let mut acc = 0i64;
    let mut part = 0u32;
    for &v in &order {
        if (acc as f64) >= ideal * (part as f64 + 1.0) && (part as usize) < k - 1 {
            part += 1;
        }
        assignment[v as usize] = part;
        acc += graph.vertex_weight(v);
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::metrics;
    use crate::partition::Partition;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn greedy_bisection_splits_clusters() {
        let g = generators::two_clusters(6, 20);
        let vertices: Vec<u32> = (0..12).collect();
        let (left, right) = greedy_bisection(&g, &vertices, 6, 0.0, &mut rng());
        assert_eq!(left.len(), 6);
        assert_eq!(right.len(), 6);
        // The left side must be exactly one of the clusters.
        let mut l = left.clone();
        l.sort_unstable();
        assert!(l == (0..6).collect::<Vec<u32>>() || l == (6..12).collect::<Vec<u32>>());
    }

    #[test]
    fn greedy_bisection_handles_subsets() {
        let g = generators::path(10);
        // Bisect only the even vertices (no edges among them).
        let vertices: Vec<u32> = (0..10).filter(|v| v % 2 == 0).collect();
        let (left, right) = greedy_bisection(&g, &vertices, 2, 0.0, &mut rng());
        assert_eq!(left.len() + right.len(), 5);
        assert!(!left.is_empty());
        assert!(!right.is_empty());
    }

    #[test]
    fn slack_lets_the_split_settle_on_a_cluster_boundary() {
        // Two 6-vertex clusters joined by one light edge. An exact target of
        // 5 forces the split through a cluster (cutting heavy edges); a 20%
        // slack lets the left side absorb the 6th vertex and cut only the
        // light bridge.
        let g = generators::two_clusters(6, 20);
        let vertices: Vec<u32> = (0..12).collect();
        let (exact, _) = greedy_bisection(&g, &vertices, 5, 0.0, &mut rng());
        assert_eq!(exact.len(), 5, "exact target must stop at weight 5");
        let (loose, right) = greedy_bisection(&g, &vertices, 5, 0.2, &mut rng());
        assert_eq!(loose.len(), 6, "slack should settle on the cluster");
        let mut l = loose.clone();
        l.sort_unstable();
        assert!(l == (0..6).collect::<Vec<u32>>() || l == (6..12).collect::<Vec<u32>>());
        assert_eq!(right.len(), 6);
    }

    #[test]
    fn slack_does_not_absorb_cut_increasing_vertices() {
        // A uniform path has no cluster boundary: every extra vertex beyond
        // the target has non-positive gain, so slack must not grow the left
        // side past the mandatory minimum.
        let g = generators::path(10);
        let vertices: Vec<u32> = (0..10).collect();
        let (left, _) = greedy_bisection(&g, &vertices, 5, 0.4, &mut rng());
        // min_left = 3, and past it only positive-gain vertices are taken;
        // on a path the frontier vertex always has gain <= 0 once min_left
        // is reached.
        assert!(left.len() <= 5, "slack over-grew the left side: {left:?}");
        assert!(!left.is_empty());
    }

    #[test]
    fn recursive_bisection_stays_within_the_imbalance_budget() {
        let g = generators::grid_2d(16, 16, 1);
        for k in [2usize, 4, 8] {
            for imbalance in [0.05f64, 0.10, 0.30] {
                let a = recursive_bisection(&g, k, imbalance, &mut rng());
                let p = Partition::from_assignment(a, k);
                let weights = metrics::part_weights(&g, &p);
                let ideal = g.total_vertex_weight() as f64 / k as f64;
                let max = *weights.iter().max().unwrap() as f64;
                // One unit of integer-rounding overshoot per bisection level.
                let levels = (k.next_power_of_two().trailing_zeros().max(1)) as f64;
                assert!(
                    max <= ideal * (1.0 + imbalance) + levels,
                    "k={k} imbalance={imbalance}: max part {max} vs ideal {ideal}"
                );
            }
        }
    }

    #[test]
    fn recursive_bisection_produces_k_parts() {
        let g = generators::grid_2d(12, 12, 1);
        for k in [2, 3, 4, 6, 8] {
            let a = recursive_bisection(&g, k, 0.1, &mut rng());
            let p = Partition::from_assignment(a, k);
            let weights = metrics::part_weights(&g, &p);
            assert_eq!(weights.len(), k);
            assert!(weights.iter().all(|&w| w > 0), "k={k}: empty part");
            let imb = metrics::imbalance(&g, &p);
            assert!(imb < 1.6, "k={k}: initial imbalance {imb} is unreasonable");
        }
    }

    #[test]
    fn recursive_bisection_on_disconnected_graph() {
        let mut b = crate::csr::GraphBuilder::new(8);
        b.add_edge(0, 1, 1).add_edge(2, 3, 1);
        b.add_edge(4, 5, 1).add_edge(6, 7, 1);
        let g = b.build();
        let a = recursive_bisection(&g, 4, 0.1, &mut rng());
        let p = Partition::from_assignment(a, 4);
        let weights = metrics::part_weights(&g, &p);
        assert!(weights.iter().all(|&w| w > 0));
    }

    #[test]
    fn bfs_growing_is_balanced_but_weight_oblivious() {
        let g = generators::grid_2d(10, 10, 1);
        let a = bfs_growing(&g, 4, &mut rng());
        let p = Partition::from_assignment(a, 4);
        let weights = metrics::part_weights(&g, &p);
        assert_eq!(weights.iter().sum::<i64>(), 100);
        let imb = metrics::imbalance(&g, &p);
        assert!(
            imb < 1.3,
            "BFS chunks should be roughly balanced, got {imb}"
        );
    }

    #[test]
    fn bfs_growing_covers_disconnected_graphs() {
        let g = crate::csr::CsrGraph::empty(17);
        let a = bfs_growing(&g, 4, &mut rng());
        assert_eq!(a.len(), 17);
        assert!(a.iter().all(|&p| p < 4));
    }

    #[test]
    fn single_vertex_subset() {
        let g = generators::path(3);
        let (l, r) = greedy_bisection(&g, &[1], 1, 0.1, &mut rng());
        assert_eq!(l, vec![1]);
        assert!(r.is_empty());
    }
}
