//! Coarsening via heavy-edge matching (HEM).
//!
//! Edges are considered globally from heaviest to lightest (equal-weight
//! edges in random order), and an edge is taken into the matching whenever
//! both endpoints are still unmatched. This greedy-by-weight variant is
//! stronger than the classic visit-each-vertex HEM: a locally heaviest edge
//! can never be pre-empted by a lighter edge that merely happened to be
//! visited earlier. Matched pairs collapse into a single coarse vertex whose
//! weight is the sum of the pair's weights; parallel edges between coarse
//! vertices are merged by adding their weights. This is the standard first
//! phase of METIS/SCOTCH-style multilevel partitioning: it preserves heavy
//! edges inside coarse vertices so the initial partition never has to cut
//! them.
//!
//! The whole hierarchy is built through one [`CoarsenWorkspace`], so the
//! edge list, matching flags and contraction scratch arrays are allocated
//! once and reused across levels — on 100k+ vertex windows the allocator
//! otherwise dominates the matching itself.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;

use crate::csr::CsrGraph;

/// One level of the coarsening hierarchy.
#[derive(Clone, Debug)]
pub struct CoarseLevel {
    /// The coarser graph.
    pub graph: CsrGraph,
    /// For every vertex of the *finer* graph, the coarse vertex it collapsed
    /// into.
    pub fine_to_coarse: Vec<u32>,
}

/// Scratch buffers shared by every level of one coarsening run. All buffers
/// grow to the size of the finest graph once and shrink logically (via
/// `clear`/truncation) on the coarser levels.
#[derive(Debug, Default)]
pub struct CoarsenWorkspace {
    /// `(weight, v, u, shuffle position)` of the current level's edges,
    /// sorted heaviest-first with the post-shuffle position as tie-break.
    edges: Vec<(i64, u32, u32, u32)>,
    /// Whether a vertex of the current level is already matched.
    matched: Vec<bool>,
    /// Matching of the current level (`match_of[v] == v` means unmatched).
    match_of: Vec<u32>,
    /// Contraction scratch: position of a coarse neighbour in `row`, or
    /// `u32::MAX` when it has not been seen for the current coarse vertex.
    coarse_pos: Vec<u32>,
    /// Merged `(coarse neighbour, weight)` row of the coarse vertex under
    /// construction.
    row: Vec<(u32, i64)>,
}

/// Computes a heavy-edge matching of `graph` into the workspace's
/// `match_of` buffer and returns a reference to it.
fn heavy_edge_matching_into<'a>(
    graph: &CsrGraph,
    rng: &mut StdRng,
    ws: &'a mut CoarsenWorkspace,
) -> &'a [u32] {
    let n = graph.num_vertices();
    ws.match_of.clear();
    ws.match_of.extend(0..n as u32);
    ws.matched.clear();
    ws.matched.resize(n, false);
    ws.edges.clear();
    for v in 0..n as u32 {
        for (u, w) in graph.edges_of(v) {
            if u > v {
                ws.edges.push((w, v, u, 0));
            }
        }
    }
    // Shuffle first, then sort heaviest-first with the post-shuffle position
    // as an explicit tie-break: equal-weight edges stay in random order
    // (exactly what the previous stable sort produced), but the now-unique
    // key admits an allocation-free unstable sort.
    ws.edges.shuffle(rng);
    for (i, e) in ws.edges.iter_mut().enumerate() {
        e.3 = i as u32;
    }
    ws.edges
        .sort_unstable_by_key(|e| (std::cmp::Reverse(e.0), e.3));
    for &(_, v, u, _) in ws.edges.iter() {
        if !ws.matched[v as usize] && !ws.matched[u as usize] {
            ws.match_of[v as usize] = u;
            ws.match_of[u as usize] = v;
            ws.matched[v as usize] = true;
            ws.matched[u as usize] = true;
        }
    }
    &ws.match_of
}

/// Computes a heavy-edge matching of `graph`.
///
/// Returns `match_of[v]`, where `match_of[v] == v` means `v` stayed single.
pub fn heavy_edge_matching(graph: &CsrGraph, rng: &mut StdRng) -> Vec<u32> {
    let mut ws = CoarsenWorkspace::default();
    heavy_edge_matching_into(graph, rng, &mut ws);
    ws.match_of
}

/// Collapses a matching into a coarser graph, merging parallel edges and
/// dropping self loops, using (and reusing) the workspace's scratch arrays.
///
/// The coarse graph is built straight into CSR form: coarse vertices are
/// numbered in order of their smallest fine constituent, and each adjacency
/// row is merged through a dense position table and then sorted, so the
/// result is identical to what an edge-map-based builder would produce —
/// without the per-level `O(E log E)` map churn.
fn contract_into(graph: &CsrGraph, match_of: &[u32], ws: &mut CoarsenWorkspace) -> CoarseLevel {
    let n = graph.num_vertices();
    let mut fine_to_coarse = vec![u32::MAX; n];
    // Representative (smallest) fine constituent of every coarse vertex; the
    // second constituent, if any, is `match_of[rep]`.
    let mut rep: Vec<u32> = Vec::with_capacity(n);
    let mut next = 0u32;
    for v in 0..n as u32 {
        if fine_to_coarse[v as usize] != u32::MAX {
            continue;
        }
        let m = match_of[v as usize];
        fine_to_coarse[v as usize] = next;
        if m != v {
            fine_to_coarse[m as usize] = next;
        }
        rep.push(v);
        next += 1;
    }
    let coarse_n = next as usize;

    // Vertex weights are conserved by contraction.
    let mut cvw = vec![0i64; coarse_n];
    for v in 0..n as u32 {
        cvw[fine_to_coarse[v as usize] as usize] += graph.vertex_weight(v);
    }
    for w in &mut cvw {
        *w = (*w).max(1);
    }

    ws.coarse_pos.clear();
    ws.coarse_pos.resize(coarse_n, u32::MAX);
    ws.row.clear();

    let mut xadj = Vec::with_capacity(coarse_n + 1);
    xadj.push(0usize);
    // The coarse graph has at most as many (directed) edges as the fine one.
    let mut adjncy: Vec<u32> = Vec::with_capacity(graph.num_edges() * 2);
    let mut adjwgt: Vec<i64> = Vec::with_capacity(graph.num_edges() * 2);
    for (c, &first) in rep.iter().enumerate() {
        let second = match_of[first as usize];
        let constituents = std::iter::once(first).chain((second != first).then_some(second));
        for f in constituents {
            for (u, w) in graph.edges_of(f) {
                let cu = fine_to_coarse[u as usize];
                if cu == c as u32 {
                    continue; // edge collapsed inside the coarse vertex
                }
                let p = ws.coarse_pos[cu as usize];
                if p == u32::MAX {
                    ws.coarse_pos[cu as usize] = ws.row.len() as u32;
                    ws.row.push((cu, w));
                } else {
                    ws.row[p as usize].1 += w;
                }
            }
        }
        // Sorted adjacency keeps the coarse graph bit-identical to a
        // map-built one, so downstream tie-breaking is order-independent.
        ws.row.sort_unstable_by_key(|&(cu, _)| cu);
        for &(cu, w) in ws.row.iter() {
            adjncy.push(cu);
            adjwgt.push(w);
        }
        xadj.push(adjncy.len());
        for &(cu, _) in ws.row.iter() {
            ws.coarse_pos[cu as usize] = u32::MAX;
        }
        ws.row.clear();
    }

    CoarseLevel {
        graph: CsrGraph::from_parts_unchecked(xadj, adjncy, adjwgt, cvw),
        fine_to_coarse,
    }
}

/// Collapses a matching into a coarser graph.
pub fn contract(graph: &CsrGraph, match_of: &[u32]) -> CoarseLevel {
    let mut ws = CoarsenWorkspace::default();
    contract_into(graph, match_of, &mut ws)
}

/// One full coarsening step: match then contract.
pub fn coarsen_once(graph: &CsrGraph, rng: &mut StdRng) -> CoarseLevel {
    let mut ws = CoarsenWorkspace::default();
    coarsen_once_with(graph, rng, &mut ws)
}

/// One full coarsening step through a reusable workspace.
fn coarsen_once_with(graph: &CsrGraph, rng: &mut StdRng, ws: &mut CoarsenWorkspace) -> CoarseLevel {
    heavy_edge_matching_into(graph, rng, ws);
    let match_of = std::mem::take(&mut ws.match_of);
    let level = contract_into(graph, &match_of, ws);
    ws.match_of = match_of;
    level
}

/// Repeatedly coarsens `graph` until it has at most `target_vertices`
/// vertices or coarsening stops making progress (shrink factor > 0.95).
/// Returns the hierarchy from finest (first) to coarsest (last). The original
/// graph is *not* included.
pub fn coarsen_to(graph: &CsrGraph, target_vertices: usize, rng: &mut StdRng) -> Vec<CoarseLevel> {
    let mut ws = CoarsenWorkspace::default();
    coarsen_to_with(graph, target_vertices, rng, &mut ws)
}

/// [`coarsen_to`] through a caller-owned workspace, so repeated partitioning
/// runs (e.g. the per-window calls of RGP's repartitioning mode) reuse the
/// matching and contraction buffers instead of reallocating them per window.
/// The result is identical to [`coarsen_to`] — the workspace is scratch
/// state only.
pub fn coarsen_to_with(
    graph: &CsrGraph,
    target_vertices: usize,
    rng: &mut StdRng,
    ws: &mut CoarsenWorkspace,
) -> Vec<CoarseLevel> {
    let mut levels: Vec<CoarseLevel> = Vec::new();
    loop {
        let next = {
            let current: &CsrGraph = levels.last().map(|l| &l.graph).unwrap_or(graph);
            if current.num_vertices() <= target_vertices.max(2) {
                break;
            }
            let level = coarsen_once_with(current, rng, ws);
            let shrink = level.graph.num_vertices() as f64 / current.num_vertices() as f64;
            if shrink > 0.95 {
                // Matching found almost nothing to merge (e.g. graph is mostly
                // isolated vertices); further coarsening is pointless.
                break;
            }
            level
        };
        levels.push(next);
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn matching_is_symmetric_and_valid() {
        let g = generators::grid_2d(8, 8, 1);
        let m = heavy_edge_matching(&g, &mut rng());
        for v in 0..g.num_vertices() as u32 {
            let u = m[v as usize];
            assert_eq!(m[u as usize], v, "matching must be an involution");
            if u != v {
                assert!(
                    g.neighbors(v).contains(&u),
                    "matched vertices must be adjacent"
                );
            }
        }
    }

    #[test]
    fn matching_prefers_heavy_edges() {
        // Path 0 -1- 1 -100- 2 -1- 3 : vertices 1 and 2 must match.
        let mut b = crate::csr::GraphBuilder::new(4);
        b.add_edge(0, 1, 1).add_edge(1, 2, 100).add_edge(2, 3, 1);
        let g = b.build();
        // Whatever the visit order, the heavy edge is chosen when either
        // endpoint is visited first.
        let m = heavy_edge_matching(&g, &mut rng());
        assert!(m[1] == 2 || m[2] == 1);
        assert_eq!(m[1], 2);
    }

    #[test]
    fn contraction_preserves_total_weights() {
        let g = generators::random_graph(200, 6, 10, 3);
        let level = coarsen_once(&g, &mut rng());
        assert!(level.graph.num_vertices() < g.num_vertices());
        assert_eq!(
            level.graph.total_vertex_weight(),
            g.total_vertex_weight(),
            "vertex weight is conserved by contraction"
        );
        // Edge weight can only decrease (self-collapsed edges disappear).
        assert!(level.graph.total_edge_weight() <= g.total_edge_weight());
        assert!(level.graph.validate().is_ok());
        // Mapping covers every fine vertex and targets a valid coarse vertex.
        for &c in &level.fine_to_coarse {
            assert!((c as usize) < level.graph.num_vertices());
        }
    }

    #[test]
    fn contraction_matches_map_built_graph() {
        // The CSR-direct contraction must produce exactly the graph an
        // edge-map builder would: merged duplicate edges, sorted adjacency.
        let g = generators::random_graph(300, 8, 50, 11);
        let m = heavy_edge_matching(&g, &mut rng());
        let level = contract(&g, &m);
        let mut b = crate::csr::GraphBuilder::new(level.graph.num_vertices());
        let mut cw = vec![0i64; level.graph.num_vertices()];
        for v in 0..g.num_vertices() as u32 {
            cw[level.fine_to_coarse[v as usize] as usize] += g.vertex_weight(v);
        }
        for (c, w) in cw.iter().enumerate() {
            b.set_vertex_weight(c as u32, (*w).max(1));
        }
        for v in 0..g.num_vertices() as u32 {
            for (u, w) in g.edges_of(v) {
                if u > v {
                    b.add_edge(
                        level.fine_to_coarse[v as usize],
                        level.fine_to_coarse[u as usize],
                        w,
                    );
                }
            }
        }
        assert_eq!(level.graph, b.build());
    }

    #[test]
    fn coarsen_to_reaches_target() {
        let g = generators::grid_2d(32, 32, 2);
        let levels = coarsen_to(&g, 64, &mut rng());
        assert!(!levels.is_empty());
        let coarsest = &levels.last().unwrap().graph;
        assert!(coarsest.num_vertices() <= 64 || levels.len() > 4);
        // Hierarchy is strictly decreasing in size.
        let mut prev = g.num_vertices();
        for level in &levels {
            assert!(level.graph.num_vertices() < prev);
            prev = level.graph.num_vertices();
        }
    }

    #[test]
    fn coarsening_stops_on_isolated_vertices() {
        let g = CsrGraph::empty(100);
        let levels = coarsen_to(&g, 10, &mut rng());
        assert!(levels.is_empty(), "no edges means nothing can be merged");
    }

    #[test]
    fn contract_handles_singletons() {
        // A triangle plus an isolated vertex: the isolated vertex survives.
        let mut b = crate::csr::GraphBuilder::new(4);
        b.add_edge(0, 1, 2).add_edge(1, 2, 2).add_edge(0, 2, 2);
        let g = b.build();
        let level = coarsen_once(&g, &mut rng());
        assert_eq!(level.graph.total_vertex_weight(), 4);
        assert!(level.graph.num_vertices() >= 2);
    }
}
