//! Coarsening via heavy-edge matching (HEM).
//!
//! Edges are considered globally from heaviest to lightest (equal-weight
//! edges in random order), and an edge is taken into the matching whenever
//! both endpoints are still unmatched. This greedy-by-weight variant is
//! stronger than the classic visit-each-vertex HEM: a locally heaviest edge
//! can never be pre-empted by a lighter edge that merely happened to be
//! visited earlier. Matched pairs collapse into a single coarse vertex whose
//! weight is the sum of the pair's weights; parallel edges between coarse
//! vertices are merged by adding their weights. This is the standard first
//! phase of METIS/SCOTCH-style multilevel partitioning: it preserves heavy
//! edges inside coarse vertices so the initial partition never has to cut
//! them.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;

use crate::csr::{CsrGraph, GraphBuilder};

/// One level of the coarsening hierarchy.
#[derive(Clone, Debug)]
pub struct CoarseLevel {
    /// The coarser graph.
    pub graph: CsrGraph,
    /// For every vertex of the *finer* graph, the coarse vertex it collapsed
    /// into.
    pub fine_to_coarse: Vec<u32>,
}

/// Computes a heavy-edge matching of `graph`.
///
/// Returns `match_of[v]`, where `match_of[v] == v` means `v` stayed single.
pub fn heavy_edge_matching(graph: &CsrGraph, rng: &mut StdRng) -> Vec<u32> {
    let n = graph.num_vertices();
    let mut match_of: Vec<u32> = (0..n as u32).collect();
    let mut matched = vec![false; n];
    let mut edges: Vec<(i64, u32, u32)> = Vec::new();
    for v in 0..n as u32 {
        for (u, w) in graph.edges_of(v) {
            if u > v {
                edges.push((w, v, u));
            }
        }
    }
    // Shuffle first so that the stable sort leaves equal-weight edges in
    // random order: heavy edges always win, ties are seed-dependent.
    edges.shuffle(rng);
    edges.sort_by_key(|e| std::cmp::Reverse(e.0));
    for (_, v, u) in edges {
        if !matched[v as usize] && !matched[u as usize] {
            match_of[v as usize] = u;
            match_of[u as usize] = v;
            matched[v as usize] = true;
            matched[u as usize] = true;
        }
    }
    match_of
}

/// Collapses a matching into a coarser graph.
pub fn contract(graph: &CsrGraph, match_of: &[u32]) -> CoarseLevel {
    let n = graph.num_vertices();
    let mut fine_to_coarse = vec![u32::MAX; n];
    let mut next = 0u32;
    for v in 0..n as u32 {
        if fine_to_coarse[v as usize] != u32::MAX {
            continue;
        }
        let m = match_of[v as usize];
        fine_to_coarse[v as usize] = next;
        if m != v {
            fine_to_coarse[m as usize] = next;
        }
        next += 1;
    }
    let coarse_n = next as usize;
    let mut builder = GraphBuilder::new(coarse_n);
    // Vertex weights.
    let mut cw = vec![0i64; coarse_n];
    for v in 0..n as u32 {
        cw[fine_to_coarse[v as usize] as usize] += graph.vertex_weight(v);
    }
    for (c, w) in cw.iter().enumerate() {
        builder.set_vertex_weight(c as u32, (*w).max(1));
    }
    // Edges (GraphBuilder merges duplicates and drops self loops).
    for v in 0..n as u32 {
        let cv = fine_to_coarse[v as usize];
        for (u, w) in graph.edges_of(v) {
            if u > v {
                let cu = fine_to_coarse[u as usize];
                builder.add_edge(cv, cu, w);
            }
        }
    }
    CoarseLevel {
        graph: builder.build(),
        fine_to_coarse,
    }
}

/// One full coarsening step: match then contract.
pub fn coarsen_once(graph: &CsrGraph, rng: &mut StdRng) -> CoarseLevel {
    let matching = heavy_edge_matching(graph, rng);
    contract(graph, &matching)
}

/// Repeatedly coarsens `graph` until it has at most `target_vertices`
/// vertices or coarsening stops making progress (shrink factor > 0.95).
/// Returns the hierarchy from finest (first) to coarsest (last). The original
/// graph is *not* included.
pub fn coarsen_to(graph: &CsrGraph, target_vertices: usize, rng: &mut StdRng) -> Vec<CoarseLevel> {
    let mut levels: Vec<CoarseLevel> = Vec::new();
    let mut current = graph.clone();
    while current.num_vertices() > target_vertices.max(2) {
        let level = coarsen_once(&current, rng);
        let shrink = level.graph.num_vertices() as f64 / current.num_vertices() as f64;
        if shrink > 0.95 {
            // Matching found almost nothing to merge (e.g. graph is mostly
            // isolated vertices); further coarsening is pointless.
            break;
        }
        current = level.graph.clone();
        levels.push(level);
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn matching_is_symmetric_and_valid() {
        let g = generators::grid_2d(8, 8, 1);
        let m = heavy_edge_matching(&g, &mut rng());
        for v in 0..g.num_vertices() as u32 {
            let u = m[v as usize];
            assert_eq!(m[u as usize], v, "matching must be an involution");
            if u != v {
                assert!(
                    g.neighbors(v).contains(&u),
                    "matched vertices must be adjacent"
                );
            }
        }
    }

    #[test]
    fn matching_prefers_heavy_edges() {
        // Path 0 -1- 1 -100- 2 -1- 3 : vertices 1 and 2 must match.
        let mut b = crate::csr::GraphBuilder::new(4);
        b.add_edge(0, 1, 1).add_edge(1, 2, 100).add_edge(2, 3, 1);
        let g = b.build();
        // Whatever the visit order, the heavy edge is chosen when either
        // endpoint is visited first.
        let m = heavy_edge_matching(&g, &mut rng());
        assert!(m[1] == 2 || m[2] == 1);
        assert_eq!(m[1], 2);
    }

    #[test]
    fn contraction_preserves_total_weights() {
        let g = generators::random_graph(200, 6, 10, 3);
        let level = coarsen_once(&g, &mut rng());
        assert!(level.graph.num_vertices() < g.num_vertices());
        assert_eq!(
            level.graph.total_vertex_weight(),
            g.total_vertex_weight(),
            "vertex weight is conserved by contraction"
        );
        // Edge weight can only decrease (self-collapsed edges disappear).
        assert!(level.graph.total_edge_weight() <= g.total_edge_weight());
        assert!(level.graph.validate().is_ok());
        // Mapping covers every fine vertex and targets a valid coarse vertex.
        for &c in &level.fine_to_coarse {
            assert!((c as usize) < level.graph.num_vertices());
        }
    }

    #[test]
    fn coarsen_to_reaches_target() {
        let g = generators::grid_2d(32, 32, 2);
        let levels = coarsen_to(&g, 64, &mut rng());
        assert!(!levels.is_empty());
        let coarsest = &levels.last().unwrap().graph;
        assert!(coarsest.num_vertices() <= 64 || levels.len() > 4);
        // Hierarchy is strictly decreasing in size.
        let mut prev = g.num_vertices();
        for level in &levels {
            assert!(level.graph.num_vertices() < prev);
            prev = level.graph.num_vertices();
        }
    }

    #[test]
    fn coarsening_stops_on_isolated_vertices() {
        let g = CsrGraph::empty(100);
        let levels = coarsen_to(&g, 10, &mut rng());
        assert!(levels.is_empty(), "no edges means nothing can be merged");
    }

    #[test]
    fn contract_handles_singletons() {
        // A triangle plus an isolated vertex: the isolated vertex survives.
        let mut b = crate::csr::GraphBuilder::new(4);
        b.add_edge(0, 1, 2).add_edge(1, 2, 2).add_edge(0, 2, 2);
        let g = b.build();
        let level = coarsen_once(&g, &mut rng());
        assert_eq!(level.graph.total_vertex_weight(), 4);
        assert!(level.graph.num_vertices() >= 2);
    }
}
