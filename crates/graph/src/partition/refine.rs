//! K-way boundary refinement in the Fiduccia–Mattheyses family.
//!
//! After the initial partition (and after every uncoarsening step of the
//! multilevel scheme), [`refine_kway`] performs greedy passes over the
//! boundary vertices: each vertex may move to the neighbouring part it is
//! most strongly connected to, provided the move does not violate the balance
//! constraint. A separate [`rebalance`] step repairs partitions whose parts
//! exceed the allowed maximum weight (which can happen after projecting a
//! coarse partition onto a finer graph).
//!
//! The hot path is allocation-free per vertex visit: a [`GainTable`] holds
//! the vertex→part connectivity of the *whole* graph as one flat `n × k`
//! array, built once in `O(E)` and updated incrementally in `O(deg)` per
//! move. Boundary membership falls out of the same table for free (a vertex
//! is interior exactly when all of its incident weight stays in its own
//! part), so each refinement pass touches the table instead of re-walking
//! adjacency lists, and the old per-visit `Vec` allocation of the seed
//! implementation is gone entirely.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::csr::CsrGraph;
use crate::partition::affinity::AffinityCosts;
use crate::partition::PartitionConfig;

/// Incrementally-maintained vertex→part connectivity of a whole graph.
///
/// `conn(v, p)` is the total weight of edges from `v` into part `p`. The
/// table is `O(n·k)` memory, built in `O(E)`, and a vertex move costs
/// `O(deg(v))` to keep it exact.
///
/// When built via [`GainTable::build_anchored`] the table additionally holds
/// the per-vertex socket-affinity rows of an [`AffinityCosts`] input:
/// [`GainTable::gain`] then values a move by connectivity *plus* affinity
/// delta, and [`GainTable::is_movable`] extends the boundary with vertices
/// whose anchors pull them elsewhere. Without anchors both reduce exactly to
/// the connectivity-only quantities, so the unanchored path is unchanged.
#[derive(Debug, Default)]
pub struct GainTable {
    k: usize,
    /// Flat row-major `n × k` connectivity.
    conn: Vec<i64>,
    /// Total incident edge weight per vertex (row sum, cached).
    incident: Vec<i64>,
    /// Flat row-major `n × k` affinity anchors added to move gains (valid
    /// only while `anchored`). Unlike `conn` this is constant under moves
    /// (anchors point at *fixed* data).
    anchor: Vec<i64>,
    /// Whether the `anchor` rows participate in gains.
    anchored: bool,
}

impl GainTable {
    /// Builds the table for `assignment` in one edge sweep.
    pub fn build(graph: &CsrGraph, assignment: &[u32], k: usize) -> Self {
        let mut table = GainTable::default();
        table.rebuild(graph, assignment, k);
        table
    }

    /// [`GainTable::build`] plus the affinity anchors of `affinity` (one row
    /// per vertex, `affinity.num_parts()` must equal `k`).
    pub fn build_anchored(
        graph: &CsrGraph,
        assignment: &[u32],
        k: usize,
        affinity: &AffinityCosts,
    ) -> Self {
        let mut table = GainTable::default();
        table.rebuild_anchored(graph, assignment, k, affinity);
        table
    }

    /// Rebuilds the table in place for a (possibly different) graph and
    /// assignment, reusing the existing buffers. Equivalent to
    /// [`GainTable::build`] but allocation-free once the buffers have grown
    /// to the working size.
    pub fn rebuild(&mut self, graph: &CsrGraph, assignment: &[u32], k: usize) {
        let n = graph.num_vertices();
        self.k = k;
        self.conn.clear();
        self.conn.resize(n * k, 0);
        self.incident.clear();
        self.incident.resize(n, 0);
        self.anchored = false;
        for v in 0..n as u32 {
            let row = v as usize * k;
            let mut total = 0i64;
            for (u, w) in graph.edges_of(v) {
                self.conn[row + assignment[u as usize] as usize] += w;
                total += w;
            }
            self.incident[v as usize] = total;
        }
    }

    /// [`GainTable::rebuild`] plus the affinity anchors of `affinity`.
    pub fn rebuild_anchored(
        &mut self,
        graph: &CsrGraph,
        assignment: &[u32],
        k: usize,
        affinity: &AffinityCosts,
    ) {
        assert_eq!(affinity.num_vertices(), graph.num_vertices());
        assert_eq!(affinity.num_parts(), k);
        self.rebuild(graph, assignment, k);
        self.anchor.clear();
        self.anchor.extend_from_slice(affinity.flat());
        self.anchored = true;
    }

    /// Connectivity of `v` to part `p`.
    #[inline]
    pub fn conn(&self, v: u32, p: usize) -> i64 {
        self.conn[v as usize * self.k + p]
    }

    /// The connectivity row of `v` across all parts.
    #[inline]
    pub fn row(&self, v: u32) -> &[i64] {
        &self.conn[v as usize * self.k..(v as usize + 1) * self.k]
    }

    /// True if `v` has at least one neighbour outside its own part. Edge
    /// weights are strictly positive, so this is exactly "some incident
    /// weight leaves the part".
    #[inline]
    pub fn is_boundary(&self, assignment: &[u32], v: u32) -> bool {
        self.conn(v, assignment[v as usize] as usize) != self.incident[v as usize]
    }

    /// Gain of moving `v` from part `from` to part `to`: connectivity delta
    /// plus, when the table is anchored, the affinity delta.
    #[inline]
    pub fn gain(&self, v: u32, from: usize, to: usize) -> i64 {
        let row = v as usize * self.k;
        let mut gain = self.conn[row + to] - self.conn[row + from];
        if self.anchored {
            gain += self.anchor[row + to] - self.anchor[row + from];
        }
        gain
    }

    /// True if `v` is a candidate for refinement: on the edge boundary, or
    /// anchored more strongly to some other part than to its own.
    #[inline]
    pub fn is_movable(&self, assignment: &[u32], v: u32) -> bool {
        if self.is_boundary(assignment, v) {
            return true;
        }
        if !self.anchored {
            return false;
        }
        let row = v as usize * self.k;
        let own = self.anchor[row + assignment[v as usize] as usize];
        self.anchor[row..row + self.k].iter().any(|&c| c > own)
    }

    /// Records the move of `v` from part `from` to part `to`, updating the
    /// rows of its neighbours (its own row is unaffected: it describes the
    /// neighbours' parts, not its own).
    #[inline]
    pub fn apply_move(&mut self, graph: &CsrGraph, v: u32, from: usize, to: usize) {
        for (u, w) in graph.edges_of(v) {
            let row = u as usize * self.k;
            self.conn[row + from] -= w;
            self.conn[row + to] += w;
        }
    }

    /// Edge cut implied by the current table: half the total weight leaving
    /// each vertex's own part. `O(n)` instead of re-walking every edge.
    pub fn edge_cut(&self, assignment: &[u32]) -> i64 {
        let mut external = 0i64;
        for (v, &own) in assignment.iter().enumerate() {
            external += self.incident[v] - self.conn[v * self.k + own as usize];
        }
        external / 2
    }
}

/// Priority queue of candidate moves out of one overweight part, keyed on
/// the gain table.
///
/// Each vertex of the heavy part carries at most one entry: its best move
/// `(gain, target)` — highest gain, lowest target on ties. The queue is an
/// index-keyed binary max-heap ordered by `(gain desc, vertex asc)`, so the
/// top entry is exactly what the previous `O(n·k)`-per-move linear scan
/// selected: the maximum gain, with ties broken towards the smallest vertex
/// id and then the smallest target. (A classic array-of-buckets queue does
/// not apply here — gains are byte quantities spanning a huge sparse range —
/// so the bucket role is played by a positional heap with the same exact
/// selection order.)
///
/// Consistency protocol, exploiting that while the *set* of overweight parts
/// is stable, non-heavy target weights only grow and overweight parts only
/// shrink (overweight parts are never feasible targets):
///
/// * gains change only when a neighbour of a moved vertex is touched by
///   [`GainTable::apply_move`] — those entries are refreshed *eagerly*
///   (gains can increase, which a lazy scheme would miss);
/// * feasibility (`target weight + vertex weight <= max`) only decays, so a
///   stale-feasibility entry can only be *over*-ranked and is revalidated
///   *lazily* at pop time;
/// * a vertex whose entry disappears (no feasible target) can never come
///   back while the overweight set is stable.
///
/// When a part drops back under the limit the overweight set shrinks and a
/// fresh feasible target appears; `rebalance_with` invalidates every
/// retained queue at that point (at most `k − 1` times per run).
#[derive(Debug, Default)]
struct GainQueue {
    /// Heap of vertex ids, max on `(gain, Reverse(vertex))`.
    heap: Vec<u32>,
    /// `pos[v]` = heap slot of `v` plus one; zero means absent.
    pos: Vec<u32>,
    /// Cached best gain per vertex (valid only while `pos[v] != 0`).
    gain: Vec<i64>,
    /// Cached best target per vertex (valid only while `pos[v] != 0`).
    target: Vec<u32>,
}

impl GainQueue {
    fn new() -> Self {
        GainQueue::default()
    }

    /// Empties the queue and sizes the per-vertex tables for `n` vertices.
    fn reset(&mut self, n: usize) {
        self.heap.clear();
        self.pos.clear();
        self.pos.resize(n, 0);
        self.gain.resize(n, 0);
        self.target.resize(n, 0);
    }

    fn contains(&self, v: u32) -> bool {
        self.pos[v as usize] != 0
    }

    fn cached(&self, v: u32) -> (i64, u32) {
        (self.gain[v as usize], self.target[v as usize])
    }

    /// True if `a` outranks `b`: higher gain, or equal gain and lower id.
    #[inline]
    fn outranks(&self, a: u32, b: u32) -> bool {
        let (ga, gb) = (self.gain[a as usize], self.gain[b as usize]);
        ga > gb || (ga == gb && a < b)
    }

    /// Appends an entry without restoring heap order; call
    /// [`GainQueue::heapify`] once after the bulk load.
    fn push_unordered(&mut self, v: u32, gain: i64, target: u32) {
        self.gain[v as usize] = gain;
        self.target[v as usize] = target;
        self.pos[v as usize] = self.heap.len() as u32 + 1;
        self.heap.push(v);
    }

    /// Restores heap order after a bulk [`GainQueue::push_unordered`] load.
    fn heapify(&mut self) {
        for i in (0..self.heap.len() / 2).rev() {
            self.sift_down(i);
        }
    }

    fn peek(&self) -> Option<u32> {
        self.heap.first().copied()
    }

    fn remove(&mut self, v: u32) {
        let slot = self.pos[v as usize];
        if slot == 0 {
            return;
        }
        let i = (slot - 1) as usize;
        self.pos[v as usize] = 0;
        let last = self.heap.pop().unwrap();
        if last != v {
            self.heap[i] = last;
            self.pos[last as usize] = slot;
            self.sift_down(i);
            self.sift_up(i);
        }
    }

    /// Rewrites the entry of a queued vertex and restores its heap position.
    fn update(&mut self, v: u32, gain: i64, target: u32) {
        debug_assert!(self.contains(v));
        let i = (self.pos[v as usize] - 1) as usize;
        self.gain[v as usize] = gain;
        self.target[v as usize] = target;
        self.sift_down(i);
        self.sift_up((self.pos[v as usize] - 1) as usize);
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if !self.outranks(self.heap[i], self.heap[parent]) {
                break;
            }
            self.swap_slots(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.heap.len();
        loop {
            let left = 2 * i + 1;
            if left >= n {
                break;
            }
            let right = left + 1;
            let mut best = left;
            if right < n && self.outranks(self.heap[right], self.heap[left]) {
                best = right;
            }
            if !self.outranks(self.heap[best], self.heap[i]) {
                break;
            }
            self.swap_slots(i, best);
            i = best;
        }
    }

    #[inline]
    fn swap_slots(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.pos[self.heap[i] as usize] = i as u32 + 1;
        self.pos[self.heap[j] as usize] = j as u32 + 1;
    }
}

/// Best admissible move of `v` out of `heavy`: the highest-gain target with
/// spare capacity, lowest target index on ties. Mirrors the inner loops of
/// the linear-scan reference exactly.
#[inline]
fn best_move(
    graph: &CsrGraph,
    table: &GainTable,
    part_weight: &[i64],
    heavy: usize,
    max_part_weight: i64,
    v: u32,
) -> Option<(i64, u32)> {
    let vw = graph.vertex_weight(v);
    let mut best: Option<(i64, u32)> = None;
    for (target, &tw) in part_weight.iter().enumerate() {
        if target == heavy || tw + vw > max_part_weight {
            continue;
        }
        let gain = table.gain(v, heavy, target);
        match best {
            None => best = Some((gain, target as u32)),
            Some((bg, _)) if gain > bg => best = Some((gain, target as u32)),
            _ => {}
        }
    }
    best
}

/// Reusable scratch for [`refine_kway_anchored_with`] and the rebalance
/// phase: the gain table buffers, part weights, the per-pass boundary list
/// and the per-part rebalance queues. Holding one scratch across repeated
/// refinement calls (one per uncoarsening level per RGP window) removes
/// every per-level allocation; the scratch is pure state — results are
/// bit-identical with a fresh scratch per call.
#[derive(Debug, Default)]
pub struct RefineScratch {
    table: GainTable,
    part_weight: Vec<i64>,
    boundary: Vec<u32>,
    queues: Vec<GainQueue>,
    queue_built: Vec<bool>,
}

/// Moves vertices out of overweight parts until every part weighs at most
/// `max_part_weight`, choosing at each step the move that loses the least cut
/// weight. Returns the number of vertices moved.
pub fn rebalance(
    graph: &CsrGraph,
    assignment: &mut [u32],
    k: usize,
    max_part_weight: i64,
) -> usize {
    let mut table = GainTable::build(graph, assignment, k);
    let mut part_weight = weights_of(graph, assignment, k);
    let mut queues = Vec::new();
    let mut built = Vec::new();
    rebalance_with(
        graph,
        assignment,
        max_part_weight,
        &mut table,
        &mut part_weight,
        &mut queues,
        &mut built,
    )
}

/// The pre-queue `O(n·k)`-per-move implementation of [`rebalance`], retained
/// verbatim as the oracle for the queue/linear equivalence tests. Selection
/// order (maximum gain, then lowest vertex id, then lowest target) is the
/// contract both implementations share; the corpus tests in the `graph`
/// crate assert bit-identical assignments.
pub fn rebalance_reference(
    graph: &CsrGraph,
    assignment: &mut [u32],
    k: usize,
    max_part_weight: i64,
) -> usize {
    let mut table = GainTable::build(graph, assignment, k);
    let mut part_weight = weights_of(graph, assignment, k);
    rebalance_with_linear(
        graph,
        assignment,
        max_part_weight,
        &mut table,
        &mut part_weight,
    )
}

/// [`rebalance`] through a caller-owned gain table and part-weight vector
/// (kept exact), so `refine_kway` can share one table across the repair and
/// refinement phases. Selection per move is driven by a [`GainQueue`] —
/// `O(log n)` amortised instead of the reference's `O(n·k)` scan — with an
/// identical move sequence.
///
/// One queue is kept *per overweight part*, built lazily the first time a
/// part is selected as the heaviest offender and retained across part
/// switches. When several parts are simultaneously overweight and alternate
/// as heaviest (common right after a degenerate projection crams everything
/// into the low parts), the old single-queue scheme rebuilt its `O(n)` queue
/// on every switch — the retained queues make each switch `O(1)`. Retention
/// is sound because queues exist only for overweight parts: overweight parts
/// are never feasible move targets, so a retained queue's membership only
/// shrinks (explicit removals), its gains stay exact (the eager neighbour
/// refresh spans every retained queue), and feasibility only decays (lazy
/// revalidation at pop). The one event that *adds* feasibility — a part
/// dropping back under the limit, which turns it into a fresh absorber —
/// invalidates every retained queue; that happens at most `k − 1` times per
/// run.
fn rebalance_with(
    graph: &CsrGraph,
    assignment: &mut [u32],
    max_part_weight: i64,
    table: &mut GainTable,
    part_weight: &mut [i64],
    queues: &mut Vec<GainQueue>,
    built: &mut Vec<bool>,
) -> usize {
    let n = graph.num_vertices();
    let k = part_weight.len();
    let mut moves = 0usize;
    // Hard cap: each vertex can be moved at most twice on average.
    let max_moves = 2 * n + k;
    if queues.len() < k {
        queues.resize_with(k, GainQueue::new);
    }
    built.clear();
    built.resize(k, false);
    'phases: while moves < max_moves {
        // Heaviest offending part.
        let Some((heavy, _)) = part_weight
            .iter()
            .enumerate()
            .filter(|(_, &w)| w > max_part_weight)
            .max_by_key(|(_, &w)| w)
        else {
            break;
        };
        if !built[heavy] {
            let queue = &mut queues[heavy];
            queue.reset(n);
            for v in 0..n as u32 {
                if assignment[v as usize] as usize != heavy {
                    continue;
                }
                if let Some((g, t)) =
                    best_move(graph, table, part_weight, heavy, max_part_weight, v)
                {
                    queue.push_unordered(v, g, t);
                }
            }
            queue.heapify();
            built[heavy] = true;
        }
        // Pop the best still-admissible move. Gains are maintained eagerly,
        // but a cached target may have filled up since the entry was scored;
        // revalidate at the top and re-rank (always downwards) until the top
        // entry is exact.
        let (v, target) = loop {
            let Some(v) = queues[heavy].peek() else {
                // No part can absorb anything without itself going over the
                // limit; give up (the limit may simply be infeasible, e.g. a
                // single vertex heavier than max_part_weight).
                break 'phases;
            };
            match best_move(graph, table, part_weight, heavy, max_part_weight, v) {
                None => queues[heavy].remove(v),
                Some((g, t)) => {
                    if (g, t) == queues[heavy].cached(v) {
                        break (v, t);
                    }
                    queues[heavy].update(v, g, t);
                }
            }
        };
        let vw = graph.vertex_weight(v);
        part_weight[heavy] -= vw;
        part_weight[target as usize] += vw;
        assignment[v as usize] = target;
        table.apply_move(graph, v, heavy, target as usize);
        queues[heavy].remove(v);
        // Eager refresh: the move changed every neighbour's connectivity to
        // `heavy` and `target`; a queued neighbour lives in the retained
        // queue of its *own* part (only overweight parts have one).
        for (u, _) in graph.edges_of(v) {
            let up = assignment[u as usize] as usize;
            if built[up] && queues[up].contains(u) {
                match best_move(graph, table, part_weight, up, max_part_weight, u) {
                    Some((g, t)) => queues[up].update(u, g, t),
                    None => queues[up].remove(u),
                }
            }
        }
        moves += 1;
        // The shedding part crossed back under the limit: it is now a part
        // with spare capacity, i.e. a feasible target that none of the
        // retained queues has scored. Invalidate them all (the overweight
        // set shrank — this fires at most k − 1 times per run).
        if part_weight[heavy] <= max_part_weight {
            for b in built.iter_mut() {
                *b = false;
            }
        }
    }
    moves
}

/// The linear-scan body of [`rebalance_reference`].
fn rebalance_with_linear(
    graph: &CsrGraph,
    assignment: &mut [u32],
    max_part_weight: i64,
    table: &mut GainTable,
    part_weight: &mut [i64],
) -> usize {
    let n = graph.num_vertices();
    let k = part_weight.len();
    let mut moves = 0usize;
    // Hard cap: each vertex can be moved at most twice on average.
    let max_moves = 2 * n + k;
    while moves < max_moves {
        // Heaviest offending part.
        let Some((heavy, _)) = part_weight
            .iter()
            .enumerate()
            .filter(|(_, &w)| w > max_part_weight)
            .max_by_key(|(_, &w)| w)
        else {
            break;
        };
        // Best (least cut increase) move of any vertex of `heavy` to any part
        // with spare capacity.
        let mut best: Option<(i64, u32, u32)> = None; // (gain, vertex, target)
        for v in 0..n as u32 {
            if assignment[v as usize] as usize != heavy {
                continue;
            }
            let vw = graph.vertex_weight(v);
            for (target, &tw) in part_weight.iter().enumerate() {
                if target == heavy || tw + vw > max_part_weight {
                    continue;
                }
                let gain = table.gain(v, heavy, target);
                let candidate = (gain, v, target as u32);
                best = match best {
                    None => Some(candidate),
                    Some(b) if candidate.0 > b.0 => Some(candidate),
                    other => other,
                };
            }
        }
        let Some((_, v, target)) = best else {
            break;
        };
        let vw = graph.vertex_weight(v);
        part_weight[heavy] -= vw;
        part_weight[target as usize] += vw;
        assignment[v as usize] = target;
        table.apply_move(graph, v, heavy, target as usize);
        moves += 1;
    }
    moves
}

fn weights_of(graph: &CsrGraph, assignment: &[u32], k: usize) -> Vec<i64> {
    let mut part_weight = Vec::new();
    weights_into(graph, assignment, k, &mut part_weight);
    part_weight
}

/// [`weights_of`] into a caller-owned buffer (allocation-free once grown).
fn weights_into(graph: &CsrGraph, assignment: &[u32], k: usize, out: &mut Vec<i64>) {
    out.clear();
    out.resize(k, 0);
    for (v, &p) in assignment.iter().enumerate() {
        out[p as usize] += graph.vertex_weight(v as u32);
    }
}

/// Greedy k-way refinement. Returns the resulting edge cut.
///
/// Guarantees: the edge cut never increases relative to the input (moves with
/// negative gain are only made when they strictly improve balance without
/// touching the cut, i.e. zero-gain moves), and no part exceeds the balance
/// limit more than it did on entry.
pub fn refine_kway(
    graph: &CsrGraph,
    assignment: &mut [u32],
    config: &PartitionConfig,
    passes: usize,
) -> i64 {
    refine_kway_anchored(graph, assignment, config, passes, None)
}

/// [`refine_kway`] with optional per-vertex socket-affinity anchors: move
/// gains become connectivity delta *plus* affinity delta, and interior
/// vertices whose anchors pull them elsewhere join the candidate set. With
/// `affinity` `None` the behaviour (including the RNG stream) is exactly
/// [`refine_kway`]'s. The returned value is always the pure edge cut — the
/// affinity term is an objective, not a metric.
pub fn refine_kway_anchored(
    graph: &CsrGraph,
    assignment: &mut [u32],
    config: &PartitionConfig,
    passes: usize,
    affinity: Option<&AffinityCosts>,
) -> i64 {
    let mut scratch = RefineScratch::default();
    refine_kway_anchored_with(graph, assignment, config, passes, affinity, &mut scratch)
}

/// [`refine_kway_anchored`] through a caller-owned [`RefineScratch`]: the
/// gain table, part weights, boundary list and rebalance queues are rebuilt
/// in place instead of reallocated, so repeated calls (one per uncoarsening
/// level, times one partition per RGP window) are allocation-free once the
/// buffers reach the working-set size. Results are bit-identical to a fresh
/// scratch per call.
pub fn refine_kway_anchored_with(
    graph: &CsrGraph,
    assignment: &mut [u32],
    config: &PartitionConfig,
    passes: usize,
    affinity: Option<&AffinityCosts>,
    scratch: &mut RefineScratch,
) -> i64 {
    let n = graph.num_vertices();
    let k = config.num_parts.max(1);
    if n == 0 || k <= 1 {
        return 0;
    }
    let total = graph.total_vertex_weight();
    let max_w = config.max_part_weight(total);

    let RefineScratch {
        table,
        part_weight,
        boundary,
        queues,
        queue_built,
    } = scratch;
    match affinity {
        Some(aff) => table.rebuild_anchored(graph, assignment, k, aff),
        None => table.rebuild(graph, assignment, k),
    }
    weights_into(graph, assignment, k, part_weight);

    // First repair any gross imbalance left over from projection.
    rebalance_with(
        graph,
        assignment,
        max_w,
        table,
        part_weight,
        queues,
        queue_built,
    );

    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x9E3779B97F4A7C15);

    for _ in 0..passes {
        boundary.clear();
        boundary.extend((0..n as u32).filter(|&v| table.is_movable(assignment, v)));
        boundary.shuffle(&mut rng);
        let mut moved = 0usize;
        for &v in boundary.iter() {
            let from = assignment[v as usize] as usize;
            let vw = graph.vertex_weight(v);
            // Best admissible target.
            let mut best: Option<(i64, usize)> = None;
            for target in 0..k {
                if target == from || part_weight[target] + vw > max_w {
                    continue;
                }
                let gain = table.gain(v, from, target);
                let improves_balance = part_weight[target] + vw < part_weight[from];
                if gain > 0 || (gain == 0 && improves_balance) {
                    match best {
                        None => best = Some((gain, target)),
                        Some((bg, _)) if gain > bg => best = Some((gain, target)),
                        _ => {}
                    }
                }
            }
            if let Some((_, target)) = best {
                part_weight[from] -= vw;
                part_weight[target] += vw;
                assignment[v as usize] = target as u32;
                table.apply_move(graph, v, from, target);
                moved += 1;
            }
        }
        if moved == 0 {
            break;
        }
    }

    table.edge_cut(assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::metrics;
    use crate::partition::Partition;

    fn cut(graph: &CsrGraph, assignment: &[u32], k: usize) -> i64 {
        metrics::edge_cut(graph, &Partition::from_assignment(assignment.to_vec(), k))
    }

    #[test]
    fn refinement_never_increases_cut() {
        let g = generators::grid_2d(12, 12, 3);
        let k = 4;
        // Terrible initial partition: stripes by vertex id modulo k.
        let mut a: Vec<u32> = (0..g.num_vertices() as u32).map(|v| v % k as u32).collect();
        let before = cut(&g, &a, k as usize);
        let cfg = PartitionConfig::new(k as usize);
        let after = refine_kway(&g, &mut a, &cfg, 8);
        assert!(after <= before, "cut went from {before} to {after}");
        assert_eq!(after, cut(&g, &a, k as usize), "returned cut must match");
    }

    #[test]
    fn refinement_respects_balance() {
        let g = generators::grid_2d(10, 10, 1);
        let k = 4usize;
        let mut a: Vec<u32> = (0..g.num_vertices() as u32).map(|v| v % k as u32).collect();
        let cfg = PartitionConfig::new(k).with_imbalance(0.05);
        refine_kway(&g, &mut a, &cfg, 8);
        let p = Partition::from_assignment(a, k);
        assert!(metrics::imbalance(&g, &p) <= 1.05 + 1e-9);
    }

    #[test]
    fn gain_table_tracks_moves_exactly() {
        let g = generators::random_graph(120, 6, 12, 5);
        let k = 4usize;
        let mut a: Vec<u32> = (0..g.num_vertices() as u32).map(|v| v % k as u32).collect();
        let mut table = GainTable::build(&g, &a, k);
        // Walk a few arbitrary moves and check the table against a rebuild.
        for v in [3u32, 17, 50, 99, 3] {
            let from = a[v as usize] as usize;
            let to = (from + 1) % k;
            a[v as usize] = to as u32;
            table.apply_move(&g, v, from, to);
        }
        let fresh = GainTable::build(&g, &a, k);
        for v in 0..g.num_vertices() as u32 {
            assert_eq!(table.row(v), fresh.row(v), "row of vertex {v} drifted");
            assert_eq!(
                table.is_boundary(&a, v),
                fresh.is_boundary(&a, v),
                "boundary flag of vertex {v} drifted"
            );
        }
        assert_eq!(table.edge_cut(&a), cut(&g, &a, k));
    }

    #[test]
    fn rebalance_fixes_overweight_parts() {
        let g = generators::grid_2d(8, 8, 1);
        // Everything in part 0.
        let mut a = vec![0u32; g.num_vertices()];
        let max_w = 20;
        rebalance(&g, &mut a, 4, max_w);
        let p = Partition::from_assignment(a, 4);
        let weights = metrics::part_weights(&g, &p);
        assert!(
            weights.iter().all(|&w| w <= max_w),
            "weights after rebalance: {weights:?}"
        );
    }

    #[test]
    fn rebalance_gives_up_on_infeasible_limits() {
        let mut b = crate::csr::GraphBuilder::new(2);
        b.set_vertex_weight(0, 100).set_vertex_weight(1, 1);
        b.add_edge(0, 1, 1);
        let g = b.build();
        let mut a = vec![0u32, 0u32];
        // Limit smaller than the big vertex: must terminate without panicking.
        let moves = rebalance(&g, &mut a, 2, 50);
        assert!(moves <= 4);
    }

    #[test]
    fn refinement_finds_obvious_improvement() {
        // Two clusters wrongly split across the bridge.
        let g = generators::two_clusters(6, 30);
        // Initial: odd/even split — awful.
        let mut a: Vec<u32> = (0..12u32).map(|v| v % 2).collect();
        let cfg = PartitionConfig::new(2);
        let after = refine_kway(&g, &mut a, &cfg, 10);
        // Optimal cut is 1 (the bridge); refinement should get close.
        assert!(after <= 30, "refined cut {after} still terrible");
    }

    #[test]
    fn refine_noop_on_single_part() {
        let g = generators::path(5);
        let mut a = vec![0u32; 5];
        let cfg = PartitionConfig::new(1);
        assert_eq!(refine_kway(&g, &mut a, &cfg, 4), 0);
    }

    #[test]
    fn refine_empty_graph() {
        let g = CsrGraph::empty(0);
        let mut a: Vec<u32> = Vec::new();
        let cfg = PartitionConfig::new(4);
        assert_eq!(refine_kway(&g, &mut a, &cfg, 4), 0);
    }

    #[test]
    fn zero_affinity_refinement_is_bit_identical() {
        let g = generators::random_graph(150, 5, 10, 3);
        let k = 4usize;
        let start: Vec<u32> = (0..g.num_vertices() as u32).map(|v| v % k as u32).collect();
        let cfg = PartitionConfig::new(k);
        let mut plain = start.clone();
        let plain_cut = refine_kway(&g, &mut plain, &cfg, 8);
        let mut anchored = start;
        let aff = AffinityCosts::zeros(g.num_vertices(), k);
        let anchored_cut = refine_kway_anchored(&g, &mut anchored, &cfg, 8, Some(&aff));
        assert_eq!(plain, anchored);
        assert_eq!(plain_cut, anchored_cut);
    }

    #[test]
    fn strong_anchor_pulls_an_interior_vertex() {
        // 2x(3x3) grid components: vertices 0..9 and 9..18, no edges between
        // them, so every vertex is interior after a component-per-part split.
        let g = generators::grid_2d(3, 3, 1);
        let mut b = crate::csr::GraphBuilder::new(18);
        for v in 0..9u32 {
            b.set_vertex_weight(v, 1).set_vertex_weight(v + 9, 1);
            for (u, w) in g.edges_of(v) {
                if u > v {
                    b.add_edge(v, u, w).add_edge(v + 9, u + 9, w);
                }
            }
        }
        let g2 = b.build();
        let mut a: Vec<u32> = (0..18).map(|v| if v < 9 { 0 } else { 1 }).collect();
        let cfg = PartitionConfig::new(2).with_imbalance(0.25);
        // Vertex 4 (centre of component 0) is not on any part boundary, but
        // its data lives on part 1: the anchor must still move it.
        let mut aff = AffinityCosts::zeros(18, 2);
        aff.add(4, 1, 10_000);
        refine_kway_anchored(&g2, &mut a, &cfg, 8, Some(&aff));
        assert_eq!(a[4], 1, "anchored vertex must follow its fixed data");
    }

    #[test]
    fn anchored_gain_table_reports_combined_gains() {
        let g = generators::path(3);
        let a = vec![0u32, 0, 1];
        let mut aff = AffinityCosts::zeros(3, 2);
        aff.add(0, 1, 5);
        let table = GainTable::build_anchored(&g, &a, 2, &aff);
        // Moving vertex 0 from part 0 to 1: loses the 0-1 edge (conn delta
        // -w) but gains 5 bytes of affinity.
        let edge_w = g.edges_of(0).next().unwrap().1;
        assert_eq!(table.gain(0, 0, 1), -edge_w + 5);
        // Vertex 0 is interior edge-wise only if its sole neighbour shares
        // its part — it does — yet the anchor makes it movable.
        assert!(!table.is_boundary(&a, 0));
        assert!(table.is_movable(&a, 0));
    }
}
