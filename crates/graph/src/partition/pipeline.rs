//! The pluggable multilevel pipeline: every partitioning scheme is a
//! composition of three stage traits, driven by [`MultilevelPipeline`].
//!
//! * [`Coarsener`] — builds the hierarchy of successively smaller graphs
//!   (heavy-edge matching by default, or nothing for flat schemes).
//! * [`InitialPartitioner`] — partitions the coarsest graph (recursive
//!   bisection by default, BFS growing for the ablation baseline).
//! * [`Refiner`] — improves a partition at one level (k-way FM boundary
//!   passes by default).
//!
//! [`MultilevelPipeline::for_scheme`] maps each [`PartitionScheme`] to its
//! canonical stage combination, and [`crate::partition::partition_with`]
//! accepts any custom composition, so experiments can swap a single stage
//! (e.g. a different initial partitioner under the same refiner) without
//! touching the driver.

use rand::rngs::StdRng;

use crate::csr::CsrGraph;
use crate::partition::affinity::AffinityCosts;
use crate::partition::{coarsen, initial, refine, PartitionConfig, PartitionScheme};

use coarsen::CoarseLevel;

/// Builds the coarsening hierarchy, finest level first. An empty vector means
/// the initial partitioner runs directly on the input graph.
pub trait Coarsener {
    /// Coarsens `graph` until roughly `target_vertices` remain (or progress
    /// stalls). Implementations must be deterministic for a fixed `rng`.
    fn coarsen(
        &self,
        graph: &CsrGraph,
        target_vertices: usize,
        rng: &mut StdRng,
    ) -> Vec<CoarseLevel>;

    /// [`Coarsener::coarsen`] through a caller-owned scratch workspace, so
    /// repeated runs (one per RGP window) reuse the matching/contraction
    /// buffers. The default ignores the workspace — stages without reusable
    /// state need not care; results must be identical either way.
    fn coarsen_with(
        &self,
        graph: &CsrGraph,
        target_vertices: usize,
        rng: &mut StdRng,
        ws: &mut coarsen::CoarsenWorkspace,
    ) -> Vec<CoarseLevel> {
        let _ = ws;
        self.coarsen(graph, target_vertices, rng)
    }
}

/// Heavy-edge-matching coarsener (the METIS/SCOTCH recipe). Buffers are
/// reused across the levels of one run.
#[derive(Clone, Copy, Debug, Default)]
pub struct HeavyEdgeCoarsener;

impl Coarsener for HeavyEdgeCoarsener {
    fn coarsen(
        &self,
        graph: &CsrGraph,
        target_vertices: usize,
        rng: &mut StdRng,
    ) -> Vec<CoarseLevel> {
        coarsen::coarsen_to(graph, target_vertices, rng)
    }

    fn coarsen_with(
        &self,
        graph: &CsrGraph,
        target_vertices: usize,
        rng: &mut StdRng,
        ws: &mut coarsen::CoarsenWorkspace,
    ) -> Vec<CoarseLevel> {
        coarsen::coarsen_to_with(graph, target_vertices, rng, ws)
    }
}

/// No coarsening: the initial partitioner sees the input graph directly.
/// Used by the flat [`PartitionScheme::RecursiveBisection`] and
/// [`PartitionScheme::BfsGrowing`] schemes.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoCoarsening;

impl Coarsener for NoCoarsening {
    fn coarsen(&self, _graph: &CsrGraph, _target: usize, _rng: &mut StdRng) -> Vec<CoarseLevel> {
        Vec::new()
    }
}

/// Produces the first partition of the coarsest graph.
pub trait InitialPartitioner {
    /// Partitions `graph` into `config.num_parts` parts. The result may be
    /// unbalanced or coarse; the refiner cleans it up.
    fn initial_partition(
        &self,
        graph: &CsrGraph,
        config: &PartitionConfig,
        rng: &mut StdRng,
    ) -> Vec<u32>;
}

/// Recursive bisection with greedy graph growing at every split (the
/// default initial partitioner).
#[derive(Clone, Copy, Debug, Default)]
pub struct RecursiveBisectionInitial;

impl InitialPartitioner for RecursiveBisectionInitial {
    fn initial_partition(
        &self,
        graph: &CsrGraph,
        config: &PartitionConfig,
        rng: &mut StdRng,
    ) -> Vec<u32> {
        initial::recursive_bisection(graph, config.num_parts.max(1), config.imbalance, rng)
    }
}

/// Edge-weight-oblivious BFS region growing (the ABL-PART ablation
/// baseline).
#[derive(Clone, Copy, Debug, Default)]
pub struct BfsGrowingInitial;

impl InitialPartitioner for BfsGrowingInitial {
    fn initial_partition(
        &self,
        graph: &CsrGraph,
        config: &PartitionConfig,
        rng: &mut StdRng,
    ) -> Vec<u32> {
        initial::bfs_growing(graph, config.num_parts.max(1), rng)
    }
}

/// Improves the partition of one level in place.
pub trait Refiner {
    /// Runs up to `config.refine_passes` improvement passes on `assignment`.
    /// Returns the resulting edge cut when the implementation tracks it as a
    /// by-product (the FM refiner does); implementations that do not may
    /// return 0 — the pipeline driver ignores the value, and callers that
    /// need the final cut compute it once on the finished [`Partition`].
    fn refine(&self, graph: &CsrGraph, assignment: &mut [u32], config: &PartitionConfig) -> i64;

    /// [`Refiner::refine`] with per-vertex socket-affinity anchors for this
    /// level. The default ignores the anchors, so affinity-oblivious
    /// refiners participate in anchored runs unchanged; the FM refiner
    /// overrides it to fold the anchors into its move gains.
    fn refine_anchored(
        &self,
        graph: &CsrGraph,
        assignment: &mut [u32],
        config: &PartitionConfig,
        affinity: &AffinityCosts,
    ) -> i64 {
        let _ = affinity;
        self.refine(graph, assignment, config)
    }

    /// [`Refiner::refine_anchored`] (or [`Refiner::refine`] when `affinity`
    /// is `None`) through a caller-owned [`refine::RefineScratch`], so the
    /// per-level gain-table/boundary/queue buffers are reused across the
    /// uncoarsening levels of one run and across runs sharing a
    /// [`crate::partition::PartitionCtx`]. The default ignores the scratch —
    /// stages without reusable state need not care; results must be
    /// identical either way.
    fn refine_with(
        &self,
        graph: &CsrGraph,
        assignment: &mut [u32],
        config: &PartitionConfig,
        affinity: Option<&AffinityCosts>,
        scratch: &mut refine::RefineScratch,
    ) -> i64 {
        let _ = scratch;
        match affinity {
            Some(aff) => self.refine_anchored(graph, assignment, config, aff),
            None => self.refine(graph, assignment, config),
        }
    }
}

/// K-way Fiduccia–Mattheyses boundary refinement backed by an incremental
/// gain table (see [`refine::GainTable`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct FmRefiner;

impl Refiner for FmRefiner {
    fn refine(&self, graph: &CsrGraph, assignment: &mut [u32], config: &PartitionConfig) -> i64 {
        refine::refine_kway(graph, assignment, config, config.refine_passes)
    }

    fn refine_anchored(
        &self,
        graph: &CsrGraph,
        assignment: &mut [u32],
        config: &PartitionConfig,
        affinity: &AffinityCosts,
    ) -> i64 {
        refine::refine_kway_anchored(
            graph,
            assignment,
            config,
            config.refine_passes,
            Some(affinity),
        )
    }

    fn refine_with(
        &self,
        graph: &CsrGraph,
        assignment: &mut [u32],
        config: &PartitionConfig,
        affinity: Option<&AffinityCosts>,
        scratch: &mut refine::RefineScratch,
    ) -> i64 {
        refine::refine_kway_anchored_with(
            graph,
            assignment,
            config,
            config.refine_passes,
            affinity,
            scratch,
        )
    }
}

/// Identity refiner: leaves the assignment untouched (used by the BFS
/// baseline, which deliberately skips refinement). Returns 0 without
/// walking the graph — an `O(E)` cut sweep here would be pure waste on
/// every BFS-scheme call since the driver discards the value.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoRefinement;

impl Refiner for NoRefinement {
    fn refine(&self, _graph: &CsrGraph, _assignment: &mut [u32], _config: &PartitionConfig) -> i64 {
        0
    }
}

/// The multilevel driver: coarsen → initial partition → uncoarsen + refine,
/// with every stage pluggable.
pub struct MultilevelPipeline {
    coarsener: Box<dyn Coarsener>,
    initial: Box<dyn InitialPartitioner>,
    refiner: Box<dyn Refiner>,
}

impl MultilevelPipeline {
    /// Composes a pipeline from explicit stages.
    pub fn new(
        coarsener: impl Coarsener + 'static,
        initial: impl InitialPartitioner + 'static,
        refiner: impl Refiner + 'static,
    ) -> Self {
        MultilevelPipeline {
            coarsener: Box::new(coarsener),
            initial: Box::new(initial),
            refiner: Box::new(refiner),
        }
    }

    /// The canonical stage combination of a [`PartitionScheme`]:
    ///
    /// | scheme | coarsener | initial | refiner |
    /// |---|---|---|---|
    /// | `MultilevelKWay` | heavy-edge matching | recursive bisection | k-way FM |
    /// | `RecursiveBisection` | none | recursive bisection | k-way FM |
    /// | `BfsGrowing` | none | BFS growing | none |
    pub fn for_scheme(scheme: PartitionScheme) -> Self {
        match scheme {
            PartitionScheme::MultilevelKWay => {
                MultilevelPipeline::new(HeavyEdgeCoarsener, RecursiveBisectionInitial, FmRefiner)
            }
            PartitionScheme::RecursiveBisection => {
                MultilevelPipeline::new(NoCoarsening, RecursiveBisectionInitial, FmRefiner)
            }
            PartitionScheme::BfsGrowing => {
                MultilevelPipeline::new(NoCoarsening, BfsGrowingInitial, NoRefinement)
            }
        }
    }

    /// Runs the full pipeline and returns one part id per vertex of `graph`.
    pub fn run(&self, graph: &CsrGraph, config: &PartitionConfig, rng: &mut StdRng) -> Vec<u32> {
        self.run_anchored(graph, config, rng, None)
    }

    /// [`MultilevelPipeline::run`] with optional per-vertex socket-affinity
    /// anchors: the affinity rows are summed through every coarsening level
    /// (so the coarsest graph still feels the anchors of the vertices it
    /// absorbed) and handed to the refiner at each uncoarsening step. With
    /// `affinity` `None` the run — including its RNG stream — is exactly
    /// [`MultilevelPipeline::run`].
    pub fn run_anchored(
        &self,
        graph: &CsrGraph,
        config: &PartitionConfig,
        rng: &mut StdRng,
        affinity: Option<&AffinityCosts>,
    ) -> Vec<u32> {
        let mut ctx = crate::partition::PartitionCtx::default();
        self.run_anchored_ctx(graph, config, rng, affinity, &mut ctx)
    }

    /// [`MultilevelPipeline::run_anchored`] through a caller-owned
    /// [`crate::partition::PartitionCtx`]: scratch buffers (currently the
    /// coarsening workspace) survive across calls instead of being rebuilt
    /// per window. The context never influences the result.
    pub fn run_anchored_ctx(
        &self,
        graph: &CsrGraph,
        config: &PartitionConfig,
        rng: &mut StdRng,
        affinity: Option<&AffinityCosts>,
        ctx: &mut crate::partition::PartitionCtx,
    ) -> Vec<u32> {
        let k = config.num_parts.max(1);
        let target = config.coarsen_until.max(4 * k);

        // Phase 1: coarsen. Affinity rows follow the hierarchy: entry `i`
        // is the table for `levels[i].graph`.
        let levels = self
            .coarsener
            .coarsen_with(graph, target, rng, &mut ctx.coarsen);
        let mut level_affinity: Vec<AffinityCosts> = Vec::new();
        if let Some(aff) = affinity {
            for (i, level) in levels.iter().enumerate() {
                let projected = {
                    let finer = if i == 0 { aff } else { &level_affinity[i - 1] };
                    finer.project_to_coarse(&level.fine_to_coarse, level.graph.num_vertices())
                };
                level_affinity.push(projected);
            }
        }
        let affinity_at = |i: usize| -> Option<&AffinityCosts> {
            affinity?;
            if i == 0 {
                affinity
            } else {
                Some(&level_affinity[i - 1])
            }
        };

        // Phase 2: initial partition of the coarsest graph. The initial
        // partitioner's part labels are arbitrary, but anchors name
        // *specific* parts — so first relabel the parts to maximise anchor
        // agreement (a pure permutation: the cut is label-invariant, the
        // affinity term is not), then refine.
        let coarsest: &CsrGraph = levels.last().map(|l| &l.graph).unwrap_or(graph);
        let mut assignment = self.initial.initial_partition(coarsest, config, rng);
        if let Some(aff) = affinity_at(levels.len()) {
            align_parts_to_anchors(&mut assignment, aff, k);
        }
        self.refiner.refine_with(
            coarsest,
            &mut assignment,
            config,
            affinity_at(levels.len()),
            &mut ctx.refine,
        );

        // Phase 3: uncoarsen and refine level by level. The projection
        // writes into the context's buffer and swaps it with the assignment,
        // so the two vectors ping-pong across levels (and across runs
        // sharing the context) instead of allocating one fresh vector per
        // level.
        for i in (0..levels.len()).rev() {
            let finer: &CsrGraph = if i == 0 { graph } else { &levels[i - 1].graph };
            ctx.projection.clear();
            ctx.projection.extend(
                levels[i]
                    .fine_to_coarse
                    .iter()
                    .map(|&c| assignment[c as usize]),
            );
            std::mem::swap(&mut assignment, &mut ctx.projection);
            self.refiner.refine_with(
                finer,
                &mut assignment,
                config,
                affinity_at(i),
                &mut ctx.refine,
            );
        }
        assignment
    }
}

/// Relabels the parts of `assignment` to maximise agreement with the
/// affinity anchors. Part labels coming out of an initial partitioner are
/// arbitrary, but anchors name specific parts; since the edge cut is
/// invariant under a permutation of the labels, matching each part to the
/// anchor label its vertices pull towards is free cut-wise and lets the
/// refiner start from an anchor-consistent labelling instead of fighting a
/// wholesale flip one vertex at a time. Greedy maximum-weight matching,
/// deterministic; a zero affinity table yields the identity permutation.
fn align_parts_to_anchors(assignment: &mut [u32], affinity: &AffinityCosts, k: usize) {
    // agreement[p * k + q] = total affinity towards label q of the vertices
    // currently in part p.
    let mut agreement = vec![0i64; k * k];
    for (v, &p) in assignment.iter().enumerate() {
        for (q, &c) in affinity.row(v as u32).iter().enumerate() {
            agreement[p as usize * k + q] += c;
        }
    }
    let mut entries: Vec<(i64, usize, usize)> = Vec::with_capacity(k * k);
    for p in 0..k {
        for q in 0..k {
            entries.push((agreement[p * k + q], p, q));
        }
    }
    // Highest agreement first; ties resolve towards the identity mapping
    // (diagonal entries first, then lowest indices) so an anchor-free part
    // keeps its label.
    entries.sort_by(|a, b| {
        b.0.cmp(&a.0)
            .then_with(|| (a.1 != a.2).cmp(&(b.1 != b.2)))
            .then_with(|| a.1.cmp(&b.1))
            .then_with(|| a.2.cmp(&b.2))
    });
    let mut label_of = vec![usize::MAX; k];
    let mut label_taken = vec![false; k];
    let mut matched = 0;
    for &(_, p, q) in &entries {
        if label_of[p] != usize::MAX || label_taken[q] {
            continue;
        }
        label_of[p] = q;
        label_taken[q] = true;
        matched += 1;
        if matched == k {
            break;
        }
    }
    if label_of.iter().enumerate().all(|(p, &q)| p == q) {
        return;
    }
    for a in assignment.iter_mut() {
        *a = label_of[*a as usize] as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::metrics;
    use crate::partition::Partition;
    use rand::SeedableRng;

    fn run_scheme(g: &CsrGraph, cfg: &PartitionConfig) -> Vec<u32> {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        MultilevelPipeline::for_scheme(cfg.scheme).run(g, cfg, &mut rng)
    }

    #[test]
    fn multilevel_partitions_large_grid_well() {
        let g = generators::grid_2d(32, 32, 1);
        let cfg = PartitionConfig::new(8);
        let a = run_scheme(&g, &cfg);
        let p = Partition::from_assignment(a, 8);
        let q = metrics::quality(&g, &p);
        assert_eq!(q.nonempty_parts, 8);
        assert!(q.imbalance <= 1.0 + cfg.imbalance + 1e-9);
        // A random 8-way split of a 32x32 grid cuts ~87.5% of the 1984 edges;
        // a decent partitioner should stay far below that.
        assert!(
            q.edge_cut < 600,
            "edge cut {} is too high for a 32x32 grid",
            q.edge_cut
        );
    }

    #[test]
    fn multilevel_handles_heavy_weighted_edges() {
        let g = generators::layered_dag_skeleton(30, 16, 2, 1 << 16);
        let cfg = PartitionConfig::new(4);
        let a = run_scheme(&g, &cfg);
        let p = Partition::from_assignment(a, 4);
        assert!(p.imbalance(&g) <= 1.0 + cfg.imbalance + 1e-9);
        assert!(metrics::part_weights(&g, &p).iter().all(|&w| w > 0));
    }

    #[test]
    fn multilevel_on_graph_smaller_than_target() {
        // Graph already below the coarsening threshold: driver must still work.
        let g = generators::grid_2d(4, 4, 1);
        let cfg = PartitionConfig::new(4).with_seed(1);
        let a = run_scheme(&g, &cfg);
        assert_eq!(a.len(), 16);
        assert!(a.iter().all(|&p| p < 4));
    }

    #[test]
    fn custom_stage_composition_is_accepted() {
        // Swap a single stage: multilevel coarsening with the BFS initial
        // partitioner, refined as usual. Must still produce a valid,
        // balanced partition (this is the kind of ablation the traits are
        // for).
        let g = generators::grid_2d(24, 24, 2);
        let cfg = PartitionConfig::new(4);
        let pipeline = MultilevelPipeline::new(HeavyEdgeCoarsener, BfsGrowingInitial, FmRefiner);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let a = pipeline.run(&g, &cfg, &mut rng);
        let p = Partition::from_assignment(a, 4);
        assert_eq!(metrics::quality(&g, &p).nonempty_parts, 4);
        assert!(p.imbalance(&g) <= 1.0 + cfg.imbalance + 1e-9);
    }

    #[test]
    fn no_coarsening_schemes_skip_the_hierarchy() {
        let g = generators::grid_2d(16, 16, 1);
        for scheme in [
            PartitionScheme::RecursiveBisection,
            PartitionScheme::BfsGrowing,
        ] {
            let cfg = PartitionConfig::new(4).with_scheme(scheme);
            let a = run_scheme(&g, &cfg);
            assert_eq!(a.len(), 256);
            assert!(a.iter().all(|&p| p < 4), "{scheme:?}");
        }
    }
}
