//! Graph partitioning: the SCOTCH substitute used by runtime graph
//! partitioning (RGP).
//!
//! The entry point is [`partition`], which splits a weighted undirected graph
//! into `k` balanced parts while minimising the weight of cut edges. Three
//! schemes are available:
//!
//! * [`PartitionScheme::MultilevelKWay`] (default) — the METIS/SCOTCH recipe:
//!   coarsen with heavy-edge matching, partition the coarsest graph with
//!   recursive bisection, then uncoarsen and refine at every level with a
//!   Fiduccia–Mattheyses-style boundary pass.
//! * [`PartitionScheme::RecursiveBisection`] — direct recursive bisection on
//!   the input graph (no multilevel), useful for small graphs and as a
//!   reference for the multilevel implementation.
//! * [`PartitionScheme::BfsGrowing`] — a deliberately naive, edge-weight
//!   oblivious BFS partitioner kept as the ablation baseline (ABL-PART in
//!   DESIGN.md): it produces balanced parts but much larger cuts.

pub mod coarsen;
pub mod initial;
pub mod refine;

mod kway;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::csr::CsrGraph;
use crate::metrics;

/// Which partitioning algorithm to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PartitionScheme {
    /// Multilevel k-way (coarsen → initial partition → refine). The default
    /// and the scheme RGP uses.
    #[default]
    MultilevelKWay,
    /// Recursive bisection directly on the input graph.
    RecursiveBisection,
    /// Naive BFS region growing that ignores edge weights (ablation baseline).
    BfsGrowing,
}

/// Parameters of the partitioner.
#[derive(Clone, Debug, PartialEq)]
pub struct PartitionConfig {
    /// Number of parts (one per NUMA socket for RGP).
    pub num_parts: usize,
    /// Allowed load imbalance: the heaviest part may weigh up to
    /// `(1 + imbalance) * total / num_parts`.
    pub imbalance: f64,
    /// Seed for all randomised tie-breaking; a fixed seed gives a fully
    /// deterministic partition.
    pub seed: u64,
    /// Coarsening stops when the graph has at most this many vertices
    /// (clamped to at least `4 * num_parts`).
    pub coarsen_until: usize,
    /// Maximum number of refinement passes per level.
    pub refine_passes: usize,
    /// Algorithm to use.
    pub scheme: PartitionScheme,
}

impl PartitionConfig {
    /// A sensible default configuration for `num_parts` parts.
    pub fn new(num_parts: usize) -> Self {
        PartitionConfig {
            num_parts,
            imbalance: 0.10,
            seed: 0x5C07C4,
            coarsen_until: (30 * num_parts).max(80),
            refine_passes: 8,
            scheme: PartitionScheme::MultilevelKWay,
        }
    }

    /// Sets the random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the allowed imbalance.
    pub fn with_imbalance(mut self, imbalance: f64) -> Self {
        self.imbalance = imbalance;
        self
    }

    /// Sets the partitioning scheme.
    pub fn with_scheme(mut self, scheme: PartitionScheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// Maximum allowed weight of a part for a graph of total weight `total`.
    pub fn max_part_weight(&self, total: i64) -> i64 {
        if self.num_parts == 0 {
            return total;
        }
        let ideal = total as f64 / self.num_parts as f64;
        (ideal * (1.0 + self.imbalance)).ceil() as i64
    }
}

/// The result of partitioning: one part id per vertex.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    assignment: Vec<u32>,
    num_parts: usize,
}

impl Partition {
    /// Wraps an explicit assignment vector.
    ///
    /// # Panics
    /// Panics if any entry is `>= num_parts`.
    pub fn from_assignment(assignment: Vec<u32>, num_parts: usize) -> Self {
        assert!(
            assignment.iter().all(|&p| (p as usize) < num_parts.max(1)),
            "part id out of range"
        );
        Partition {
            assignment,
            num_parts: num_parts.max(1),
        }
    }

    /// Part of vertex `v`.
    #[inline]
    pub fn part_of(&self, v: u32) -> u32 {
        self.assignment[v as usize]
    }

    /// Number of parts this partition was computed for (parts may be empty).
    pub fn num_parts(&self) -> usize {
        self.num_parts
    }

    /// Number of vertices covered.
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// True if the partition covers no vertices.
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// The raw assignment slice.
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// The vertices assigned to `part`.
    pub fn members_of(&self, part: u32) -> Vec<u32> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|(_, &p)| p == part)
            .map(|(v, _)| v as u32)
            .collect()
    }

    /// Total weight of cut edges under `graph`.
    pub fn edge_cut(&self, graph: &CsrGraph) -> i64 {
        metrics::edge_cut(graph, self)
    }

    /// Vertex weight per part under `graph`.
    pub fn part_weights(&self, graph: &CsrGraph) -> Vec<i64> {
        metrics::part_weights(graph, self)
    }

    /// Load imbalance under `graph`.
    pub fn imbalance(&self, graph: &CsrGraph) -> f64 {
        metrics::imbalance(graph, self)
    }
}

/// Partitions `graph` into `config.num_parts` parts.
///
/// Degenerate cases are handled explicitly: one part returns the all-zero
/// partition, and a graph with fewer vertices than parts spreads the
/// vertices round-robin (leaving some parts empty).
pub fn partition(graph: &CsrGraph, config: &PartitionConfig) -> Partition {
    let n = graph.num_vertices();
    let k = config.num_parts.max(1);
    if k == 1 || n == 0 {
        return Partition::from_assignment(vec![0; n], k);
    }
    if n <= k {
        let assignment = (0..n as u32).collect();
        return Partition::from_assignment(assignment, k);
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let assignment = match config.scheme {
        PartitionScheme::MultilevelKWay => kway::multilevel_kway(graph, config, &mut rng),
        PartitionScheme::RecursiveBisection => {
            let mut a = initial::recursive_bisection(graph, k, config.imbalance, &mut rng);
            refine::refine_kway(graph, &mut a, config, config.refine_passes);
            a
        }
        PartitionScheme::BfsGrowing => initial::bfs_growing(graph, k, &mut rng),
    };
    Partition::from_assignment(assignment, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn single_part_is_trivial() {
        let g = generators::grid_2d(4, 4, 1);
        let p = partition(&g, &PartitionConfig::new(1));
        assert!(p.assignment().iter().all(|&x| x == 0));
        assert_eq!(p.edge_cut(&g), 0);
    }

    #[test]
    fn more_parts_than_vertices() {
        let g = generators::path(3);
        let p = partition(&g, &PartitionConfig::new(8));
        assert_eq!(p.len(), 3);
        assert_eq!(p.num_parts(), 8);
        // Every vertex in its own part.
        let mut parts: Vec<u32> = p.assignment().to_vec();
        parts.sort_unstable();
        parts.dedup();
        assert_eq!(parts.len(), 3);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::empty(0);
        let p = partition(&g, &PartitionConfig::new(4));
        assert!(p.is_empty());
    }

    #[test]
    fn two_clusters_are_separated() {
        let g = generators::two_clusters(8, 50);
        for scheme in [
            PartitionScheme::MultilevelKWay,
            PartitionScheme::RecursiveBisection,
        ] {
            let cfg = PartitionConfig::new(2).with_scheme(scheme);
            let p = partition(&g, &cfg);
            assert_eq!(
                p.edge_cut(&g),
                1,
                "{scheme:?} must find the single bridge edge"
            );
            let w = p.part_weights(&g);
            assert_eq!(w, vec![8, 8]);
        }
    }

    #[test]
    fn determinism_for_fixed_seed() {
        let g = generators::random_graph(300, 8, 16, 9);
        let cfg = PartitionConfig::new(4).with_seed(123);
        let a = partition(&g, &cfg);
        let b = partition(&g, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn balance_is_respected_on_grid() {
        let g = generators::grid_2d(16, 16, 3);
        for k in [2, 4, 8] {
            let cfg = PartitionConfig::new(k);
            let p = partition(&g, &cfg);
            let imb = p.imbalance(&g);
            assert!(
                imb <= 1.0 + cfg.imbalance + 1e-9,
                "k={k}: imbalance {imb} exceeds tolerance"
            );
            assert!(p.assignment().iter().all(|&x| (x as usize) < k));
        }
    }

    #[test]
    fn multilevel_beats_naive_bfs_on_weighted_graph() {
        let g = generators::layered_dag_skeleton(20, 16, 2, 64);
        let k = 4;
        let ml = partition(&g, &PartitionConfig::new(k));
        let naive = partition(
            &g,
            &PartitionConfig::new(k).with_scheme(PartitionScheme::BfsGrowing),
        );
        assert!(
            ml.edge_cut(&g) <= naive.edge_cut(&g),
            "multilevel cut {} should not exceed naive cut {}",
            ml.edge_cut(&g),
            naive.edge_cut(&g)
        );
    }

    #[test]
    fn config_max_part_weight() {
        let cfg = PartitionConfig::new(4).with_imbalance(0.0);
        assert_eq!(cfg.max_part_weight(100), 25);
        let cfg = PartitionConfig::new(4).with_imbalance(0.10);
        assert_eq!(cfg.max_part_weight(100), 28);
    }

    #[test]
    fn members_of_lists_vertices() {
        let p = Partition::from_assignment(vec![0, 1, 0, 1, 1], 2);
        assert_eq!(p.members_of(0), vec![0, 2]);
        assert_eq!(p.members_of(1), vec![1, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "part id out of range")]
    fn from_assignment_validates_range() {
        Partition::from_assignment(vec![0, 5], 2);
    }
}
