//! Graph partitioning: the SCOTCH substitute used by runtime graph
//! partitioning (RGP), structured as a pipeline of pluggable stages.
//!
//! Every scheme is a composition of three stage traits driven by
//! [`pipeline::MultilevelPipeline`]:
//!
//! 1. a [`pipeline::Coarsener`] collapses the graph into a hierarchy of
//!    successively smaller graphs (heavy-edge matching by default),
//! 2. an [`pipeline::InitialPartitioner`] splits the coarsest graph
//!    (recursive bisection with greedy graph growing, or BFS growing for the
//!    ablation baseline),
//! 3. a [`pipeline::Refiner`] improves the partition at every uncoarsening
//!    step (k-way Fiduccia–Mattheyses boundary passes over an incremental
//!    gain table).
//!
//! The entry point is [`partition`], which maps the configured
//! [`PartitionScheme`] to its canonical stage combination; [`partition_with`]
//! accepts any custom [`pipeline::MultilevelPipeline`], so a single stage can
//! be swapped for ablation studies. Three schemes are registered:
//!
//! * [`PartitionScheme::MultilevelKWay`] (default, token `ml`) — the
//!   METIS/SCOTCH recipe: coarsen, partition the coarsest graph, uncoarsen
//!   and refine at every level.
//! * [`PartitionScheme::RecursiveBisection`] (token `rb`) — recursive
//!   bisection directly on the input graph (no multilevel), useful for small
//!   graphs and as a reference for the multilevel implementation.
//! * [`PartitionScheme::BfsGrowing`] (token `bfs`) — a deliberately naive,
//!   edge-weight-oblivious BFS partitioner kept as the ablation baseline
//!   (ABL-PART in DESIGN.md): it produces balanced parts but much larger
//!   cuts.
//!
//! The hot paths are engineered for 100k+ vertex windows: coarsening reuses
//! its matching and contraction buffers across levels and contracts straight
//! into CSR form (no edge-map churn), and refinement maintains a flat
//! vertex×part connectivity table (see [`refine::GainTable`]) updated in
//! `O(deg)` per move instead of allocating a per-visit connectivity vector.
//!
//! Higher layers configure the partitioner through [`PartitionTuning`], the
//! `num_parts`-agnostic subset of [`PartitionConfig`] that policies (RGP)
//! carry until the socket count is known.
//!
//! *Anchored* partitioning ([`partition_anchored`]) extends every scheme
//! with per-vertex socket-affinity terms ([`AffinityCosts`]): bytes a vertex
//! pulls from data whose home is already fixed by earlier windows. The
//! affinity rows are summed through the coarsening hierarchy and added to
//! the FM refiner's move gains, so refinement trades edge cut against
//! affinity to fixed data. Without anchors every entry point — including the
//! RNG streams — behaves exactly as before.

pub mod affinity;
pub mod coarsen;
pub mod initial;
pub mod pipeline;
pub mod refine;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::csr::CsrGraph;
use crate::metrics;

pub use affinity::AffinityCosts;

/// Reusable scratch state for repeated partitioning runs.
///
/// A context carries the buffers that are expensive to rebuild per call:
/// the coarsening workspace (edge list, matching flags, contraction
/// scratch), the refinement scratch (gain table, boundary list, per-part
/// rebalance queues — see [`refine::RefineScratch`]) and the uncoarsening
/// projection buffer. RGP's repartitioning mode partitions one window per
/// execution window of the same sweep cell; holding a context across those
/// calls removes every per-window coarsening allocation *and* every
/// per-level refinement/projection allocation. The context is pure scratch:
/// results are bit-identical with a fresh context per call.
#[derive(Debug, Default)]
pub struct PartitionCtx {
    coarsen: coarsen::CoarsenWorkspace,
    refine: refine::RefineScratch,
    projection: Vec<u32>,
}

/// Which partitioning algorithm to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum PartitionScheme {
    /// Multilevel k-way (coarsen → initial partition → refine). The default
    /// and the scheme RGP uses.
    #[default]
    MultilevelKWay,
    /// Recursive bisection directly on the input graph.
    RecursiveBisection,
    /// Naive BFS region growing that ignores edge weights (ablation baseline).
    BfsGrowing,
}

impl PartitionScheme {
    /// Every registered scheme, in ablation-report order.
    pub fn all() -> [PartitionScheme; 3] {
        [
            PartitionScheme::MultilevelKWay,
            PartitionScheme::RecursiveBisection,
            PartitionScheme::BfsGrowing,
        ]
    }

    /// The short, stable token used in policy labels and CLI arguments
    /// (`scheme=ml`, `scheme=rb`, `scheme=bfs`). Round-trips through
    /// [`PartitionScheme::from_token`].
    pub fn token(&self) -> &'static str {
        match self {
            PartitionScheme::MultilevelKWay => "ml",
            PartitionScheme::RecursiveBisection => "rb",
            PartitionScheme::BfsGrowing => "bfs",
        }
    }

    /// Parses a scheme token (short or spelled-out, case-insensitive).
    pub fn from_token(s: &str) -> Option<PartitionScheme> {
        match s.trim().to_ascii_lowercase().as_str() {
            "ml" | "multilevel" | "kway" | "multilevel-kway" => {
                Some(PartitionScheme::MultilevelKWay)
            }
            "rb" | "bisection" | "recursive-bisection" => Some(PartitionScheme::RecursiveBisection),
            "bfs" | "bfs-growing" => Some(PartitionScheme::BfsGrowing),
            _ => None,
        }
    }
}

/// Parameters of the partitioner.
#[derive(Clone, Debug, PartialEq)]
pub struct PartitionConfig {
    /// Number of parts (one per NUMA socket for RGP).
    pub num_parts: usize,
    /// Allowed load imbalance: the heaviest part may weigh up to
    /// `(1 + imbalance) * total / num_parts`.
    pub imbalance: f64,
    /// Seed for all randomised tie-breaking; a fixed seed gives a fully
    /// deterministic partition.
    pub seed: u64,
    /// Coarsening stops when the graph has at most this many vertices
    /// (clamped to at least `4 * num_parts`).
    pub coarsen_until: usize,
    /// Maximum number of refinement passes per level.
    pub refine_passes: usize,
    /// Algorithm to use.
    pub scheme: PartitionScheme,
}

impl PartitionConfig {
    /// A sensible default configuration for `num_parts` parts.
    pub fn new(num_parts: usize) -> Self {
        PartitionConfig {
            num_parts,
            imbalance: 0.10,
            seed: 0x5C07C4,
            coarsen_until: (30 * num_parts).max(80),
            refine_passes: 8,
            scheme: PartitionScheme::MultilevelKWay,
        }
    }

    /// Sets the random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the allowed imbalance.
    pub fn with_imbalance(mut self, imbalance: f64) -> Self {
        self.imbalance = imbalance;
        self
    }

    /// Sets the partitioning scheme.
    pub fn with_scheme(mut self, scheme: PartitionScheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// Sets the maximum number of refinement passes per level.
    pub fn with_refine_passes(mut self, passes: usize) -> Self {
        self.refine_passes = passes;
        self
    }

    /// Sets the coarsening stop threshold.
    pub fn with_coarsen_until(mut self, coarsen_until: usize) -> Self {
        self.coarsen_until = coarsen_until;
        self
    }

    /// Maximum allowed weight of a part for a graph of total weight `total`.
    pub fn max_part_weight(&self, total: i64) -> i64 {
        if self.num_parts == 0 {
            return total;
        }
        let ideal = total as f64 / self.num_parts as f64;
        (ideal * (1.0 + self.imbalance)).ceil() as i64
    }
}

/// The `num_parts`-agnostic partitioner knobs carried by higher layers
/// (RGP holds one of these until the socket count is known at `prepare`
/// time, when [`PartitionTuning::config_for`] turns it into a full
/// [`PartitionConfig`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PartitionTuning {
    /// Allowed load imbalance of the partition.
    pub imbalance: f64,
    /// Partitioning scheme.
    pub scheme: PartitionScheme,
    /// Refinement passes per level (`None` keeps the
    /// [`PartitionConfig::new`] default).
    pub refine_passes: Option<usize>,
    /// Coarsening stop threshold (`None` keeps the `num_parts`-derived
    /// default).
    pub coarsen_until: Option<usize>,
}

impl Default for PartitionTuning {
    fn default() -> Self {
        PartitionTuning {
            imbalance: 0.10,
            scheme: PartitionScheme::default(),
            refine_passes: None,
            coarsen_until: None,
        }
    }
}

impl PartitionTuning {
    /// Sets the allowed imbalance.
    pub fn with_imbalance(mut self, imbalance: f64) -> Self {
        self.imbalance = imbalance;
        self
    }

    /// Sets the scheme.
    pub fn with_scheme(mut self, scheme: PartitionScheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// Sets the refinement pass limit.
    pub fn with_refine_passes(mut self, passes: usize) -> Self {
        self.refine_passes = Some(passes);
        self
    }

    /// Sets the coarsening stop threshold.
    pub fn with_coarsen_until(mut self, coarsen_until: usize) -> Self {
        self.coarsen_until = Some(coarsen_until);
        self
    }

    /// Materialises a full [`PartitionConfig`] once the part count and seed
    /// are known.
    pub fn config_for(&self, num_parts: usize, seed: u64) -> PartitionConfig {
        let mut config = PartitionConfig::new(num_parts)
            .with_seed(seed)
            .with_imbalance(self.imbalance)
            .with_scheme(self.scheme);
        if let Some(passes) = self.refine_passes {
            config.refine_passes = passes;
        }
        if let Some(until) = self.coarsen_until {
            config.coarsen_until = until;
        }
        config
    }
}

/// The result of partitioning: one part id per vertex.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    assignment: Vec<u32>,
    num_parts: usize,
}

impl Partition {
    /// Wraps an explicit assignment vector.
    ///
    /// # Panics
    /// Panics if any entry is `>= num_parts`.
    pub fn from_assignment(assignment: Vec<u32>, num_parts: usize) -> Self {
        assert!(
            assignment.iter().all(|&p| (p as usize) < num_parts.max(1)),
            "part id out of range"
        );
        Partition {
            assignment,
            num_parts: num_parts.max(1),
        }
    }

    /// Part of vertex `v`.
    #[inline]
    pub fn part_of(&self, v: u32) -> u32 {
        self.assignment[v as usize]
    }

    /// Number of parts this partition was computed for (parts may be empty).
    pub fn num_parts(&self) -> usize {
        self.num_parts
    }

    /// Number of vertices covered.
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// True if the partition covers no vertices.
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// The raw assignment slice.
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// The vertices assigned to `part`.
    ///
    /// One call scans the whole assignment; callers that need the members of
    /// *every* part (e.g. RGP placement) should build a [`PartMembers`]
    /// index once via [`Partition::members`] instead of looping over parts,
    /// which would be `O(n·k)`.
    pub fn members_of(&self, part: u32) -> Vec<u32> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|(_, &p)| p == part)
            .map(|(v, _)| v as u32)
            .collect()
    }

    /// Builds the part→members index in one `O(n + k)` pass.
    pub fn members(&self) -> PartMembers {
        PartMembers::build(&self.assignment, self.num_parts)
    }

    /// Total weight of cut edges under `graph`.
    pub fn edge_cut(&self, graph: &CsrGraph) -> i64 {
        metrics::edge_cut(graph, self)
    }

    /// Vertex weight per part under `graph`.
    pub fn part_weights(&self, graph: &CsrGraph) -> Vec<i64> {
        metrics::part_weights(graph, self)
    }

    /// Load imbalance under `graph`.
    pub fn imbalance(&self, graph: &CsrGraph) -> f64 {
        metrics::imbalance(graph, self)
    }
}

/// A CSR-shaped part→members index: every part's vertices (ascending) in one
/// shared buffer, built in a single pass over the assignment. This replaces
/// repeated [`Partition::members_of`] scans — `O(n)` each — on hot paths
/// that visit every part.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartMembers {
    offsets: Vec<usize>,
    members: Vec<u32>,
}

impl PartMembers {
    fn build(assignment: &[u32], num_parts: usize) -> Self {
        let k = num_parts.max(1);
        let mut counts = vec![0usize; k + 1];
        for &p in assignment {
            counts[p as usize + 1] += 1;
        }
        for i in 0..k {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut members = vec![0u32; assignment.len()];
        for (v, &p) in assignment.iter().enumerate() {
            members[cursor[p as usize]] = v as u32;
            cursor[p as usize] += 1;
        }
        PartMembers { offsets, members }
    }

    /// Number of parts indexed.
    pub fn num_parts(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The vertices of `part`, in ascending order.
    pub fn members_of(&self, part: u32) -> &[u32] {
        &self.members[self.offsets[part as usize]..self.offsets[part as usize + 1]]
    }

    /// Iterates over `(part, members)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &[u32])> + '_ {
        (0..self.num_parts() as u32).map(move |p| (p, self.members_of(p)))
    }
}

/// Partitions `graph` into `config.num_parts` parts using the canonical
/// pipeline of the configured scheme.
///
/// Degenerate cases are handled explicitly: one part returns the all-zero
/// partition, and a graph with fewer vertices than parts spreads the
/// vertices round-robin (leaving some parts empty).
pub fn partition(graph: &CsrGraph, config: &PartitionConfig) -> Partition {
    partition_with(
        graph,
        config,
        &pipeline::MultilevelPipeline::for_scheme(config.scheme),
    )
}

/// [`partition`] through a caller-owned [`PartitionCtx`], reusing scratch
/// buffers across repeated calls (identical results).
pub fn partition_ctx(
    graph: &CsrGraph,
    config: &PartitionConfig,
    ctx: &mut PartitionCtx,
) -> Partition {
    partition_with_ctx(
        graph,
        config,
        &pipeline::MultilevelPipeline::for_scheme(config.scheme),
        ctx,
    )
}

/// [`partition`] with an explicit stage composition, for ablations that swap
/// a single pipeline stage. Degenerate inputs short-circuit before the
/// pipeline runs, exactly as in [`partition`].
pub fn partition_with(
    graph: &CsrGraph,
    config: &PartitionConfig,
    pipeline: &pipeline::MultilevelPipeline,
) -> Partition {
    let mut ctx = PartitionCtx::default();
    partition_with_ctx(graph, config, pipeline, &mut ctx)
}

/// [`partition_with`] through a caller-owned [`PartitionCtx`].
pub fn partition_with_ctx(
    graph: &CsrGraph,
    config: &PartitionConfig,
    pipeline: &pipeline::MultilevelPipeline,
    ctx: &mut PartitionCtx,
) -> Partition {
    let n = graph.num_vertices();
    let k = config.num_parts.max(1);
    if k == 1 || n == 0 {
        return Partition::from_assignment(vec![0; n], k);
    }
    if n <= k {
        let assignment = (0..n as u32).collect();
        return Partition::from_assignment(assignment, k);
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let assignment = pipeline.run_anchored_ctx(graph, config, &mut rng, None, ctx);
    Partition::from_assignment(assignment, k)
}

/// [`partition`] with per-vertex socket-affinity anchors: refinement trades
/// edge cut against the bytes each vertex pulls from data already fixed on a
/// part (see [`AffinityCosts`]). `affinity` must cover every vertex of
/// `graph` with `config.num_parts` parts per row.
pub fn partition_anchored(
    graph: &CsrGraph,
    config: &PartitionConfig,
    affinity: &AffinityCosts,
) -> Partition {
    partition_with_anchored(
        graph,
        config,
        &pipeline::MultilevelPipeline::for_scheme(config.scheme),
        affinity,
    )
}

/// [`partition_anchored`] through a caller-owned [`PartitionCtx`], reusing
/// scratch buffers across repeated calls (identical results).
pub fn partition_anchored_ctx(
    graph: &CsrGraph,
    config: &PartitionConfig,
    affinity: &AffinityCosts,
    ctx: &mut PartitionCtx,
) -> Partition {
    partition_with_anchored_ctx(
        graph,
        config,
        &pipeline::MultilevelPipeline::for_scheme(config.scheme),
        affinity,
        ctx,
    )
}

/// [`partition_anchored`] with an explicit stage composition.
///
/// Degenerate inputs short-circuit like [`partition_with`], except that a
/// graph with no more vertices than parts follows the anchors instead of the
/// identity spread: each vertex goes to its strongest-affinity part (its own
/// index — the unanchored choice — when the row is uniform). Small tail
/// windows are exactly where anchoring matters most, so they must not fall
/// back to anchor-oblivious placement.
pub fn partition_with_anchored(
    graph: &CsrGraph,
    config: &PartitionConfig,
    pipeline: &pipeline::MultilevelPipeline,
    affinity: &AffinityCosts,
) -> Partition {
    let mut ctx = PartitionCtx::default();
    partition_with_anchored_ctx(graph, config, pipeline, affinity, &mut ctx)
}

/// [`partition_with_anchored`] with an explicit stage composition and a
/// caller-owned [`PartitionCtx`].
pub fn partition_with_anchored_ctx(
    graph: &CsrGraph,
    config: &PartitionConfig,
    pipeline: &pipeline::MultilevelPipeline,
    affinity: &AffinityCosts,
    ctx: &mut PartitionCtx,
) -> Partition {
    let n = graph.num_vertices();
    let k = config.num_parts.max(1);
    assert_eq!(
        affinity.num_vertices(),
        n,
        "affinity must cover every vertex"
    );
    assert_eq!(affinity.num_parts(), k, "affinity must cover every part");
    if k == 1 || n == 0 {
        return Partition::from_assignment(vec![0; n], k);
    }
    if n <= k {
        let assignment = (0..n as u32)
            .map(|v| {
                let row = affinity.row(v);
                let mut best = v;
                let mut best_aff = row[v as usize];
                for (p, &c) in row.iter().enumerate() {
                    if c > best_aff {
                        best = p as u32;
                        best_aff = c;
                    }
                }
                best
            })
            .collect();
        return Partition::from_assignment(assignment, k);
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let assignment = pipeline.run_anchored_ctx(graph, config, &mut rng, Some(affinity), ctx);
    Partition::from_assignment(assignment, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn single_part_is_trivial() {
        let g = generators::grid_2d(4, 4, 1);
        let p = partition(&g, &PartitionConfig::new(1));
        assert!(p.assignment().iter().all(|&x| x == 0));
        assert_eq!(p.edge_cut(&g), 0);
    }

    #[test]
    fn more_parts_than_vertices() {
        let g = generators::path(3);
        let p = partition(&g, &PartitionConfig::new(8));
        assert_eq!(p.len(), 3);
        assert_eq!(p.num_parts(), 8);
        // Every vertex in its own part.
        let mut parts: Vec<u32> = p.assignment().to_vec();
        parts.sort_unstable();
        parts.dedup();
        assert_eq!(parts.len(), 3);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::empty(0);
        let p = partition(&g, &PartitionConfig::new(4));
        assert!(p.is_empty());
    }

    #[test]
    fn two_clusters_are_separated() {
        let g = generators::two_clusters(8, 50);
        for scheme in [
            PartitionScheme::MultilevelKWay,
            PartitionScheme::RecursiveBisection,
        ] {
            let cfg = PartitionConfig::new(2).with_scheme(scheme);
            let p = partition(&g, &cfg);
            assert_eq!(
                p.edge_cut(&g),
                1,
                "{scheme:?} must find the single bridge edge"
            );
            let w = p.part_weights(&g);
            assert_eq!(w, vec![8, 8]);
        }
    }

    #[test]
    fn determinism_for_fixed_seed() {
        let g = generators::random_graph(300, 8, 16, 9);
        let cfg = PartitionConfig::new(4).with_seed(123);
        let a = partition(&g, &cfg);
        let b = partition(&g, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn balance_is_respected_on_grid() {
        let g = generators::grid_2d(16, 16, 3);
        for k in [2, 4, 8] {
            let cfg = PartitionConfig::new(k);
            let p = partition(&g, &cfg);
            let imb = p.imbalance(&g);
            assert!(
                imb <= 1.0 + cfg.imbalance + 1e-9,
                "k={k}: imbalance {imb} exceeds tolerance"
            );
            assert!(p.assignment().iter().all(|&x| (x as usize) < k));
        }
    }

    #[test]
    fn multilevel_beats_naive_bfs_on_weighted_graph() {
        let g = generators::layered_dag_skeleton(20, 16, 2, 64);
        let k = 4;
        let ml = partition(&g, &PartitionConfig::new(k));
        let naive = partition(
            &g,
            &PartitionConfig::new(k).with_scheme(PartitionScheme::BfsGrowing),
        );
        assert!(
            ml.edge_cut(&g) <= naive.edge_cut(&g),
            "multilevel cut {} should not exceed naive cut {}",
            ml.edge_cut(&g),
            naive.edge_cut(&g)
        );
    }

    #[test]
    fn config_max_part_weight() {
        let cfg = PartitionConfig::new(4).with_imbalance(0.0);
        assert_eq!(cfg.max_part_weight(100), 25);
        let cfg = PartitionConfig::new(4).with_imbalance(0.10);
        assert_eq!(cfg.max_part_weight(100), 28);
    }

    #[test]
    fn members_of_lists_vertices() {
        let p = Partition::from_assignment(vec![0, 1, 0, 1, 1], 2);
        assert_eq!(p.members_of(0), vec![0, 2]);
        assert_eq!(p.members_of(1), vec![1, 3, 4]);
    }

    #[test]
    fn members_index_matches_members_of() {
        let p = Partition::from_assignment(vec![2, 0, 1, 0, 2, 2, 1], 4);
        let idx = p.members();
        assert_eq!(idx.num_parts(), 4);
        for part in 0..4u32 {
            assert_eq!(idx.members_of(part), p.members_of(part).as_slice());
        }
        // Part 3 is empty.
        assert!(idx.members_of(3).is_empty());
        let total: usize = idx.iter().map(|(_, m)| m.len()).sum();
        assert_eq!(total, p.len());
    }

    #[test]
    fn scheme_tokens_round_trip() {
        for scheme in PartitionScheme::all() {
            assert_eq!(PartitionScheme::from_token(scheme.token()), Some(scheme));
        }
        assert_eq!(
            PartitionScheme::from_token("Multilevel"),
            Some(PartitionScheme::MultilevelKWay)
        );
        assert_eq!(PartitionScheme::from_token("nope"), None);
    }

    #[test]
    fn tuning_materialises_config() {
        let tuning = PartitionTuning::default()
            .with_imbalance(0.05)
            .with_scheme(PartitionScheme::RecursiveBisection)
            .with_refine_passes(3);
        let cfg = tuning.config_for(8, 42);
        assert_eq!(cfg.num_parts, 8);
        assert_eq!(cfg.seed, 42);
        assert_eq!(cfg.imbalance, 0.05);
        assert_eq!(cfg.scheme, PartitionScheme::RecursiveBisection);
        assert_eq!(cfg.refine_passes, 3);
        // Unset knobs keep the num_parts-derived defaults.
        assert_eq!(cfg.coarsen_until, PartitionConfig::new(8).coarsen_until);
    }

    #[test]
    #[should_panic(expected = "part id out of range")]
    fn from_assignment_validates_range() {
        Partition::from_assignment(vec![0, 5], 2);
    }

    #[test]
    fn zero_affinity_partition_matches_unanchored_for_every_scheme() {
        let g = generators::random_graph(300, 8, 16, 9);
        for scheme in PartitionScheme::all() {
            let cfg = PartitionConfig::new(4).with_seed(123).with_scheme(scheme);
            let plain = partition(&g, &cfg);
            let aff = AffinityCosts::zeros(g.num_vertices(), 4);
            let anchored = partition_anchored(&g, &cfg, &aff);
            assert_eq!(plain, anchored, "{scheme:?} diverged under zero affinity");
        }
    }

    #[test]
    fn strong_anchor_attracts_a_cluster_vertex() {
        // Two 6-vertex clusters joined by one bridge edge. Unanchored, each
        // cluster is one part; anchor a vertex of cluster A to cluster B's
        // part with far more bytes than its internal edges and it must move.
        let g = generators::two_clusters(6, 30);
        let cfg = PartitionConfig::new(2).with_imbalance(0.25);
        let base = partition(&g, &cfg);
        let (a_part, b_part) = (base.part_of(0), base.part_of(6));
        assert_ne!(a_part, b_part);
        let mut aff = AffinityCosts::zeros(g.num_vertices(), 2);
        aff.add(0, b_part, 1_000_000);
        let anchored = partition_anchored(&g, &cfg, &aff);
        assert_eq!(
            anchored.part_of(0),
            b_part,
            "vertex 0 must follow its anchor to part {b_part}"
        );
    }

    #[test]
    fn anchored_degenerate_small_window_follows_anchors() {
        // Fewer vertices than parts: the unanchored path spreads by identity;
        // the anchored path must honour the anchors instead.
        let g = generators::path(3);
        let cfg = PartitionConfig::new(8);
        let mut aff = AffinityCosts::zeros(3, 8);
        aff.add(0, 5, 1000);
        aff.add(2, 3, 64);
        let p = partition_anchored(&g, &cfg, &aff);
        assert_eq!(p.part_of(0), 5);
        assert_eq!(p.part_of(1), 1, "uniform row keeps the identity spread");
        assert_eq!(p.part_of(2), 3);
    }

    #[test]
    #[should_panic(expected = "affinity must cover every vertex")]
    fn anchored_rejects_mismatched_affinity() {
        let g = generators::path(3);
        let aff = AffinityCosts::zeros(2, 4);
        partition_anchored(&g, &PartitionConfig::new(4), &aff);
    }
}
