//! The multilevel k-way driver: coarsen → initial partition → uncoarsen +
//! refine.

use rand::rngs::StdRng;

use crate::csr::CsrGraph;
use crate::partition::{coarsen, initial, refine, PartitionConfig};

/// Multilevel k-way partitioning, METIS/SCOTCH style.
pub fn multilevel_kway(graph: &CsrGraph, config: &PartitionConfig, rng: &mut StdRng) -> Vec<u32> {
    let k = config.num_parts.max(1);
    let target = config.coarsen_until.max(4 * k);

    // Phase 1: coarsen.
    let levels = coarsen::coarsen_to(graph, target, rng);

    // Phase 2: initial partition of the coarsest graph.
    let coarsest: &CsrGraph = levels.last().map(|l| &l.graph).unwrap_or(graph);
    let mut assignment = initial::recursive_bisection(coarsest, k, config.imbalance, rng);
    refine::refine_kway(coarsest, &mut assignment, config, config.refine_passes);

    // Phase 3: uncoarsen and refine level by level.
    for i in (0..levels.len()).rev() {
        let finer: &CsrGraph = if i == 0 { graph } else { &levels[i - 1].graph };
        let map = &levels[i].fine_to_coarse;
        let mut projected = vec![0u32; finer.num_vertices()];
        for (v, &c) in map.iter().enumerate() {
            projected[v] = assignment[c as usize];
        }
        assignment = projected;
        refine::refine_kway(finer, &mut assignment, config, config.refine_passes);
    }

    assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::metrics;
    use crate::partition::Partition;
    use rand::SeedableRng;

    #[test]
    fn multilevel_partitions_large_grid_well() {
        let g = generators::grid_2d(32, 32, 1);
        let cfg = PartitionConfig::new(8);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let a = multilevel_kway(&g, &cfg, &mut rng);
        let p = Partition::from_assignment(a, 8);
        let q = metrics::quality(&g, &p);
        assert_eq!(q.nonempty_parts, 8);
        assert!(q.imbalance <= 1.0 + cfg.imbalance + 1e-9);
        // A random 8-way split of a 32x32 grid cuts ~87.5% of the 1984 edges;
        // a decent partitioner should stay far below that.
        assert!(
            q.edge_cut < 600,
            "edge cut {} is too high for a 32x32 grid",
            q.edge_cut
        );
    }

    #[test]
    fn multilevel_handles_heavy_weighted_edges() {
        let g = generators::layered_dag_skeleton(30, 16, 2, 1 << 16);
        let cfg = PartitionConfig::new(4);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let a = multilevel_kway(&g, &cfg, &mut rng);
        let p = Partition::from_assignment(a, 4);
        assert!(p.imbalance(&g) <= 1.0 + cfg.imbalance + 1e-9);
        assert!(metrics::part_weights(&g, &p).iter().all(|&w| w > 0));
    }

    #[test]
    fn multilevel_on_graph_smaller_than_target() {
        // Graph already below the coarsening threshold: driver must still work.
        let g = generators::grid_2d(4, 4, 1);
        let cfg = PartitionConfig::new(4);
        let mut rng = StdRng::seed_from_u64(1);
        let a = multilevel_kway(&g, &cfg, &mut rng);
        assert_eq!(a.len(), 16);
        assert!(a.iter().all(|&p| p < 4));
    }
}
