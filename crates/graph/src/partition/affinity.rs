//! Per-vertex socket-affinity anchors for *anchored* partitioning.
//!
//! A one-shot partition only sees the edges inside its own window. When a
//! later window is partitioned, part of the data its tasks read is already
//! resident on sockets fixed by earlier decisions — those dependences cannot
//! be expressed as graph edges (their other endpoint is not a free vertex),
//! but they are exactly as real as in-window edges: placing a task away from
//! its anchor costs the same remote bytes as cutting an edge.
//!
//! [`AffinityCosts`] carries those terms as a flat `n × k` table —
//! `cost(v, p)` is the number of bytes vertex `v` pulls from data already
//! fixed on part `p` — and flows through the multilevel pipeline: coarsening
//! sums the rows of merged vertices ([`AffinityCosts::project_to_coarse`]),
//! and refinement adds the row deltas to its move gains, so the partitioner
//! trades edge cut against affinity to fixed data in one objective.

/// Flat row-major `n × k` socket-affinity table (bytes toward each part).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AffinityCosts {
    k: usize,
    costs: Vec<i64>,
}

impl AffinityCosts {
    /// An all-zero table for `num_vertices` vertices and `num_parts` parts.
    pub fn zeros(num_vertices: usize, num_parts: usize) -> Self {
        let k = num_parts.max(1);
        AffinityCosts {
            k,
            costs: vec![0; num_vertices * k],
        }
    }

    /// Number of vertices covered.
    pub fn num_vertices(&self) -> usize {
        self.costs.len() / self.k
    }

    /// Number of parts per row.
    pub fn num_parts(&self) -> usize {
        self.k
    }

    /// Adds `bytes` of affinity between vertex `v` and part `part`.
    #[inline]
    pub fn add(&mut self, v: u32, part: u32, bytes: i64) {
        self.costs[v as usize * self.k + part as usize] += bytes;
    }

    /// The affinity row of `v` across all parts.
    #[inline]
    pub fn row(&self, v: u32) -> &[i64] {
        &self.costs[v as usize * self.k..(v as usize + 1) * self.k]
    }

    /// Total affinity weight in the table.
    pub fn total(&self) -> i64 {
        self.costs.iter().sum()
    }

    /// True if no vertex has any affinity (anchoring is a no-op).
    pub fn is_zero(&self) -> bool {
        self.costs.iter().all(|&c| c == 0)
    }

    /// The raw flat table (row-major `n × k`).
    pub fn flat(&self) -> &[i64] {
        &self.costs
    }

    /// Sums the rows of vertices merged by `fine_to_coarse` into a table for
    /// the coarse graph, so anchors survive every coarsening level.
    pub fn project_to_coarse(
        &self,
        fine_to_coarse: &[u32],
        coarse_vertices: usize,
    ) -> AffinityCosts {
        let mut coarse = AffinityCosts::zeros(coarse_vertices, self.k);
        for (v, &c) in fine_to_coarse.iter().enumerate() {
            let src = &self.costs[v * self.k..(v + 1) * self.k];
            let dst = &mut coarse.costs[c as usize * self.k..(c as usize + 1) * self.k];
            for (d, s) in dst.iter_mut().zip(src) {
                *d += s;
            }
        }
        coarse
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_add() {
        let mut a = AffinityCosts::zeros(3, 4);
        assert_eq!(a.num_vertices(), 3);
        assert_eq!(a.num_parts(), 4);
        assert!(a.is_zero());
        a.add(1, 2, 100);
        a.add(1, 2, 50);
        a.add(2, 0, 7);
        assert_eq!(a.row(0), &[0, 0, 0, 0]);
        assert_eq!(a.row(1), &[0, 0, 150, 0]);
        assert_eq!(a.row(2), &[7, 0, 0, 0]);
        assert_eq!(a.total(), 157);
        assert!(!a.is_zero());
    }

    #[test]
    fn projection_sums_merged_rows() {
        let mut a = AffinityCosts::zeros(4, 2);
        a.add(0, 0, 10);
        a.add(1, 1, 20);
        a.add(2, 0, 5);
        a.add(3, 1, 1);
        // Vertices 0,1 merge into coarse 0; vertices 2,3 into coarse 1.
        let coarse = a.project_to_coarse(&[0, 0, 1, 1], 2);
        assert_eq!(coarse.row(0), &[10, 20]);
        assert_eq!(coarse.row(1), &[5, 1]);
        assert_eq!(coarse.total(), a.total());
    }

    #[test]
    fn single_part_table_is_well_formed() {
        let a = AffinityCosts::zeros(5, 1);
        assert_eq!(a.num_vertices(), 5);
        assert_eq!(a.row(4), &[0]);
    }
}
