//! Synthetic graph generators for tests, property tests and microbenchmarks.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::csr::{CsrGraph, GraphBuilder};

/// A `width × height` 2-D grid graph (4-point stencil connectivity) with unit
/// vertex weights and the given uniform edge weight.
pub fn grid_2d(width: usize, height: usize, edge_weight: i64) -> CsrGraph {
    let n = width * height;
    let mut b = GraphBuilder::new(n);
    let idx = |x: usize, y: usize| (y * width + x) as u32;
    for y in 0..height {
        for x in 0..width {
            if x + 1 < width {
                b.add_edge(idx(x, y), idx(x + 1, y), edge_weight);
            }
            if y + 1 < height {
                b.add_edge(idx(x, y), idx(x, y + 1), edge_weight);
            }
        }
    }
    b.build()
}

/// A path graph with `n` vertices and unit edge weights.
pub fn path(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_edge((v - 1) as u32, v as u32, 1);
    }
    b.build()
}

/// A complete graph on `n` vertices with unit edge weights.
pub fn complete(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::new(n);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            b.add_edge(u, v, 1);
        }
    }
    b.build()
}

/// An Erdős–Rényi-style random graph: each of the `n * avg_degree / 2` edges
/// connects two uniformly random distinct vertices, with weight in
/// `1..=max_weight`. Deterministic for a fixed seed.
pub fn random_graph(n: usize, avg_degree: usize, max_weight: i64, seed: u64) -> CsrGraph {
    assert!(max_weight >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    if n < 2 {
        return b.build();
    }
    let edges = n * avg_degree / 2;
    for _ in 0..edges {
        let u = rng.gen_range(0..n as u32);
        let mut v = rng.gen_range(0..n as u32);
        while v == u {
            v = rng.gen_range(0..n as u32);
        }
        b.add_edge(u, v, rng.gen_range(1..=max_weight));
    }
    b.build()
}

/// The undirected skeleton of a layered DAG: `layers` layers of `width`
/// vertices each, every vertex connected to `fanout` vertices of the next
/// layer (wrapping), with the given edge weight. This is the shape of the
/// task graphs produced by iterative stencil applications.
pub fn layered_dag_skeleton(
    layers: usize,
    width: usize,
    fanout: usize,
    edge_weight: i64,
) -> CsrGraph {
    let n = layers * width;
    let mut b = GraphBuilder::new(n);
    for layer in 0..layers.saturating_sub(1) {
        for i in 0..width {
            let u = (layer * width + i) as u32;
            for f in 0..fanout.max(1) {
                let j = (i + f) % width;
                let v = ((layer + 1) * width + j) as u32;
                b.add_edge(u, v, edge_weight);
            }
        }
    }
    b.build()
}

/// Two dense clusters of `cluster_size` vertices (intra-cluster weight
/// `heavy`) joined by a single light bridge edge. The optimal bisection is
/// obvious, which makes this the canonical partitioner sanity test.
pub fn two_clusters(cluster_size: usize, heavy: i64) -> CsrGraph {
    let n = 2 * cluster_size;
    let mut b = GraphBuilder::new(n);
    for c in 0..2 {
        let base = (c * cluster_size) as u32;
        for i in 0..cluster_size as u32 {
            for j in (i + 1)..cluster_size as u32 {
                b.add_edge(base + i, base + j, heavy);
            }
        }
    }
    if cluster_size > 0 {
        b.add_edge(0, cluster_size as u32, 1);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_has_expected_edges() {
        let g = grid_2d(4, 3, 2);
        assert_eq!(g.num_vertices(), 12);
        // Horizontal: 3 per row * 3 rows = 9; vertical: 4 per column pair * 2 = 8.
        assert_eq!(g.num_edges(), 9 + 8);
        assert_eq!(g.edge_weight(0, 1), Some(2));
        assert_eq!(g.edge_weight(0, 4), Some(2));
        assert!(g.validate().is_ok());
    }

    #[test]
    fn path_and_complete() {
        let p = path(5);
        assert_eq!(p.num_edges(), 4);
        let k = complete(5);
        assert_eq!(k.num_edges(), 10);
        assert_eq!(k.degree(2), 4);
    }

    #[test]
    fn random_graph_is_deterministic() {
        let a = random_graph(100, 6, 8, 42);
        let b = random_graph(100, 6, 8, 42);
        let c = random_graph(100, 6, 8, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.validate().is_ok());
        assert!(a.num_edges() > 0);
    }

    #[test]
    fn layered_skeleton_shape() {
        let g = layered_dag_skeleton(4, 8, 2, 100);
        assert_eq!(g.num_vertices(), 32);
        assert!(g.validate().is_ok());
        // Every vertex in layers 1..3 has incoming edges from the previous layer.
        assert!(g.degree(8) >= 1);
    }

    #[test]
    fn two_clusters_has_single_bridge() {
        let g = two_clusters(4, 10);
        assert_eq!(g.num_vertices(), 8);
        // 2 * C(4,2) intra edges + 1 bridge.
        assert_eq!(g.num_edges(), 13);
        assert_eq!(g.edge_weight(0, 4), Some(1));
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(path(0).num_vertices(), 0);
        assert_eq!(path(1).num_edges(), 0);
        assert_eq!(random_graph(1, 4, 3, 7).num_edges(), 0);
        assert_eq!(grid_2d(1, 1, 1).num_edges(), 0);
    }
}
