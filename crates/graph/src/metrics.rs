//! Partition quality metrics: edge cut, communication volume, balance.

use crate::csr::CsrGraph;
use crate::partition::Partition;

/// Total weight of edges whose endpoints lie in different parts.
pub fn edge_cut(graph: &CsrGraph, partition: &Partition) -> i64 {
    assignment_edge_cut(graph, partition.assignment())
}

/// [`edge_cut`] over a raw assignment slice, for callers inside the
/// partitioning pipeline that have not wrapped a [`Partition`] yet.
pub fn assignment_edge_cut(graph: &CsrGraph, assignment: &[u32]) -> i64 {
    let mut cut = 0i64;
    for v in 0..graph.num_vertices() as u32 {
        for (u, w) in graph.edges_of(v) {
            if assignment[v as usize] != assignment[u as usize] {
                cut += w;
            }
        }
    }
    cut / 2
}

/// Total communication volume: for every vertex, the number of *distinct*
/// foreign parts among its neighbours, weighted by the vertex weight. This is
/// the METIS "totalv" objective and approximates the bytes a task's outputs
/// must be shipped to.
pub fn communication_volume(graph: &CsrGraph, partition: &Partition) -> i64 {
    let mut vol = 0i64;
    let mut seen: Vec<u32> = Vec::new();
    for v in 0..graph.num_vertices() as u32 {
        seen.clear();
        let pv = partition.part_of(v);
        for &u in graph.neighbors(v) {
            let pu = partition.part_of(u);
            if pu != pv && !seen.contains(&pu) {
                seen.push(pu);
            }
        }
        vol += graph.vertex_weight(v) * seen.len() as i64;
    }
    vol
}

/// Vertex weight of each part.
pub fn part_weights(graph: &CsrGraph, partition: &Partition) -> Vec<i64> {
    let mut weights = vec![0i64; partition.num_parts()];
    for v in 0..graph.num_vertices() as u32 {
        weights[partition.part_of(v) as usize] += graph.vertex_weight(v);
    }
    weights
}

/// Load imbalance: `max_part_weight / ideal_part_weight`. A perfectly
/// balanced partition has imbalance 1.0; the partitioner targets
/// `1.0 + config.imbalance`.
pub fn imbalance(graph: &CsrGraph, partition: &Partition) -> f64 {
    let weights = part_weights(graph, partition);
    let total: i64 = weights.iter().sum();
    if total == 0 || partition.num_parts() == 0 {
        return 1.0;
    }
    let ideal = total as f64 / partition.num_parts() as f64;
    let max = weights.iter().copied().max().unwrap_or(0) as f64;
    if ideal == 0.0 {
        1.0
    } else {
        max / ideal
    }
}

/// Number of boundary vertices (vertices with at least one neighbour in a
/// different part).
pub fn boundary_size(graph: &CsrGraph, partition: &Partition) -> usize {
    (0..graph.num_vertices() as u32)
        .filter(|&v| {
            graph
                .neighbors(v)
                .iter()
                .any(|&u| partition.part_of(u) != partition.part_of(v))
        })
        .count()
}

/// A compact quality report used by the ablation harness and by tests.
#[derive(Clone, Debug, PartialEq)]
pub struct PartitionQuality {
    /// Total weight of cut edges.
    pub edge_cut: i64,
    /// METIS-style total communication volume.
    pub communication_volume: i64,
    /// `max part weight / ideal part weight`.
    pub imbalance: f64,
    /// Number of boundary vertices.
    pub boundary_vertices: usize,
    /// Number of non-empty parts.
    pub nonempty_parts: usize,
}

/// Computes all quality metrics at once.
pub fn quality(graph: &CsrGraph, partition: &Partition) -> PartitionQuality {
    let weights = part_weights(graph, partition);
    PartitionQuality {
        edge_cut: edge_cut(graph, partition),
        communication_volume: communication_volume(graph, partition),
        imbalance: imbalance(graph, partition),
        boundary_vertices: boundary_size(graph, partition),
        nonempty_parts: weights.iter().filter(|&&w| w > 0).count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::GraphBuilder;

    fn path4() -> CsrGraph {
        // 0 - 1 - 2 - 3 with weights 1, 10, 1
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1).add_edge(1, 2, 10).add_edge(2, 3, 1);
        b.build()
    }

    #[test]
    fn edge_cut_counts_cross_edges_once() {
        let g = path4();
        let p = Partition::from_assignment(vec![0, 0, 1, 1], 2);
        assert_eq!(edge_cut(&g, &p), 10);
        let p2 = Partition::from_assignment(vec![0, 1, 1, 0], 2);
        assert_eq!(edge_cut(&g, &p2), 2);
    }

    #[test]
    fn zero_cut_for_single_part() {
        let g = path4();
        let p = Partition::from_assignment(vec![0, 0, 0, 0], 1);
        assert_eq!(edge_cut(&g, &p), 0);
        assert_eq!(communication_volume(&g, &p), 0);
        assert_eq!(boundary_size(&g, &p), 0);
    }

    #[test]
    fn imbalance_of_even_split_is_one() {
        let g = path4();
        let p = Partition::from_assignment(vec![0, 0, 1, 1], 2);
        assert!((imbalance(&g, &p) - 1.0).abs() < 1e-12);
        let skew = Partition::from_assignment(vec![0, 0, 0, 1], 2);
        assert!((imbalance(&g, &skew) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn communication_volume_counts_distinct_parts() {
        // Star: centre 0 connected to 1, 2, 3 each in its own part.
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1).add_edge(0, 2, 1).add_edge(0, 3, 1);
        let g = b.build();
        let p = Partition::from_assignment(vec![0, 1, 2, 3], 4);
        // Centre sees 3 foreign parts, each leaf sees 1.
        assert_eq!(communication_volume(&g, &p), 3 + 1 + 1 + 1);
    }

    #[test]
    fn quality_report_is_consistent() {
        let g = path4();
        let p = Partition::from_assignment(vec![0, 0, 1, 1], 2);
        let q = quality(&g, &p);
        assert_eq!(q.edge_cut, 10);
        assert_eq!(q.boundary_vertices, 2);
        assert_eq!(q.nonempty_parts, 2);
        assert!((q.imbalance - 1.0).abs() < 1e-12);
    }

    #[test]
    fn part_weights_respect_vertex_weights() {
        let mut b = GraphBuilder::new(3);
        b.set_vertex_weight(0, 5)
            .set_vertex_weight(1, 7)
            .set_vertex_weight(2, 11);
        b.add_edge(0, 1, 1).add_edge(1, 2, 1);
        let g = b.build();
        let p = Partition::from_assignment(vec![0, 1, 1], 2);
        assert_eq!(part_weights(&g, &p), vec![5, 18]);
    }
}
