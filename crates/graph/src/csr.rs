//! Compressed sparse row (CSR) representation of undirected weighted graphs.
//!
//! The partitioner operates on undirected graphs: the task dependency graph
//! (a DAG) is symmetrised before partitioning, because what matters for NUMA
//! placement is the *amount of data shared* between two tasks, not the
//! direction it flows in.

use std::collections::BTreeMap;
use std::fmt;

/// Error returned by [`CsrGraph::validate`] when the structure is inconsistent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// `xadj` must have `n + 1` monotonically non-decreasing entries ending
    /// at `adjncy.len()`.
    BadOffsets(String),
    /// A neighbour index is out of range.
    BadNeighbor {
        /// Vertex whose adjacency list is broken.
        vertex: u32,
        /// The offending neighbour index.
        neighbor: u32,
    },
    /// A self loop was found (not allowed in partitioning input).
    SelfLoop(u32),
    /// The graph is not symmetric: edge (u, v) exists but (v, u) does not or
    /// has a different weight.
    NotSymmetric(u32, u32),
    /// Edge and adjacency arrays have different lengths.
    WeightLengthMismatch,
    /// A non-positive vertex or edge weight was found.
    NonPositiveWeight(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::BadOffsets(msg) => write!(f, "bad CSR offsets: {msg}"),
            GraphError::BadNeighbor { vertex, neighbor } => {
                write!(f, "vertex {vertex} has out-of-range neighbour {neighbor}")
            }
            GraphError::SelfLoop(v) => write!(f, "vertex {v} has a self loop"),
            GraphError::NotSymmetric(u, v) => {
                write!(f, "edge ({u}, {v}) is not mirrored with equal weight")
            }
            GraphError::WeightLengthMismatch => write!(f, "adjwgt length != adjncy length"),
            GraphError::NonPositiveWeight(msg) => write!(f, "non-positive weight: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// Undirected weighted graph in CSR form.
///
/// Every undirected edge `{u, v}` is stored twice (once in each adjacency
/// list) with the same weight, METIS-style.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsrGraph {
    xadj: Vec<usize>,
    adjncy: Vec<u32>,
    adjwgt: Vec<i64>,
    vwgt: Vec<i64>,
}

impl CsrGraph {
    /// Builds a graph directly from CSR arrays.
    ///
    /// Prefer [`GraphBuilder`] unless the arrays already exist. The input is
    /// validated; invalid structure returns an error.
    pub fn from_parts(
        xadj: Vec<usize>,
        adjncy: Vec<u32>,
        adjwgt: Vec<i64>,
        vwgt: Vec<i64>,
    ) -> Result<Self, GraphError> {
        let g = CsrGraph {
            xadj,
            adjncy,
            adjwgt,
            vwgt,
        };
        g.validate()?;
        Ok(g)
    }

    /// Builds a graph from CSR arrays that are known to be valid (the
    /// contraction path constructs symmetric sorted adjacency by design and
    /// cannot afford the O(E·deg) symmetry check per level). Invariants are
    /// still checked in debug builds.
    pub(crate) fn from_parts_unchecked(
        xadj: Vec<usize>,
        adjncy: Vec<u32>,
        adjwgt: Vec<i64>,
        vwgt: Vec<i64>,
    ) -> Self {
        let g = CsrGraph {
            xadj,
            adjncy,
            adjwgt,
            vwgt,
        };
        debug_assert!(g.validate().is_ok());
        g
    }

    /// Builds a graph from a flat list of undirected `(u, v, w)` edges with
    /// exactly [`GraphBuilder`]'s semantics — self loops and non-positive
    /// weights dropped, duplicate edges merged by weight addition, adjacency
    /// sorted ascending — but through one sort over a vector instead of a
    /// `BTreeMap` insertion per edge. `vwgt` must have `n` positive entries.
    /// Produces a `CsrGraph` identical to the builder's for any input.
    pub fn from_undirected_edges(
        n: usize,
        vwgt: Vec<i64>,
        edges: &mut Vec<(u32, u32, i64)>,
    ) -> Self {
        assert_eq!(vwgt.len(), n);
        edges.retain_mut(|e| {
            if e.0 == e.1 || e.2 <= 0 {
                return false;
            }
            assert!(
                (e.0 as usize) < n && (e.1 as usize) < n,
                "edge endpoint out of range"
            );
            if e.0 > e.1 {
                std::mem::swap(&mut e.0, &mut e.1);
            }
            true
        });
        edges.sort_unstable_by_key(|&(u, v, _)| (u, v));
        // Merge duplicates in place.
        let mut m = 0usize;
        for i in 0..edges.len() {
            if m > 0 && edges[m - 1].0 == edges[i].0 && edges[m - 1].1 == edges[i].1 {
                edges[m - 1].2 += edges[i].2;
            } else {
                edges[m] = edges[i];
                m += 1;
            }
        }
        edges.truncate(m);

        let mut degree = vec![0usize; n];
        for &(u, v, _) in edges.iter() {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut xadj = vec![0usize; n + 1];
        for v in 0..n {
            xadj[v + 1] = xadj[v] + degree[v];
        }
        let mut cursor = xadj.clone();
        let mut adjncy = vec![0u32; m * 2];
        let mut adjwgt = vec![0i64; m * 2];
        for &(u, v, w) in edges.iter() {
            adjncy[cursor[u as usize]] = v;
            adjwgt[cursor[u as usize]] = w;
            cursor[u as usize] += 1;
            adjncy[cursor[v as usize]] = u;
            adjwgt[cursor[v as usize]] = w;
            cursor[v as usize] += 1;
        }
        let g = CsrGraph {
            xadj,
            adjncy,
            adjwgt,
            vwgt,
        };
        debug_assert!(g.validate().is_ok());
        g
    }

    /// A graph with `n` isolated vertices of unit weight.
    pub fn empty(n: usize) -> Self {
        CsrGraph {
            xadj: vec![0; n + 1],
            adjncy: Vec::new(),
            adjwgt: Vec::new(),
            vwgt: vec![1; n],
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.vwgt.len()
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.adjncy.len() / 2
    }

    /// True if the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.num_vertices() == 0
    }

    /// Degree of a vertex.
    #[inline]
    pub fn degree(&self, v: u32) -> usize {
        self.xadj[v as usize + 1] - self.xadj[v as usize]
    }

    /// Neighbours of `v`.
    #[inline]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.adjncy[self.xadj[v as usize]..self.xadj[v as usize + 1]]
    }

    /// Weights of the edges incident to `v`, aligned with [`Self::neighbors`].
    #[inline]
    pub fn edge_weights(&self, v: u32) -> &[i64] {
        &self.adjwgt[self.xadj[v as usize]..self.xadj[v as usize + 1]]
    }

    /// Iterate over `(neighbor, weight)` pairs of `v`.
    #[inline]
    pub fn edges_of(&self, v: u32) -> impl Iterator<Item = (u32, i64)> + '_ {
        self.neighbors(v)
            .iter()
            .copied()
            .zip(self.edge_weights(v).iter().copied())
    }

    /// Weight of vertex `v`.
    #[inline]
    pub fn vertex_weight(&self, v: u32) -> i64 {
        self.vwgt[v as usize]
    }

    /// All vertex weights.
    pub fn vertex_weights(&self) -> &[i64] {
        &self.vwgt
    }

    /// Sum of all vertex weights.
    pub fn total_vertex_weight(&self) -> i64 {
        self.vwgt.iter().sum()
    }

    /// Sum of the weights of all undirected edges.
    pub fn total_edge_weight(&self) -> i64 {
        self.adjwgt.iter().sum::<i64>() / 2
    }

    /// Sum of the weights of edges incident to `v`.
    pub fn incident_weight(&self, v: u32) -> i64 {
        self.edge_weights(v).iter().sum()
    }

    /// Weight of edge `(u, v)` if present.
    pub fn edge_weight(&self, u: u32, v: u32) -> Option<i64> {
        self.edges_of(u).find(|(n, _)| *n == v).map(|(_, w)| w)
    }

    /// Checks all CSR invariants. Cheap enough to call in tests and at the
    /// boundary of the partitioner; O(V + E log E).
    pub fn validate(&self) -> Result<(), GraphError> {
        let n = self.num_vertices();
        if self.xadj.len() != n + 1 {
            return Err(GraphError::BadOffsets(format!(
                "xadj has {} entries for {} vertices",
                self.xadj.len(),
                n
            )));
        }
        if self.xadj[0] != 0 || *self.xadj.last().unwrap() != self.adjncy.len() {
            return Err(GraphError::BadOffsets(
                "xadj must start at 0 and end at adjncy.len()".to_string(),
            ));
        }
        if self.adjwgt.len() != self.adjncy.len() {
            return Err(GraphError::WeightLengthMismatch);
        }
        for w in &self.vwgt {
            if *w <= 0 {
                return Err(GraphError::NonPositiveWeight(format!("vertex weight {w}")));
            }
        }
        for w in &self.adjwgt {
            if *w <= 0 {
                return Err(GraphError::NonPositiveWeight(format!("edge weight {w}")));
            }
        }
        for v in 0..n as u32 {
            let (lo, hi) = (self.xadj[v as usize], self.xadj[v as usize + 1]);
            if lo > hi {
                return Err(GraphError::BadOffsets(format!(
                    "xadj decreases at vertex {v}"
                )));
            }
            for &u in &self.adjncy[lo..hi] {
                if u as usize >= n {
                    return Err(GraphError::BadNeighbor {
                        vertex: v,
                        neighbor: u,
                    });
                }
                if u == v {
                    return Err(GraphError::SelfLoop(v));
                }
            }
        }
        // Symmetry check via sorted edge multiset.
        for v in 0..n as u32 {
            for (u, w) in self.edges_of(v) {
                match self.edge_weight(u, v) {
                    Some(back) if back == w => {}
                    _ => return Err(GraphError::NotSymmetric(v, u)),
                }
            }
        }
        Ok(())
    }

    /// Returns the connected components as a vector of component ids, one per
    /// vertex, numbered from 0.
    pub fn connected_components(&self) -> (usize, Vec<u32>) {
        let n = self.num_vertices();
        let mut comp = vec![u32::MAX; n];
        let mut next = 0u32;
        let mut stack = Vec::new();
        for start in 0..n as u32 {
            if comp[start as usize] != u32::MAX {
                continue;
            }
            comp[start as usize] = next;
            stack.push(start);
            while let Some(v) = stack.pop() {
                for &u in self.neighbors(v) {
                    if comp[u as usize] == u32::MAX {
                        comp[u as usize] = next;
                        stack.push(u);
                    }
                }
            }
            next += 1;
        }
        (next as usize, comp)
    }
}

/// Incremental builder that accumulates edges (merging duplicates by adding
/// their weights) and produces a validated [`CsrGraph`].
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    num_vertices: usize,
    vwgt: Vec<i64>,
    edges: BTreeMap<(u32, u32), i64>,
}

impl GraphBuilder {
    /// A builder for a graph with `n` vertices of unit weight.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            num_vertices: n,
            vwgt: vec![1; n],
            edges: BTreeMap::new(),
        }
    }

    /// Number of vertices the builder was created with.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Sets the weight of vertex `v` (must be positive).
    pub fn set_vertex_weight(&mut self, v: u32, w: i64) -> &mut Self {
        assert!(w > 0, "vertex weights must be positive");
        self.vwgt[v as usize] = w;
        self
    }

    /// Adds (or accumulates onto) the undirected edge `{u, v}` with weight
    /// `w`. Self loops and non-positive weights are ignored, matching what a
    /// partitioner front-end would do when symmetrising a DAG.
    pub fn add_edge(&mut self, u: u32, v: u32, w: i64) -> &mut Self {
        if u == v || w <= 0 {
            return self;
        }
        assert!(
            (u as usize) < self.num_vertices && (v as usize) < self.num_vertices,
            "edge endpoint out of range"
        );
        let key = if u < v { (u, v) } else { (v, u) };
        *self.edges.entry(key).or_insert(0) += w;
        self
    }

    /// Number of distinct undirected edges added so far.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Produces the CSR graph.
    pub fn build(&self) -> CsrGraph {
        let n = self.num_vertices;
        let mut degree = vec![0usize; n];
        for &(u, v) in self.edges.keys() {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut xadj = vec![0usize; n + 1];
        for v in 0..n {
            xadj[v + 1] = xadj[v] + degree[v];
        }
        let mut cursor = xadj.clone();
        let mut adjncy = vec![0u32; self.edges.len() * 2];
        let mut adjwgt = vec![0i64; self.edges.len() * 2];
        for (&(u, v), &w) in &self.edges {
            adjncy[cursor[u as usize]] = v;
            adjwgt[cursor[u as usize]] = w;
            cursor[u as usize] += 1;
            adjncy[cursor[v as usize]] = u;
            adjwgt[cursor[v as usize]] = w;
            cursor[v as usize] += 1;
        }
        let g = CsrGraph {
            xadj,
            adjncy,
            adjwgt,
            vwgt: self.vwgt.clone(),
        };
        debug_assert!(g.validate().is_ok());
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> CsrGraph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 5).add_edge(1, 2, 7).add_edge(0, 2, 3);
        b.build()
    }

    #[test]
    fn builder_produces_symmetric_csr() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert!(g.validate().is_ok());
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.edge_weight(0, 1), Some(5));
        assert_eq!(g.edge_weight(1, 0), Some(5));
        assert_eq!(g.edge_weight(2, 1), Some(7));
        assert_eq!(g.edge_weight(0, 2), Some(3));
        assert_eq!(g.edge_weight(1, 1), None);
        assert_eq!(g.total_edge_weight(), 15);
        assert_eq!(g.total_vertex_weight(), 3);
    }

    #[test]
    fn duplicate_edges_accumulate() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 4).add_edge(1, 0, 6);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_weight(0, 1), Some(10));
    }

    #[test]
    fn self_loops_and_zero_weights_ignored() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(1, 1, 100).add_edge(0, 1, 0).add_edge(0, 2, -5);
        let g = b.build();
        assert_eq!(g.num_edges(), 0);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn vertex_weights_can_be_set() {
        let mut b = GraphBuilder::new(2);
        b.set_vertex_weight(0, 10).set_vertex_weight(1, 20);
        b.add_edge(0, 1, 1);
        let g = b.build();
        assert_eq!(g.vertex_weight(0), 10);
        assert_eq!(g.vertex_weight(1), 20);
        assert_eq!(g.total_vertex_weight(), 30);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::empty(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        assert!(g.validate().is_ok());
        assert_eq!(g.degree(4), 0);
        let (nc, _) = g.connected_components();
        assert_eq!(nc, 5);
    }

    #[test]
    fn validate_rejects_asymmetric() {
        let g = CsrGraph {
            xadj: vec![0, 1, 1],
            adjncy: vec![1],
            adjwgt: vec![1],
            vwgt: vec![1, 1],
        };
        assert!(matches!(g.validate(), Err(GraphError::NotSymmetric(0, 1))));
    }

    #[test]
    fn validate_rejects_self_loop() {
        let g = CsrGraph {
            xadj: vec![0, 1],
            adjncy: vec![0],
            adjwgt: vec![1],
            vwgt: vec![1],
        };
        assert!(matches!(g.validate(), Err(GraphError::SelfLoop(0))));
    }

    #[test]
    fn validate_rejects_bad_neighbor() {
        let g = CsrGraph {
            xadj: vec![0, 1, 2],
            adjncy: vec![9, 0],
            adjwgt: vec![1, 1],
            vwgt: vec![1, 1],
        };
        assert!(matches!(g.validate(), Err(GraphError::BadNeighbor { .. })));
    }

    #[test]
    fn validate_rejects_nonpositive_weights() {
        let g = CsrGraph {
            xadj: vec![0, 0],
            adjncy: vec![],
            adjwgt: vec![],
            vwgt: vec![0],
        };
        assert!(matches!(
            g.validate(),
            Err(GraphError::NonPositiveWeight(_))
        ));
    }

    #[test]
    fn connected_components_on_two_islands() {
        let mut b = GraphBuilder::new(6);
        b.add_edge(0, 1, 1).add_edge(1, 2, 1);
        b.add_edge(3, 4, 1).add_edge(4, 5, 1);
        let g = b.build();
        let (nc, comp) = g.connected_components();
        assert_eq!(nc, 2);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[3]);
    }

    #[test]
    fn from_parts_validates() {
        assert!(CsrGraph::from_parts(vec![0, 0], vec![], vec![], vec![1]).is_ok());
        assert!(CsrGraph::from_parts(vec![0, 1], vec![0], vec![1], vec![1]).is_err());
    }

    #[test]
    fn incident_weight_sums_edges() {
        let g = triangle();
        assert_eq!(g.incident_weight(0), 8);
        assert_eq!(g.incident_weight(1), 12);
        assert_eq!(g.incident_weight(2), 10);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn builder_rejects_out_of_range_edge() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 5, 1);
    }
}
