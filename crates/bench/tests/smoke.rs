//! Smoke tests for the benchmark harness: the two binaries must run end to
//! end on tiny inputs without panicking, the `figure1` JSON export must be
//! well-formed, and the criterion benches must at least compile.

use std::process::Command;

#[test]
fn figure1_runs_at_tiny_scale_and_writes_json() {
    let dir = std::env::temp_dir().join(format!("numadag_smoke_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let json_path = dir.join("figure1.json");

    let out = Command::new(env!("CARGO_BIN_EXE_figure1"))
        .args(["--scale", "tiny", "--json"])
        .arg(&json_path)
        .output()
        .expect("figure1 must spawn");
    assert!(
        out.status.success(),
        "figure1 exited with {:?}: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );

    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Geometric mean"), "missing geomean row");
    assert!(stdout.contains("RGP+LAS"), "missing the paper's policy");

    let json = std::fs::read_to_string(&json_path).expect("--json must write the file");
    for key in [
        "\"machine\"",
        "\"backend\"",
        "\"baseline\"",
        "\"cells\"",
        "\"aggregates\"",
        "\"speedup_vs_baseline\"",
    ] {
        assert!(json.contains(key), "JSON export missing {key}: {json}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn figure1_accepts_registry_policy_labels() {
    // Policies come from the CLI through the PolicyKind registry, including
    // a parameterised RGP window.
    let out = Command::new(env!("CARGO_BIN_EXE_figure1"))
        .args(["--scale", "tiny", "--policies", "dfifo,rgp-las:w=256"])
        .output()
        .expect("figure1 must spawn");
    assert!(
        out.status.success(),
        "figure1 exited with {:?}: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("RGP+LAS:w=256"),
        "windowed policy column missing"
    );

    // A bogus policy must fail fast with the registry's error message.
    let out = Command::new(env!("CARGO_BIN_EXE_figure1"))
        .args(["--scale", "tiny", "--policies", "bogus"])
        .output()
        .expect("figure1 must spawn");
    assert!(!out.status.success(), "bogus policy must be rejected");
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown policy"));
}

#[test]
fn malformed_arguments_exit_2() {
    // Unknown scales, unknown flags and malformed integers must be hard
    // errors (exit code 2) in both binaries, never silent fallbacks.
    let figure1_cases: &[&[&str]] = &[
        &["--scale", "bogus"],
        &["--scale"],
        &["--jobs", "abc"],
        &["--jobs"],
        &["--reps", "0"],
        &["--reps", "-3"],
        &["--seed", "1.5"],
        &["--no-such-flag"],
        &["--policies", ""],
        &["--trace-dir"],
    ];
    for args in figure1_cases {
        let out = Command::new(env!("CARGO_BIN_EXE_figure1"))
            .args(*args)
            .output()
            .expect("figure1 must spawn");
        assert_eq!(
            out.status.code(),
            Some(2),
            "figure1 {args:?} must exit 2, stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("error:"),
            "figure1 {args:?} must explain the error"
        );
    }

    let ablation_cases: &[&[&str]] = &[
        &["--jobs", "x"],
        &["--jobs"],
        &["no-such-study"],
        &["window", "sockets"],
        &["trace", "window"],
        &["trace", "--scale", "bogus"],
        &["trace", "--scale"],
        &["window", "--scale", "small"],
        &["bench-diff", "only-one.json"],
        &["bench-diff", "a.json", "b.json", "c.json"],
        &["bench-diff", "/nonexistent/a.json", "/nonexistent/b.json"],
    ];
    for args in ablation_cases {
        let out = Command::new(env!("CARGO_BIN_EXE_ablation"))
            .args(*args)
            .output()
            .expect("ablation must spawn");
        assert_eq!(
            out.status.code(),
            Some(2),
            "ablation {args:?} must exit 2, stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

#[test]
fn sharded_sweep_writes_identical_json_and_reports_progress() {
    let dir = std::env::temp_dir().join(format!("numadag_jobs_smoke_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let serial_path = dir.join("serial.json");
    let sharded_path = dir.join("sharded.json");

    let serial = Command::new(env!("CARGO_BIN_EXE_figure1"))
        .args(["--scale", "tiny", "--jobs", "1", "--json"])
        .arg(&serial_path)
        .output()
        .expect("figure1 must spawn");
    assert!(serial.status.success());

    let sharded = Command::new(env!("CARGO_BIN_EXE_figure1"))
        .args(["--scale", "tiny", "--jobs", "4", "--json"])
        .arg(&sharded_path)
        .output()
        .expect("figure1 must spawn");
    assert!(sharded.status.success());

    // Sharding must not change a single byte of the measurement JSON.
    assert_eq!(
        std::fs::read(&serial_path).unwrap(),
        std::fs::read(&sharded_path).unwrap(),
        "jobs=4 and jobs=1 must serialize identically"
    );

    // Live per-cell progress goes to stderr: one line per cell (8 apps × 4
    // policies), none of it polluting stdout.
    let progress = String::from_utf8_lossy(&sharded.stderr);
    assert_eq!(
        progress.lines().filter(|l| l.contains("/ rep 0:")).count(),
        32,
        "expected one progress line per cell: {progress}"
    );
    assert!(progress.contains("[ 32/32]"), "{progress}");

    // bench-diff agrees the reports are identical (exit 0)…
    let same = Command::new(env!("CARGO_BIN_EXE_ablation"))
        .arg("bench-diff")
        .args([&serial_path, &sharded_path])
        .output()
        .expect("ablation must spawn");
    assert_eq!(same.status.code(), Some(0), "identical reports must exit 0");
    assert!(String::from_utf8_lossy(&same.stdout).contains("measurement-identical"));

    // …and flags a seed change as a difference (exit 1) with per-cell deltas.
    let other_path = dir.join("other-seed.json");
    let other = Command::new(env!("CARGO_BIN_EXE_figure1"))
        .args(["--scale", "tiny", "--seed", "99", "--json"])
        .arg(&other_path)
        .output()
        .expect("figure1 must spawn");
    assert!(other.status.success());
    let differs = Command::new(env!("CARGO_BIN_EXE_ablation"))
        .arg("bench-diff")
        .args([&serial_path, &other_path])
        .output()
        .expect("ablation must spawn");
    assert_eq!(
        differs.status.code(),
        Some(1),
        "differing reports must exit 1"
    );
    let stdout = String::from_utf8_lossy(&differs.stdout);
    assert!(stdout.contains("seed: 15819134 -> 99"), "{stdout}");
    assert!(stdout.contains("makespan_ns"), "{stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn json_timing_export_carries_wall_time_accounting() {
    let dir = std::env::temp_dir().join(format!("numadag_timing_smoke_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("timing.json");
    let out = Command::new(env!("CARGO_BIN_EXE_figure1"))
        .args(["--scale", "tiny", "--jobs", "2", "--json-timing"])
        .arg(&path)
        .output()
        .expect("figure1 must spawn");
    assert!(out.status.success());
    let json = std::fs::read_to_string(&path).unwrap();
    for key in [
        "\"timing\"",
        "\"total_wall_ns\"",
        "\"build_wall_ns\"",
        "\"spec_builds\": 8",
        "\"cell_wall_ns\"",
    ] {
        assert!(json.contains(key), "timing export missing {key}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn figure1_trace_dir_writes_round_trippable_traces() {
    let dir = std::env::temp_dir().join(format!("numadag_trace_smoke_{}", std::process::id()));
    let trace_dir = dir.join("traces");

    let out = Command::new(env!("CARGO_BIN_EXE_figure1"))
        .args([
            "--scale",
            "tiny",
            "--policies",
            "rgp-las",
            "--jobs",
            "2",
            "--trace-dir",
        ])
        .arg(&trace_dir)
        .output()
        .expect("figure1 must spawn");
    assert!(
        out.status.success(),
        "figure1 exited with {:?}: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("wrote 16 execution traces"),
        "missing trace-dir summary: {stdout}"
    );

    // One file per cell (8 apps × rgp-las + LAS baseline), each parseable.
    let files: Vec<_> = std::fs::read_dir(&trace_dir)
        .expect("trace dir created")
        .map(|e| e.unwrap().path())
        .collect();
    assert_eq!(files.len(), 16, "{files:?}");
    let sample = trace_dir.join("NStream_Tiny_RGP-LAS_rep0.trace.json");
    let text = std::fs::read_to_string(&sample).expect("sample trace exists");
    for key in ["\"events\"", "\"assign\"", "\"traffic\"", "\"makespan_ns\""] {
        assert!(text.contains(key), "trace file missing {key}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ablation_trace_study_prints_divergence_reports() {
    let out = Command::new(env!("CARGO_BIN_EXE_ablation"))
        .args(["trace", "--scale", "tiny"])
        .output()
        .expect("ablation must spawn");
    assert!(
        out.status.success(),
        "ablation exited with {:?}: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("ABL-TRACE"), "missing study header");
    for app in ["Integral histogram", "Symm. mat. inv.", "NStream"] {
        assert!(stdout.contains(app), "missing app {app}: {stdout}");
    }
    assert!(
        stdout.contains("loses the most time"),
        "missing ranked task report"
    );
    assert!(
        stdout.contains("critical path"),
        "missing critical-path comparison"
    );
}

#[test]
fn ablation_partitioner_study_runs() {
    let out = Command::new(env!("CARGO_BIN_EXE_ablation"))
        .arg("partitioner")
        .output()
        .expect("ablation must spawn");
    assert!(
        out.status.success(),
        "ablation exited with {:?}: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("ABL-PART"), "missing study header");
}

#[test]
fn criterion_benches_compile() {
    // `cargo bench --no-run` from inside a test: cargo has already released
    // its build lock by the time tests execute, so the nested invocation is
    // safe and hits the shared target-dir cache.
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let out = Command::new(cargo)
        .args(["bench", "--no-run", "-p", "numadag-bench"])
        .output()
        .expect("cargo must spawn");
    assert!(
        out.status.success(),
        "cargo bench --no-run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}
