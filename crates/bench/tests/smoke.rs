//! Smoke tests for the benchmark harness: the two binaries must run end to
//! end on tiny inputs without panicking, the `figure1` JSON export must be
//! well-formed, and the criterion benches must at least compile.

use std::process::Command;

#[test]
fn figure1_runs_at_tiny_scale_and_writes_json() {
    let dir = std::env::temp_dir().join(format!("numadag_smoke_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let json_path = dir.join("figure1.json");

    let out = Command::new(env!("CARGO_BIN_EXE_figure1"))
        .args(["--scale", "tiny", "--json"])
        .arg(&json_path)
        .output()
        .expect("figure1 must spawn");
    assert!(
        out.status.success(),
        "figure1 exited with {:?}: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );

    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Geometric mean"), "missing geomean row");
    assert!(stdout.contains("RGP+LAS"), "missing the paper's policy");

    let json = std::fs::read_to_string(&json_path).expect("--json must write the file");
    for key in [
        "\"machine\"",
        "\"backend\"",
        "\"baseline\"",
        "\"cells\"",
        "\"aggregates\"",
        "\"speedup_vs_baseline\"",
    ] {
        assert!(json.contains(key), "JSON export missing {key}: {json}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn figure1_accepts_registry_policy_labels() {
    // Policies come from the CLI through the PolicyKind registry, including
    // a parameterised RGP window.
    let out = Command::new(env!("CARGO_BIN_EXE_figure1"))
        .args(["--scale", "tiny", "--policies", "dfifo,rgp-las:w=256"])
        .output()
        .expect("figure1 must spawn");
    assert!(
        out.status.success(),
        "figure1 exited with {:?}: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("RGP+LAS:w=256"),
        "windowed policy column missing"
    );

    // A bogus policy must fail fast with the registry's error message.
    let out = Command::new(env!("CARGO_BIN_EXE_figure1"))
        .args(["--scale", "tiny", "--policies", "bogus"])
        .output()
        .expect("figure1 must spawn");
    assert!(!out.status.success(), "bogus policy must be rejected");
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown policy"));
}

#[test]
fn ablation_partitioner_study_runs() {
    let out = Command::new(env!("CARGO_BIN_EXE_ablation"))
        .arg("partitioner")
        .output()
        .expect("ablation must spawn");
    assert!(
        out.status.success(),
        "ablation exited with {:?}: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("ABL-PART"), "missing study header");
}

#[test]
fn criterion_benches_compile() {
    // `cargo bench --no-run` from inside a test: cargo has already released
    // its build lock by the time tests execute, so the nested invocation is
    // safe and hits the shared target-dir cache.
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let out = Command::new(cargo)
        .args(["bench", "--no-run", "-p", "numadag-bench"])
        .output()
        .expect("cargo must spawn");
    assert!(
        out.status.success(),
        "cargo bench --no-run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}
