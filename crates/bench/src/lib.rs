//! # numadag-bench — the benchmark harness
//!
//! Reproduces the paper's evaluation:
//!
//! * the `figure1` binary regenerates Figure 1 (speedup of DFIFO, EP and
//!   RGP+LAS over the LAS baseline on the eight applications, plus the
//!   geometric mean) on the simulated bullion S16;
//! * the `ablation` binary runs the design-choice studies listed in
//!   DESIGN.md (window size, socket count, partitioner quality);
//! * the Criterion benches in `benches/` measure the cost of the runtime
//!   mechanisms themselves (partitioner, TDG construction, policy overhead,
//!   end-to-end simulation).

pub mod harness;

pub use harness::{
    figure1_experiment, jobs_label, paper_reference, parse_jobs, run_figure1, sanitize_label,
    stderr_progress, write_trace_dir, HarnessConfig,
};
