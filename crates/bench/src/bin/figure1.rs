//! Regenerates the paper's Figure 1: speedup of the selected policies over
//! the LAS baseline on eight task-based applications, simulated on an
//! 8-socket × 4-core bullion S16, plus the geometric mean.
//!
//! Usage:
//! ```text
//! cargo run -p numadag-bench --bin figure1 --release -- \
//!     [--scale tiny|small|full] [--policies dfifo,rgp-las:w=512,ep] \
//!     [--backend simulated|threaded] [--reps N] [--seed N] [--json PATH]
//! ```
//!
//! Policies are parsed through the `PolicyKind` registry, so any registered
//! label works, including parameterised RGP variants: window size
//! (`rgp-las:w=512`), partitioning scheme (`rgp-las:scheme=ml|rb|bfs`) and
//! refinement passes (`rgp-las:passes=4`), in any combination — partitioner
//! ablations run through the same sweep as everything else.

use numadag_bench::{paper_reference, run_figure1, HarnessConfig};
use numadag_core::PolicyKind;
use numadag_kernels::ProblemScale;
use numadag_runtime::SweepReport;

fn parse_args() -> (HarnessConfig, Option<String>) {
    let mut config = HarnessConfig::default();
    let mut json_path = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                config.scale = match args.get(i).map(String::as_str) {
                    Some("tiny") => ProblemScale::Tiny,
                    Some("small") => ProblemScale::Small,
                    Some("full") | None => ProblemScale::Full,
                    Some(other) => {
                        eprintln!("unknown scale {other}, using full");
                        ProblemScale::Full
                    }
                };
            }
            "--policies" => {
                i += 1;
                match args.get(i).map(|s| PolicyKind::parse_list(s)) {
                    Some(Ok(kinds)) if !kinds.is_empty() => config.policies = kinds,
                    Some(Err(e)) => {
                        eprintln!("{e}");
                        std::process::exit(2);
                    }
                    _ => eprintln!("--policies needs a comma-separated list, keeping defaults"),
                }
            }
            "--backend" => {
                i += 1;
                match args.get(i).map(|s| s.parse()) {
                    Some(Ok(backend)) => config.backend = backend,
                    Some(Err(e)) => {
                        eprintln!("{e}");
                        std::process::exit(2);
                    }
                    None => eprintln!("--backend needs a value, keeping simulated"),
                }
            }
            "--reps" => {
                i += 1;
                match args.get(i).map(|s| s.parse()) {
                    Some(Ok(reps)) => config.repetitions = reps,
                    _ => {
                        eprintln!("--reps needs a positive integer");
                        std::process::exit(2);
                    }
                }
            }
            "--json" => {
                i += 1;
                json_path = args.get(i).cloned();
            }
            "--seed" => {
                i += 1;
                match args.get(i).map(|s| s.parse()) {
                    Some(Ok(seed)) => config.seed = seed,
                    _ => {
                        eprintln!("--seed needs an unsigned integer");
                        std::process::exit(2);
                    }
                }
            }
            other => eprintln!("ignoring unknown argument {other}"),
        }
        i += 1;
    }
    (config, json_path)
}

fn print_table(report: &SweepReport) {
    let policies = report.policy_labels();

    print!("| {:<22} | {:>6} |", "application", "tasks");
    for p in &policies {
        print!(" {p:>12} |");
    }
    println!(" {:>10} |", "LAS local%");
    print!("|{}|{}|", "-".repeat(24), "-".repeat(8));
    for _ in &policies {
        print!("{}|", "-".repeat(14));
    }
    println!("{}|", "-".repeat(12));

    for app in report.application_labels() {
        let las_cells = report.cells_of(&app, "LAS");
        let tasks = las_cells.first().map_or(0, |c| c.tasks);
        let las_local = las_cells.first().map_or(0.0, |c| c.local_fraction);
        print!("| {app:<22} | {tasks:>6} |");
        for p in &policies {
            match report.speedup_of(&app, p) {
                Some(s) => print!(" {s:>12.3} |"),
                None => print!(" {:>12} |", "n/a"),
            }
        }
        println!(" {:>9.1}% |", 100.0 * las_local);
    }

    print!("| {:<22} | {:>6} |", "Geometric mean", "");
    for p in &policies {
        match report.geomean_of(p) {
            Some(v) => print!(" {v:>12.3} |"),
            None => print!(" {:>12} |", "n/a"),
        }
    }
    println!(" {:>10} |", "");
}

fn main() {
    let (config, json_path) = parse_args();
    println!(
        "# Figure 1 — speedup over LAS on {} ({:?} scale, {} backend)\n",
        config.topology.name(),
        config.scale,
        config.backend.label(),
    );

    let report = run_figure1(&config);
    print_table(&report);

    if !report.skipped.is_empty() {
        println!(
            "\nskipped (policy not applicable): {}",
            report.skipped.join(", ")
        );
    }

    println!("\n## Paper reference points (read off the published Figure 1)\n");
    for (policy, app, value) in paper_reference() {
        println!("  {policy:<8} {app:<22} {value:.2}x");
    }

    println!("\n## Detailed per-policy metrics\n");
    for cell in &report.cells {
        println!(
            "  {:<22} {:<14} makespan={:>14.0} ns  speedup={:>6.3}  local={:>5.1}%  imbalance={:>5.2}  stolen={:>5.1}%",
            cell.application,
            cell.policy,
            cell.makespan_ns,
            cell.speedup_vs_baseline,
            100.0 * cell.local_fraction,
            cell.load_imbalance,
            100.0 * cell.steal_fraction
        );
    }

    if let Some(path) = json_path {
        match std::fs::write(&path, report.to_json_string()) {
            Ok(()) => println!("\nwrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
}
