//! Regenerates the paper's Figure 1: speedup of DFIFO, EP and RGP+LAS over
//! the LAS baseline on eight task-based applications, simulated on an
//! 8-socket × 4-core bullion S16, plus the geometric mean.
//!
//! Usage:
//! ```text
//! cargo run -p numadag-bench --bin figure1 --release [-- --scale tiny|small|full] [--json PATH]
//! ```

use numadag_bench::{geometric_mean_row, paper_reference, run_figure1, HarnessConfig};
use numadag_kernels::ProblemScale;

fn parse_args() -> (HarnessConfig, Option<String>) {
    let mut config = HarnessConfig::default();
    let mut json_path = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                config.scale = match args.get(i).map(String::as_str) {
                    Some("tiny") => ProblemScale::Tiny,
                    Some("small") => ProblemScale::Small,
                    Some("full") | None => ProblemScale::Full,
                    Some(other) => {
                        eprintln!("unknown scale {other}, using full");
                        ProblemScale::Full
                    }
                };
            }
            "--json" => {
                i += 1;
                json_path = args.get(i).cloned();
            }
            "--seed" => {
                i += 1;
                if let Some(seed) = args.get(i).and_then(|s| s.parse().ok()) {
                    config.seed = seed;
                }
            }
            other => eprintln!("ignoring unknown argument {other}"),
        }
        i += 1;
    }
    (config, json_path)
}

fn main() {
    let (config, json_path) = parse_args();
    println!(
        "# Figure 1 — speedup over LAS on {} ({:?} scale)\n",
        config.topology.name(),
        config.scale
    );

    let rows = run_figure1(&config);
    let policies = ["DFIFO", "RGP+LAS", "EP", "LAS"];

    println!(
        "| {:<22} | {:>6} | {:>8} | {:>8} | {:>8} | {:>8} | {:>10} |",
        "application", "tasks", "DFIFO", "RGP+LAS", "EP", "LAS", "LAS local%"
    );
    println!(
        "|{}|{}|{}|{}|{}|{}|{}|",
        "-".repeat(24),
        "-".repeat(8),
        "-".repeat(10),
        "-".repeat(10),
        "-".repeat(10),
        "-".repeat(10),
        "-".repeat(12)
    );
    for row in &rows {
        print!("| {:<22} | {:>6} |", row.application, row.tasks);
        for p in &policies {
            match row.speedup_of(p) {
                Some(s) => print!(" {s:>8.3} |"),
                None => print!(" {:>8} |", "n/a"),
            }
        }
        println!(" {:>9.1}% |", 100.0 * row.las_local_fraction);
    }

    let gm = geometric_mean_row(&rows);
    print!("| {:<22} | {:>6} |", "Geometric mean", "");
    for p in &policies {
        match gm.iter().find(|(label, _)| label == p) {
            Some((_, v)) => print!(" {v:>8.3} |"),
            None => print!(" {:>8} |", "n/a"),
        }
    }
    println!(" {:>10} |", "");

    println!("\n## Paper reference points (read off the published Figure 1)\n");
    for (policy, app, value) in paper_reference() {
        println!("  {policy:<8} {app:<22} {value:.2}x");
    }

    println!("\n## Detailed per-policy metrics\n");
    for row in &rows {
        for r in &row.results {
            println!(
                "  {:<22} {:<8} makespan={:>14.0} ns  speedup={:>6.3}  local={:>5.1}%  imbalance={:>5.2}  stolen={:>5.1}%",
                row.application,
                r.policy,
                r.makespan_ns,
                r.speedup_vs_las,
                100.0 * r.local_fraction,
                r.load_imbalance,
                100.0 * r.steal_fraction
            );
        }
    }

    if let Some(path) = json_path {
        let payload = serde_json::json!({
            "machine": config.topology.name(),
            "scale": format!("{:?}", config.scale),
            "rows": rows,
            "geometric_mean": gm.iter().map(|(l, v)| (l.clone(), v)).collect::<Vec<_>>(),
        });
        match std::fs::write(&path, serde_json::to_string_pretty(&payload).unwrap()) {
            Ok(()) => println!("\nwrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
}
