//! Regenerates the paper's Figure 1: speedup of the selected policies over
//! the LAS baseline on eight task-based applications, simulated on an
//! 8-socket × 4-core bullion S16, plus the geometric mean.
//!
//! Usage:
//! ```text
//! cargo run -p numadag-bench --bin figure1 --release -- \
//!     [--scale tiny|small|full] [--policies dfifo,rgp-las:w=512,ep] \
//!     [--backend simulated|threaded|proc[:w=N]] [--jobs N] [--reps N] [--seed N] \
//!     [--json PATH] [--json-timing PATH] [--trace-dir DIR]
//! ```
//!
//! `--backend proc` runs every cell in worker *processes* (the
//! `numadag-proc` coordinator; `proc:w=N` picks the pool size, default 2).
//! Workers execute the same deterministic simulator, so the measurement
//! report is byte-identical to `--backend simulated` — the pool's dispatch
//! counters are printed after the sweep.
//!
//! Policies are parsed through the `PolicyKind` registry, so any registered
//! label works, including parameterised RGP variants: window size
//! (`rgp-las:w=512`), partitioning scheme (`rgp-las:scheme=ml|rb|bfs`) and
//! refinement passes (`rgp-las:passes=4`), in any combination — partitioner
//! ablations run through the same sweep as everything else.
//!
//! `--jobs N` shards the sweep's cells across N worker threads (0 = one per
//! core); on the simulator backend the report is bit-identical for every
//! value. Per-cell progress goes to stderr, keeping stdout tables and the
//! JSON exports clean. `--json` writes the byte-stable measurement report
//! (the `BENCH_*.json` baseline format); `--json-timing` additionally
//! includes the wall-time/spec-build accounting, which varies run to run.
//!
//! `--trace-dir DIR` records a full execution trace for every cell (policy
//! assign decisions, task start/finish with socket and timestamp, steals,
//! deferred placements, per-access traffic with NUMA distance) and writes
//! one pretty-printed `<app>_<scale>_<policy>_rep<N>.trace.json` per cell
//! into DIR — the input to the `numadag-trace` analytics and the
//! `ablation trace` divergence reports. Tracing never changes the
//! measurements on the simulator backend.
//!
//! Malformed arguments (unknown scale, unknown flag, non-integer `--jobs`/
//! `--reps`/`--seed`, …) are hard errors with exit code 2.

use std::sync::Arc;

use numadag_bench::{
    figure1_experiment, paper_reference, stderr_progress, write_trace_dir, HarnessConfig,
};
use numadag_core::PolicyKind;
use numadag_kernels::ProblemScale;
use numadag_runtime::{Backend, SweepReport};
use numadag_trace::TraceCollector;

/// Prints a CLI usage error and exits with code 2.
fn usage_error(message: String) -> ! {
    eprintln!("error: {message}");
    eprintln!(
        "usage: figure1 [--scale tiny|small|full] [--policies LIST] \
         [--backend simulated|threaded|proc[:w=N]] [--jobs N] [--reps N] [--seed N] \
         [--json PATH] [--json-timing PATH] [--trace-dir DIR]"
    );
    std::process::exit(2);
}

/// The value of flag `args[i]`, or a usage error naming the flag.
fn flag_value(args: &[String], i: usize) -> &str {
    match args.get(i + 1) {
        Some(value) => value,
        None => usage_error(format!("{} needs a value", args[i])),
    }
}

fn parse_args() -> (
    HarnessConfig,
    Option<String>,
    Option<String>,
    Option<String>,
) {
    let mut config = HarnessConfig::default();
    let mut json_path = None;
    let mut json_timing_path = None;
    let mut trace_dir = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                config.scale = match flag_value(&args, i) {
                    "tiny" => ProblemScale::Tiny,
                    "small" => ProblemScale::Small,
                    "full" => ProblemScale::Full,
                    other => usage_error(format!(
                        "unknown scale {other:?} (expected tiny, small or full)"
                    )),
                };
            }
            "--policies" => match PolicyKind::parse_list(flag_value(&args, i)) {
                Ok(kinds) if !kinds.is_empty() => config.policies = kinds,
                Ok(_) => usage_error("--policies needs a non-empty list".to_string()),
                Err(e) => usage_error(e.to_string()),
            },
            "--backend" => match flag_value(&args, i).parse() {
                Ok(backend) => config.backend = backend,
                Err(e) => usage_error(e),
            },
            "--jobs" => match numadag_bench::parse_jobs(flag_value(&args, i)) {
                Ok(jobs) => config.jobs = jobs,
                Err(e) => usage_error(e),
            },
            "--reps" => match flag_value(&args, i).parse() {
                Ok(reps) if reps > 0 => config.repetitions = reps,
                _ => usage_error(format!(
                    "--reps needs a positive integer, got {:?}",
                    flag_value(&args, i)
                )),
            },
            "--seed" => match flag_value(&args, i).parse() {
                Ok(seed) => config.seed = seed,
                Err(_) => usage_error(format!(
                    "--seed needs an unsigned integer, got {:?}",
                    flag_value(&args, i)
                )),
            },
            "--json" => json_path = Some(flag_value(&args, i).to_string()),
            "--json-timing" => json_timing_path = Some(flag_value(&args, i).to_string()),
            "--trace-dir" => trace_dir = Some(flag_value(&args, i).to_string()),
            other => usage_error(format!("unknown argument {other:?}")),
        }
        i += 2;
    }
    (config, json_path, json_timing_path, trace_dir)
}

fn print_table(report: &SweepReport) {
    let policies = report.policy_labels();

    print!("| {:<22} | {:>6} |", "application", "tasks");
    for p in &policies {
        print!(" {p:>12} |");
    }
    println!(" {:>10} |", "LAS local%");
    print!("|{}|{}|", "-".repeat(24), "-".repeat(8));
    for _ in &policies {
        print!("{}|", "-".repeat(14));
    }
    println!("{}|", "-".repeat(12));

    for app in report.application_labels() {
        let las_cells = report.cells_of(&app, "LAS");
        let tasks = las_cells.first().map_or(0, |c| c.tasks);
        let las_local = las_cells.first().map_or(0.0, |c| c.local_fraction);
        print!("| {app:<22} | {tasks:>6} |");
        for p in &policies {
            match report.speedup_of(&app, p) {
                Some(s) => print!(" {s:>12.3} |"),
                None => print!(" {:>12} |", "n/a"),
            }
        }
        println!(" {:>9.1}% |", 100.0 * las_local);
    }

    print!("| {:<22} | {:>6} |", "Geometric mean", "");
    for p in &policies {
        match report.geomean_of(p) {
            Some(v) => print!(" {v:>12.3} |"),
            None => print!(" {:>12} |", "n/a"),
        }
    }
    println!(" {:>10} |", "");
}

fn main() {
    // If this process was re-exec'd by a proc-backend worker pool, become
    // the worker (never returns in that case).
    numadag_proc::maybe_run_worker();
    numadag_proc::install();
    let (config, json_path, json_timing_path, trace_dir) = parse_args();
    // Spawn (and hold) the worker pool up front so it outlives the sweep's
    // executors and its stats can be reported after the run.
    let proc_pool = match config.backend {
        Backend::Proc { workers } => {
            match numadag_proc::shared_pool(numadag_proc::PoolConfig::new(workers)) {
                Ok(pool) => Some(pool),
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                }
            }
        }
        _ => None,
    };
    if config.backend == Backend::Threaded && config.jobs != 1 {
        eprintln!(
            "warning: --jobs {} with the threaded backend runs that many thread \
             pools concurrently; wall-clock makespans will contend for CPUs and \
             come out inflated — measure the threaded backend with --jobs 1",
            config.jobs
        );
    }
    println!(
        "# Figure 1 — speedup over LAS on {} ({:?} scale, {} backend, {} jobs)\n",
        config.topology.name(),
        config.scale,
        config.backend.label(),
        numadag_bench::jobs_label(config.jobs),
    );

    let collector = trace_dir.as_ref().map(|_| Arc::new(TraceCollector::new()));
    let mut experiment = figure1_experiment(&config)
        .on_cell_complete(stderr_progress)
        .stage_timing(json_timing_path.is_some());
    if let Some(collector) = &collector {
        experiment = experiment.trace(Arc::clone(collector));
    }
    let report = experiment.run();
    print_table(&report);

    if !report.skipped.is_empty() {
        println!(
            "\nskipped (policy not applicable): {}",
            report.skipped.join(", ")
        );
    }

    println!("\n## Paper reference points (read off the published Figure 1)\n");
    for (policy, app, value) in paper_reference() {
        println!("  {policy:<8} {app:<22} {value:.2}x");
    }

    println!("\n## Detailed per-policy metrics\n");
    for cell in &report.cells {
        println!(
            "  {:<22} {:<14} makespan={:>14.0} ns  speedup={:>6.3}  local={:>5.1}%  imbalance={:>5.2}  stolen={:>5.1}%",
            cell.application,
            cell.policy,
            cell.makespan_ns,
            cell.speedup_vs_baseline,
            100.0 * cell.local_fraction,
            cell.load_imbalance,
            100.0 * cell.steal_fraction
        );
    }

    if let Some(pool) = &proc_pool {
        println!("\n## Proc backend pool\n\n  {}", pool.stats());
    }

    println!(
        "\n## Sweep accounting\n\n  total {:.1} ms wall ({} jobs) | cells {:.1} ms | \
         spec builds {} ({:.1} ms, {} cache hits)",
        report.timing.total_wall_ns / 1e6,
        report.timing.jobs,
        report.timing.run_wall_ns / 1e6,
        report.timing.spec_builds,
        report.timing.build_wall_ns / 1e6,
        report.timing.spec_cache_hits,
    );

    if let Some(path) = json_path {
        match std::fs::write(&path, report.to_json_string()) {
            Ok(()) => println!("\nwrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
    if let Some(path) = json_timing_path {
        match std::fs::write(&path, report.to_json_string_with_timing()) {
            Ok(()) => println!("\nwrote {path} (with timing)"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
    if let (Some(dir), Some(collector)) = (trace_dir, collector) {
        let traces = collector.take();
        match write_trace_dir(std::path::Path::new(&dir), &traces) {
            Ok(n) => println!("\nwrote {n} execution traces to {dir}"),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }
}
