//! Design-choice ablations (DESIGN.md: ABL-WIN, ABL-SOCK, ABL-PART), the
//! `trace` divergence study and the `bench-diff` baseline comparator.
//!
//! Usage:
//! ```text
//! cargo run -p numadag-bench --bin ablation --release -- \
//!     [window|sockets|partitioner|propagation|all] [--jobs N] \
//!     [--backend simulated|threaded|proc[:w=N]]
//! cargo run -p numadag-bench --bin ablation --release -- \
//!     trace [--scale tiny|small|full] [--jobs N]
//! cargo run -p numadag-bench --bin ablation --release -- \
//!     bench-diff BASELINE.json CANDIDATE.json
//! cargo run -p numadag-bench --bin ablation --release -- \
//!     hotpath-diff BASELINE.json CANDIDATE.json [--tolerance FRACTION]
//! cargo run -p numadag-bench --bin ablation --release -- \
//!     serve-load [--clients N] [--requests N] [--repeat-ratio PCT] \
//!     [--pool N] [--json PATH]
//! ```
//!
//! All three ablations are expressed as [`Experiment`] sweeps: the window
//! study is one sweep whose policy axis is RGP+LAS at increasing window
//! sizes (`rgp-las:w=N` registry labels), the socket study is one Figure-1
//! sweep per machine size, and the partitioner study is one sweep whose
//! policy axis is RGP+LAS under each partitioning scheme
//! (`rgp-las:scheme=ml|rb|bfs` registry labels) — every ablation therefore
//! lands in the same `SweepReport` shape. The partitioner study additionally
//! prints the raw window-cut comparison underlying the speedups. `--jobs N`
//! shards every study's cells across N worker threads (0 = one per core);
//! the studies share one `SpecCache`, so each workload spec is built once
//! across all of them.
//!
//! `trace` runs the apps whose Figure-1 numbers diverge the most from the
//! paper (Integral histogram, Symm. mat. inv., NStream) under RGP+LAS,
//! anchored repartitioning (`rgp-las:prop=repart`) and LAS with full
//! execution tracing, then prints two per-app divergence reports from the
//! `numadag-trace` comparison: one-shot RGP+LAS vs the LAS baseline, and
//! repartitioning vs one-shot RGP+LAS (the before/after evidence for the
//! re-anchored Figure-1 deltas) — each with makespan and critical-path
//! composition side by side, the tasks where the first policy loses the
//! most time, and the regions whose traffic went farthest. `--scale`
//! (trace only) picks the problem scale, default small.
//!
//! `bench-diff` loads two `BENCH_*.json` sweep reports and prints the
//! per-cell measurement deltas (timing sections are ignored), exiting 0
//! when the reports are measurement-identical and 1 when they differ — so
//! "regenerate and diff the baseline" is one command instead of a jq
//! exercise. Malformed arguments exit with code 2.
//!
//! `hotpath-diff` compares two `BENCH_hotpath.json` exports (written by the
//! `hotpath` criterion suite under `NUMADAG_CRITERION_JSON`): every
//! benchmark in the baseline must be present in the candidate with a median
//! no more than `--tolerance` (default 0.25, i.e. 25%) slower. Faster is
//! always fine — the gate is one-sided — and candidate-only benchmarks are
//! reported but never fail, so the suite can grow without breaking older
//! baselines. Exits 1 on regression, 2 on malformed input.
//!
//! `serve-load` is the load generator for the sweep service
//! (`numadag-serve`): it boots an in-process daemon with `--pool` worker
//! threads, drives it from `--clients` concurrent TCP clients issuing
//! `--requests` sweeps each — `--repeat-ratio` percent aimed at the hot
//! all-apps sweep, the rest drawn from a deterministic per-client LCG over
//! *overlapping* shapes (a policy superset, app subsets, a reps=2 variant
//! and per-app singles of the hot sweep), so the cell cache's cross-shape
//! sharing is on the measured path — and reports throughput, p50/p90/p99
//! submit latency and both cache's effectiveness (`--json PATH` writes the
//! `BENCH_serve_load.json` shape). `--jobs N` is accepted as a deprecated
//! alias of `--pool N`.

use std::sync::Arc;

use numadag_bench::stderr_progress;
use numadag_core::{PolicyKind, Propagation, RgpTuning};
use numadag_graph::{partition, PartitionConfig, PartitionScheme};
use numadag_kernels::{Application, ProblemScale, SpecCache};
use numadag_numa::Topology;
use numadag_runtime::{Backend, Experiment, SweepReport};
use numadag_tdg::{window_to_csr, TaskWindow, WindowConfig};
use numadag_trace::TraceCollector;

const SCALE: ProblemScale = ProblemScale::Small;
const SEED: u64 = 0xAB1A7E;

/// How every study runs: backend, worker count, and the spec cache they
/// share.
struct StudyConfig {
    jobs: usize,
    backend: Backend,
    specs: Arc<SpecCache>,
}

impl StudyConfig {
    /// An experiment pre-wired with this study configuration.
    fn experiment(&self) -> Experiment {
        Experiment::new()
            .seed(SEED)
            .backend(self.backend)
            .parallelism(self.jobs)
            .spec_cache(Arc::clone(&self.specs))
            .on_cell_complete(stderr_progress)
    }
}

/// ABL-WIN: RGP+LAS speedup over LAS as a function of the window size.
fn window_ablation(study: &StudyConfig) {
    println!("\n# ABL-WIN — RGP+LAS speedup over LAS vs window size ({SCALE:?} scale)\n");
    let apps = [
        Application::Jacobi,
        Application::QrFactorization,
        Application::SymmetricMatrixInversion,
    ];
    let window_sizes = [64usize, 128, 256, 512, 1024, 2048, 4096];
    let report = study
        .experiment()
        .apps(apps)
        .scale(SCALE)
        .policies(window_sizes.map(PolicyKind::rgp_las_window))
        .run();

    print!("| {:<22} |", "application");
    for w in window_sizes {
        print!(" {w:>6} |");
    }
    println!();
    for app in apps {
        print!("| {:<22} |", app.label());
        for w in window_sizes {
            let label = PolicyKind::rgp_las_window(w).label();
            let s = report.speedup_of(app.label(), &label).unwrap_or(f64::NAN);
            print!(" {s:>6.3} |");
        }
        println!();
    }
}

/// ABL-SOCK: the gap between the policies as the socket count grows.
fn socket_ablation(study: &StudyConfig) {
    println!("\n# ABL-SOCK — geometric-mean speedup over LAS vs socket count ({SCALE:?} scale)\n");
    println!("| sockets | DFIFO | RGP+LAS | EP |");
    for sockets in [2usize, 4, 8, 16] {
        let report = study
            .experiment()
            .topology(Topology::symmetric(sockets, 4))
            .apps(Application::all())
            .scale(SCALE)
            .policies([PolicyKind::Dfifo, PolicyKind::RgpLas, PolicyKind::Ep])
            .run();
        print!("| {sockets:>7} |");
        for label in ["DFIFO", "RGP+LAS", "EP"] {
            print!(" {:>5.3} |", report.geomean_of(label).unwrap_or(f64::NAN));
        }
        println!();
    }
}

/// ABL-PART: the end-to-end effect of the window partitioner — RGP+LAS
/// speedup over LAS under each partitioning scheme, as one `Experiment`
/// sweep (each `rgp-las:scheme=…` spelling is its own report column) —
/// followed by the raw window-cut comparison that explains the speedups.
fn partitioner_ablation(study: &StudyConfig) {
    let apps = [
        Application::Jacobi,
        Application::QrFactorization,
        Application::ConjugateGradient,
        Application::IntegralHistogram,
    ];
    let schemes = PartitionScheme::all();

    println!("\n# ABL-PART — RGP+LAS speedup over LAS per partitioning scheme ({SCALE:?} scale)\n");
    let report = study
        .experiment()
        .apps(apps)
        .scale(SCALE)
        .policies(schemes.map(|s| PolicyKind::rgp_las(RgpTuning::default().with_scheme(s))))
        .run();
    print!("| {:<22} |", "application");
    for scheme in schemes {
        print!(" {:>10} |", format!("scheme={}", scheme.token()));
    }
    println!();
    for app in apps {
        print!("| {:<22} |", app.label());
        for scheme in schemes {
            let label = PolicyKind::rgp_las(RgpTuning::default().with_scheme(scheme)).label();
            let s = report.speedup_of(app.label(), &label).unwrap_or(f64::NAN);
            print!(" {s:>10.3} |");
        }
        println!();
    }
    print!("| {:<22} |", "geometric mean");
    for scheme in schemes {
        let label = PolicyKind::rgp_las(RgpTuning::default().with_scheme(scheme)).label();
        print!(" {:>10.3} |", report.geomean_of(&label).unwrap_or(f64::NAN));
    }
    println!();

    println!("\n## Window cut quality — multilevel k-way vs naive BFS growing\n");
    let topo = Topology::bullion_s16();
    let k = topo.num_sockets();
    println!(
        "| {:<22} | {:>14} | {:>14} | {:>8} |",
        "application", "ML cut (bytes)", "BFS cut (bytes)", "ratio"
    );
    for app in apps {
        let spec = study.specs.get(app, SCALE, k);
        let window = TaskWindow::initial(&spec.graph, WindowConfig::new(1024));
        let wg = window_to_csr(&spec.graph, &window);
        let ml = partition(&wg.graph, &PartitionConfig::new(k).with_seed(SEED));
        let naive = partition(
            &wg.graph,
            &PartitionConfig::new(k)
                .with_seed(SEED)
                .with_scheme(PartitionScheme::BfsGrowing),
        );
        let ml_cut = ml.edge_cut(&wg.graph);
        let naive_cut = naive.edge_cut(&wg.graph);
        println!(
            "| {:<22} | {:>14} | {:>14} | {:>8.2} |",
            app.label(),
            ml_cut,
            naive_cut,
            naive_cut as f64 / ml_cut.max(1) as f64
        );
    }
}

/// ABL-PROP: what propagating the partition forward buys — RGP speedup
/// over LAS for one-shot windowing (`prop=las`), round-robin propagation
/// (`prop=rr`) and anchored multi-window re-partitioning (`prop=repart`)
/// under each anchoring mode, plus the partitioning cost each variant paid
/// (windows partitioned and partitioner wall time, from the sweep's timing
/// section).
fn propagation_ablation(study: &StudyConfig) {
    use numadag_core::{AnchorMode, Propagation};
    let apps = [
        Application::Jacobi,
        Application::NStream,
        Application::IntegralHistogram,
        Application::SymmetricMatrixInversion,
    ];
    let anchors = [
        AnchorMode::None,
        AnchorMode::Deps,
        AnchorMode::Homes,
        AnchorMode::Both,
    ];
    // A window well below the Small-scale task counts, so every variant
    // actually has multiple windows to propagate across (the 1024 default
    // covers these apps whole, which would reduce the study to the
    // window-0 partition).
    let w = 256usize;
    let mut policies = vec![
        PolicyKind::rgp_las(RgpTuning::default().with_window(w)),
        PolicyKind::rgp_rr(RgpTuning::default().with_window(w)),
    ];
    policies.extend(anchors.iter().map(|&a| {
        PolicyKind::rgp_las(
            RgpTuning::default()
                .with_window(w)
                .with_prop(Propagation::Repartition)
                .with_anchor(a),
        )
    }));

    println!("\n# ABL-PROP — RGP speedup over LAS per propagation mode ({SCALE:?} scale, w={w})\n");
    let report = study
        .experiment()
        .apps(apps)
        .scale(SCALE)
        .policies(policies.clone())
        .run();
    print!("| {:<22} |", "application");
    for kind in &policies {
        let short = kind
            .label()
            .replace(&format!("RGP+LAS:w={w},prop=repart,"), "repart:")
            .replace(&format!("RGP+LAS:w={w}"), "one-shot")
            .replace(&format!("RGP+RR:w={w}"), "rr");
        print!(" {short:>12} |");
    }
    println!();
    for app in apps {
        print!("| {:<22} |", app.label());
        for kind in &policies {
            let s = report
                .speedup_of(app.label(), &kind.label())
                .unwrap_or(f64::NAN);
            print!(" {s:>12.3} |");
        }
        println!();
    }
    print!("| {:<22} |", "geometric mean");
    for kind in &policies {
        print!(
            " {:>12.3} |",
            report.geomean_of(&kind.label()).unwrap_or(f64::NAN)
        );
    }
    println!();

    println!("\n## Partitioning cost per propagation mode (mean over cells)\n");
    println!(
        "| {:<28} | {:>8} | {:>12} |",
        "policy", "windows", "wall (ms)"
    );
    for kind in &policies {
        let label = kind.label();
        let mut windows = 0usize;
        let mut wall_ns = 0.0f64;
        let mut n = 0usize;
        for (i, cell) in report.cells.iter().enumerate() {
            if cell.policy == label {
                windows += report.timing.cell_partition_windows[i];
                wall_ns += report.timing.cell_partition_wall_ns[i];
                n += 1;
            }
        }
        if n == 0 {
            continue;
        }
        println!(
            "| {:<28} | {:>8.1} | {:>12.3} |",
            label,
            windows as f64 / n as f64,
            wall_ns / n as f64 / 1e6
        );
    }
}

/// ABL-TRACE: trace the divergent Figure-1 apps under RGP+LAS and LAS, and
/// report per app where RGP+LAS wins or loses time — the tasks whose
/// durations moved the most, the regions whose traffic went farthest, and
/// how the two critical paths decompose into dependence-bound vs
/// core-busy time.
fn trace_study(study: &StudyConfig, scale: ProblemScale) {
    println!("\n# ABL-TRACE — RGP+LAS vs LAS execution-trace divergence ({scale:?} scale)\n");
    let apps = [
        Application::IntegralHistogram,
        Application::SymmetricMatrixInversion,
        Application::NStream,
    ];
    // One explicit topology for both the traced sweep and the spec lookup,
    // so the SpecCache key always matches the graph the traces ran.
    let topology = Topology::bullion_s16();
    let collector = Arc::new(TraceCollector::new());
    let repart = PolicyKind::RgpLasTuned(RgpTuning::default().with_prop(Propagation::Repartition));
    let repart_label = repart.label();
    study
        .experiment()
        .topology(topology.clone())
        .apps(apps)
        .scale(scale)
        .policies([PolicyKind::RgpLas, repart])
        .trace(Arc::clone(&collector))
        .run();

    for app in apps {
        let rgp = collector
            .find(app.label(), "RGP+LAS")
            .expect("RGP+LAS trace collected");
        let las = collector
            .find(app.label(), "LAS")
            .expect("LAS trace collected");
        let spec = study.specs.get(app, scale, topology.num_sockets());
        let comparison = rgp
            .compare(&las, &spec.graph)
            .expect("traces of the same workload are comparable");
        println!("{comparison}");
        let (rgp_locality, las_locality) = (
            rgp.locality_histogram(10).mean,
            las.locality_histogram(10).mean,
        );
        println!(
            "  mean per-task locality: {:.1}% vs {:.1}%; max queue depth {} vs {}\n",
            100.0 * rgp_locality,
            100.0 * las_locality,
            rgp.queue_depth_timeline()
                .max_depth
                .iter()
                .max()
                .copied()
                .unwrap_or(0),
            las.queue_depth_timeline()
                .max_depth
                .iter()
                .max()
                .copied()
                .unwrap_or(0),
        );

        // Before/after the propagation refactor: the same app under anchored
        // multi-window repartitioning vs the one-shot RGP+LAS above. This is
        // the evidence trail for the re-anchored Figure-1 deltas.
        let repart_trace = collector
            .find(app.label(), &repart_label)
            .expect("repartition trace collected");
        let delta = repart_trace
            .compare(&rgp, &spec.graph)
            .expect("traces of the same workload are comparable");
        println!("{delta}");
        println!(
            "  mean per-task locality: {:.1}% vs {:.1}%\n",
            100.0 * repart_trace.locality_histogram(10).mean,
            100.0 * rgp.locality_histogram(10).mean,
        );
    }
}

/// Prints a CLI usage error and exits with code 2.
fn usage_error(message: String) -> ! {
    eprintln!("error: {message}");
    eprintln!(
        "usage: ablation [window|sockets|partitioner|propagation|all] [--jobs N] \
         [--backend simulated|threaded|proc[:w=N]]\n\
         \u{20}      ablation trace [--scale tiny|small|full] [--jobs N]\n\
         \u{20}      ablation bench-diff BASELINE.json CANDIDATE.json\n\
         \u{20}      ablation hotpath-diff BASELINE.json CANDIDATE.json          [--tolerance FRACTION]\n\
         \u{20}      ablation serve-load [--clients N] [--requests N] \
         [--repeat-ratio PCT] [--pool N] [--json PATH]"
    );
    std::process::exit(2);
}

/// `serve-load`: load-generates the sweep service and reports throughput,
/// latency percentiles and cache effectiveness.
fn serve_load(args: &[String]) -> ! {
    use numadag_serve::client::ServeClient;
    use numadag_serve::protocol::{SweepSpec, DEFAULT_POLICIES};
    use numadag_serve::server::{serve, ServeConfig};

    let mut clients = 4usize;
    let mut requests = 25usize;
    let mut repeat_pct = 50u64;
    let mut pool_workers = 1usize;
    let mut json_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> &str {
            args.get(i + 1)
                .unwrap_or_else(|| usage_error(format!("{} needs a value", args[i])))
        };
        match args[i].as_str() {
            "--clients" => match value(i).parse() {
                Ok(n) if n > 0 => clients = n,
                _ => usage_error(format!(
                    "--clients needs a positive integer, got {:?}",
                    value(i)
                )),
            },
            "--requests" => match value(i).parse() {
                Ok(n) if n > 0 => requests = n,
                _ => usage_error(format!(
                    "--requests needs a positive integer, got {:?}",
                    value(i)
                )),
            },
            "--repeat-ratio" => match value(i).parse() {
                Ok(pct) if pct <= 100 => repeat_pct = pct,
                _ => usage_error(format!("--repeat-ratio needs 0..=100, got {:?}", value(i))),
            },
            // --jobs is the pre-pool spelling; kept as an alias so older
            // scripts keep working.
            "--pool" | "--jobs" => match value(i).parse() {
                Ok(n) if n > 0 => pool_workers = n,
                _ => usage_error(format!(
                    "--pool needs a positive integer, got {:?}",
                    value(i)
                )),
            },
            "--json" => json_path = Some(value(i).to_string()),
            other => usage_error(format!("unknown argument {other:?}")),
        }
        i += 2;
    }

    // The request mix: the hot all-apps sweep (the repeat-ratio target)
    // plus cold sweeps that *overlap* it — a policy superset, app subsets,
    // a reps=2 variant and per-app singles — so the cell cache's
    // cross-shape sharing, not just whole-report repeats, carries load.
    let hot = SweepSpec::default();
    let mut cold: Vec<SweepSpec> = vec![
        SweepSpec {
            policies: format!("{DEFAULT_POLICIES},rgp-las:prop=repart"),
            ..SweepSpec::default()
        },
        SweepSpec {
            apps: "jacobi,nstream".to_string(),
            ..SweepSpec::default()
        },
        SweepSpec {
            apps: "jacobi,qr,ih,cg".to_string(),
            ..SweepSpec::default()
        },
        SweepSpec {
            reps: 2,
            ..SweepSpec::default()
        },
    ];
    cold.extend(Application::all().iter().map(|app| SweepSpec {
        apps: app.label().to_string(),
        ..SweepSpec::default()
    }));

    let handle = serve(ServeConfig {
        pool: pool_workers,
        ..ServeConfig::default()
    })
    .unwrap_or_else(|e| usage_error(format!("could not start the daemon: {e}")));
    let addr = handle.addr().to_string();
    eprintln!(
        "serve-load: {clients} clients x {requests} requests, {repeat_pct}% repeats, \
         pool={pool_workers}, daemon at {addr}"
    );

    let started = std::time::Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            let addr = addr.clone();
            let hot = hot.clone();
            let cold = cold.clone();
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(&addr).expect("connect to daemon");
                // Deterministic per-client LCG (MMIX constants) so runs are
                // reproducible; the measured latencies are the only
                // run-to-run variance.
                let mut state = 0x9E37_79B9_7F4A_7C15u64 ^ (c as u64 + 1);
                let mut next = move || {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    state >> 33
                };
                let mut latencies_ns = Vec::with_capacity(requests);
                let mut hits = 0u64;
                for _ in 0..requests {
                    let spec = if next() % 100 < repeat_pct {
                        hot.clone()
                    } else {
                        cold[next() as usize % cold.len()].clone()
                    };
                    let begin = std::time::Instant::now();
                    let outcome = client.submit(spec, false, |_| ()).expect("submit sweep");
                    latencies_ns.push(begin.elapsed().as_nanos() as u64);
                    if outcome.cache_hit {
                        hits += 1;
                    }
                }
                (latencies_ns, hits)
            })
        })
        .collect();

    let mut latencies_ns: Vec<u64> = Vec::with_capacity(clients * requests);
    let mut client_hits = 0u64;
    for worker in workers {
        let (lat, hits) = worker.join().expect("load client panicked");
        latencies_ns.extend(lat);
        client_hits += hits;
    }
    let wall = started.elapsed();

    let mut stats_client = ServeClient::connect(&addr).expect("connect to daemon");
    let stats = stats_client.stats().expect("fetch stats");
    handle.shutdown();
    handle.join();

    latencies_ns.sort_unstable();
    let total = latencies_ns.len();
    let pct = |p: f64| -> f64 {
        let idx = ((p / 100.0) * (total - 1) as f64).round() as usize;
        latencies_ns[idx] as f64 / 1e6
    };
    let mean_ms = latencies_ns.iter().sum::<u64>() as f64 / total as f64 / 1e6;
    let wall_ms = wall.as_secs_f64() * 1e3;
    let throughput = total as f64 / wall.as_secs_f64();
    let served = stats.report_cache_hits + stats.jobs_coalesced;
    let hit_rate = served as f64 / total as f64;

    println!("\n# serve-load — {total} requests in {wall_ms:.1} ms\n");
    println!("| metric | value |");
    println!("| throughput (req/s) | {throughput:.1} |");
    println!(
        "| latency p50/p90/p99 (ms) | {:.3} / {:.3} / {:.3} |",
        pct(50.0),
        pct(90.0),
        pct(99.0)
    );
    println!(
        "| latency mean/max (ms) | {mean_ms:.3} / {:.3} |",
        pct(100.0)
    );
    println!(
        "| sweeps executed / served without executing | {} / {served} |",
        stats.jobs_submitted
    );
    println!(
        "| cache hit rate | {:.1}% ({client_hits} direct hits, {} coalesced) |",
        100.0 * hit_rate,
        stats.jobs_coalesced
    );
    println!(
        "| executed cells / hydrated from the cell cache | {} / {} |",
        stats.executed_cells_total, stats.cells_hydrated_total
    );
    println!(
        "| cell-cache entries / hits | {} / {} |",
        stats.cell_cache_entries, stats.cell_cache_hits
    );
    println!(
        "| pool workers / spec-cache builds | {} / {} |",
        stats.pool_workers, stats.spec_cache_builds
    );

    if let Some(path) = json_path {
        use serde::Serialize;
        use serde_json::json;
        let value = json!({
            "bench": "serve_load",
            "clients": clients as u64,
            "requests_per_client": requests as u64,
            "repeat_ratio_pct": repeat_pct,
            "pool_workers": pool_workers as u64,
            "total_requests": total as u64,
            "wall_ms": wall_ms,
            "throughput_rps": throughput,
            "latency_ms": json!({
                "p50": pct(50.0),
                "p90": pct(90.0),
                "p99": pct(99.0),
                "mean": mean_ms,
                "max": pct(100.0),
            }),
            "cache": json!({
                "hit_rate": hit_rate,
                "report_cache_hits": stats.report_cache_hits,
                "jobs_coalesced": stats.jobs_coalesced,
                "jobs_submitted": stats.jobs_submitted,
                "report_cache_evictions": stats.report_cache_evictions,
                "executed_cells_total": stats.executed_cells_total,
                "cells_hydrated_total": stats.cells_hydrated_total,
                "cell_cache_entries": stats.cell_cache_entries,
                "cell_cache_hits": stats.cell_cache_hits,
                "cell_cache_misses": stats.cell_cache_misses,
                "spec_cache_builds": stats.spec_cache_builds,
                "spec_cache_hits": stats.spec_cache_hits,
            }),
        });
        let text = serde_json::to_string_pretty(&value.to_value())
            .expect("bench values are always encodable");
        std::fs::write(&path, text)
            .unwrap_or_else(|e| usage_error(format!("cannot write {path}: {e}")));
        eprintln!("serve-load: wrote {path}");
    }
    std::process::exit(0);
}

/// Loads a sweep report from a `BENCH_*.json` file, exiting 2 on failure.
fn load_report(path: &str) -> SweepReport {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| usage_error(format!("cannot read {path}: {e}")));
    SweepReport::from_json_str(&text)
        .unwrap_or_else(|e| usage_error(format!("cannot parse {path}: {e}")))
}

/// Loads a `BENCH_hotpath.json`-format export as `(id, median_ns)` pairs,
/// exiting 2 on failure.
fn load_hotpath(path: &str) -> Vec<(String, f64)> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| usage_error(format!("cannot read {path}: {e}")));
    let value = serde_json::from_str(&text)
        .unwrap_or_else(|e| usage_error(format!("cannot parse {path}: {e}")));
    let benches = value
        .get("benches")
        .and_then(|b| b.as_array())
        .unwrap_or_else(|| usage_error(format!("{path}: no \"benches\" array")));
    benches
        .iter()
        .map(|b| {
            let id = b.get("id").and_then(|v| v.as_str());
            let median = b.get("median_ns").and_then(|v| v.as_f64());
            match (id, median) {
                (Some(id), Some(m)) => (id.to_string(), m),
                _ => usage_error(format!("{path}: bench entry without id/median_ns")),
            }
        })
        .collect()
}

/// `hotpath-diff BASELINE CANDIDATE [--tolerance F]`: one-sided hot-path
/// regression gate. Exits 1 when any baseline benchmark's candidate median
/// exceeds `baseline * (1 + tolerance)` or is missing from the candidate.
fn hotpath_diff(args: &[String]) -> ! {
    let mut paths: Vec<&str> = Vec::new();
    let mut tolerance = 0.25f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tolerance" => {
                i += 1;
                tolerance = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|t: &f64| *t >= 0.0)
                    .unwrap_or_else(|| {
                        usage_error("--tolerance needs a non-negative number".to_string())
                    });
            }
            path => paths.push(path),
        }
        i += 1;
    }
    let [baseline_path, candidate_path] = paths[..] else {
        usage_error(
            "hotpath-diff needs exactly two export paths (BASELINE.json CANDIDATE.json)"
                .to_string(),
        );
    };
    let baseline = load_hotpath(baseline_path);
    let candidate = load_hotpath(candidate_path);
    println!(
        "# hotpath-diff {baseline_path} -> {candidate_path} (tolerance {:.0}%)\n",
        tolerance * 100.0
    );
    let mut regressions = 0usize;
    for (id, base) in &baseline {
        match candidate.iter().find(|(cid, _)| cid == id) {
            None => {
                regressions += 1;
                println!("MISSING  {id}: in baseline but not in candidate");
            }
            Some((_, cand)) => {
                let ratio = cand / base;
                let verdict = if *cand > base * (1.0 + tolerance) {
                    regressions += 1;
                    "REGRESSED"
                } else if ratio < 1.0 {
                    "faster"
                } else {
                    "ok"
                };
                println!(
                    "{verdict:<9} {id}: {:.3} ms -> {:.3} ms ({:+.1}%)",
                    base / 1e6,
                    cand / 1e6,
                    (ratio - 1.0) * 100.0
                );
            }
        }
    }
    for (id, _) in &candidate {
        if !baseline.iter().any(|(bid, _)| bid == id) {
            println!("NEW      {id}: not in baseline (ignored)");
        }
    }
    println!(
        "\n{} of {} gated benchmarks within tolerance",
        baseline.len() - regressions,
        baseline.len()
    );
    std::process::exit(if regressions == 0 { 0 } else { 1 });
}

/// `bench-diff BASELINE CANDIDATE`: prints per-cell measurement deltas and
/// exits 1 when the reports differ.
fn bench_diff(baseline_path: &str, candidate_path: &str) -> ! {
    let baseline = load_report(baseline_path);
    let candidate = load_report(candidate_path);
    let diff = baseline.diff(&candidate);
    println!("# bench-diff {baseline_path} -> {candidate_path}\n");
    print!("{diff}");
    std::process::exit(if diff.is_empty() { 0 } else { 1 });
}

fn main() {
    // Worker re-entry for the proc backend (no-op unless a pool exec'd us).
    numadag_proc::maybe_run_worker();
    numadag_proc::install();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which: Option<String> = None;
    let mut jobs = 1usize;
    let mut backend = Backend::default();
    let mut trace_scale: Option<ProblemScale> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "serve-load" => serve_load(&args[i + 1..]),
            "hotpath-diff" => hotpath_diff(&args[i + 1..]),
            "bench-diff" => match (args.get(i + 1), args.get(i + 2), args.get(i + 3)) {
                (Some(baseline), Some(candidate), None) => bench_diff(baseline, candidate),
                _ => usage_error(
                    "bench-diff needs exactly two report paths (BASELINE.json CANDIDATE.json)"
                        .to_string(),
                ),
            },
            "--jobs" => {
                i += 1;
                match args.get(i).map(|s| numadag_bench::parse_jobs(s)) {
                    Some(Ok(n)) => jobs = n,
                    Some(Err(e)) => usage_error(e),
                    None => usage_error("--jobs needs a value".to_string()),
                }
            }
            "--backend" => {
                i += 1;
                match args.get(i).map(|s| s.parse()) {
                    Some(Ok(parsed)) => backend = parsed,
                    Some(Err(e)) => usage_error(e),
                    None => usage_error("--backend needs a value".to_string()),
                }
            }
            "--scale" => {
                i += 1;
                trace_scale = Some(match args.get(i).map(String::as_str) {
                    Some("tiny") => ProblemScale::Tiny,
                    Some("small") => ProblemScale::Small,
                    Some("full") => ProblemScale::Full,
                    Some(other) => usage_error(format!(
                        "unknown scale {other:?} (expected tiny, small or full)"
                    )),
                    None => usage_error("--scale needs a value".to_string()),
                });
            }
            study @ ("window" | "sockets" | "partitioner" | "propagation" | "trace" | "all") => {
                match &which {
                    None => which = Some(study.to_string()),
                    Some(first) => usage_error(format!(
                        "more than one study selected ({first:?} and {study:?}); pick one, \
                     or \"all\" to run every study"
                    )),
                }
            }
            other => usage_error(format!("unknown argument {other:?}")),
        }
        i += 1;
    }
    let which = which.unwrap_or_else(|| "all".to_string());
    if trace_scale.is_some() && which != "trace" {
        usage_error(format!(
            "--scale only applies to the trace study (selected {which:?}); the classic \
             ablations are fixed at {SCALE:?} scale"
        ));
    }

    let study = StudyConfig {
        jobs,
        backend,
        specs: Arc::new(SpecCache::new()),
    };
    match which.as_str() {
        "window" => window_ablation(&study),
        "sockets" => socket_ablation(&study),
        "partitioner" => partitioner_ablation(&study),
        "propagation" => propagation_ablation(&study),
        "trace" => trace_study(&study, trace_scale.unwrap_or(SCALE)),
        _ => {
            window_ablation(&study);
            socket_ablation(&study);
            partitioner_ablation(&study);
            propagation_ablation(&study);
            trace_study(&study, SCALE);
        }
    }
}
