//! Design-choice ablations (DESIGN.md: ABL-WIN, ABL-SOCK, ABL-PART).
//!
//! Usage:
//! ```text
//! cargo run -p numadag-bench --bin ablation --release -- [window|sockets|partitioner|all]
//! ```

use numadag_core::{make_policy_with_window, LasPolicy, PolicyKind, RgpConfig, RgpPolicy};
use numadag_graph::{partition, PartitionConfig, PartitionScheme};
use numadag_kernels::{Application, ProblemScale};
use numadag_numa::Topology;
use numadag_runtime::report::geometric_mean;
use numadag_runtime::{ExecutionConfig, Simulator};
use numadag_tdg::{window_to_csr, TaskWindow, WindowConfig};

const SCALE: ProblemScale = ProblemScale::Small;
const SEED: u64 = 0xAB1A7E;

/// ABL-WIN: RGP+LAS speedup over LAS as a function of the window size.
fn window_ablation() {
    println!("\n# ABL-WIN — RGP+LAS speedup over LAS vs window size ({SCALE:?} scale)\n");
    let topo = Topology::bullion_s16();
    let simulator = Simulator::new(ExecutionConfig::new(topo.clone()));
    let apps = [
        Application::Jacobi,
        Application::QrFactorization,
        Application::SymmetricMatrixInversion,
    ];
    let window_sizes = [64usize, 128, 256, 512, 1024, 2048, 4096];
    print!("| {:<22} |", "application");
    for w in window_sizes {
        print!(" {w:>6} |");
    }
    println!();
    for app in apps {
        let spec = app.build(SCALE, topo.num_sockets());
        let mut las = LasPolicy::new(SEED);
        let baseline = simulator.run(&spec, &mut las);
        print!("| {:<22} |", app.label());
        for w in window_sizes {
            let mut rgp = RgpPolicy::new(RgpConfig::default().with_seed(SEED).with_window_size(w));
            let report = simulator.run(&spec, &mut rgp);
            print!(" {:>6.3} |", report.speedup_over(&baseline));
        }
        println!();
    }
}

/// ABL-SOCK: the gap between the policies as the socket count grows.
fn socket_ablation() {
    println!("\n# ABL-SOCK — geometric-mean speedup over LAS vs socket count ({SCALE:?} scale)\n");
    println!("| sockets | DFIFO | RGP+LAS | EP |");
    for sockets in [2usize, 4, 8, 16] {
        let topo = Topology::symmetric(sockets, 4);
        let simulator = Simulator::new(ExecutionConfig::new(topo.clone()));
        let mut speedups: Vec<(PolicyKind, Vec<f64>)> = vec![
            (PolicyKind::Dfifo, Vec::new()),
            (PolicyKind::RgpLas, Vec::new()),
            (PolicyKind::Ep, Vec::new()),
        ];
        for app in Application::all() {
            let spec = app.build(SCALE, sockets);
            let mut las = LasPolicy::new(SEED);
            let baseline = simulator.run(&spec, &mut las);
            for (kind, values) in &mut speedups {
                if let Some(mut policy) = make_policy_with_window(*kind, &spec, SEED, None) {
                    let report = simulator.run(&spec, policy.as_mut());
                    values.push(report.speedup_over(&baseline));
                }
            }
        }
        print!("| {sockets:>7} |");
        for (_, values) in &speedups {
            print!(" {:>5.3} |", geometric_mean(values));
        }
        println!();
    }
}

/// ABL-PART: multilevel FM vs the naive BFS partitioner — cut quality on the
/// first window of real TDGs.
fn partitioner_ablation() {
    println!("\n# ABL-PART — multilevel k-way vs naive BFS growing ({SCALE:?} scale)\n");
    let topo = Topology::bullion_s16();
    let k = topo.num_sockets();
    println!(
        "| {:<22} | {:>14} | {:>14} | {:>8} |",
        "application", "ML cut (bytes)", "BFS cut (bytes)", "ratio"
    );
    for app in [
        Application::Jacobi,
        Application::QrFactorization,
        Application::ConjugateGradient,
        Application::IntegralHistogram,
    ] {
        let spec = app.build(SCALE, k);
        let window = TaskWindow::initial(&spec.graph, WindowConfig::new(1024));
        let wg = window_to_csr(&spec.graph, &window);
        let ml = partition(&wg.graph, &PartitionConfig::new(k).with_seed(SEED));
        let naive = partition(
            &wg.graph,
            &PartitionConfig::new(k)
                .with_seed(SEED)
                .with_scheme(PartitionScheme::BfsGrowing),
        );
        let ml_cut = ml.edge_cut(&wg.graph);
        let naive_cut = naive.edge_cut(&wg.graph);
        println!(
            "| {:<22} | {:>14} | {:>14} | {:>8.2} |",
            app.label(),
            ml_cut,
            naive_cut,
            naive_cut as f64 / ml_cut.max(1) as f64
        );
    }
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    match which.as_str() {
        "window" => window_ablation(),
        "sockets" => socket_ablation(),
        "partitioner" => partitioner_ablation(),
        _ => {
            window_ablation();
            socket_ablation();
            partitioner_ablation();
        }
    }
}
