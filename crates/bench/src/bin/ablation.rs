//! Design-choice ablations (DESIGN.md: ABL-WIN, ABL-SOCK, ABL-PART).
//!
//! Usage:
//! ```text
//! cargo run -p numadag-bench --bin ablation --release -- [window|sockets|partitioner|all]
//! ```
//!
//! All three ablations are expressed as [`Experiment`] sweeps: the window
//! study is one sweep whose policy axis is RGP+LAS at increasing window
//! sizes (`rgp-las:w=N` registry labels), the socket study is one Figure-1
//! sweep per machine size, and the partitioner study is one sweep whose
//! policy axis is RGP+LAS under each partitioning scheme
//! (`rgp-las:scheme=ml|rb|bfs` registry labels) — every ablation therefore
//! lands in the same `SweepReport` shape. The partitioner study additionally
//! prints the raw window-cut comparison underlying the speedups.

use numadag_core::{PolicyKind, RgpTuning};
use numadag_graph::{partition, PartitionConfig, PartitionScheme};
use numadag_kernels::{Application, ProblemScale};
use numadag_numa::Topology;
use numadag_runtime::Experiment;
use numadag_tdg::{window_to_csr, TaskWindow, WindowConfig};

const SCALE: ProblemScale = ProblemScale::Small;
const SEED: u64 = 0xAB1A7E;

/// ABL-WIN: RGP+LAS speedup over LAS as a function of the window size.
fn window_ablation() {
    println!("\n# ABL-WIN — RGP+LAS speedup over LAS vs window size ({SCALE:?} scale)\n");
    let apps = [
        Application::Jacobi,
        Application::QrFactorization,
        Application::SymmetricMatrixInversion,
    ];
    let window_sizes = [64usize, 128, 256, 512, 1024, 2048, 4096];
    let report = Experiment::new()
        .apps(apps)
        .scale(SCALE)
        .policies(window_sizes.map(PolicyKind::rgp_las_window))
        .seed(SEED)
        .run();

    print!("| {:<22} |", "application");
    for w in window_sizes {
        print!(" {w:>6} |");
    }
    println!();
    for app in apps {
        print!("| {:<22} |", app.label());
        for w in window_sizes {
            let label = PolicyKind::rgp_las_window(w).label();
            let s = report.speedup_of(app.label(), &label).unwrap_or(f64::NAN);
            print!(" {s:>6.3} |");
        }
        println!();
    }
}

/// ABL-SOCK: the gap between the policies as the socket count grows.
fn socket_ablation() {
    println!("\n# ABL-SOCK — geometric-mean speedup over LAS vs socket count ({SCALE:?} scale)\n");
    println!("| sockets | DFIFO | RGP+LAS | EP |");
    for sockets in [2usize, 4, 8, 16] {
        let report = Experiment::new()
            .topology(Topology::symmetric(sockets, 4))
            .apps(Application::all())
            .scale(SCALE)
            .policies([PolicyKind::Dfifo, PolicyKind::RgpLas, PolicyKind::Ep])
            .seed(SEED)
            .run();
        print!("| {sockets:>7} |");
        for label in ["DFIFO", "RGP+LAS", "EP"] {
            print!(" {:>5.3} |", report.geomean_of(label).unwrap_or(f64::NAN));
        }
        println!();
    }
}

/// ABL-PART: the end-to-end effect of the window partitioner — RGP+LAS
/// speedup over LAS under each partitioning scheme, as one `Experiment`
/// sweep (each `rgp-las:scheme=…` spelling is its own report column) —
/// followed by the raw window-cut comparison that explains the speedups.
fn partitioner_ablation() {
    let apps = [
        Application::Jacobi,
        Application::QrFactorization,
        Application::ConjugateGradient,
        Application::IntegralHistogram,
    ];
    let schemes = PartitionScheme::all();

    println!("\n# ABL-PART — RGP+LAS speedup over LAS per partitioning scheme ({SCALE:?} scale)\n");
    let report = Experiment::new()
        .apps(apps)
        .scale(SCALE)
        .policies(schemes.map(|s| PolicyKind::rgp_las(RgpTuning::default().with_scheme(s))))
        .seed(SEED)
        .run();
    print!("| {:<22} |", "application");
    for scheme in schemes {
        print!(" {:>10} |", format!("scheme={}", scheme.token()));
    }
    println!();
    for app in apps {
        print!("| {:<22} |", app.label());
        for scheme in schemes {
            let label = PolicyKind::rgp_las(RgpTuning::default().with_scheme(scheme)).label();
            let s = report.speedup_of(app.label(), &label).unwrap_or(f64::NAN);
            print!(" {s:>10.3} |");
        }
        println!();
    }
    print!("| {:<22} |", "geometric mean");
    for scheme in schemes {
        let label = PolicyKind::rgp_las(RgpTuning::default().with_scheme(scheme)).label();
        print!(" {:>10.3} |", report.geomean_of(&label).unwrap_or(f64::NAN));
    }
    println!();

    println!("\n## Window cut quality — multilevel k-way vs naive BFS growing\n");
    let topo = Topology::bullion_s16();
    let k = topo.num_sockets();
    println!(
        "| {:<22} | {:>14} | {:>14} | {:>8} |",
        "application", "ML cut (bytes)", "BFS cut (bytes)", "ratio"
    );
    for app in apps {
        let spec = app.build(SCALE, k);
        let window = TaskWindow::initial(&spec.graph, WindowConfig::new(1024));
        let wg = window_to_csr(&spec.graph, &window);
        let ml = partition(&wg.graph, &PartitionConfig::new(k).with_seed(SEED));
        let naive = partition(
            &wg.graph,
            &PartitionConfig::new(k)
                .with_seed(SEED)
                .with_scheme(PartitionScheme::BfsGrowing),
        );
        let ml_cut = ml.edge_cut(&wg.graph);
        let naive_cut = naive.edge_cut(&wg.graph);
        println!(
            "| {:<22} | {:>14} | {:>14} | {:>8.2} |",
            app.label(),
            ml_cut,
            naive_cut,
            naive_cut as f64 / ml_cut.max(1) as f64
        );
    }
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    match which.as_str() {
        "window" => window_ablation(),
        "sockets" => socket_ablation(),
        "partitioner" => partitioner_ablation(),
        _ => {
            window_ablation();
            socket_ablation();
            partitioner_ablation();
        }
    }
}
