//! Shared harness: build the suite, run every policy, compute speedups.

use numadag_core::{make_policy_with_window, PolicyKind};
use numadag_kernels::{Application, ProblemScale};
use numadag_numa::Topology;
use numadag_runtime::report::geometric_mean;
use numadag_runtime::{ExecutionConfig, ExecutionReport, Simulator};
use serde::Serialize;

/// Configuration of a harness run.
#[derive(Clone, Debug)]
pub struct HarnessConfig {
    /// Machine topology (default: the paper's bullion S16).
    pub topology: Topology,
    /// Problem scale for the suite.
    pub scale: ProblemScale,
    /// Seed for all seeded components.
    pub seed: u64,
    /// RGP window size (`None` = default 1024).
    pub window_size: Option<usize>,
    /// Policies to evaluate (the baseline LAS is always run).
    pub policies: Vec<PolicyKind>,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            topology: Topology::bullion_s16(),
            scale: ProblemScale::Full,
            seed: 0xF1617E,
            window_size: None,
            policies: vec![PolicyKind::Dfifo, PolicyKind::RgpLas, PolicyKind::Ep],
        }
    }
}

/// The result of one policy on one application.
#[derive(Clone, Debug, Serialize)]
pub struct ApplicationResult {
    /// Policy label.
    pub policy: String,
    /// Simulated makespan (ns).
    pub makespan_ns: f64,
    /// Speedup over the LAS baseline.
    pub speedup_vs_las: f64,
    /// Fraction of bytes served from the local NUMA node.
    pub local_fraction: f64,
    /// Load imbalance (max/mean busy time over sockets).
    pub load_imbalance: f64,
    /// Fraction of tasks stolen across sockets.
    pub steal_fraction: f64,
}

/// One row of Figure 1: an application and the results of every policy.
#[derive(Clone, Debug, Serialize)]
pub struct Figure1Row {
    /// Application label (as in the paper).
    pub application: String,
    /// Number of tasks in the instance.
    pub tasks: usize,
    /// LAS baseline makespan (ns).
    pub las_makespan_ns: f64,
    /// LAS local fraction (for the traffic analysis).
    pub las_local_fraction: f64,
    /// Per-policy results.
    pub results: Vec<ApplicationResult>,
}

impl Figure1Row {
    /// The speedup of `policy` over LAS in this row, if that policy was run.
    pub fn speedup_of(&self, policy: &str) -> Option<f64> {
        self.results
            .iter()
            .find(|r| r.policy == policy)
            .map(|r| r.speedup_vs_las)
    }
}

fn result_from(report: &ExecutionReport, baseline: &ExecutionReport) -> ApplicationResult {
    ApplicationResult {
        policy: report.policy.clone(),
        makespan_ns: report.makespan_ns,
        speedup_vs_las: report.speedup_over(baseline),
        local_fraction: report.local_fraction(),
        load_imbalance: report.load_imbalance(),
        steal_fraction: report.steal_fraction(),
    }
}

/// Runs the Figure-1 experiment: every application under LAS (baseline) and
/// the configured policies, returning one row per application.
pub fn run_figure1(config: &HarnessConfig) -> Vec<Figure1Row> {
    let num_sockets = config.topology.num_sockets();
    let simulator = Simulator::new(ExecutionConfig::new(config.topology.clone()));
    let mut rows = Vec::new();
    for app in Application::all() {
        let spec = app.build(config.scale, num_sockets);
        let mut las = make_policy_with_window(PolicyKind::Las, &spec, config.seed, None)
            .expect("LAS always builds");
        let baseline = simulator.run(&spec, las.as_mut());
        let mut results = Vec::new();
        for &kind in &config.policies {
            let Some(mut policy) =
                make_policy_with_window(kind, &spec, config.seed, config.window_size)
            else {
                continue;
            };
            let report = simulator.run(&spec, policy.as_mut());
            results.push(result_from(&report, &baseline));
        }
        // The baseline itself is reported last (speedup 1.0), as in the plot.
        results.push(result_from(&baseline, &baseline));
        rows.push(Figure1Row {
            application: app.label().to_string(),
            tasks: spec.num_tasks(),
            las_makespan_ns: baseline.makespan_ns,
            las_local_fraction: baseline.local_fraction(),
            results,
        });
    }
    rows
}

/// The geometric-mean row of Figure 1 for a set of rows: for every policy
/// label appearing in the rows, the geometric mean of its speedups.
pub fn geometric_mean_row(rows: &[Figure1Row]) -> Vec<(String, f64)> {
    let mut labels: Vec<String> = Vec::new();
    for row in rows {
        for r in &row.results {
            if !labels.contains(&r.policy) {
                labels.push(r.policy.clone());
            }
        }
    }
    labels
        .into_iter()
        .map(|label| {
            let speedups: Vec<f64> = rows
                .iter()
                .filter_map(|row| row.speedup_of(&label))
                .collect();
            (label, geometric_mean(&speedups))
        })
        .collect()
}

/// The values the paper reports (read off Figure 1) where they are legible:
/// returns `(policy, application, speedup)` triples. The geometric mean of
/// RGP+LAS is the headline 1.12×.
pub fn paper_reference() -> Vec<(&'static str, &'static str, f64)> {
    vec![
        ("DFIFO", "Integral histogram", 0.40),
        ("DFIFO", "Jacobi", 0.42),
        ("DFIFO", "NStream", 0.49),
        ("DFIFO", "Symm. mat. inv.", 0.68),
        ("RGP+LAS", "NStream", 1.75),
        ("EP", "NStream", 1.74),
        ("RGP+LAS", "geometric mean", 1.12),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> HarnessConfig {
        HarnessConfig {
            topology: Topology::bullion_s16(),
            scale: ProblemScale::Tiny,
            ..HarnessConfig::default()
        }
    }

    #[test]
    fn figure1_produces_eight_rows_with_all_policies() {
        let rows = run_figure1(&tiny_config());
        assert_eq!(rows.len(), 8);
        for row in &rows {
            assert!(row.tasks > 0);
            assert!(row.las_makespan_ns > 0.0);
            // DFIFO, RGP+LAS, EP + the LAS baseline itself.
            assert_eq!(row.results.len(), 4);
            let las = row.results.last().unwrap();
            assert_eq!(las.policy, "LAS");
            assert!((las.speedup_vs_las - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn geometric_mean_row_covers_every_policy() {
        let rows = run_figure1(&tiny_config());
        let gm = geometric_mean_row(&rows);
        let labels: Vec<&str> = gm.iter().map(|(l, _)| l.as_str()).collect();
        assert!(labels.contains(&"DFIFO"));
        assert!(labels.contains(&"RGP+LAS"));
        assert!(labels.contains(&"EP"));
        assert!(labels.contains(&"LAS"));
        for (label, value) in &gm {
            assert!(*value > 0.0, "{label} has non-positive geomean");
        }
        // LAS against itself is exactly 1.
        let las = gm.iter().find(|(l, _)| l == "LAS").unwrap();
        assert!((las.1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn paper_reference_contains_headline_number() {
        let refs = paper_reference();
        assert!(refs.iter().any(|(p, a, v)| *p == "RGP+LAS"
            && *a == "geometric mean"
            && (*v - 1.12).abs() < 1e-9));
    }
}
