//! Shared harness: the Figure-1 sweep expressed as an [`Experiment`], plus
//! the paper's reference numbers.
//!
//! All sweep mechanics (baseline runs, speedups, geometric means, JSON
//! serialization) live in [`numadag_runtime::Experiment`]; this module only
//! binds the paper's evaluation setup (machine, suite, policy set) to it.

use std::path::Path;

use numadag_core::PolicyKind;
use numadag_kernels::{Application, ProblemScale};
use numadag_numa::Topology;
use numadag_runtime::{Backend, CellProgress, Experiment, SweepReport};
use numadag_trace::Trace;

/// Configuration of a harness run.
#[derive(Clone, Debug)]
pub struct HarnessConfig {
    /// Machine topology (default: the paper's bullion S16).
    pub topology: Topology,
    /// Problem scale for the suite.
    pub scale: ProblemScale,
    /// Seed for all seeded components.
    pub seed: u64,
    /// Policies to evaluate (the baseline LAS is always run and reported
    /// last). RGP window sizes are encoded in the kinds (`rgp-las:w=512`).
    pub policies: Vec<PolicyKind>,
    /// Execution backend.
    pub backend: Backend,
    /// Repetitions per cell (only meaningful for the threaded backend).
    pub repetitions: usize,
    /// Worker threads the sweep is sharded across (1 = serial, 0 = one per
    /// available core). Reports are bit-identical for every value on the
    /// simulator backend.
    pub jobs: usize,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            topology: Topology::bullion_s16(),
            scale: ProblemScale::Full,
            seed: 0xF1617E,
            policies: vec![PolicyKind::Dfifo, PolicyKind::RgpLas, PolicyKind::Ep],
            backend: Backend::Simulated,
            repetitions: 1,
            jobs: 1,
        }
    }
}

/// The Figure-1 experiment for a harness configuration: the whole suite
/// under LAS (baseline) plus the configured policies.
pub fn figure1_experiment(config: &HarnessConfig) -> Experiment {
    Experiment::new()
        .topology(config.topology.clone())
        .apps(Application::all())
        .scale(config.scale)
        .policies(config.policies.iter().copied())
        .baseline(PolicyKind::Las)
        .backend(config.backend)
        .repetitions(config.repetitions)
        .seed(config.seed)
        .parallelism(config.jobs)
}

/// Parses a `--jobs` CLI value (shared by both bins so their error handling
/// cannot drift): any unsigned integer, where `0` means "one worker per
/// available core".
pub fn parse_jobs(value: &str) -> Result<usize, String> {
    value
        .parse()
        .map_err(|_| format!("--jobs needs an unsigned integer, got {value:?}"))
}

/// How a `--jobs` value reads in banners: the literal count, or `"auto"`
/// for `0` (the effective worker count is recorded in the report's timing
/// section).
pub fn jobs_label(jobs: usize) -> String {
    if jobs == 0 {
        "auto".to_string()
    } else {
        jobs.to_string()
    }
}

/// Per-cell progress line on stderr — install with
/// `Experiment::on_cell_complete(stderr_progress)` so long sweeps report
/// live progress instead of going dark (stderr keeps stdout tables and
/// `--json` output clean).
pub fn stderr_progress(progress: &CellProgress) {
    if progress.skipped {
        eprintln!(
            "[{:>3}/{}] {} / {} / rep {}: skipped (policy not applicable)",
            progress.completed,
            progress.total,
            progress.application,
            progress.policy,
            progress.repetition,
        );
    } else {
        eprintln!(
            "[{:>3}/{}] {} / {} / rep {}: {:.1} ms",
            progress.completed,
            progress.total,
            progress.application,
            progress.policy,
            progress.repetition,
            progress.wall_ns / 1e6,
        );
    }
}

/// Runs the Figure-1 experiment and returns the structured sweep report.
pub fn run_figure1(config: &HarnessConfig) -> SweepReport {
    figure1_experiment(config).run()
}

/// File-system-safe spelling of a workload/policy label: alphanumerics,
/// `-`, `=` and `.` pass through, everything else becomes `-`.
pub fn sanitize_label(label: &str) -> String {
    label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '-' | '=' | '.') {
                c
            } else {
                '-'
            }
        })
        .collect()
}

/// Writes one pretty-printed JSON file per trace into `dir` (created if
/// missing), named `<app>_<scale>_<policy>_rep<N>.trace.json`. Returns the
/// number of files written.
pub fn write_trace_dir(dir: &Path, traces: &[Trace]) -> Result<usize, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    for trace in traces {
        let name = format!(
            "{}_{}_{}_rep{}.trace.json",
            sanitize_label(&trace.workload),
            sanitize_label(&trace.scale),
            sanitize_label(&trace.policy),
            trace.repetition,
        );
        let path = dir.join(name);
        let file = std::fs::File::create(&path)
            .map_err(|e| format!("cannot create {}: {e}", path.display()))?;
        let mut writer = std::io::BufWriter::new(file);
        trace
            .to_json_writer(&mut writer)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        std::io::Write::flush(&mut writer)
            .map_err(|e| format!("cannot flush {}: {e}", path.display()))?;
    }
    Ok(traces.len())
}

/// The values the paper reports (read off Figure 1) where they are legible:
/// returns `(policy, application, speedup)` triples. The geometric mean of
/// RGP+LAS is the headline 1.12×.
pub fn paper_reference() -> Vec<(&'static str, &'static str, f64)> {
    vec![
        ("DFIFO", "Integral histogram", 0.40),
        ("DFIFO", "Jacobi", 0.42),
        ("DFIFO", "NStream", 0.49),
        ("DFIFO", "Symm. mat. inv.", 0.68),
        ("RGP+LAS", "NStream", 1.75),
        ("EP", "NStream", 1.74),
        ("RGP+LAS", "geometric mean", 1.12),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> HarnessConfig {
        HarnessConfig {
            scale: ProblemScale::Tiny,
            ..HarnessConfig::default()
        }
    }

    #[test]
    fn figure1_covers_eight_applications_with_all_policies() {
        let report = run_figure1(&tiny_config());
        assert_eq!(report.application_labels().len(), 8);
        // DFIFO, RGP+LAS, EP + the LAS baseline itself, baseline last.
        assert_eq!(
            report.policy_labels(),
            vec!["DFIFO", "RGP+LAS", "EP", "LAS"]
        );
        assert!(report.skipped.is_empty());
        for app in report.application_labels() {
            let las = report.speedup_of(&app, "LAS").unwrap();
            assert!((las - 1.0).abs() < 1e-12, "{app}: LAS speedup {las}");
            for cell in report.cells_of(&app, "LAS") {
                assert!(cell.tasks > 0);
                assert!(cell.makespan_ns > 0.0);
            }
        }
    }

    #[test]
    fn geometric_means_cover_every_policy() {
        let report = run_figure1(&tiny_config());
        for label in ["DFIFO", "RGP+LAS", "EP", "LAS"] {
            let gm = report.geomean_of(label).expect(label);
            assert!(gm > 0.0, "{label} has non-positive geomean");
        }
        // LAS against itself is exactly 1.
        assert!((report.geomean_of("LAS").unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn trace_dir_writes_one_round_trippable_file_per_cell() {
        use numadag_trace::TraceCollector;
        use std::sync::Arc;
        let collector = Arc::new(TraceCollector::new());
        let config = HarnessConfig {
            policies: vec![PolicyKind::RgpLas],
            ..tiny_config()
        };
        figure1_experiment(&config)
            .trace(Arc::clone(&collector))
            .run();
        let traces = collector.take();
        assert_eq!(traces.len(), 16); // 8 apps × (RGP+LAS + LAS)
        let dir = std::env::temp_dir().join(format!("numadag_tracedir_{}", std::process::id()));
        let written = write_trace_dir(&dir, &traces).unwrap();
        assert_eq!(written, 16);
        let sample = dir.join("NStream_Tiny_RGP-LAS_rep0.trace.json");
        let text = std::fs::read_to_string(&sample).expect("sample trace file exists");
        let trace = Trace::from_json_str(&text).unwrap();
        assert_eq!(trace.workload, "NStream");
        trace.validate().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sanitize_label_keeps_registry_spellings_distinct() {
        assert_eq!(sanitize_label("RGP+LAS:w=512"), "RGP-LAS-w=512");
        assert_eq!(sanitize_label("Symm. mat. inv."), "Symm.-mat.-inv.");
    }

    #[test]
    fn paper_reference_contains_headline_number() {
        let refs = paper_reference();
        assert!(refs.iter().any(|(p, a, v)| *p == "RGP+LAS"
            && *a == "geometric mean"
            && (*v - 1.12).abs() < 1e-9));
    }
}
