//! Hot-path regression suite: the three loops the interactive Full sweep
//! spends its time in — the simulator event loop, the refiner's rebalance
//! pass, and the end-to-end Figure-1 sweep itself.
//!
//! Run `NUMADAG_CRITERION_JSON=PATH cargo bench -p numadag-bench --bench
//! hotpath` to export medians as JSON; `ablation hotpath-diff` compares the
//! export against the committed `BENCH_hotpath.json` trajectory point with a
//! relative tolerance (CI fails on >25% regression).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use numadag_bench::{run_figure1, HarnessConfig};
use numadag_core::DfifoPolicy;
use numadag_graph::generators;
use numadag_graph::partition::refine::{rebalance, rebalance_reference};
use numadag_kernels::{Application, ProblemScale};
use numadag_runtime::{ExecutionConfig, Simulator};

/// The simulator event loop in isolation: a Full-scale Jacobi under DFIFO,
/// the cheapest policy, so pop/release/dispatch dominate over policy work.
fn bench_simulator_event_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath");
    group.sample_size(15);
    let config = ExecutionConfig::bullion_s16();
    let sockets = config.topology.num_sockets();
    let spec = Application::Jacobi.build(ProblemScale::Full, sockets);
    group.throughput(Throughput::Elements(spec.num_tasks() as u64));
    let sim = Simulator::new(config);
    group.bench_function("simulator_event_loop/jacobi_full", |b| {
        b.iter(|| {
            let mut policy = DfifoPolicy::new();
            criterion::black_box(sim.run(&spec, &mut policy).makespan_ns)
        });
    });
    group.finish();
}

/// The refiner's queue-driven rebalance on layered-DAG windows with one
/// part overloaded — the shape projection actually produces, and the one
/// the rebalance queue is built for (a single queue build, then `O(log n)`
/// pops). The `O(n·k)`-per-move reference only runs at 2k vertices; at 100k
/// it needs minutes per call — exactly the headroom the queue removed.
///
/// Deliberately NOT benchmarked: several simultaneously-overweight parts
/// whose heaviest alternates move to move. That ping-pongs the per-part
/// queue rebuild (`O(n)` each) and is quadratic for both implementations —
/// recorded as remaining headroom in ROADMAP direction 4.
fn bench_refine_rebalance(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath");
    group.sample_size(10);
    let k = 8usize;
    let max_weight = |graph: &numadag_graph::CsrGraph| {
        let total: i64 = graph.vertex_weights().iter().sum();
        (total + k as i64 - 1) / k as i64 + total / 20
    };
    // Balanced modulo-k assignment with every fifth vertex forced into part
    // 0: one part at ~28% of the weight against a ~13% cap.
    let skewed_seed = |graph: &numadag_graph::CsrGraph| -> Vec<u32> {
        (0..graph.num_vertices() as u32)
            .map(|v| if v % 5 == 0 { 0 } else { v % k as u32 })
            .collect()
    };

    let large = generators::layered_dag_skeleton(200, 500, 2, 1 << 16);
    let large_max = max_weight(&large);
    let large_seed = skewed_seed(&large);
    group.throughput(Throughput::Elements(large.num_vertices() as u64));
    group.bench_function("refine_rebalance/layered_100k", |b| {
        b.iter(|| {
            let mut assignment = large_seed.clone();
            criterion::black_box(rebalance(&large, &mut assignment, k, large_max))
        });
    });

    let small = generators::layered_dag_skeleton(64, 32, 2, 1 << 16);
    let small_max = max_weight(&small);
    let small_seed = skewed_seed(&small);
    group.throughput(Throughput::Elements(small.num_vertices() as u64));
    group.bench_function("refine_rebalance/layered_2k", |b| {
        b.iter(|| {
            let mut assignment = small_seed.clone();
            criterion::black_box(rebalance(&small, &mut assignment, k, small_max))
        });
    });
    group.bench_function("refine_rebalance_reference/layered_2k", |b| {
        b.iter(|| {
            let mut assignment = small_seed.clone();
            criterion::black_box(rebalance_reference(&small, &mut assignment, k, small_max))
        });
    });
    group.finish();
}

/// The whole Figure-1 Full sweep, serial, exactly as `figure1 --jobs 1`
/// runs it — the number the README's Performance table tracks.
fn bench_full_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath");
    group.sample_size(5);
    let config = HarnessConfig {
        jobs: 1,
        ..HarnessConfig::default()
    };
    group.bench_function("full_sweep/figure1_full", |b| {
        b.iter(|| criterion::black_box(run_figure1(&config).cells.len()));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_simulator_event_loop,
    bench_refine_rebalance,
    bench_full_sweep
);
criterion_main!(benches);
