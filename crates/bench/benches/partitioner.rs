//! Microbenchmark: cost and quality of the graph partitioner (the SCOTCH
//! substitute RGP calls once per window).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use numadag_graph::generators;
use numadag_graph::{partition, PartitionConfig, PartitionScheme};

fn bench_partitioner(c: &mut Criterion) {
    let mut group = c.benchmark_group("partitioner");
    group.sample_size(10);

    for &n in &[16usize, 32, 64] {
        let grid = generators::grid_2d(n, n, 8);
        group.bench_with_input(BenchmarkId::new("multilevel_grid", n * n), &grid, |b, g| {
            b.iter(|| partition(g, &PartitionConfig::new(8)));
        });
        group.bench_with_input(BenchmarkId::new("bfs_grid", n * n), &grid, |b, g| {
            b.iter(|| {
                partition(
                    g,
                    &PartitionConfig::new(8).with_scheme(PartitionScheme::BfsGrowing),
                )
            });
        });
    }

    let layered = generators::layered_dag_skeleton(64, 32, 2, 1 << 16);
    group.bench_function("multilevel_layered_dag_2048", |b| {
        b.iter(|| partition(&layered, &PartitionConfig::new(8)));
    });

    group.finish();
}

criterion_group!(benches, bench_partitioner);
criterion_main!(benches);
