//! Microbenchmark: cost and quality of the graph partitioner (the SCOTCH
//! substitute RGP calls once per window).
//!
//! The layered-DAG group is the shape that matters for RGP: the undirected
//! skeleton of an iterative stencil's task window. It runs up to 500k
//! vertices — the ROADMAP's "don't trust small-graph numbers" floor is
//! 100k+, so the group covers 2k, 100k, 250k and 500k.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use numadag_graph::generators;
use numadag_graph::{partition, PartitionConfig, PartitionScheme};

fn bench_partitioner(c: &mut Criterion) {
    let mut group = c.benchmark_group("partitioner");
    group.sample_size(10);

    for &n in &[16usize, 32, 64] {
        let grid = generators::grid_2d(n, n, 8);
        group.bench_with_input(BenchmarkId::new("multilevel_grid", n * n), &grid, |b, g| {
            b.iter(|| partition(g, &PartitionConfig::new(8)));
        });
        group.bench_with_input(BenchmarkId::new("bfs_grid", n * n), &grid, |b, g| {
            b.iter(|| {
                partition(
                    g,
                    &PartitionConfig::new(8).with_scheme(PartitionScheme::BfsGrowing),
                )
            });
        });
    }

    // Layered-DAG windows from 2k to 500k vertices (layers × width), the
    // 100k+ sizes being the ones RGP must survive at full problem scale.
    for &(layers, width) in &[(64usize, 32usize), (200, 500), (500, 500), (500, 1000)] {
        let n = layers * width;
        let layered = generators::layered_dag_skeleton(layers, width, 2, 1 << 16);
        group.bench_with_input(
            BenchmarkId::new("multilevel_layered_dag", n),
            &layered,
            |b, g| {
                b.iter(|| partition(g, &PartitionConfig::new(8)));
            },
        );
        if n >= 100_000 {
            group.bench_with_input(BenchmarkId::new("bfs_layered_dag", n), &layered, |b, g| {
                b.iter(|| {
                    partition(
                        g,
                        &PartitionConfig::new(8).with_scheme(PartitionScheme::BfsGrowing),
                    )
                });
            });
        }
    }

    group.finish();
}

criterion_group!(benches, bench_partitioner);
criterion_main!(benches);
