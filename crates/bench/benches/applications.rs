//! End-to-end benchmark: simulated execution of each application of the
//! Figure-1 suite under each policy (tiny problem scale, so the whole matrix
//! stays cheap enough for CI).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use numadag_core::{make_policy, PolicyKind};
use numadag_kernels::{Application, ProblemScale};
use numadag_runtime::{Backend, ExecutionConfig};

fn bench_applications(c: &mut Criterion) {
    let mut group = c.benchmark_group("applications");
    group.sample_size(10);

    let executor = Backend::Simulated.executor(ExecutionConfig::bullion_s16());
    for app in Application::all() {
        let spec = app.build(ProblemScale::Tiny, 8);
        for kind in [PolicyKind::Las, PolicyKind::RgpLas, PolicyKind::Dfifo] {
            let id = BenchmarkId::new(app.label().replace(' ', "_"), kind.label());
            group.bench_with_input(id, &spec, |b, spec| {
                b.iter(|| {
                    let mut policy = make_policy(kind, spec, 1).unwrap();
                    executor.execute(spec, policy.as_mut())
                });
            });
        }
    }

    group.finish();
}

criterion_group!(benches, bench_applications);
criterion_main!(benches);
