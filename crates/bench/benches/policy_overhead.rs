//! Microbenchmark: per-task scheduling cost of each policy (the `assign`
//! call) and the one-off cost of RGP's `prepare` (window partitioning).

use criterion::{criterion_group, criterion_main, Criterion};
use numadag_core::{
    DfifoPolicy, EpPolicy, LasPolicy, MemoryLocator, RgpConfig, RgpPolicy, SchedulingPolicy,
};
use numadag_kernels::{Application, ProblemScale};
use numadag_numa::{MemoryMap, NodeId, Topology};

fn bench_policy_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_overhead");
    group.sample_size(20);

    let topo = Topology::bullion_s16();
    let spec = Application::Jacobi.build(ProblemScale::Small, topo.num_sockets());
    // Pre-place every region so LAS exercises its weighted path.
    let mut memory = MemoryMap::new();
    for (i, &size) in spec.region_sizes.iter().enumerate() {
        let r = memory.register(size);
        memory.place(r, NodeId(i % topo.num_sockets()));
    }
    let tasks: Vec<_> = spec.graph.tasks().iter().take(256).cloned().collect();

    group.bench_function("assign_dfifo_256_tasks", |b| {
        b.iter(|| {
            let mut p = DfifoPolicy::new();
            let locator = MemoryLocator::new(&topo, &memory);
            for t in &tasks {
                std::hint::black_box(p.assign(t, &locator));
            }
        });
    });

    group.bench_function("assign_las_256_tasks", |b| {
        b.iter(|| {
            let mut p = LasPolicy::new(7);
            let locator = MemoryLocator::new(&topo, &memory);
            for t in &tasks {
                std::hint::black_box(p.assign(t, &locator));
            }
        });
    });

    group.bench_function("assign_ep_256_tasks", |b| {
        b.iter(|| {
            let mut p = EpPolicy::from_spec(&spec).unwrap();
            let locator = MemoryLocator::new(&topo, &memory);
            for t in &tasks {
                std::hint::black_box(p.assign(t, &locator));
            }
        });
    });

    group.bench_function("rgp_prepare_window_1024", |b| {
        b.iter(|| {
            let mut p = RgpPolicy::new(RgpConfig::default().with_window_size(1024));
            let locator = MemoryLocator::new(&topo, &memory);
            p.prepare(&spec.graph, &locator);
            std::hint::black_box(p.window_edge_cut());
        });
    });

    group.finish();
}

criterion_group!(benches, bench_policy_overhead);
criterion_main!(benches);
