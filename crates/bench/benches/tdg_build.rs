//! Microbenchmark: cost of building the task dependency graph (dependence
//! analysis) and of converting a window for the partitioner. This is the
//! runtime overhead RGP adds on the task-creation path.

use criterion::{criterion_group, criterion_main, Criterion};
use numadag_kernels::{Application, ProblemScale};
use numadag_tdg::{window_to_csr, TaskWindow, WindowConfig};

fn bench_tdg_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("tdg_build");
    group.sample_size(10);

    for app in [
        Application::Jacobi,
        Application::QrFactorization,
        Application::ConjugateGradient,
    ] {
        group.bench_function(format!("build_{}", app.label().replace(' ', "_")), |b| {
            b.iter(|| app.build(ProblemScale::Small, 8));
        });
    }

    let spec = Application::Jacobi.build(ProblemScale::Small, 8);
    group.bench_function("window_to_csr_1024", |b| {
        let window = TaskWindow::initial(&spec.graph, WindowConfig::new(1024));
        b.iter(|| window_to_csr(&spec.graph, &window));
    });

    group.finish();
}

criterion_group!(benches, bench_tdg_build);
criterion_main!(benches);
