//! End-to-end tests of the multi-process backend: real worker processes,
//! real sockets, fault injection.
//!
//! The worker processes are this very test binary, re-entered through the
//! [`proc_worker_entry`] test (the pool passes `proc_worker_entry --exact`
//! as the worker argv). IPC runs over TCP, so libtest's stdout chatter in
//! the children is harmless.

use std::sync::Arc;
use std::time::Duration;

use numadag_core::{make_policy, PolicyKind};
use numadag_numa::Topology;
use numadag_proc::worker::{CRASH_AFTER_ENV, CRASH_WORKER_ENV, GARBAGE_AFTER_ENV};
use numadag_proc::{PoolConfig, ProcError, ProcExecutor, WorkerPool, CONNECT_ENV};
use numadag_runtime::{CellContext, ExecutionConfig, ExecutionReport, Executor, Simulator};
use numadag_tdg::{TaskGraphSpec, TaskSpec, TdgBuilder};
use numadag_trace::MemorySink;

/// Worker re-entry point: when the pool launches this binary with the
/// rendezvous environment set, this "test" becomes the worker loop. Run
/// normally (no environment), it is an instant no-op pass.
#[test]
fn proc_worker_entry() {
    if std::env::var(CONNECT_ENV).is_ok() {
        numadag_proc::run_worker_from_env().expect("worker loop failed");
    }
}

fn test_pool(workers: usize, env: &[(&str, &str)]) -> Arc<WorkerPool> {
    let mut config = PoolConfig::new(workers)
        .with_worker_args(vec!["proc_worker_entry".to_string(), "--exact".to_string()]);
    config.spawn_timeout = Duration::from_secs(60);
    config.cell_timeout = Duration::from_secs(60);
    for (key, value) in env {
        config = config.with_env(key, value);
    }
    WorkerPool::spawn(config).expect("worker pool spawns")
}

fn sample_spec() -> TaskGraphSpec {
    let mut b = TdgBuilder::new();
    let regions: Vec<_> = (0..6).map(|_| b.region(1 << 16)).collect();
    for r in &regions {
        b.submit(TaskSpec::new("init").work(50.0).writes(*r, 1 << 16));
    }
    for pair in regions.windows(2) {
        b.submit(
            TaskSpec::new("mix")
                .work(120.0)
                .reads(pair[0], 1 << 14)
                .reads_writes(pair[1], 1 << 14),
        );
    }
    let (graph, sizes) = b.finish();
    TaskGraphSpec::new("proc-e2e", graph, sizes)
}

fn local_report(
    spec: &TaskGraphSpec,
    kind: PolicyKind,
    seed: u64,
    config: &ExecutionConfig,
) -> ExecutionReport {
    let mut policy = make_policy(kind, spec, seed).expect("policy builds");
    Simulator::new(config.clone()).run(spec, policy.as_mut())
}

fn assert_reports_identical(got: &ExecutionReport, want: &ExecutionReport) {
    assert_eq!(got.workload, want.workload);
    assert_eq!(got.policy, want.policy);
    assert_eq!(got.makespan_ns.to_bits(), want.makespan_ns.to_bits());
    assert_eq!(got.tasks, want.tasks);
    assert_eq!(got.traffic, want.traffic);
    assert_eq!(got.tasks_per_socket, want.tasks_per_socket);
    assert_eq!(
        got.busy_per_socket.len(),
        want.busy_per_socket.len(),
        "socket counts differ"
    );
    for (g, w) in got.busy_per_socket.iter().zip(want.busy_per_socket.iter()) {
        assert_eq!(g.to_bits(), w.to_bits());
    }
    assert_eq!(got.stolen_tasks, want.stolen_tasks);
    assert_eq!(got.deferred_bytes, want.deferred_bytes);
    assert_eq!(got.trace, want.trace);
}

#[test]
fn proc_cells_are_bit_identical_to_the_in_process_simulator() {
    let pool = test_pool(2, &[]);
    let spec = sample_spec();
    let config = ExecutionConfig::new(Topology::bullion_s16());
    for (label, seed) in [
        ("las", 11u64),
        ("dfifo", 12),
        ("rgp+las", 13),
        ("rgp+rr", 14),
    ] {
        let kind: PolicyKind = label.parse().expect("label parses");
        let want = local_report(&spec, kind, seed, &config);
        let (got, events) = pool
            .run_cell(&spec, label, kind.base_label(), seed, &config, false, false)
            .expect("cell executes");
        assert!(events.is_empty(), "no events were requested");
        assert_reports_identical(&got, &want);
    }
    let stats = pool.stats();
    assert_eq!(stats.workers_spawned, 2);
    assert_eq!(stats.workers_alive, 2);
    assert_eq!(stats.cells_dispatched, 4);
    assert_eq!(stats.redispatches, 0);
    // Round-robin touched both workers, so config and spec each shipped
    // once per worker, not once per cell.
    assert_eq!(stats.config_broadcasts, 2);
    assert_eq!(stats.spec_transfers, 2);
}

#[test]
fn traces_and_events_travel_back_across_the_wire() {
    let pool = test_pool(2, &[]);
    let spec = sample_spec();
    let kind: PolicyKind = "rgp+las".parse().unwrap();
    let seed = 0xF1617E;

    let sink = Arc::new(MemorySink::new());
    let local_config = ExecutionConfig::new(Topology::two_socket(4))
        .with_trace()
        .with_trace_sink(sink.clone());
    let want = local_report(&spec, kind, seed, &local_config);
    let want_events = sink.take();
    assert!(!want.trace.is_empty(), "placement trace was collected");
    assert!(!want_events.is_empty(), "events were collected");

    let wire_config = ExecutionConfig::new(Topology::two_socket(4));
    let (got, events) = pool
        .run_cell(
            &spec,
            "rgp+las",
            kind.base_label(),
            seed,
            &wire_config.clone().with_trace(),
            true,
            true,
        )
        .expect("traced cell executes");
    assert_reports_identical(&got, &want);
    assert_eq!(events, want_events);
}

#[test]
fn executor_trait_ships_cells_and_forwards_events() {
    let pool = test_pool(2, &[]);
    let spec = sample_spec();
    let kind: PolicyKind = "las".parse().unwrap();
    let seed = 21;

    let sink = Arc::new(MemorySink::new());
    let config = ExecutionConfig::new(Topology::four_socket(2))
        .with_trace()
        .with_trace_sink(sink.clone());
    let executor = ProcExecutor::with_pool(config.clone(), pool);
    assert_eq!(executor.backend_name(), "proc");

    let mut policy = make_policy(kind, &spec, seed).unwrap();
    let ctx = CellContext {
        policy_label: "las",
        seed,
    };
    let report = executor.execute_cell(&spec, policy.as_mut(), Some(&ctx));
    let remote_events = sink.take();

    let local_sink = Arc::new(MemorySink::new());
    let local_config = config.with_trace_sink(local_sink.clone());
    let want = local_report(&spec, kind, seed, &local_config);
    assert_reports_identical(&report, &want);
    assert_eq!(remote_events, local_sink.take());
    assert_eq!(executor.stats().expect("pool attached").workers_spawned, 2);
}

#[test]
fn a_crashing_worker_is_killed_and_its_cell_redispatched() {
    // Worker 0 dies hard on its second assignment, mid-cell.
    let pool = test_pool(2, &[(CRASH_AFTER_ENV, "1"), (CRASH_WORKER_ENV, "0")]);
    let spec = sample_spec();
    let config = ExecutionConfig::new(Topology::two_socket(2));
    let kind: PolicyKind = "las".parse().unwrap();
    let want = local_report(&spec, kind, 5, &config);
    for _ in 0..6 {
        let (got, _) = pool
            .run_cell(&spec, "las", kind.base_label(), 5, &config, false, false)
            .expect("cells survive the crash via redispatch");
        assert_reports_identical(&got, &want);
    }
    let stats = pool.stats();
    assert_eq!(stats.workers_alive, 1, "the crashed worker is gone");
    assert!(stats.redispatches >= 1, "the lost cell was redispatched");
    assert_eq!(stats.cells_dispatched, 6, "no cell was lost or duplicated");
}

#[test]
fn garbage_frames_kill_the_worker_not_the_coordinator() {
    // Worker 0 answers its second assignment with a line that is not JSON.
    let pool = test_pool(2, &[(GARBAGE_AFTER_ENV, "1"), (CRASH_WORKER_ENV, "0")]);
    let spec = sample_spec();
    let config = ExecutionConfig::new(Topology::two_socket(2));
    let kind: PolicyKind = "dfifo".parse().unwrap();
    let want = local_report(&spec, kind, 6, &config);
    for _ in 0..6 {
        let (got, _) = pool
            .run_cell(&spec, "dfifo", kind.base_label(), 6, &config, false, false)
            .expect("cells survive the corruption via redispatch");
        assert_reports_identical(&got, &want);
    }
    let stats = pool.stats();
    assert_eq!(stats.workers_alive, 1, "the corrupting worker was killed");
    assert!(stats.redispatches >= 1);
}

#[test]
fn losing_every_worker_is_a_structured_error_not_a_hang() {
    // The only worker crashes on its first assignment.
    let pool = test_pool(1, &[(CRASH_AFTER_ENV, "0")]);
    let spec = sample_spec();
    let config = ExecutionConfig::new(Topology::two_socket(2));
    let err = pool
        .run_cell(&spec, "las", "LAS", 7, &config, false, false)
        .expect_err("no worker can run the cell");
    assert!(
        matches!(err, ProcError::AllWorkersDead { .. }),
        "unexpected error: {err}"
    );
    assert_eq!(pool.stats().workers_alive, 0);
}

#[test]
fn a_worker_side_failure_propagates_as_a_deterministic_error() {
    let pool = test_pool(2, &[]);
    // EP needs an expert placement; this spec has none, so the worker
    // answers with a structured `error` — which must NOT be retried (it
    // would fail identically everywhere).
    let spec = sample_spec();
    let config = ExecutionConfig::new(Topology::two_socket(2));
    let err = pool
        .run_cell(&spec, "ep", "EP", 8, &config, false, false)
        .expect_err("EP without a placement fails");
    match &err {
        ProcError::Worker { message, .. } => {
            assert!(message.contains("unavailable"), "message: {message}");
        }
        other => panic!("expected a worker error, got {other}"),
    }
    let stats = pool.stats();
    assert_eq!(
        stats.workers_alive, 2,
        "a deterministic failure kills nobody"
    );
    assert_eq!(
        stats.redispatches, 0,
        "deterministic failures are not retried"
    );
    // The pool is still healthy: the next cell runs fine.
    let kind: PolicyKind = "las".parse().unwrap();
    let want = local_report(&spec, kind, 9, &config);
    let (got, _) = pool
        .run_cell(&spec, "las", kind.base_label(), 9, &config, false, false)
        .expect("pool still serves cells");
    assert_reports_identical(&got, &want);
}

#[test]
fn config_changes_resync_by_fingerprint() {
    let pool = test_pool(1, &[]);
    let spec = sample_spec();
    let kind: PolicyKind = "las".parse().unwrap();
    let first = ExecutionConfig::new(Topology::two_socket(2));
    let second = ExecutionConfig::new(Topology::multi_node(2, 2, 2, 120));
    for config in [&first, &second, &first] {
        let want = local_report(&spec, kind, 3, config);
        let (got, _) = pool
            .run_cell(&spec, "las", kind.base_label(), 3, config, false, false)
            .expect("cell executes");
        assert_reports_identical(&got, &want);
    }
    // Three cells, but the config changed between each, so every dispatch
    // re-broadcast it; the spec shipped only once.
    let stats = pool.stats();
    assert_eq!(stats.config_broadcasts, 3);
    assert_eq!(stats.spec_transfers, 1);
}
