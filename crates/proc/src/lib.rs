//! Multi-process message-passing executor: the third backend behind
//! [`numadag_runtime::Executor`].
//!
//! The simulator and the threaded executor both live inside one address
//! space; this crate runs sweep cells in **separate OS processes**. The
//! coordinator (the process that owns the sweep) re-execs its own
//! executable once per worker with a `--proc-worker` flag, and the
//! processes speak newline-delimited JSON over local TCP sockets — the same
//! framing the `numadag-serve` daemon uses, hoisted into
//! [`numadag_runtime::framing`].
//!
//! Messages cover the whole lifecycle: `config`/`config_ack` (execution
//! config sync, fingerprint-keyed), `spec` (workload transfer, shipped once
//! per worker and referenced by fingerprint after), `assign`/`done` (one
//! sweep cell), `data_home` and `steal` notifications (deferred-allocation
//! bytes and stolen-task counts, cross-checked against the report),
//! `barrier`/`barrier_ack` (oneCCL-style non-blocking collectives at
//! startup and shutdown) and `shutdown`.
//!
//! Determinism: a worker rebuilds the policy from the `(label, seed)` in
//! the assignment and runs the in-process [`numadag_runtime::Simulator`],
//! so a cell's report is byte-identical to the same cell executed locally —
//! `figure1 --backend proc` regenerates the committed simulator baseline
//! exactly. Worker crashes are detected as framing failures, the worker is
//! killed and the cell redispatched; if every worker dies the sweep fails
//! with a structured error instead of hanging.
//!
//! # Wiring
//!
//! Call [`install`] once at startup to register the backend behind
//! `numadag_runtime::Backend::Proc` (`--backend proc` on the CLI), and
//! [`maybe_run_worker`] first thing in `main` so the re-exec'd children
//! take the worker path instead of re-running the tool.

#![warn(missing_docs)]

mod executor;
pub mod pool;
pub mod protocol;
pub mod worker;

pub use executor::ProcExecutor;
pub use pool::{shared_pool, PoolConfig, PoolStats, ProcError, WorkerPool};
pub use worker::{run_worker_from_env, CONNECT_ENV, WORKER_ENV, WORKER_FLAG};

/// Registers [`ProcExecutor`] as the factory behind
/// `numadag_runtime::Backend::Proc`. Idempotent (first registration wins).
pub fn install() {
    numadag_runtime::register_proc_backend(Box::new(|config, workers| {
        Box::new(ProcExecutor::new(config, workers))
    }));
}

/// Re-enters the process as a worker when launched by a pool: if the
/// argv contains [`WORKER_FLAG`] and [`CONNECT_ENV`] is set, runs the
/// worker loop and exits the process. Call this before argument parsing in
/// every binary that can host the proc backend.
pub fn maybe_run_worker() {
    let flagged = std::env::args().any(|arg| arg == WORKER_FLAG);
    if flagged && std::env::var(CONNECT_ENV).is_ok() {
        match run_worker_from_env() {
            Ok(()) => std::process::exit(0),
            Err(e) => {
                eprintln!("numadag-proc worker: {e}");
                std::process::exit(1);
            }
        }
    }
}
