//! Coordinator side: the worker-process pool.
//!
//! [`WorkerPool::spawn`] re-execs the current executable once per worker
//! (passing the rendezvous socket through the environment), collects each
//! worker's `hello`, and then runs a startup barrier so every later
//! dispatch starts from a known-good collective state. Barriers follow the
//! oneCCL shape — a non-blocking state machine with an explicit
//! [`CollectiveBarrier::start`] and repeated [`CollectiveBarrier::update`]
//! polls — rather than one blocking wait per worker, so a dead worker
//! surfaces as a killed slot instead of a hang.
//!
//! Per-cell dispatch is a short serial conversation on one worker's socket:
//! config sync (only when the worker's last-acked config fingerprint
//! differs), spec transfer (only the first time this worker sees the spec),
//! `assign`, then `data_home` / `steal` / `done` replies. Any framing
//! failure or timeout on that conversation kills the worker and redispatches
//! the cell to a live one; a structured `error` reply is deterministic
//! (bad policy, bad spec) and propagates instead of retrying.

use std::collections::{HashMap, HashSet};
use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, Weak};
use std::time::{Duration, Instant};

use numadag_runtime::framing::{read_frame, to_line, untag, write_frame, FrameError};
use numadag_runtime::{ExecutionConfig, ExecutionReport};
use numadag_tdg::TaskGraphSpec;
use numadag_trace::TraceEvent;
use serde::Value;

use crate::protocol::{
    decode_data_home, decode_done, decode_epoch, decode_error, decode_hello, decode_steal,
    encode_assign, encode_barrier, encode_config, encode_shutdown, encode_spec, Assignment,
};
use crate::worker::{CONNECT_ENV, WORKER_ENV, WORKER_FLAG};

/// How a worker pool is launched.
#[derive(Clone, Debug)]
pub struct PoolConfig {
    /// Number of worker processes.
    pub workers: usize,
    /// Arguments passed to the re-exec'd executable. The default,
    /// `["--proc-worker"]`, is what [`crate::maybe_run_worker`] looks for;
    /// test binaries override this to re-enter through a libtest filter.
    pub worker_args: Vec<String>,
    /// Extra environment for the workers (fault injection in tests).
    pub worker_env: Vec<(String, String)>,
    /// Deadline for all workers to connect and pass the startup barrier.
    pub spawn_timeout: Duration,
    /// Deadline for one cell's conversation; a worker quiet for longer is
    /// treated as lost and its cell redispatched.
    pub cell_timeout: Duration,
}

impl PoolConfig {
    /// A pool of `workers` processes with default timeouts.
    pub fn new(workers: usize) -> Self {
        PoolConfig {
            workers: workers.max(1),
            worker_args: vec![WORKER_FLAG.to_string()],
            worker_env: Vec::new(),
            spawn_timeout: Duration::from_secs(30),
            cell_timeout: Duration::from_secs(120),
        }
    }

    /// Replaces the worker argv (see [`PoolConfig::worker_args`]).
    pub fn with_worker_args(mut self, args: Vec<String>) -> Self {
        self.worker_args = args;
        self
    }

    /// Adds one environment variable to every worker.
    pub fn with_env(mut self, key: &str, value: &str) -> Self {
        self.worker_env.push((key.to_string(), value.to_string()));
        self
    }
}

/// Failures of the multi-process backend.
#[derive(Debug)]
pub enum ProcError {
    /// The pool could not be brought up (exec, bind, or startup barrier).
    Spawn(String),
    /// A worker reported a structured, deterministic failure — retrying on
    /// another worker would fail identically.
    Worker {
        /// The reporting worker's id.
        worker: u64,
        /// Its error message.
        message: String,
    },
    /// Workers kept dying until none were left to run the cell.
    AllWorkersDead {
        /// The cell that could not be placed.
        cell: u64,
    },
    /// A reply decoded but contradicted itself (e.g. `data_home` bytes
    /// disagreeing with the report it accompanies).
    Protocol {
        /// The offending worker's id.
        worker: u64,
        /// What was inconsistent.
        message: String,
    },
}

impl std::fmt::Display for ProcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProcError::Spawn(m) => write!(f, "worker pool spawn failed: {m}"),
            ProcError::Worker { worker, message } => {
                write!(f, "worker {worker} reported: {message}")
            }
            ProcError::AllWorkersDead { cell } => {
                write!(f, "no live workers left to execute cell {cell}")
            }
            ProcError::Protocol { worker, message } => {
                write!(f, "protocol violation by worker {worker}: {message}")
            }
        }
    }
}

impl std::error::Error for ProcError {}

/// Point-in-time snapshot of the pool's counters (see
/// [`WorkerPool::stats`]). `Display` renders the `key=value` line the
/// `figure1` bin prints for CI to grep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker processes launched over the pool's lifetime.
    pub workers_spawned: u64,
    /// Workers currently alive.
    pub workers_alive: u64,
    /// Cells handed to [`WorkerPool::run_cell`].
    pub cells_dispatched: u64,
    /// Cells re-sent to another worker after their first worker was lost.
    pub redispatches: u64,
    /// `config` messages sent (one per worker per distinct config).
    pub config_broadcasts: u64,
    /// `spec` messages sent (one per worker per distinct workload).
    pub spec_transfers: u64,
    /// Collective barriers completed (startup + shutdown drains).
    pub barriers: u64,
}

impl std::fmt::Display for PoolStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "workers_spawned={} workers_alive={} cells_dispatched={} redispatches={} \
             config_broadcasts={} spec_transfers={} barriers={}",
            self.workers_spawned,
            self.workers_alive,
            self.cells_dispatched,
            self.redispatches,
            self.config_broadcasts,
            self.spec_transfers,
            self.barriers,
        )
    }
}

struct SlotState {
    child: Child,
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// Fingerprints of specs this worker already holds.
    specs: HashSet<u64>,
    /// Fingerprint of the config this worker last acknowledged.
    config_fp: Option<u64>,
}

struct WorkerSlot {
    id: u64,
    alive: AtomicBool,
    state: Mutex<SlotState>,
}

impl WorkerSlot {
    fn lock(&self) -> MutexGuard<'_, SlotState> {
        // A panic while holding the lock leaves the worker in an unknown
        // protocol state; the slot is killed below either way, so the
        // poisoned state is safe to take over.
        match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn kill(&self, state: &mut SlotState) {
        self.alive.store(false, Ordering::SeqCst);
        let _ = state.child.kill();
        let _ = state.child.wait();
    }
}

#[derive(Default)]
struct Counters {
    cells_dispatched: AtomicU64,
    redispatches: AtomicU64,
    config_broadcasts: AtomicU64,
    spec_transfers: AtomicU64,
    barriers: AtomicU64,
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in bytes {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Stable fingerprint of an [`ExecutionConfig`]'s wire form, used both as
/// the config's epoch tag and as the "has this worker seen it" key.
fn config_fingerprint(config: &ExecutionConfig) -> u64 {
    fnv1a(to_line(&encode_config(0, config)).as_bytes())
}

enum DispatchFailure {
    /// The worker died or corrupted its stream: killed, cell redispatchable.
    WorkerLost,
    /// Deterministic failure; retrying elsewhere would reproduce it.
    Fatal(ProcError),
}

/// A pool of worker processes executing sweep cells over newline-JSON IPC.
pub struct WorkerPool {
    slots: Vec<Arc<WorkerSlot>>,
    next_slot: AtomicU64,
    next_cell: AtomicU64,
    next_epoch: AtomicU64,
    cell_timeout: Duration,
    counters: Counters,
}

impl WorkerPool {
    /// Launches the workers and runs the startup barrier.
    pub fn spawn(config: PoolConfig) -> Result<Arc<WorkerPool>, ProcError> {
        let spawn_err = |m: String| ProcError::Spawn(m);
        let listener = TcpListener::bind("127.0.0.1:0")
            .map_err(|e| spawn_err(format!("cannot bind rendezvous socket: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| spawn_err(format!("cannot read rendezvous address: {e}")))?;
        let exe = std::env::current_exe()
            .map_err(|e| spawn_err(format!("cannot locate own executable: {e}")))?;

        let mut unmatched: HashMap<u64, Child> = HashMap::new();
        for id in 0..config.workers {
            let mut cmd = Command::new(&exe);
            cmd.args(&config.worker_args)
                .env(CONNECT_ENV, addr.to_string())
                .env(WORKER_ENV, id.to_string())
                .stdin(Stdio::null())
                // Workers of a test binary re-enter through libtest, which
                // chats on stdout; none of it is protocol (IPC is TCP).
                .stdout(Stdio::null());
            for (key, value) in &config.worker_env {
                cmd.env(key, value);
            }
            let child = cmd
                .spawn()
                .map_err(|e| spawn_err(format!("cannot spawn worker {id}: {e}")))?;
            unmatched.insert(id as u64, child);
        }

        // Rendezvous: accept until every worker said hello. Non-blocking
        // accept so a worker that dies before connecting trips the deadline
        // instead of blocking forever.
        listener
            .set_nonblocking(true)
            .map_err(|e| spawn_err(format!("cannot configure rendezvous socket: {e}")))?;
        let deadline = Instant::now() + config.spawn_timeout;
        let mut slots: Vec<Arc<WorkerSlot>> = Vec::new();
        while slots.len() < config.workers {
            if Instant::now() > deadline {
                for (_, mut child) in unmatched {
                    let _ = child.kill();
                    let _ = child.wait();
                }
                return Err(spawn_err(format!(
                    "only {}/{} workers connected within {:?}",
                    slots.len(),
                    config.workers,
                    config.spawn_timeout
                )));
            }
            let (stream, _) = match listener.accept() {
                Ok(accepted) => accepted,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                    continue;
                }
                Err(e) => return Err(spawn_err(format!("rendezvous accept failed: {e}"))),
            };
            stream
                .set_nonblocking(false)
                .and_then(|_| stream.set_nodelay(true))
                .and_then(|_| stream.set_read_timeout(Some(config.spawn_timeout)))
                .map_err(|e| spawn_err(format!("cannot configure worker socket: {e}")))?;
            let reader_stream = stream
                .try_clone()
                .map_err(|e| spawn_err(format!("cannot clone worker socket: {e}")))?;
            let mut reader = BufReader::new(reader_stream);
            let hello = read_frame(&mut reader)
                .map_err(|e| spawn_err(format!("bad hello frame: {e}")))?
                .ok_or_else(|| spawn_err("worker closed before hello".to_string()))?;
            let value: Value = serde_json::from_str(&hello)
                .map_err(|e| spawn_err(format!("hello is not JSON: {e}")))?;
            let (tag, payload) =
                untag(&value).map_err(|e| spawn_err(format!("bad hello envelope: {e}")))?;
            if tag != "hello" {
                return Err(spawn_err(format!("expected hello, got {tag:?}")));
            }
            let (worker, _pid) =
                decode_hello(payload).map_err(|e| spawn_err(format!("bad hello: {e}")))?;
            let child = unmatched
                .remove(&worker)
                .ok_or_else(|| spawn_err(format!("unexpected hello from worker {worker}")))?;
            slots.push(Arc::new(WorkerSlot {
                id: worker,
                alive: AtomicBool::new(true),
                state: Mutex::new(SlotState {
                    child,
                    reader,
                    writer: stream,
                    specs: HashSet::new(),
                    config_fp: None,
                }),
            }));
        }
        slots.sort_by_key(|slot| slot.id);

        let pool = Arc::new(WorkerPool {
            slots,
            next_slot: AtomicU64::new(0),
            next_cell: AtomicU64::new(0),
            next_epoch: AtomicU64::new(0),
            cell_timeout: config.cell_timeout,
            counters: Counters::default(),
        });
        // Startup collective: every worker must answer the epoch-0 barrier
        // before any cell is dispatched.
        pool.barrier(config.spawn_timeout);
        if pool.alive_workers() == 0 {
            return Err(spawn_err(
                "all workers died during the startup barrier".to_string(),
            ));
        }
        Ok(pool)
    }

    /// Number of worker slots (dead or alive).
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// Number of workers still alive.
    pub fn alive_workers(&self) -> u64 {
        self.slots
            .iter()
            .filter(|slot| slot.alive.load(Ordering::SeqCst))
            .count() as u64
    }

    /// Snapshot of the pool's counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            workers_spawned: self.slots.len() as u64,
            workers_alive: self.alive_workers(),
            cells_dispatched: self.counters.cells_dispatched.load(Ordering::Relaxed),
            redispatches: self.counters.redispatches.load(Ordering::Relaxed),
            config_broadcasts: self.counters.config_broadcasts.load(Ordering::Relaxed),
            spec_transfers: self.counters.spec_transfers.load(Ordering::Relaxed),
            barriers: self.counters.barriers.load(Ordering::Relaxed),
        }
    }

    /// Runs a full collective barrier (start + update polls) against every
    /// live worker, killing any that fail to answer before `timeout`.
    fn barrier(&self, timeout: Duration) {
        let epoch = self.next_epoch.fetch_add(1, Ordering::SeqCst);
        let mut collective = CollectiveBarrier::new(self, epoch);
        collective.start();
        let deadline = Instant::now() + timeout;
        while !collective.update() {
            if Instant::now() > deadline {
                for slot in &collective.pending {
                    let mut state = slot.lock();
                    slot.kill(&mut state);
                }
                break;
            }
        }
        self.counters.barriers.fetch_add(1, Ordering::Relaxed);
    }

    fn acquire_slot(&self) -> Option<Arc<WorkerSlot>> {
        let n = self.slots.len();
        let start = self.next_slot.fetch_add(1, Ordering::Relaxed) as usize;
        for offset in 0..n {
            let slot = &self.slots[(start + offset) % n];
            if slot.alive.load(Ordering::SeqCst) {
                return Some(slot.clone());
            }
        }
        None
    }

    /// Executes one sweep cell on some live worker, redispatching on worker
    /// loss. `policy_label` must parse back to the policy that produced
    /// `policy_name` (its `'static` display name, re-attached to the report
    /// on this side of the wire — labels never travel).
    #[allow(clippy::too_many_arguments)]
    pub fn run_cell(
        &self,
        spec: &TaskGraphSpec,
        policy_label: &str,
        policy_name: &'static str,
        policy_seed: u64,
        config: &ExecutionConfig,
        events: bool,
        placements: bool,
    ) -> Result<(ExecutionReport, Vec<TraceEvent>), ProcError> {
        let cell = self.next_cell.fetch_add(1, Ordering::Relaxed);
        self.counters
            .cells_dispatched
            .fetch_add(1, Ordering::Relaxed);
        let config_fp = config_fingerprint(config);
        let assignment = Assignment {
            cell,
            spec_fp: spec.fingerprint(),
            policy: policy_label.to_string(),
            policy_seed,
            events,
            placements,
        };
        loop {
            let slot = self
                .acquire_slot()
                .ok_or(ProcError::AllWorkersDead { cell })?;
            match self.dispatch_on(&slot, &assignment, spec, policy_name, config, config_fp) {
                Ok(result) => return Ok(result),
                Err(DispatchFailure::WorkerLost) => {
                    self.counters.redispatches.fetch_add(1, Ordering::Relaxed);
                }
                Err(DispatchFailure::Fatal(e)) => return Err(e),
            }
        }
    }

    fn dispatch_on(
        &self,
        slot: &WorkerSlot,
        assignment: &Assignment,
        spec: &TaskGraphSpec,
        policy_name: &'static str,
        config: &ExecutionConfig,
        config_fp: u64,
    ) -> Result<(ExecutionReport, Vec<TraceEvent>), DispatchFailure> {
        let mut state = slot.lock();
        if !slot.alive.load(Ordering::SeqCst) {
            return Err(DispatchFailure::WorkerLost);
        }
        let lost = |slot: &WorkerSlot, state: &mut SlotState| {
            slot.kill(state);
            DispatchFailure::WorkerLost
        };
        if state
            .reader
            .get_ref()
            .set_read_timeout(Some(self.cell_timeout))
            .is_err()
        {
            return Err(lost(slot, &mut state));
        }

        // Config sync: only when this worker's acked fingerprint differs.
        if state.config_fp != Some(config_fp) {
            if write_frame(&mut state.writer, &encode_config(config_fp, config)).is_err() {
                return Err(lost(slot, &mut state));
            }
            self.counters
                .config_broadcasts
                .fetch_add(1, Ordering::Relaxed);
            // The conversation is serial under the slot lock, so the next
            // frame must be the ack (or a structured rejection).
            match read_tagged(&mut state.reader) {
                Ok((tag, payload)) if tag == "config_ack" => {
                    match decode_epoch(&payload, "config_ack") {
                        Ok(epoch) if epoch == config_fp => state.config_fp = Some(config_fp),
                        _ => return Err(lost(slot, &mut state)),
                    }
                }
                Ok((tag, payload)) if tag == "error" => {
                    let message =
                        decode_error(&payload).unwrap_or_else(|e| format!("unreadable error: {e}"));
                    return Err(DispatchFailure::Fatal(ProcError::Worker {
                        worker: slot.id,
                        message,
                    }));
                }
                _ => return Err(lost(slot, &mut state)),
            }
        }

        // Spec transfer: ship once per worker, reference by fingerprint after.
        if !state.specs.contains(&assignment.spec_fp) {
            if write_frame(&mut state.writer, &encode_spec(spec)).is_err() {
                return Err(lost(slot, &mut state));
            }
            state.specs.insert(assignment.spec_fp);
            self.counters.spec_transfers.fetch_add(1, Ordering::Relaxed);
        }

        if write_frame(&mut state.writer, &encode_assign(assignment)).is_err() {
            return Err(lost(slot, &mut state));
        }

        // Await data_home / steal / done (in that order from a correct
        // worker, but only `done` is load-bearing — the notifications are
        // cross-checked against the report they precede).
        let mut deferred: Option<u64> = None;
        let mut stolen: Option<u64> = None;
        loop {
            let (tag, payload) = match read_tagged(&mut state.reader) {
                Ok(parts) => parts,
                Err(_) => return Err(lost(slot, &mut state)),
            };
            match tag.as_str() {
                "data_home" => match decode_data_home(&payload) {
                    Ok((cell, bytes)) if cell == assignment.cell => deferred = Some(bytes),
                    _ => return Err(lost(slot, &mut state)),
                },
                "steal" => match decode_steal(&payload) {
                    Ok((cell, count)) if cell == assignment.cell => stolen = Some(count),
                    _ => return Err(lost(slot, &mut state)),
                },
                "done" => {
                    let (cell, report, events) =
                        match decode_done(&payload, spec.name.clone(), policy_name) {
                            Ok(done) => done,
                            Err(_) => return Err(lost(slot, &mut state)),
                        };
                    if cell != assignment.cell {
                        return Err(lost(slot, &mut state));
                    }
                    if deferred != Some(report.deferred_bytes)
                        || stolen != Some(report.stolen_tasks as u64)
                    {
                        return Err(DispatchFailure::Fatal(ProcError::Protocol {
                            worker: slot.id,
                            message: format!(
                                "done for cell {cell} contradicts its notifications \
                                 (data_home {deferred:?} vs {}, steal {stolen:?} vs {})",
                                report.deferred_bytes, report.stolen_tasks
                            ),
                        }));
                    }
                    return Ok((report, events));
                }
                "error" => {
                    let message =
                        decode_error(&payload).unwrap_or_else(|e| format!("unreadable error: {e}"));
                    return Err(DispatchFailure::Fatal(ProcError::Worker {
                        worker: slot.id,
                        message,
                    }));
                }
                _ => return Err(lost(slot, &mut state)),
            }
        }
    }
}

/// Reads and untags one frame; any failure (EOF, timeout, framing, JSON)
/// collapses to `Err` — the caller kills the worker for all of them.
fn read_tagged(reader: &mut BufReader<TcpStream>) -> Result<(String, Value), String> {
    let line = match read_frame(reader) {
        Ok(Some(line)) => line,
        Ok(None) => return Err("worker closed the connection".to_string()),
        Err(e) => return Err(format!("bad frame: {e}")),
    };
    let value: Value = serde_json::from_str(&line).map_err(|e| format!("invalid JSON: {e}"))?;
    let (tag, payload) = untag(&value)?;
    Ok((tag, payload.clone()))
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Drain barrier: prove every channel is quiet, then dismiss the
        // workers and reap them.
        self.barrier(Duration::from_secs(5));
        for slot in &self.slots {
            if !slot.alive.load(Ordering::SeqCst) {
                continue;
            }
            let mut state = slot.lock();
            let _ = write_frame(&mut state.writer, &encode_shutdown());
        }
        for slot in &self.slots {
            let mut state = slot.lock();
            let deadline = Instant::now() + Duration::from_secs(5);
            loop {
                match state.child.try_wait() {
                    Ok(Some(_)) => break,
                    Ok(None) if Instant::now() < deadline => {
                        std::thread::sleep(Duration::from_millis(10))
                    }
                    _ => {
                        let _ = state.child.kill();
                        let _ = state.child.wait();
                        break;
                    }
                }
            }
        }
    }
}

/// oneCCL-style non-blocking barrier: `start()` posts the barrier message to
/// every live worker, `update()` polls each pending worker with a short read
/// deadline and reports completion. Workers that fail mid-barrier are killed
/// and dropped from the pending set (a dead worker cannot hold a barrier).
struct CollectiveBarrier<'p> {
    pool: &'p WorkerPool,
    epoch: u64,
    pending: Vec<Arc<WorkerSlot>>,
    started: bool,
}

impl<'p> CollectiveBarrier<'p> {
    fn new(pool: &'p WorkerPool, epoch: u64) -> Self {
        CollectiveBarrier {
            pool,
            epoch,
            pending: pool
                .slots
                .iter()
                .filter(|slot| slot.alive.load(Ordering::SeqCst))
                .cloned()
                .collect(),
            started: false,
        }
    }

    fn start(&mut self) {
        let epoch = self.epoch;
        self.pending.retain(|slot| {
            let mut state = slot.lock();
            if write_frame(&mut state.writer, &encode_barrier(epoch)).is_err() {
                slot.kill(&mut state);
                return false;
            }
            true
        });
        self.started = true;
        let _ = self.pool; // pool is the lifetime anchor; counters live there
    }

    /// One poll round; returns true when every pending worker has answered.
    fn update(&mut self) -> bool {
        assert!(self.started, "update() before start()");
        let epoch = self.epoch;
        self.pending.retain(|slot| {
            let mut state = slot.lock();
            if state
                .reader
                .get_ref()
                .set_read_timeout(Some(Duration::from_millis(25)))
                .is_err()
            {
                slot.kill(&mut state);
                return false;
            }
            match read_frame(&mut state.reader) {
                Ok(Some(line)) => {
                    let acked = serde_json::from_str(&line).ok().and_then(|value| {
                        untag(&value).ok().and_then(|(tag, payload)| {
                            if tag == "barrier_ack" {
                                decode_epoch(payload, "barrier_ack").ok()
                            } else {
                                None
                            }
                        })
                    }) == Some(epoch);
                    if acked {
                        false // answered: out of the pending set
                    } else {
                        // Anything else on a quiesced channel is corruption.
                        slot.kill(&mut state);
                        false
                    }
                }
                Err(FrameError::Io(e))
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    true // still pending
                }
                Ok(None) | Err(_) => {
                    slot.kill(&mut state);
                    false
                }
            }
        });
        self.pending.is_empty()
    }
}

static SHARED: OnceLock<Mutex<Weak<WorkerPool>>> = OnceLock::new();

/// Returns the process-wide shared pool, spawning one if none is live or
/// the live one is smaller than `config.workers`. Executors hold `Arc`s;
/// the pool shuts its workers down when the last executor drops.
pub fn shared_pool(config: PoolConfig) -> Result<Arc<WorkerPool>, ProcError> {
    let cell = SHARED.get_or_init(|| Mutex::new(Weak::new()));
    let mut guard = match cell.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    if let Some(pool) = guard.upgrade() {
        if pool.num_slots() >= config.workers && pool.alive_workers() > 0 {
            return Ok(pool);
        }
    }
    let pool = WorkerPool::spawn(config)?;
    *guard = Arc::downgrade(&pool);
    Ok(pool)
}
