//! [`ProcExecutor`]: the [`Executor`] implementation backed by the worker
//! pool.

use std::sync::{Arc, Mutex};

use numadag_core::SchedulingPolicy;
use numadag_runtime::{CellContext, ExecutionConfig, ExecutionReport, Executor, Simulator};
use numadag_tdg::TaskGraphSpec;

use crate::pool::{shared_pool, PoolConfig, PoolStats, ProcError, WorkerPool};

/// The multi-process backend: ships sweep cells to worker processes and
/// re-labels the reports they send back.
///
/// Workers run the deterministic in-process [`Simulator`] over the same
/// spec, policy and seed, so a proc-backend report is byte-identical to a
/// simulator report of the same cell — which is why the backend reports
/// its measurements under the `"simulator"` label (see
/// `numadag_runtime::Backend::report_label`).
pub struct ProcExecutor {
    config: ExecutionConfig,
    workers: usize,
    pool: Mutex<Option<Arc<WorkerPool>>>,
}

impl ProcExecutor {
    /// An executor that lazily attaches to the process-wide shared pool
    /// (spawning `workers` worker processes on first use).
    pub fn new(config: ExecutionConfig, workers: usize) -> Self {
        ProcExecutor {
            config,
            workers,
            pool: Mutex::new(None),
        }
    }

    /// An executor bound to an explicit pool (tests use this to inject
    /// fault-configured pools).
    pub fn with_pool(config: ExecutionConfig, pool: Arc<WorkerPool>) -> Self {
        let workers = pool.num_slots();
        ProcExecutor {
            config,
            workers,
            pool: Mutex::new(Some(pool)),
        }
    }

    fn pool(&self) -> Result<Arc<WorkerPool>, ProcError> {
        let mut guard = match self.pool.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        if let Some(pool) = guard.as_ref() {
            return Ok(pool.clone());
        }
        let pool = shared_pool(PoolConfig::new(self.workers))?;
        *guard = Some(pool.clone());
        Ok(pool)
    }

    /// Counter snapshot of the attached pool (`None` before first use).
    pub fn stats(&self) -> Option<PoolStats> {
        let guard = match self.pool.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.as_ref().map(|pool| pool.stats())
    }

    /// The fallible twin of [`Executor::execute_cell`]: runs the cell on the
    /// pool and returns structured [`ProcError`]s instead of panicking.
    pub fn try_execute_cell(
        &self,
        spec: &TaskGraphSpec,
        policy: &mut dyn SchedulingPolicy,
        ctx: &CellContext<'_>,
    ) -> Result<ExecutionReport, ProcError> {
        let pool = self.pool()?;
        let events = self.config.trace_sink.is_enabled();
        let placements = self.config.collect_trace;
        let (report, collected) = pool.run_cell(
            spec,
            ctx.policy_label,
            policy.name(),
            ctx.seed,
            &self.config,
            events,
            placements,
        )?;
        for event in collected {
            self.config.trace_sink.record(event);
        }
        Ok(report)
    }
}

impl Executor for ProcExecutor {
    fn backend_name(&self) -> &'static str {
        "proc"
    }

    fn config(&self) -> &ExecutionConfig {
        &self.config
    }

    /// Without a [`CellContext`] there is no policy provenance to ship, so
    /// this runs the cell in-process through the same [`Simulator`] the
    /// workers use — identical results, no IPC.
    fn execute(&self, spec: &TaskGraphSpec, policy: &mut dyn SchedulingPolicy) -> ExecutionReport {
        Simulator::new(self.config.clone()).run(spec, policy)
    }

    /// # Panics
    /// Panics with the [`ProcError`] rendered into the message when the pool
    /// cannot produce the cell (spawn failure, every worker dead, or a
    /// worker-side structured error) — a loud fast exit instead of a hang.
    fn execute_cell(
        &self,
        spec: &TaskGraphSpec,
        policy: &mut dyn SchedulingPolicy,
        ctx: Option<&CellContext<'_>>,
    ) -> ExecutionReport {
        match ctx {
            None => self.execute(spec, policy),
            Some(ctx) => match self.try_execute_cell(spec, policy, ctx) {
                Ok(report) => report,
                Err(e) => panic!("proc backend failed: {e}"),
            },
        }
    }
}
