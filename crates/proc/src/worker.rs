//! Worker-process side of the proc backend.
//!
//! A worker is the same executable as the coordinator, re-entered through
//! [`crate::maybe_run_worker`]: the pool self-execs `current_exe()` with a
//! `--proc-worker` argument and passes the coordinator's socket address via
//! the environment. The worker connects back, introduces itself with
//! `hello`, and then serves a simple request loop — `config`, `spec`,
//! `assign`, `barrier`, `shutdown` — until the coordinator closes the
//! conversation. All randomness comes from the seeds in the messages, so a
//! cell executed here is byte-identical to the same cell executed by an
//! in-process [`Simulator`].

use std::collections::HashMap;
use std::io::BufReader;
use std::net::TcpStream;
use std::sync::Arc;

use numadag_core::{make_policy, PolicyKind};
use numadag_runtime::framing::{read_frame, untag, write_frame, FrameError};
use numadag_runtime::{ExecutionConfig, Simulator};
use numadag_tdg::TaskGraphSpec;
use numadag_trace::MemorySink;
use serde::Value;

use crate::protocol::{
    decode_assign, decode_config, decode_epoch, decode_spec, encode_barrier_ack, encode_config_ack,
    encode_data_home, encode_done, encode_error, encode_hello, encode_steal,
};

/// Environment variable carrying the coordinator's `host:port`.
pub const CONNECT_ENV: &str = "NUMADAG_PROC_CONNECT";
/// Environment variable carrying this worker's numeric id.
pub const WORKER_ENV: &str = "NUMADAG_PROC_WORKER";
/// The argv flag the pool appends to re-enter the executable as a worker.
pub const WORKER_FLAG: &str = "--proc-worker";

/// Fault injection (tests only): exit the process hard on assignment
/// `N + 1`, before any reply, simulating a mid-cell crash.
pub const CRASH_AFTER_ENV: &str = "NUMADAG_PROC_CRASH_AFTER";
/// Fault injection (tests only): restrict [`CRASH_AFTER_ENV`] /
/// [`GARBAGE_AFTER_ENV`] to the worker with this id.
pub const CRASH_WORKER_ENV: &str = "NUMADAG_PROC_CRASH_WORKER";
/// Fault injection (tests only): on assignment `N + 1`, write a line that is
/// not valid JSON instead of the `done` reply.
pub const GARBAGE_AFTER_ENV: &str = "NUMADAG_PROC_GARBAGE_AFTER";

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

struct FaultPlan {
    crash_after: Option<u64>,
    garbage_after: Option<u64>,
}

impl FaultPlan {
    fn from_env(worker: u64) -> FaultPlan {
        let applies = match env_u64(CRASH_WORKER_ENV) {
            Some(target) => target == worker,
            None => true,
        };
        FaultPlan {
            crash_after: env_u64(CRASH_AFTER_ENV).filter(|_| applies),
            garbage_after: env_u64(GARBAGE_AFTER_ENV).filter(|_| applies),
        }
    }
}

/// Runs the worker loop, connecting to the address in [`CONNECT_ENV`].
/// Returns when the coordinator sends `shutdown` or closes the socket;
/// errors are connection-level failures (protocol-level problems are
/// reported back to the coordinator as `error` messages instead).
pub fn run_worker_from_env() -> Result<(), String> {
    let addr = std::env::var(CONNECT_ENV)
        .map_err(|_| format!("{CONNECT_ENV} is not set: not launched by a worker pool"))?;
    let worker =
        env_u64(WORKER_ENV).ok_or_else(|| format!("{WORKER_ENV} is not set or not a number"))?;
    let stream = TcpStream::connect(&addr)
        .map_err(|e| format!("worker {worker}: cannot connect to coordinator {addr}: {e}"))?;
    stream
        .set_nodelay(true)
        .map_err(|e| format!("worker {worker}: set_nodelay failed: {e}"))?;
    let writer = stream
        .try_clone()
        .map_err(|e| format!("worker {worker}: cannot clone socket: {e}"))?;
    run_worker(
        worker,
        BufReader::new(stream),
        writer,
        FaultPlan::from_env(worker),
    )
    .map_err(|e| format!("worker {worker}: {e}"))
}

fn run_worker(
    worker: u64,
    mut reader: BufReader<TcpStream>,
    mut writer: TcpStream,
    faults: FaultPlan,
) -> Result<(), String> {
    use std::io::Write as _;

    let send = |writer: &mut TcpStream, value: &Value| -> Result<(), String> {
        write_frame(writer, value).map_err(|e| format!("write to coordinator failed: {e}"))
    };

    send(
        &mut writer,
        &encode_hello(worker, std::process::id() as u64),
    )?;

    let mut base_config: Option<ExecutionConfig> = None;
    let mut specs: HashMap<u64, TaskGraphSpec> = HashMap::new();
    let mut assigns_seen: u64 = 0;

    loop {
        let line = match read_frame(&mut reader) {
            Ok(Some(line)) => line,
            // Coordinator gone (clean close either way): nothing left to do.
            Ok(None) | Err(FrameError::Io(_)) => return Ok(()),
            Err(e) => {
                // A malformed frame *from the coordinator* is unrecoverable
                // (framing is lost), but say so before going.
                let _ = write_frame(&mut writer, &encode_error(&format!("bad frame: {e}")));
                return Err(format!("coordinator sent an unreadable frame: {e}"));
            }
        };
        let value: Value = match serde_json::from_str(&line) {
            Ok(value) => value,
            Err(e) => {
                let _ = write_frame(&mut writer, &encode_error(&format!("bad frame: {e}")));
                return Err(format!("coordinator sent invalid JSON: {e}"));
            }
        };
        let (tag, payload) = match untag(&value) {
            Ok(parts) => parts,
            Err(e) => {
                send(&mut writer, &encode_error(&format!("bad envelope: {e}")))?;
                continue;
            }
        };
        match tag.as_str() {
            "config" => match decode_config(payload) {
                Ok((epoch, config)) => {
                    base_config = Some(config);
                    send(&mut writer, &encode_config_ack(epoch))?;
                }
                Err(e) => send(&mut writer, &encode_error(&format!("bad config: {e}")))?,
            },
            "spec" => match decode_spec(payload) {
                Ok((fp, spec)) => {
                    specs.insert(fp, spec);
                }
                Err(e) => send(&mut writer, &encode_error(&format!("bad spec: {e}")))?,
            },
            "assign" => {
                assigns_seen += 1;
                if matches!(faults.crash_after, Some(n) if assigns_seen > n) {
                    // Simulated crash: die without a word, mid-cell.
                    std::process::exit(3);
                }
                let assign = match decode_assign(payload) {
                    Ok(assign) => assign,
                    Err(e) => {
                        send(&mut writer, &encode_error(&format!("bad assign: {e}")))?;
                        continue;
                    }
                };
                let config = match &base_config {
                    Some(config) => config,
                    None => {
                        send(
                            &mut writer,
                            &encode_error("assign before any config was shipped"),
                        )?;
                        continue;
                    }
                };
                let spec = match specs.get(&assign.spec_fp) {
                    Some(spec) => spec,
                    None => {
                        send(
                            &mut writer,
                            &encode_error(&format!(
                                "assign references unknown spec {:#x}",
                                assign.spec_fp
                            )),
                        )?;
                        continue;
                    }
                };
                let kind = match assign.policy.parse::<PolicyKind>() {
                    Ok(kind) => kind,
                    Err(e) => {
                        send(&mut writer, &encode_error(&format!("bad policy: {e}")))?;
                        continue;
                    }
                };
                let mut policy = match make_policy(kind, spec, assign.policy_seed) {
                    Some(policy) => policy,
                    None => {
                        send(
                            &mut writer,
                            &encode_error(&format!(
                                "policy {:?} is unavailable for workload {:?} \
                                 (no expert placement?)",
                                assign.policy, spec.name
                            )),
                        )?;
                        continue;
                    }
                };
                let mut cell_config = config.clone();
                if assign.placements {
                    cell_config = cell_config.with_trace();
                }
                let sink = if assign.events {
                    let sink = Arc::new(MemorySink::new());
                    cell_config = cell_config.with_trace_sink(sink.clone());
                    Some(sink)
                } else {
                    None
                };
                let report = Simulator::new(cell_config).run(spec, policy.as_mut());
                let events = sink.map(|s| s.take()).unwrap_or_default();
                if matches!(faults.garbage_after, Some(n) if assigns_seen > n) {
                    // Simulated corruption: an unparseable line where the
                    // replies should be.
                    writer
                        .write_all(b"{this is not json\n")
                        .map_err(|e| format!("write to coordinator failed: {e}"))?;
                    continue;
                }
                send(
                    &mut writer,
                    &encode_data_home(assign.cell, report.deferred_bytes),
                )?;
                send(
                    &mut writer,
                    &encode_steal(assign.cell, report.stolen_tasks as u64),
                )?;
                send(&mut writer, &encode_done(assign.cell, &report, &events))?;
            }
            "barrier" => match decode_epoch(payload, "barrier") {
                Ok(epoch) => send(&mut writer, &encode_barrier_ack(epoch))?,
                Err(e) => send(&mut writer, &encode_error(&format!("bad barrier: {e}")))?,
            },
            "shutdown" => return Ok(()),
            other => {
                send(
                    &mut writer,
                    &encode_error(&format!("unknown message {other:?}")),
                )?;
            }
        }
    }
}
