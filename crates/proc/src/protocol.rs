//! Wire codec for the coordinator ↔ worker IPC.
//!
//! Every message is one newline-delimited JSON value (the framing itself —
//! line limits, truncation detection, UTF-8 validation — lives in
//! [`numadag_runtime::framing`], shared with the serve protocol). Messages
//! are externally tagged, `{"assign": {...}}`, with unit messages encoded as
//! bare strings (`"shutdown"`).
//!
//! Two encoding rules keep cross-process results byte-identical to
//! in-process runs:
//!
//! * **`f64` travels as a JSON number.** The vendored `serde_json`
//!   guarantees that parsing reproduces every finite shortest-round-trip
//!   formatted number exactly, so simulated makespans survive the hop
//!   bit-for-bit.
//! * **`u64`/`u128` travel as lowercase hex strings.** JSON numbers pass
//!   through an `f64`, which only holds 53 bits of integer; byte counters
//!   and fingerprints exceed that routinely.

use std::sync::Arc;

use numadag_numa::{CostModel, DistanceMatrix, NodeId, SocketId, Topology, TrafficStats};
use numadag_runtime::framing::{
    bool_field, f64_field, field, hex_u128, hex_u128_field, hex_u64, hex_u64_field, str_field,
    u64_field,
};
use numadag_runtime::{ExecutionConfig, ExecutionReport, StealMode, TaskPlacement};
use numadag_tdg::{AccessMode, DataAccess, TaskDescriptor, TaskGraph, TaskGraphSpec, TaskId};
use numadag_trace::{parse_event, TraceEvent};
use serde::{Serialize, Value};

/// Protocol version, sent in every `config` message. A worker that sees a
/// version it does not speak replies with `error` instead of guessing.
pub const PROTOCOL_VERSION: u64 = 1;

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn tag(name: &str, payload: Value) -> Value {
    Value::Object(vec![(name.to_string(), payload)])
}

fn s(text: impl Into<String>) -> Value {
    Value::String(text.into())
}

fn num(value: f64) -> Value {
    Value::Number(value)
}

fn arr(values: Vec<Value>) -> Value {
    Value::Array(values)
}

fn usize_field(value: &Value, variant: &str, name: &str) -> Result<usize, String> {
    Ok(u64_field(value, variant, name)? as usize)
}

fn array_field<'v>(value: &'v Value, variant: &str, name: &str) -> Result<&'v [Value], String> {
    field(value, variant, name)?
        .as_array()
        .map(|v| v.as_slice())
        .ok_or_else(|| format!("{variant}.{name} is not an array"))
}

// ---------------------------------------------------------------------------
// Coordinator → worker
// ---------------------------------------------------------------------------

/// One cell of work: run `policy` (seeded with `policy_seed`) over the spec
/// identified by `spec_fp` and report back under id `cell`.
#[derive(Clone, Debug, PartialEq)]
pub struct Assignment {
    /// Coordinator-side cell id, echoed back in `data_home`/`steal`/`done`.
    pub cell: u64,
    /// Fingerprint of a spec previously shipped with a `spec` message.
    pub spec_fp: u64,
    /// Canonical policy label ([`numadag_core::PolicyKind`] `FromStr` form).
    pub policy: String,
    /// Seed handed to the policy factory.
    pub policy_seed: u64,
    /// Emit `TraceEvent`s while executing and return them in `done`.
    pub events: bool,
    /// Collect the per-task placement trace into the report.
    pub placements: bool,
}

/// Encodes the `config` message: the full [`ExecutionConfig`] a worker needs
/// to mirror the coordinator's executor, tagged with `epoch` (the config's
/// own fingerprint) so acks can be matched to the config they acknowledge.
pub fn encode_config(epoch: u64, config: &ExecutionConfig) -> Value {
    let topo = &config.topology;
    let n = topo.num_sockets();
    let mut distances = Vec::with_capacity(n * n);
    for i in 0..n {
        for j in 0..n {
            distances.push(num(topo.distance(NodeId(i), NodeId(j)) as f64));
        }
    }
    let cost = &config.cost_model;
    tag(
        "config",
        obj(vec![
            ("version", num(PROTOCOL_VERSION as f64)),
            ("epoch", s(hex_u64(epoch))),
            (
                "topology",
                obj(vec![
                    ("name", s(topo.name())),
                    ("sockets", num(n as f64)),
                    ("cores", num(topo.cores_per_socket() as f64)),
                    ("distances", arr(distances)),
                ]),
            ),
            (
                "cost",
                obj(vec![
                    ("local_bandwidth", num(cost.local_bandwidth)),
                    ("local_latency", num(cost.local_latency)),
                    ("bandwidth_exponent", num(cost.bandwidth_exponent)),
                    ("latency_exponent", num(cost.latency_exponent)),
                    ("contention_factor", num(cost.contention_factor)),
                    ("time_per_work_unit", num(cost.time_per_work_unit)),
                ]),
            ),
            (
                "steal",
                s(match config.steal {
                    StealMode::NearestSocket => "nearest",
                    StealMode::NoStealing => "none",
                }),
            ),
            ("stage_timing", Value::Bool(config.stage_timing)),
            ("seed", s(hex_u64(config.seed))),
        ]),
    )
}

/// Decodes a `config` payload into its epoch and the reconstructed
/// [`ExecutionConfig`] (trace flags and sink are per-assignment, not part of
/// the shipped config).
pub fn decode_config(payload: &Value) -> Result<(u64, ExecutionConfig), String> {
    let version = u64_field(payload, "config", "version")?;
    if version != PROTOCOL_VERSION {
        return Err(format!(
            "config.version {version} is not the supported protocol version {PROTOCOL_VERSION}"
        ));
    }
    let epoch = hex_u64_field(payload, "config", "epoch")?;
    let topo = field(payload, "config", "topology")?;
    let name = str_field(topo, "config.topology", "name")?;
    let sockets = usize_field(topo, "config.topology", "sockets")?;
    let cores = usize_field(topo, "config.topology", "cores")?;
    let distances = array_field(topo, "config.topology", "distances")?;
    if distances.len() != sockets * sockets {
        return Err(format!(
            "config.topology.distances has {} entries, expected {}",
            distances.len(),
            sockets * sockets
        ));
    }
    let values = distances
        .iter()
        .map(|v| {
            v.as_u64()
                .map(|d| d as u32)
                .ok_or_else(|| "config.topology.distances entry is not a number".to_string())
        })
        .collect::<Result<Vec<u32>, String>>()?;
    let topology = Topology::new(
        name,
        sockets,
        cores,
        DistanceMatrix::from_rows(sockets, values),
    );
    let cost = field(payload, "config", "cost")?;
    let cost_model = CostModel {
        local_bandwidth: f64_field(cost, "config.cost", "local_bandwidth")?,
        local_latency: f64_field(cost, "config.cost", "local_latency")?,
        bandwidth_exponent: f64_field(cost, "config.cost", "bandwidth_exponent")?,
        latency_exponent: f64_field(cost, "config.cost", "latency_exponent")?,
        contention_factor: f64_field(cost, "config.cost", "contention_factor")?,
        time_per_work_unit: f64_field(cost, "config.cost", "time_per_work_unit")?,
    };
    let steal = match str_field(payload, "config", "steal")?.as_str() {
        "nearest" => StealMode::NearestSocket,
        "none" => StealMode::NoStealing,
        other => return Err(format!("config.steal {other:?} is not a known steal mode")),
    };
    let mut config = ExecutionConfig::new(topology)
        .with_cost_model(cost_model)
        .with_steal(steal)
        .with_seed(hex_u64_field(payload, "config", "seed")?);
    if bool_field(payload, "config", "stage_timing")? {
        config = config.with_stage_timing();
    }
    Ok((epoch, config))
}

fn encode_access(access: &DataAccess) -> Value {
    let mode = match access.mode {
        AccessMode::In => 0.0,
        AccessMode::Out => 1.0,
        AccessMode::InOut => 2.0,
    };
    arr(vec![
        num(access.region.0 as f64),
        num(mode),
        s(hex_u64(access.bytes)),
    ])
}

fn decode_access(value: &Value) -> Result<DataAccess, String> {
    let parts = value
        .as_array()
        .ok_or_else(|| "spec access is not an array".to_string())?;
    if parts.len() != 3 {
        return Err(format!(
            "spec access has {} entries, expected 3",
            parts.len()
        ));
    }
    let region = parts[0]
        .as_u64()
        .ok_or_else(|| "spec access region is not a number".to_string())?;
    let mode = match parts[1].as_u64() {
        Some(0) => AccessMode::In,
        Some(1) => AccessMode::Out,
        Some(2) => AccessMode::InOut,
        _ => return Err("spec access mode is not 0, 1 or 2".to_string()),
    };
    let bytes = parts[2]
        .as_str()
        .ok_or_else(|| "spec access bytes is not a hex string".to_string())
        .and_then(numadag_runtime::framing::parse_hex_u64)?;
    Ok(DataAccess {
        region: numadag_numa::RegionId(region as usize),
        mode,
        bytes,
    })
}

/// Encodes the `spec` message: a complete [`TaskGraphSpec`], keyed by its
/// fingerprint. Shipped once per worker; later assignments reference it by
/// `fp` alone.
pub fn encode_spec(spec: &TaskGraphSpec) -> Value {
    let tasks = spec
        .graph
        .tasks()
        .iter()
        .map(|task| {
            let deps = spec
                .graph
                .predecessors(task.id)
                .iter()
                .map(|(pred, bytes)| arr(vec![num(pred.0 as f64), s(hex_u64(*bytes))]))
                .collect();
            obj(vec![
                ("kind", s(task.kind.as_str())),
                ("work", num(task.work_units)),
                (
                    "accesses",
                    arr(task.accesses.iter().map(encode_access).collect()),
                ),
                ("deps", arr(deps)),
            ])
        })
        .collect();
    let regions = spec
        .region_sizes
        .iter()
        .map(|bytes| s(hex_u64(*bytes)))
        .collect();
    let ep = match &spec.ep_socket {
        Some(placement) => arr(placement.iter().map(|sock| num(*sock as f64)).collect()),
        None => Value::Null,
    };
    tag(
        "spec",
        obj(vec![
            ("fp", s(hex_u64(spec.fingerprint()))),
            ("name", s(spec.name.as_ref())),
            ("tasks", arr(tasks)),
            ("regions", arr(regions)),
            ("ep", ep),
        ]),
    )
}

/// Decodes a `spec` payload into the advertised fingerprint and the rebuilt
/// [`TaskGraphSpec`]. The rebuilt spec's own fingerprint must match the
/// advertised one or the transfer corrupted something.
pub fn decode_spec(payload: &Value) -> Result<(u64, TaskGraphSpec), String> {
    let fp = hex_u64_field(payload, "spec", "fp")?;
    let name = str_field(payload, "spec", "name")?;
    let mut graph = TaskGraph::new();
    for (index, task) in array_field(payload, "spec", "tasks")?.iter().enumerate() {
        let kind = str_field(task, "spec.tasks", "kind")?;
        let work = f64_field(task, "spec.tasks", "work")?;
        let accesses = array_field(task, "spec.tasks", "accesses")?
            .iter()
            .map(decode_access)
            .collect::<Result<Vec<_>, String>>()?;
        let deps = array_field(task, "spec.tasks", "deps")?
            .iter()
            .map(|dep| {
                let parts = dep
                    .as_array()
                    .ok_or_else(|| "spec dep is not an array".to_string())?;
                if parts.len() != 2 {
                    return Err(format!("spec dep has {} entries, expected 2", parts.len()));
                }
                let pred = parts[0]
                    .as_u64()
                    .ok_or_else(|| "spec dep predecessor is not a number".to_string())?;
                let bytes = parts[1]
                    .as_str()
                    .ok_or_else(|| "spec dep bytes is not a hex string".to_string())
                    .and_then(numadag_runtime::framing::parse_hex_u64)?;
                Ok((TaskId(pred as usize), bytes))
            })
            .collect::<Result<Vec<_>, String>>()?;
        let id = graph.push_task(
            TaskDescriptor {
                id: TaskId(index),
                kind,
                work_units: work,
                accesses,
            },
            &deps,
        );
        if id.0 != index {
            return Err(format!(
                "spec task ids are not dense: got {} at {index}",
                id.0
            ));
        }
    }
    let regions = array_field(payload, "spec", "regions")?
        .iter()
        .map(|bytes| {
            bytes
                .as_str()
                .ok_or_else(|| "spec region size is not a hex string".to_string())
                .and_then(numadag_runtime::framing::parse_hex_u64)
        })
        .collect::<Result<Vec<u64>, String>>()?;
    let mut spec = TaskGraphSpec::new(name, graph, regions);
    match field(payload, "spec", "ep")? {
        Value::Null => {}
        ep => {
            let placement = ep
                .as_array()
                .ok_or_else(|| "spec.ep is not an array".to_string())?
                .iter()
                .map(|sock| {
                    sock.as_u64()
                        .map(|v| v as usize)
                        .ok_or_else(|| "spec.ep entry is not a number".to_string())
                })
                .collect::<Result<Vec<usize>, String>>()?;
            spec = spec.with_ep_placement(placement);
        }
    }
    let rebuilt = spec.fingerprint();
    if rebuilt != fp {
        return Err(format!(
            "spec fingerprint mismatch: advertised {:#x}, rebuilt {:#x}",
            fp, rebuilt
        ));
    }
    Ok((fp, spec))
}

/// Encodes the `assign` message.
pub fn encode_assign(assign: &Assignment) -> Value {
    tag(
        "assign",
        obj(vec![
            ("cell", num(assign.cell as f64)),
            ("fp", s(hex_u64(assign.spec_fp))),
            ("policy", s(assign.policy.as_str())),
            ("policy_seed", s(hex_u64(assign.policy_seed))),
            ("events", Value::Bool(assign.events)),
            ("placements", Value::Bool(assign.placements)),
        ]),
    )
}

/// Decodes an `assign` payload.
pub fn decode_assign(payload: &Value) -> Result<Assignment, String> {
    Ok(Assignment {
        cell: u64_field(payload, "assign", "cell")?,
        spec_fp: hex_u64_field(payload, "assign", "fp")?,
        policy: str_field(payload, "assign", "policy")?,
        policy_seed: hex_u64_field(payload, "assign", "policy_seed")?,
        events: bool_field(payload, "assign", "events")?,
        placements: bool_field(payload, "assign", "placements")?,
    })
}

/// Encodes the `barrier` message (coordinator side of a collective barrier).
pub fn encode_barrier(epoch: u64) -> Value {
    tag("barrier", obj(vec![("epoch", s(hex_u64(epoch)))]))
}

/// Encodes the `shutdown` message (unit: a bare string on the wire).
pub fn encode_shutdown() -> Value {
    s("shutdown")
}

// ---------------------------------------------------------------------------
// Worker → coordinator
// ---------------------------------------------------------------------------

/// Encodes the `hello` message a worker sends right after connecting.
pub fn encode_hello(worker: u64, pid: u64) -> Value {
    tag(
        "hello",
        obj(vec![
            ("worker", num(worker as f64)),
            ("pid", num(pid as f64)),
        ]),
    )
}

/// Decodes a `hello` payload into `(worker, pid)`.
pub fn decode_hello(payload: &Value) -> Result<(u64, u64), String> {
    Ok((
        u64_field(payload, "hello", "worker")?,
        u64_field(payload, "hello", "pid")?,
    ))
}

/// Encodes the `config_ack` message.
pub fn encode_config_ack(epoch: u64) -> Value {
    tag("config_ack", obj(vec![("epoch", s(hex_u64(epoch)))]))
}

/// Decodes a `config_ack` (or `barrier`/`barrier_ack`) payload's epoch.
pub fn decode_epoch(payload: &Value, variant: &str) -> Result<u64, String> {
    hex_u64_field(payload, variant, "epoch")
}

/// Encodes the `data_home` notification: how many bytes the cell placed by
/// deferred allocation (first touch) while executing.
pub fn encode_data_home(cell: u64, deferred_bytes: u64) -> Value {
    tag(
        "data_home",
        obj(vec![
            ("cell", num(cell as f64)),
            ("deferred_bytes", s(hex_u64(deferred_bytes))),
        ]),
    )
}

/// Decodes a `data_home` payload into `(cell, deferred_bytes)`.
pub fn decode_data_home(payload: &Value) -> Result<(u64, u64), String> {
    Ok((
        u64_field(payload, "data_home", "cell")?,
        hex_u64_field(payload, "data_home", "deferred_bytes")?,
    ))
}

/// Encodes the `steal` notification: how many tasks of the cell ran on a
/// socket other than the one the policy chose.
pub fn encode_steal(cell: u64, stolen: u64) -> Value {
    tag(
        "steal",
        obj(vec![
            ("cell", num(cell as f64)),
            ("stolen", num(stolen as f64)),
        ]),
    )
}

/// Decodes a `steal` payload into `(cell, stolen)`.
pub fn decode_steal(payload: &Value) -> Result<(u64, u64), String> {
    Ok((
        u64_field(payload, "steal", "cell")?,
        u64_field(payload, "steal", "stolen")?,
    ))
}

/// Encodes the `barrier_ack` message.
pub fn encode_barrier_ack(epoch: u64) -> Value {
    tag("barrier_ack", obj(vec![("epoch", s(hex_u64(epoch)))]))
}

/// Encodes the `error` message (worker-side structured failure).
pub fn encode_error(message: &str) -> Value {
    tag("error", obj(vec![("message", s(message))]))
}

/// Decodes an `error` payload's message.
pub fn decode_error(payload: &Value) -> Result<String, String> {
    str_field(payload, "error", "message")
}

fn encode_report(report: &ExecutionReport) -> Value {
    let traffic = &report.traffic;
    let links = traffic
        .link_entries()
        .map(|((from, to), bytes)| arr(vec![num(from as f64), num(to as f64), s(hex_u64(bytes))]))
        .collect();
    let trace = report
        .trace
        .iter()
        .map(|p| {
            arr(vec![
                num(p.task.0 as f64),
                num(p.socket.0 as f64),
                num(p.start),
                num(p.end),
                Value::Bool(p.stolen),
            ])
        })
        .collect();
    obj(vec![
        ("makespan_ns", num(report.makespan_ns)),
        ("tasks", num(report.tasks as f64)),
        (
            "traffic",
            obj(vec![
                ("local", s(hex_u64(traffic.local_bytes))),
                ("remote", s(hex_u64(traffic.remote_bytes))),
                ("deferred", s(hex_u64(traffic.deferred_allocated_bytes))),
                ("dw", s(hex_u128(traffic.distance_weighted()))),
                ("links", arr(links)),
            ]),
        ),
        (
            "tasks_per_socket",
            arr(report
                .tasks_per_socket
                .iter()
                .map(|n| num(*n as f64))
                .collect()),
        ),
        (
            "busy_per_socket",
            arr(report.busy_per_socket.iter().map(|b| num(*b)).collect()),
        ),
        ("stolen_tasks", num(report.stolen_tasks as f64)),
        ("deferred_bytes", s(hex_u64(report.deferred_bytes))),
        ("policy_wall_ns", num(report.policy_wall_ns)),
        ("event_loop_wall_ns", num(report.event_loop_wall_ns)),
        ("trace", arr(trace)),
    ])
}

fn decode_report(
    payload: &Value,
    workload: Arc<str>,
    policy: &'static str,
) -> Result<ExecutionReport, String> {
    let traffic_value = field(payload, "done.report", "traffic")?;
    let links = array_field(traffic_value, "done.report.traffic", "links")?
        .iter()
        .map(|link| {
            let parts = link
                .as_array()
                .ok_or_else(|| "traffic link is not an array".to_string())?;
            if parts.len() != 3 {
                return Err(format!(
                    "traffic link has {} entries, expected 3",
                    parts.len()
                ));
            }
            let from = parts[0]
                .as_u64()
                .ok_or_else(|| "traffic link from is not a number".to_string())?;
            let to = parts[1]
                .as_u64()
                .ok_or_else(|| "traffic link to is not a number".to_string())?;
            let bytes = parts[2]
                .as_str()
                .ok_or_else(|| "traffic link bytes is not a hex string".to_string())
                .and_then(numadag_runtime::framing::parse_hex_u64)?;
            Ok(((from as usize, to as usize), bytes))
        })
        .collect::<Result<Vec<_>, String>>()?;
    let traffic = TrafficStats::from_parts(
        hex_u64_field(traffic_value, "done.report.traffic", "local")?,
        hex_u64_field(traffic_value, "done.report.traffic", "remote")?,
        hex_u64_field(traffic_value, "done.report.traffic", "deferred")?,
        links,
        hex_u128_field(traffic_value, "done.report.traffic", "dw")?,
    );
    let tasks_per_socket = array_field(payload, "done.report", "tasks_per_socket")?
        .iter()
        .map(|n| {
            n.as_u64()
                .map(|v| v as usize)
                .ok_or_else(|| "tasks_per_socket entry is not a number".to_string())
        })
        .collect::<Result<Vec<usize>, String>>()?;
    let busy_per_socket = array_field(payload, "done.report", "busy_per_socket")?
        .iter()
        .map(|b| {
            b.as_f64()
                .ok_or_else(|| "busy_per_socket entry is not a number".to_string())
        })
        .collect::<Result<Vec<f64>, String>>()?;
    let trace = array_field(payload, "done.report", "trace")?
        .iter()
        .map(|p| {
            let parts = p
                .as_array()
                .ok_or_else(|| "trace entry is not an array".to_string())?;
            if parts.len() != 5 {
                return Err(format!(
                    "trace entry has {} entries, expected 5",
                    parts.len()
                ));
            }
            Ok(TaskPlacement {
                task: TaskId(
                    parts[0]
                        .as_u64()
                        .ok_or_else(|| "trace task is not a number".to_string())?
                        as usize,
                ),
                socket: SocketId(
                    parts[1]
                        .as_u64()
                        .ok_or_else(|| "trace socket is not a number".to_string())?
                        as usize,
                ),
                start: parts[2]
                    .as_f64()
                    .ok_or_else(|| "trace start is not a number".to_string())?,
                end: parts[3]
                    .as_f64()
                    .ok_or_else(|| "trace end is not a number".to_string())?,
                stolen: parts[4]
                    .as_bool()
                    .ok_or_else(|| "trace stolen is not a bool".to_string())?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(ExecutionReport {
        workload,
        policy,
        makespan_ns: f64_field(payload, "done.report", "makespan_ns")?,
        tasks: usize_field(payload, "done.report", "tasks")?,
        traffic,
        tasks_per_socket,
        busy_per_socket,
        stolen_tasks: usize_field(payload, "done.report", "stolen_tasks")?,
        deferred_bytes: hex_u64_field(payload, "done.report", "deferred_bytes")?,
        policy_wall_ns: f64_field(payload, "done.report", "policy_wall_ns")?,
        event_loop_wall_ns: f64_field(payload, "done.report", "event_loop_wall_ns")?,
        trace,
    })
}

/// Encodes the `done` message carrying the cell's full [`ExecutionReport`]
/// and any collected [`TraceEvent`]s. The report's string labels do not
/// travel (the coordinator re-attaches them from its own policy/workload
/// handles, which is what keeps `policy` a `'static` literal).
pub fn encode_done(cell: u64, report: &ExecutionReport, events: &[TraceEvent]) -> Value {
    tag(
        "done",
        obj(vec![
            ("cell", num(cell as f64)),
            ("report", encode_report(report)),
            (
                "events",
                arr(events.iter().map(|event| event.to_value()).collect()),
            ),
        ]),
    )
}

/// Decodes a `done` payload. `workload` and `policy` are supplied by the
/// coordinator (it knows which assignment the cell id maps to).
pub fn decode_done(
    payload: &Value,
    workload: Arc<str>,
    policy: &'static str,
) -> Result<(u64, ExecutionReport, Vec<TraceEvent>), String> {
    let cell = u64_field(payload, "done", "cell")?;
    let report = decode_report(field(payload, "done", "report")?, workload, policy)?;
    let events = array_field(payload, "done", "events")?
        .iter()
        .map(parse_event)
        .collect::<Result<Vec<_>, String>>()?;
    Ok((cell, report, events))
}

#[cfg(test)]
mod tests {
    use super::*;
    use numadag_runtime::framing::{to_line, untag};
    use numadag_tdg::TaskGraphSpec;

    fn roundtrip(value: &Value) -> Value {
        serde_json::from_str(&to_line(value)).expect("wire line parses back")
    }

    fn sample_spec() -> TaskGraphSpec {
        let mut graph = TaskGraph::new();
        let a = graph.push_task(
            TaskDescriptor {
                id: TaskId(0),
                kind: "init".to_string(),
                work_units: 3.5,
                accesses: vec![DataAccess {
                    region: numadag_numa::RegionId(0),
                    mode: AccessMode::Out,
                    bytes: 1 << 60,
                }],
            },
            &[],
        );
        graph.push_task(
            TaskDescriptor {
                id: TaskId(1),
                kind: "use".to_string(),
                work_units: 0.25,
                accesses: vec![DataAccess {
                    region: numadag_numa::RegionId(0),
                    mode: AccessMode::In,
                    bytes: 4096,
                }],
            },
            &[(a, 4096)],
        );
        TaskGraphSpec::new("wire-spec", graph, vec![1 << 60]).with_ep_placement(vec![1, 0])
    }

    #[test]
    fn config_round_trips_including_multi_node_distances() {
        let config = ExecutionConfig::new(Topology::multi_node(2, 2, 3, 120))
            .with_cost_model(CostModel::steep())
            .with_steal(StealMode::NoStealing)
            .with_seed(0xF1617E_00F1617E)
            .with_stage_timing();
        let wire = roundtrip(&encode_config(7, &config));
        let (name, payload) = untag(&wire).unwrap();
        assert_eq!(name, "config");
        let (epoch, decoded) = decode_config(payload).unwrap();
        assert_eq!(epoch, 7);
        assert_eq!(decoded.topology, config.topology);
        assert_eq!(decoded.cost_model, config.cost_model);
        assert_eq!(decoded.steal, config.steal);
        assert_eq!(decoded.seed, config.seed);
        assert!(decoded.stage_timing);
    }

    #[test]
    fn spec_round_trips_and_fingerprint_is_verified() {
        let spec = sample_spec();
        let wire = roundtrip(&encode_spec(&spec));
        let (name, payload) = untag(&wire).unwrap();
        assert_eq!(name, "spec");
        let (fp, decoded) = decode_spec(payload).unwrap();
        assert_eq!(fp, spec.fingerprint());
        assert_eq!(decoded.fingerprint(), spec.fingerprint());
        assert_eq!(decoded.name, spec.name);
        assert_eq!(decoded.region_sizes, spec.region_sizes);
        assert_eq!(decoded.ep_socket, spec.ep_socket);
        assert_eq!(decoded.graph.num_tasks(), 2);
        assert_eq!(decoded.graph.predecessors(TaskId(1)), &[(TaskId(0), 4096)]);
    }

    #[test]
    fn corrupted_spec_fails_the_fingerprint_check() {
        let spec = sample_spec();
        let wire = roundtrip(&encode_spec(&spec));
        let (_, payload) = untag(&wire).unwrap();
        // Flip one region size while keeping the advertised fingerprint.
        let mut tampered = payload.clone();
        if let Value::Object(fields) = &mut tampered {
            for (key, value) in fields.iter_mut() {
                if key == "regions" {
                    *value = arr(vec![s(hex_u64(42))]);
                }
            }
        }
        let err = decode_spec(&tampered).unwrap_err();
        assert!(err.contains("fingerprint mismatch"), "{err}");
    }

    #[test]
    fn assignment_round_trips() {
        let assign = Assignment {
            cell: 9000,
            spec_fp: u64::MAX - 3,
            policy: "rgp+las".to_string(),
            policy_seed: 0xF1617E,
            events: true,
            placements: false,
        };
        let wire = roundtrip(&encode_assign(&assign));
        let (name, payload) = untag(&wire).unwrap();
        assert_eq!(name, "assign");
        assert_eq!(decode_assign(payload).unwrap(), assign);
    }

    #[test]
    fn control_messages_round_trip() {
        let wire = roundtrip(&encode_hello(3, 4242));
        let (name, payload) = untag(&wire).unwrap();
        assert_eq!(name, "hello");
        assert_eq!(decode_hello(payload).unwrap(), (3, 4242));

        let wire = roundtrip(&encode_barrier(u64::MAX));
        let (name, payload) = untag(&wire).unwrap();
        assert_eq!(name, "barrier");
        assert_eq!(decode_epoch(payload, "barrier").unwrap(), u64::MAX);

        let wire = roundtrip(&encode_barrier_ack(2));
        let (name, payload) = untag(&wire).unwrap();
        assert_eq!(name, "barrier_ack");
        assert_eq!(decode_epoch(payload, "barrier_ack").unwrap(), 2);

        let wire = roundtrip(&encode_config_ack(5));
        let (name, payload) = untag(&wire).unwrap();
        assert_eq!(name, "config_ack");
        assert_eq!(decode_epoch(payload, "config_ack").unwrap(), 5);

        let wire = roundtrip(&encode_data_home(11, u64::MAX));
        let (name, payload) = untag(&wire).unwrap();
        assert_eq!(name, "data_home");
        assert_eq!(decode_data_home(payload).unwrap(), (11, u64::MAX));

        let wire = roundtrip(&encode_steal(12, 7));
        let (name, payload) = untag(&wire).unwrap();
        assert_eq!(name, "steal");
        assert_eq!(decode_steal(payload).unwrap(), (12, 7));

        let wire = roundtrip(&encode_error("boom"));
        let (name, payload) = untag(&wire).unwrap();
        assert_eq!(name, "error");
        assert_eq!(decode_error(payload).unwrap(), "boom");

        let wire = roundtrip(&encode_shutdown());
        let (name, payload) = untag(&wire).unwrap();
        assert_eq!(name, "shutdown");
        assert!(matches!(payload, Value::Null));
    }

    #[test]
    fn done_round_trips_a_full_report_bit_exactly() {
        let traffic = TrafficStats::from_parts(
            u64::MAX / 3,
            1 << 61,
            12345,
            vec![((0, 1), 777), ((1, 0), u64::MAX / 5)],
            (u64::MAX as u128) * 27,
        );
        let report = ExecutionReport {
            workload: Arc::from("wire-spec"),
            policy: "RGP+LAS",
            makespan_ns: std::f64::consts::PI * 1e9,
            tasks: 42,
            traffic,
            tasks_per_socket: vec![10, 12, 9, 11],
            busy_per_socket: vec![0.1, 1e300, 3.0000000000000004, 0.0],
            stolen_tasks: 5,
            deferred_bytes: 1 << 55,
            policy_wall_ns: 17.5,
            event_loop_wall_ns: 0.125,
            trace: vec![TaskPlacement {
                task: TaskId(3),
                socket: SocketId(1),
                start: 0.30000000000000004,
                end: 2e-308,
                stolen: true,
            }],
        };
        let events = vec![
            TraceEvent::Assign {
                task: TaskId(3),
                socket: SocketId(1),
                time: 1.5,
            },
            TraceEvent::Finish {
                task: TaskId(3),
                socket: SocketId(1),
                core: numadag_numa::CoreId(5),
                time: 9.75,
            },
        ];
        let wire = roundtrip(&encode_done(77, &report, &events));
        let (name, payload) = untag(&wire).unwrap();
        assert_eq!(name, "done");
        let (cell, decoded, decoded_events) =
            decode_done(payload, Arc::from("wire-spec"), "RGP+LAS").unwrap();
        assert_eq!(cell, 77);
        assert_eq!(decoded.workload.as_ref(), "wire-spec");
        assert_eq!(decoded.policy, "RGP+LAS");
        assert_eq!(decoded.makespan_ns.to_bits(), report.makespan_ns.to_bits());
        assert_eq!(decoded.tasks, report.tasks);
        assert_eq!(decoded.traffic.local_bytes, report.traffic.local_bytes);
        assert_eq!(decoded.traffic.remote_bytes, report.traffic.remote_bytes);
        assert_eq!(
            decoded.traffic.distance_weighted(),
            report.traffic.distance_weighted()
        );
        assert_eq!(
            decoded.traffic.link_entries().collect::<Vec<_>>(),
            report.traffic.link_entries().collect::<Vec<_>>()
        );
        assert_eq!(decoded.tasks_per_socket, report.tasks_per_socket);
        for (got, want) in decoded
            .busy_per_socket
            .iter()
            .zip(report.busy_per_socket.iter())
        {
            assert_eq!(got.to_bits(), want.to_bits());
        }
        assert_eq!(decoded.stolen_tasks, report.stolen_tasks);
        assert_eq!(decoded.deferred_bytes, report.deferred_bytes);
        assert_eq!(decoded.trace, report.trace);
        assert_eq!(decoded_events, events);
    }
}
