//! Locality-aware scheduling (LAS) — the baseline of the paper, following
//! Drebes et al. (PACT'16).
//!
//! Two mechanisms:
//!
//! * **Deferred allocation** — the memory backing a task's output data is not
//!   placed until the task itself is scheduled; the executor then first-
//!   touches it on the socket that runs the task. (The allocation mechanics
//!   live in the executors; the policy only relies on unallocated regions
//!   showing up as such in the [`DataLocator`].)
//! * **Enhanced work pushing** — when a task becomes ready, the sockets are
//!   weighted by the bytes of the task's already-allocated input and output
//!   dependences, and the task is pushed to the heaviest socket. If most of
//!   the data is unallocated the socket is chosen uniformly at random, and
//!   ties are also broken randomly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use numadag_numa::SocketId;
use numadag_tdg::TaskDescriptor;

use crate::policy::{DataLocator, SchedulingPolicy};
use crate::weights::{socket_weights_into, SocketWeights};

/// Fraction of a task's dependence bytes that must already be allocated for
/// the weighted decision to be used; below this the placement is considered
/// "mostly unallocated" and a random socket is chosen, as in the paper.
const ALLOCATED_FRACTION_THRESHOLD: f64 = 0.5;

/// The LAS policy.
#[derive(Clone, Debug)]
pub struct LasPolicy {
    rng: StdRng,
    random_assignments: usize,
    weighted_assignments: usize,
    // Per-assignment scratch, reused across calls so the hot path does not
    // allocate: socket weights, the region-location lookup buffer and the
    // tied-heaviest-sockets list.
    weights: SocketWeights,
    location: numadag_numa::memory::NodeBytes,
    heaviest: Vec<SocketId>,
}

impl LasPolicy {
    /// Creates a LAS policy with the given random seed (used for the random
    /// placement of tasks whose data has no home yet and for tie-breaking).
    pub fn new(seed: u64) -> Self {
        LasPolicy {
            rng: StdRng::seed_from_u64(seed),
            random_assignments: 0,
            weighted_assignments: 0,
            weights: SocketWeights {
                weights: Vec::new(),
                unallocated: 0,
            },
            location: numadag_numa::memory::NodeBytes::default(),
            heaviest: Vec::new(),
        }
    }

    /// Number of tasks that were placed randomly (no usable locality
    /// information at scheduling time).
    pub fn random_assignments(&self) -> usize {
        self.random_assignments
    }

    /// Number of tasks that were placed by the socket-weighting rule.
    pub fn weighted_assignments(&self) -> usize {
        self.weighted_assignments
    }

    /// [`SchedulingPolicy::assign`] with an optional affinity bias (the
    /// socket a window partition chose for the task).
    ///
    /// The bias replaces the two *information-free* decisions: when the
    /// task's data is mostly unallocated the bias socket is used instead of
    /// a uniformly random one, and when several sockets tie for the most
    /// resident bytes the bias wins the tie if it is among them. A clear
    /// data signal still overrides the bias — observed placements beat the
    /// partitioner's plan. With `bias` `None` the behaviour (including the
    /// RNG stream) is exactly [`SchedulingPolicy::assign`]'s.
    pub fn assign_biased(
        &mut self,
        task: &TaskDescriptor,
        locator: &dyn DataLocator,
        bias: Option<SocketId>,
    ) -> SocketId {
        let num_sockets = locator.topology().num_sockets();
        socket_weights_into(task, locator, &mut self.weights, &mut self.location);
        let allocated = self.weights.total_allocated();
        let total = allocated + self.weights.unallocated;
        let allocated_fraction = if total == 0 {
            0.0
        } else {
            allocated as f64 / total as f64
        };
        if allocated == 0 || allocated_fraction < ALLOCATED_FRACTION_THRESHOLD {
            // "If most of the data is unallocated, the final socket is
            // randomly chosen among all sockets available to the runtime."
            self.random_assignments += 1;
            if let Some(b) = bias {
                return b;
            }
            return SocketId(self.rng.gen_range(0..num_sockets));
        }
        self.weights.heaviest_into(&mut self.heaviest);
        self.weighted_assignments += 1;
        if self.heaviest.len() == 1 {
            self.heaviest[0]
        } else if let Some(b) = bias.filter(|b| self.heaviest.contains(b)) {
            b
        } else {
            // "In case of a tie, the socket is chosen randomly among the
            // tied ones."
            let pick = self.rng.gen_range(0..self.heaviest.len());
            self.heaviest[pick]
        }
    }
}

impl Default for LasPolicy {
    fn default() -> Self {
        LasPolicy::new(0xA11C)
    }
}

impl SchedulingPolicy for LasPolicy {
    fn name(&self) -> &'static str {
        "LAS"
    }

    fn assign(&mut self, task: &TaskDescriptor, locator: &dyn DataLocator) -> SocketId {
        self.assign_biased(task, locator, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::MemoryLocator;
    use numadag_numa::{MemoryMap, NodeId, Topology};
    use numadag_tdg::{DataAccess, TaskDescriptor, TaskId};

    fn task_with(accesses: Vec<DataAccess>) -> TaskDescriptor {
        TaskDescriptor {
            id: TaskId(0),
            kind: "t".into(),
            work_units: 1.0,
            accesses,
        }
    }

    #[test]
    fn follows_the_data() {
        let topo = Topology::bullion_s16();
        let mut mem = MemoryMap::new();
        let a = mem.register(1000);
        let b = mem.register(100);
        mem.place(a, NodeId(5));
        mem.place(b, NodeId(2));
        let loc = MemoryLocator::new(&topo, &mem);
        let mut p = LasPolicy::new(1);
        let t = task_with(vec![DataAccess::read(a, 1000), DataAccess::read(b, 100)]);
        // Socket 5 holds 10x more data: always chosen.
        for _ in 0..10 {
            assert_eq!(p.assign(&t, &loc), SocketId(5));
        }
        assert_eq!(p.weighted_assignments(), 10);
        assert_eq!(p.random_assignments(), 0);
    }

    #[test]
    fn random_when_nothing_is_allocated() {
        let topo = Topology::bullion_s16();
        let mut mem = MemoryMap::new();
        let out = mem.register(4096);
        let _ = out;
        let loc = MemoryLocator::new(&topo, &mem);
        let mut p = LasPolicy::new(7);
        let t = task_with(vec![DataAccess::write(out, 4096)]);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..64 {
            seen.insert(p.assign(&t, &loc).index());
        }
        // With 64 draws over 8 sockets we expect to see several different ones.
        assert!(
            seen.len() >= 4,
            "random placement looks degenerate: {seen:?}"
        );
        assert_eq!(p.random_assignments(), 64);
    }

    #[test]
    fn mostly_unallocated_uses_random_placement() {
        let topo = Topology::four_socket(2);
        let mut mem = MemoryMap::new();
        let small_in = mem.register(10);
        let big_out = mem.register(10_000);
        mem.place(small_in, NodeId(3));
        let loc = MemoryLocator::new(&topo, &mem);
        let mut p = LasPolicy::new(3);
        let t = task_with(vec![
            DataAccess::read(small_in, 10),
            DataAccess::write(big_out, 10_000),
        ]);
        // Only 0.1% of the bytes are allocated — below the threshold, so the
        // decision must be the random branch (which may of course still land
        // on socket 3 occasionally).
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..32 {
            distinct.insert(p.assign(&t, &loc).index());
        }
        assert!(distinct.len() > 1);
        assert_eq!(p.weighted_assignments(), 0);
    }

    #[test]
    fn ties_are_broken_among_tied_sockets_only() {
        let topo = Topology::four_socket(2);
        let mut mem = MemoryMap::new();
        let a = mem.register(100);
        let b = mem.register(100);
        mem.place(a, NodeId(1));
        mem.place(b, NodeId(2));
        let loc = MemoryLocator::new(&topo, &mem);
        let mut p = LasPolicy::new(11);
        let t = task_with(vec![DataAccess::read(a, 100), DataAccess::read(b, 100)]);
        for _ in 0..32 {
            let s = p.assign(&t, &loc);
            assert!(
                s == SocketId(1) || s == SocketId(2),
                "chose untied socket {s}"
            );
        }
    }

    #[test]
    fn bias_replaces_random_and_breaks_ties_but_not_data() {
        let topo = Topology::four_socket(2);
        let mut mem = MemoryMap::new();
        let out = mem.register(4096);
        let loc = MemoryLocator::new(&topo, &mem);
        let mut p = LasPolicy::new(9);
        // Nothing allocated: the bias decides instead of the random draw.
        let t = task_with(vec![DataAccess::write(out, 4096)]);
        for _ in 0..8 {
            assert_eq!(p.assign_biased(&t, &loc, Some(SocketId(2))), SocketId(2));
        }
        assert_eq!(p.random_assignments(), 8);
        // Tied sockets: the bias wins the tie when it is among them...
        let a = mem.register(100);
        let b = mem.register(100);
        mem.place(a, NodeId(1));
        mem.place(b, NodeId(3));
        let loc = MemoryLocator::new(&topo, &mem);
        let tie = task_with(vec![DataAccess::read(a, 100), DataAccess::read(b, 100)]);
        for _ in 0..8 {
            assert_eq!(p.assign_biased(&tie, &loc, Some(SocketId(3))), SocketId(3));
        }
        // ...but a bias outside the tie falls back to the random tie-break.
        for _ in 0..8 {
            let s = p.assign_biased(&tie, &loc, Some(SocketId(0)));
            assert!(s == SocketId(1) || s == SocketId(3), "chose {s}");
        }
        // A clear data signal overrides the bias entirely.
        let heavy = task_with(vec![DataAccess::read(a, 100)]);
        assert_eq!(
            p.assign_biased(&heavy, &loc, Some(SocketId(0))),
            SocketId(1)
        );
    }

    #[test]
    fn no_bias_is_bit_identical_to_assign() {
        let topo = Topology::bullion_s16();
        let mut mem = MemoryMap::new();
        let out = mem.register(64);
        let loc = MemoryLocator::new(&topo, &mem);
        let t = task_with(vec![DataAccess::write(out, 64)]);
        let mut plain = LasPolicy::new(5);
        let mut biased = LasPolicy::new(5);
        for _ in 0..32 {
            assert_eq!(plain.assign(&t, &loc), biased.assign_biased(&t, &loc, None));
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let topo = Topology::bullion_s16();
        let mut mem = MemoryMap::new();
        let out = mem.register(64);
        let _ = out;
        let loc = MemoryLocator::new(&topo, &mem);
        let t = task_with(vec![DataAccess::write(out, 64)]);
        let run = |seed| {
            let mut p = LasPolicy::new(seed);
            (0..16)
                .map(|_| p.assign(&t, &loc).index())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
    }
}
