//! Socket weighting from a task's data dependences — the core computation of
//! locality-aware scheduling.
//!
//! "At the time of scheduling a task, the runtime explores its dependencies
//! and weights the sockets using the size of the allocated input and output
//! data. Then, the task is scheduled to the socket with the highest weight."

use numadag_numa::SocketId;
use numadag_tdg::TaskDescriptor;

use crate::policy::DataLocator;

/// Per-socket byte weights for a task, plus the number of bytes whose home is
/// still undecided (deferred allocations).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SocketWeights {
    /// `weights[s]` = bytes of the task's dependences allocated on socket `s`.
    pub weights: Vec<u64>,
    /// Bytes of the task's dependences not yet allocated anywhere.
    pub unallocated: u64,
}

impl SocketWeights {
    /// Total allocated bytes across all sockets.
    pub fn total_allocated(&self) -> u64 {
        self.weights.iter().sum()
    }

    /// True if no byte of the task's dependences has a home yet.
    pub fn all_unallocated(&self) -> bool {
        self.total_allocated() == 0
    }

    /// The sockets with the maximum weight (more than one on ties). Empty if
    /// nothing is allocated.
    pub fn heaviest(&self) -> Vec<SocketId> {
        let mut out = Vec::new();
        self.heaviest_into(&mut out);
        out
    }

    /// [`SocketWeights::heaviest`] into a caller-owned buffer (ascending
    /// socket order, exactly like the allocating call).
    pub fn heaviest_into(&self, out: &mut Vec<SocketId>) {
        out.clear();
        let max = self.weights.iter().copied().max().unwrap_or(0);
        if max == 0 {
            return;
        }
        out.extend(
            self.weights
                .iter()
                .enumerate()
                .filter(|(_, &w)| w == max)
                .map(|(s, _)| SocketId(s)),
        );
    }

    /// Fraction of the allocated bytes held by the heaviest socket.
    pub fn concentration(&self) -> f64 {
        let total = self.total_allocated();
        if total == 0 {
            return 0.0;
        }
        let max = self.weights.iter().copied().max().unwrap_or(0);
        max as f64 / total as f64
    }
}

/// Computes the socket weights of `task` given the current data placement.
/// Every access (input and output alike) contributes its bytes to the sockets
/// currently holding the region; unallocated bytes are tallied separately.
pub fn socket_weights(task: &TaskDescriptor, locator: &dyn DataLocator) -> SocketWeights {
    let mut out = SocketWeights {
        weights: Vec::new(),
        unallocated: 0,
    };
    let mut scratch = numadag_numa::memory::NodeBytes::default();
    socket_weights_into(task, locator, &mut out, &mut scratch);
    out
}

/// [`socket_weights`] into caller-owned buffers: `out` receives the weights
/// and `location` is the per-access region-location scratch. The executors
/// call this once per scheduled task, so the reuse removes two allocations
/// per access from the assignment hot path. Results are identical to
/// [`socket_weights`] bit for bit.
pub fn socket_weights_into(
    task: &TaskDescriptor,
    locator: &dyn DataLocator,
    out: &mut SocketWeights,
    location: &mut numadag_numa::memory::NodeBytes,
) {
    let num_sockets = locator.topology().num_sockets();
    out.weights.clear();
    out.weights.resize(num_sockets, 0);
    out.unallocated = 0;
    for access in &task.accesses {
        locator.region_location_into(access.region, location);
        let region_size = locator.region_size(access.region).max(1);
        for (node, bytes) in &location.per_node {
            // Scale the resident bytes to the portion of the region this
            // access touches (accesses normally cover the whole region).
            let contribution =
                (*bytes as f64 * access.bytes as f64 / region_size as f64).round() as u64;
            let socket = node.socket();
            if socket.index() < num_sockets {
                out.weights[socket.index()] += contribution;
            }
        }
        out.unallocated +=
            (location.unallocated as f64 * access.bytes as f64 / region_size as f64).round() as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::MemoryLocator;
    use numadag_numa::{MemoryMap, NodeId, Topology};
    use numadag_tdg::{DataAccess, TaskDescriptor, TaskId};

    fn task_with(accesses: Vec<DataAccess>) -> TaskDescriptor {
        TaskDescriptor {
            id: TaskId(0),
            kind: "t".into(),
            work_units: 1.0,
            accesses,
        }
    }

    #[test]
    fn weights_follow_allocation() {
        let topo = Topology::four_socket(2);
        let mut mem = MemoryMap::new();
        let a = mem.register(1000);
        let b = mem.register(3000);
        mem.place(a, NodeId(0));
        mem.place(b, NodeId(2));
        let loc = MemoryLocator::new(&topo, &mem);
        let t = task_with(vec![DataAccess::read(a, 1000), DataAccess::read(b, 3000)]);
        let w = socket_weights(&t, &loc);
        assert_eq!(w.weights, vec![1000, 0, 3000, 0]);
        assert_eq!(w.unallocated, 0);
        assert_eq!(w.heaviest(), vec![SocketId(2)]);
        assert!((w.concentration() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn unallocated_output_counts_separately() {
        let topo = Topology::two_socket(2);
        let mut mem = MemoryMap::new();
        let input = mem.register(500);
        let output = mem.register(500);
        mem.place(input, NodeId(1));
        let loc = MemoryLocator::new(&topo, &mem);
        let t = task_with(vec![
            DataAccess::read(input, 500),
            DataAccess::write(output, 500),
        ]);
        let w = socket_weights(&t, &loc);
        assert_eq!(w.weights, vec![0, 500]);
        assert_eq!(w.unallocated, 500);
        assert!(!w.all_unallocated());
    }

    #[test]
    fn all_unallocated_detected() {
        let topo = Topology::two_socket(2);
        let mut mem = MemoryMap::new();
        let a = mem.register(100);
        let loc = MemoryLocator::new(&topo, &mem);
        let t = task_with(vec![DataAccess::write(a, 100)]);
        let w = socket_weights(&t, &loc);
        assert!(w.all_unallocated());
        assert!(w.heaviest().is_empty());
        assert_eq!(w.concentration(), 0.0);
        assert_eq!(w.unallocated, 100);
    }

    #[test]
    fn ties_report_all_heaviest_sockets() {
        let topo = Topology::four_socket(1);
        let mut mem = MemoryMap::new();
        let a = mem.register(100);
        let b = mem.register(100);
        mem.place(a, NodeId(1));
        mem.place(b, NodeId(3));
        let loc = MemoryLocator::new(&topo, &mem);
        let t = task_with(vec![DataAccess::read(a, 100), DataAccess::read(b, 100)]);
        let w = socket_weights(&t, &loc);
        assert_eq!(w.heaviest(), vec![SocketId(1), SocketId(3)]);
    }

    #[test]
    fn interleaved_region_splits_weight() {
        let topo = Topology::two_socket(2);
        let mut mem = MemoryMap::with_page_size(100);
        let a = mem.register(400);
        mem.place_interleaved(a, &[NodeId(0), NodeId(1)]);
        let loc = MemoryLocator::new(&topo, &mem);
        let t = task_with(vec![DataAccess::read(a, 400)]);
        let w = socket_weights(&t, &loc);
        assert_eq!(w.weights, vec![200, 200]);
        assert_eq!(w.heaviest().len(), 2);
    }

    #[test]
    fn partial_access_scales_contribution() {
        let topo = Topology::two_socket(2);
        let mut mem = MemoryMap::new();
        let a = mem.register(1000);
        mem.place(a, NodeId(0));
        let loc = MemoryLocator::new(&topo, &mem);
        // The task only touches half of the region.
        let t = task_with(vec![DataAccess::read(a, 500)]);
        let w = socket_weights(&t, &loc);
        assert_eq!(w.weights, vec![500, 0]);
    }
}
