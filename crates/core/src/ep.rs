//! Expert programmer (EP): the placement hard-coded in the benchmark source.
//!
//! Each kernel in `numadag-kernels` knows its natural owner-computes
//! distribution (e.g. "block row `i` of the matrix belongs to socket
//! `i mod S`") and records it in the [`numadag_tdg::TaskGraphSpec`]. The EP
//! policy simply replays that placement.

use numadag_numa::SocketId;
use numadag_tdg::{TaskDescriptor, TaskGraphSpec};

use crate::policy::{DataLocator, SchedulingPolicy};

/// The EP policy: a fixed task → socket map.
#[derive(Clone, Debug)]
pub struct EpPolicy {
    placement: Vec<usize>,
}

impl EpPolicy {
    /// Builds the policy from an explicit per-task socket index vector.
    pub fn new(placement: Vec<usize>) -> Self {
        EpPolicy { placement }
    }

    /// Builds the policy from a workload spec.
    ///
    /// Returns `None` if the spec has no expert placement (the harness then
    /// skips the EP bar for that application, as a real study would).
    pub fn from_spec(spec: &TaskGraphSpec) -> Option<Self> {
        spec.ep_socket.clone().map(EpPolicy::new)
    }

    /// Number of tasks covered by the placement.
    pub fn len(&self) -> usize {
        self.placement.len()
    }

    /// True if the placement covers no tasks.
    pub fn is_empty(&self) -> bool {
        self.placement.is_empty()
    }
}

impl SchedulingPolicy for EpPolicy {
    fn name(&self) -> &'static str {
        "EP"
    }

    fn assign(&mut self, task: &TaskDescriptor, locator: &dyn DataLocator) -> SocketId {
        let num_sockets = locator.topology().num_sockets();
        let raw = self
            .placement
            .get(task.id.index())
            .copied()
            .unwrap_or(task.id.index());
        SocketId(raw % num_sockets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::MemoryLocator;
    use numadag_numa::{MemoryMap, Topology};
    use numadag_tdg::{TaskDescriptor, TaskId, TaskSpec, TdgBuilder};

    fn dummy_task(id: usize) -> TaskDescriptor {
        TaskDescriptor {
            id: TaskId(id),
            kind: "t".into(),
            work_units: 1.0,
            accesses: vec![],
        }
    }

    #[test]
    fn replays_recorded_placement() {
        let topo = Topology::four_socket(2);
        let mem = MemoryMap::new();
        let loc = MemoryLocator::new(&topo, &mem);
        let mut p = EpPolicy::new(vec![3, 1, 0, 2]);
        assert_eq!(p.assign(&dummy_task(0), &loc), SocketId(3));
        assert_eq!(p.assign(&dummy_task(1), &loc), SocketId(1));
        assert_eq!(p.assign(&dummy_task(3), &loc), SocketId(2));
        assert_eq!(p.name(), "EP");
        assert_eq!(p.len(), 4);
        assert!(!p.is_empty());
    }

    #[test]
    fn placement_wraps_around_socket_count() {
        let topo = Topology::two_socket(2);
        let mem = MemoryMap::new();
        let loc = MemoryLocator::new(&topo, &mem);
        // Placement written for an 8-socket machine but run on 2 sockets.
        let mut p = EpPolicy::new(vec![7, 6]);
        assert_eq!(p.assign(&dummy_task(0), &loc), SocketId(1));
        assert_eq!(p.assign(&dummy_task(1), &loc), SocketId(0));
    }

    #[test]
    fn missing_entry_falls_back_to_task_id() {
        let topo = Topology::four_socket(2);
        let mem = MemoryMap::new();
        let loc = MemoryLocator::new(&topo, &mem);
        let mut p = EpPolicy::new(vec![0]);
        assert_eq!(p.assign(&dummy_task(5), &loc), SocketId(1));
    }

    #[test]
    fn from_spec_uses_recorded_placement() {
        let mut b = TdgBuilder::new();
        let r = b.region(8);
        b.submit(TaskSpec::new("a").writes(r, 8));
        b.submit(TaskSpec::new("b").reads(r, 8));
        let (g, sizes) = b.finish();
        let spec = numadag_tdg::TaskGraphSpec::new("toy", g, sizes);
        assert!(EpPolicy::from_spec(&spec).is_none());
        let spec = spec.with_ep_placement(vec![1, 1]);
        let p = EpPolicy::from_spec(&spec).unwrap();
        assert_eq!(p.len(), 2);
    }
}
