//! The policy registry: every scheduling policy the workspace implements,
//! addressable by a stable, string-parseable label.
//!
//! [`PolicyKind`] is the single source of truth for "which policies exist".
//! Each kind has a canonical [`PolicyKind::label`] that round-trips through
//! [`PolicyKind::from_str`], so benchmark binaries, examples and tests can
//! select policies from CLI arguments or config files instead of hard-coded
//! match arms. Parameterised policies encode their parameters in the label:
//! the RGP variants accept a window size, a partitioning scheme, a
//! refinement pass limit, a propagation mode and an anchoring mode, e.g.
//! `RGP+LAS:w=512,scheme=rb,passes=4` or `RGP+LAS:prop=repart,anchor=deps`
//! (see [`RgpTuning`]). Partitioner ablations therefore run through the
//! exact same `Experiment`/`SweepReport` path as every other policy
//! comparison — each tuned spelling is its own report column.

use std::str::FromStr;

use numadag_graph::PartitionScheme;
use numadag_tdg::TaskGraphSpec;

use crate::dfifo::DfifoPolicy;
use crate::ep::EpPolicy;
use crate::las::LasPolicy;
use crate::policy::SchedulingPolicy;
use crate::rgp::{AnchorMode, Propagation, RgpConfig, RgpPolicy};

/// The tunable knobs of an RGP policy kind, as encoded in registry labels.
///
/// `None` means "use the default", and a tuning with every knob unset is
/// normalised away to the plain `RgpLas`/`RgpRr` kinds by the
/// [`PolicyKind::rgp_las`]/[`PolicyKind::rgp_rr`] constructors, so label
/// round-trips stay exact.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub struct RgpTuning {
    /// RGP window size (`w=512`).
    pub window: Option<usize>,
    /// Partitioning scheme used on the window (`scheme=ml|rb|bfs`).
    pub scheme: Option<PartitionScheme>,
    /// Refinement passes per level of the window partitioner (`passes=4`).
    pub passes: Option<usize>,
    /// Propagation beyond the partitioned window
    /// (`prop=las|rr|repart`); overrides the propagation implied by the
    /// base kind.
    pub prop: Option<Propagation>,
    /// Anchoring mode for repartition propagation
    /// (`anchor=none|deps|homes|both`).
    pub anchor: Option<AnchorMode>,
}

impl RgpTuning {
    /// True when every knob is unset (the kind behaves like the plain
    /// registry entry).
    pub fn is_default(&self) -> bool {
        *self == RgpTuning::default()
    }

    /// Sets the window size.
    pub fn with_window(mut self, window: usize) -> Self {
        self.window = Some(window);
        self
    }

    /// Sets the partitioning scheme.
    pub fn with_scheme(mut self, scheme: PartitionScheme) -> Self {
        self.scheme = Some(scheme);
        self
    }

    /// Sets the refinement pass limit.
    pub fn with_passes(mut self, passes: usize) -> Self {
        self.passes = Some(passes);
        self
    }

    /// Sets the propagation mode.
    pub fn with_prop(mut self, prop: Propagation) -> Self {
        self.prop = Some(prop);
        self
    }

    /// Sets the anchoring mode.
    pub fn with_anchor(mut self, anchor: AnchorMode) -> Self {
        self.anchor = Some(anchor);
        self
    }

    /// The `key=value` parameter list of the canonical label, in stable
    /// order (`w`, `scheme`, `passes`, `prop`, `anchor`); empty for a
    /// default tuning.
    fn params_label(&self) -> String {
        let mut params: Vec<String> = Vec::new();
        if let Some(w) = self.window {
            params.push(format!("w={w}"));
        }
        if let Some(scheme) = self.scheme {
            params.push(format!("scheme={}", scheme.token()));
        }
        if let Some(passes) = self.passes {
            params.push(format!("passes={passes}"));
        }
        if let Some(prop) = self.prop {
            params.push(format!("prop={}", prop.token()));
        }
        if let Some(anchor) = self.anchor {
            params.push(format!("anchor={}", anchor.token()));
        }
        params.join(",")
    }

    /// Applies the set knobs on top of an [`RgpConfig`].
    fn apply(&self, mut config: RgpConfig) -> RgpConfig {
        if let Some(w) = self.window {
            config = config.with_window_size(w);
        }
        if let Some(scheme) = self.scheme {
            config = config.with_scheme(scheme);
        }
        if let Some(passes) = self.passes {
            config = config.with_refine_passes(passes);
        }
        if let Some(prop) = self.prop {
            config = config.with_propagation(prop);
        }
        if let Some(anchor) = self.anchor {
            config = config.with_anchor(anchor);
        }
        config
    }
}

/// The scheduling policies evaluated in the paper (plus the RGP round-robin
/// propagation ablation). The `…Tuned` variants carry explicit RGP
/// parameters ([`RgpTuning`]); the plain `Rgp…` variants use the defaults.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Distributed FIFO.
    Dfifo,
    /// Expert programmer.
    Ep,
    /// Locality-aware scheduling (the baseline).
    Las,
    /// Runtime graph partitioning with LAS propagation (the contribution).
    RgpLas,
    /// Runtime graph partitioning with round-robin propagation (ablation).
    RgpRr,
    /// RGP+LAS with explicit window/partitioner parameters.
    RgpLasTuned(RgpTuning),
    /// RGP+RR with explicit window/partitioner parameters.
    RgpRrTuned(RgpTuning),
}

/// Error returned when a policy label cannot be parsed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParsePolicyError(String);

impl std::fmt::Display for ParsePolicyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown policy {:?} (expected one of: dfifo, ep, las, rgp-las, rgp-rr, \
             optionally with RGP parameters like \
             rgp-las:w=512,scheme=rb,passes=4,prop=repart,anchor=deps \
             where scheme is one of ml, rb, bfs; prop is one of las, rr, \
             repart; anchor is one of none, deps, homes, both)",
            self.0
        )
    }
}

impl std::error::Error for ParsePolicyError {}

impl PolicyKind {
    /// The four policies of the paper's Figure 1, in its plotting order.
    pub fn figure1() -> [PolicyKind; 4] {
        [
            PolicyKind::Dfifo,
            PolicyKind::RgpLas,
            PolicyKind::Ep,
            PolicyKind::Las,
        ]
    }

    /// All registered base policies (tuned RGP variants are parameterised
    /// spellings of `RgpLas`/`RgpRr`, not separate registry entries).
    pub fn all() -> [PolicyKind; 5] {
        [
            PolicyKind::Dfifo,
            PolicyKind::Ep,
            PolicyKind::Las,
            PolicyKind::RgpLas,
            PolicyKind::RgpRr,
        ]
    }

    /// RGP+LAS with the given tuning, normalising a default tuning to the
    /// plain [`PolicyKind::RgpLas`] so labels stay canonical. A `prop` knob
    /// equal to the propagation the base kind already implies (`prop=las`
    /// here) is redundant and dropped, so `rgp-las:prop=las` and `rgp-las`
    /// produce identical labels — and identical report-cache keys.
    pub fn rgp_las(mut tuning: RgpTuning) -> PolicyKind {
        if tuning.prop == Some(Propagation::Las) {
            tuning.prop = None;
        }
        if tuning.is_default() {
            PolicyKind::RgpLas
        } else {
            PolicyKind::RgpLasTuned(tuning)
        }
    }

    /// RGP+RR with the given tuning (see [`PolicyKind::rgp_las`]; the
    /// redundant knob here is `prop=rr`).
    pub fn rgp_rr(mut tuning: RgpTuning) -> PolicyKind {
        if tuning.prop == Some(Propagation::RoundRobin) {
            tuning.prop = None;
        }
        if tuning.is_default() {
            PolicyKind::RgpRr
        } else {
            PolicyKind::RgpRrTuned(tuning)
        }
    }

    /// RGP+LAS with an explicit window size (shorthand for the most common
    /// tuning).
    pub fn rgp_las_window(window: usize) -> PolicyKind {
        PolicyKind::RgpLasTuned(RgpTuning::default().with_window(window))
    }

    /// RGP+RR with an explicit window size.
    pub fn rgp_rr_window(window: usize) -> PolicyKind {
        PolicyKind::RgpRrTuned(RgpTuning::default().with_window(window))
    }

    /// The canonical label: the paper's display name, with any parameters
    /// appended (`RGP+LAS:w=512,scheme=rb`). Round-trips through
    /// [`PolicyKind::from_str`].
    pub fn label(&self) -> String {
        match self {
            PolicyKind::RgpLasTuned(t) | PolicyKind::RgpRrTuned(t) => {
                let params = t.params_label();
                if params.is_empty() {
                    // A hand-constructed Tuned variant with a default tuning
                    // (the constructors normalise this away) still labels as
                    // the plain kind, never as a dangling "RGP+LAS:".
                    self.base_label().to_string()
                } else {
                    format!("{}:{}", self.base_label(), params)
                }
            }
            other => other.base_label().to_string(),
        }
    }

    /// The display name used in reports (matches the paper's labels); the
    /// RGP parameters, if any, are dropped.
    pub fn base_label(&self) -> &'static str {
        match self {
            PolicyKind::Dfifo => "DFIFO",
            PolicyKind::Ep => "EP",
            PolicyKind::Las => "LAS",
            PolicyKind::RgpLas | PolicyKind::RgpLasTuned(_) => "RGP+LAS",
            PolicyKind::RgpRr | PolicyKind::RgpRrTuned(_) => "RGP+RR",
        }
    }

    /// The RGP tuning encoded in this kind (`None` for non-RGP policies; the
    /// plain RGP kinds report the default tuning).
    pub fn tuning(&self) -> Option<RgpTuning> {
        match self {
            PolicyKind::RgpLas | PolicyKind::RgpRr => Some(RgpTuning::default()),
            PolicyKind::RgpLasTuned(t) | PolicyKind::RgpRrTuned(t) => Some(*t),
            _ => None,
        }
    }

    /// The explicit RGP window size encoded in this kind, if any.
    pub fn window(&self) -> Option<usize> {
        self.tuning().and_then(|t| t.window)
    }

    /// This kind with the given explicit RGP window, keeping any other
    /// encoded parameters. Returns `None` for policies that have no window
    /// parameter.
    pub fn with_window(&self, window: usize) -> Option<PolicyKind> {
        self.map_tuning(|t| t.with_window(window))
    }

    /// This kind with the given partitioning scheme (RGP kinds only).
    pub fn with_scheme(&self, scheme: PartitionScheme) -> Option<PolicyKind> {
        self.map_tuning(|t| t.with_scheme(scheme))
    }

    /// This kind with the given refinement pass limit (RGP kinds only).
    pub fn with_passes(&self, passes: usize) -> Option<PolicyKind> {
        self.map_tuning(|t| t.with_passes(passes))
    }

    fn map_tuning(&self, f: impl FnOnce(RgpTuning) -> RgpTuning) -> Option<PolicyKind> {
        match self {
            PolicyKind::RgpLas | PolicyKind::RgpLasTuned(_) => {
                Some(PolicyKind::rgp_las(f(self.tuning().unwrap())))
            }
            PolicyKind::RgpRr | PolicyKind::RgpRrTuned(_) => {
                Some(PolicyKind::rgp_rr(f(self.tuning().unwrap())))
            }
            _ => None,
        }
    }

    /// Parses a comma-separated list of policy labels (CLI convenience).
    /// Commas inside a `:`-parameter list belong to the parameter list, so
    /// `dfifo,rgp-las:w=64,scheme=rb` is two policies, not three.
    pub fn parse_list(s: &str) -> Result<Vec<PolicyKind>, ParsePolicyError> {
        let mut out = Vec::new();
        let mut current = String::new();
        for piece in s.split(',') {
            if !current.is_empty() && piece.contains('=') && !piece.contains(':') {
                // Continuation of the previous policy's parameter list.
                current.push(',');
                current.push_str(piece.trim());
                continue;
            }
            if !current.is_empty() {
                out.push(current.parse()?);
            }
            current = piece.trim().to_string();
        }
        if !current.is_empty() {
            out.push(current.parse()?);
        }
        Ok(out)
    }
}

impl FromStr for PolicyKind {
    type Err = ParsePolicyError;

    /// Parses a policy label. Matching is case-insensitive and treats `+`,
    /// `-`, `_` and spaces as the same separator, so `RGP+LAS`, `rgp-las` and
    /// `rgp_las` all name the same policy. An optional `:`-separated
    /// parameter list selects the RGP window, partitioning scheme,
    /// refinement pass limit, propagation mode and anchoring mode:
    /// `rgp-las:w=512,scheme=rb,passes=4,prop=repart,anchor=deps` (also
    /// `window=512`, `p=4`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParsePolicyError(s.to_string());
        let normalized = s.trim().to_ascii_lowercase().replace(['+', '_', ' '], "-");
        let (base, params) = match normalized.split_once(':') {
            Some((b, p)) => (b, Some(p)),
            None => (normalized.as_str(), None),
        };
        let mut tuning = RgpTuning::default();
        if let Some(params) = params {
            for param in params.split(',').filter(|p| !p.is_empty()) {
                match param.split_once('=') {
                    Some(("w" | "window", value)) => {
                        let w: usize = value.parse().map_err(|_| err())?;
                        if w == 0 {
                            return Err(err());
                        }
                        tuning.window = Some(w);
                    }
                    Some(("scheme" | "s", value)) => {
                        tuning.scheme = Some(PartitionScheme::from_token(value).ok_or_else(err)?);
                    }
                    Some(("passes" | "p", value)) => {
                        tuning.passes = Some(value.parse().map_err(|_| err())?);
                    }
                    Some(("prop" | "propagation", value)) => {
                        tuning.prop = Some(Propagation::from_token(value).ok_or_else(err)?);
                    }
                    Some(("anchor", value)) => {
                        tuning.anchor = Some(AnchorMode::from_token(value).ok_or_else(err)?);
                    }
                    _ => return Err(err()),
                }
            }
        }
        let kind = match base {
            // Parameters on a non-RGP policy are a user error. (The RGP
            // constructors may themselves normalise a redundant tuning back
            // to a plain kind — e.g. `rgp-las:prop=las` — which is fine.)
            "dfifo" | "ep" | "las" if !tuning.is_default() => return Err(err()),
            "dfifo" => PolicyKind::Dfifo,
            "ep" => PolicyKind::Ep,
            "las" => PolicyKind::Las,
            "rgp-las" | "rgplas" => PolicyKind::rgp_las(tuning),
            "rgp-rr" | "rgprr" => PolicyKind::rgp_rr(tuning),
            _ => return Err(err()),
        };
        Ok(kind)
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// Instantiates a policy for a workload. RGP kinds use the parameters
/// encoded in the kind (defaults when none are encoded).
///
/// Returns `None` only for [`PolicyKind::Ep`] when the workload does not
/// define an expert placement.
///
/// The returned box is [`Send`] ([`SchedulingPolicy`] has `Send` as a
/// supertrait), and `PolicyKind` is `Copy + Send + Sync` — so sweep drivers
/// can hand a kind to each worker thread and build the policy instance
/// inside the shard that runs it. The static assertion below keeps that
/// contract from regressing silently.
pub fn make_policy(
    kind: PolicyKind,
    spec: &TaskGraphSpec,
    seed: u64,
) -> Option<Box<dyn SchedulingPolicy>> {
    make_policy_with_window(kind, spec, seed, None)
}

/// Like [`make_policy`] but with an explicit RGP window size (ignored by the
/// non-RGP policies) that overrides any window encoded in `kind`. `None`
/// uses the window encoded in the kind, falling back to the default.
pub fn make_policy_with_window(
    kind: PolicyKind,
    spec: &TaskGraphSpec,
    seed: u64,
    window_size: Option<usize>,
) -> Option<Box<dyn SchedulingPolicy>> {
    let rgp_config = |propagation| {
        let mut tuning = kind.tuning().unwrap_or_default();
        if window_size.is_some() {
            tuning.window = window_size;
        }
        tuning.apply(
            RgpConfig::default()
                .with_seed(seed)
                .with_propagation(propagation),
        )
    };
    Some(match kind {
        PolicyKind::Dfifo => Box::new(DfifoPolicy::new()) as Box<dyn SchedulingPolicy>,
        PolicyKind::Ep => Box::new(EpPolicy::from_spec(spec)?),
        PolicyKind::Las => Box::new(LasPolicy::new(seed)),
        PolicyKind::RgpLas | PolicyKind::RgpLasTuned(_) => {
            Box::new(RgpPolicy::new(rgp_config(Propagation::Las)))
        }
        PolicyKind::RgpRr | PolicyKind::RgpRrTuned(_) => {
            Box::new(RgpPolicy::new(rgp_config(Propagation::RoundRobin)))
        }
    })
}

// Compile-time contract of the sharded sweep driver: policy kinds can be
// shared with worker threads, and built policy instances can live on them.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    const fn assert_send<T: Send + ?Sized>() {}
    assert_send_sync::<PolicyKind>();
    assert_send_sync::<RgpTuning>();
    assert_send::<Box<dyn SchedulingPolicy>>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use numadag_tdg::{TaskSpec, TdgBuilder};

    fn spec(with_ep: bool) -> TaskGraphSpec {
        let mut b = TdgBuilder::new();
        let r = b.region(64);
        b.submit(TaskSpec::new("w").writes(r, 64));
        b.submit(TaskSpec::new("r").reads(r, 64));
        let (g, sizes) = b.finish();
        let s = TaskGraphSpec::new("toy", g, sizes);
        if with_ep {
            s.with_ep_placement(vec![0, 0])
        } else {
            s
        }
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(PolicyKind::Dfifo.label(), "DFIFO");
        assert_eq!(PolicyKind::RgpLas.label(), "RGP+LAS");
        assert_eq!(PolicyKind::Las.to_string(), "LAS");
        assert_eq!(PolicyKind::rgp_las_window(512).label(), "RGP+LAS:w=512");
        assert_eq!(PolicyKind::rgp_rr_window(64).base_label(), "RGP+RR");
        assert_eq!(
            PolicyKind::rgp_las(
                RgpTuning::default()
                    .with_window(512)
                    .with_scheme(PartitionScheme::RecursiveBisection)
                    .with_passes(4)
            )
            .label(),
            "RGP+LAS:w=512,scheme=rb,passes=4"
        );
        assert_eq!(PolicyKind::figure1().len(), 4);
        assert_eq!(PolicyKind::all().len(), 5);
    }

    #[test]
    fn every_registered_label_round_trips() {
        for kind in PolicyKind::all() {
            assert_eq!(kind.label().parse::<PolicyKind>(), Ok(kind), "{kind}");
        }
        for w in [1usize, 64, 512, 4096] {
            for kind in [PolicyKind::rgp_las_window(w), PolicyKind::rgp_rr_window(w)] {
                assert_eq!(kind.label().parse::<PolicyKind>(), Ok(kind), "{kind}");
            }
        }
        // Every tuning combination round-trips exactly.
        for scheme in [None, Some(PartitionScheme::BfsGrowing)] {
            for window in [None, Some(256)] {
                for passes in [None, Some(2)] {
                    for prop in [None, Some(Propagation::Repartition)] {
                        for anchor in [None, Some(AnchorMode::Deps)] {
                            let tuning = RgpTuning {
                                window,
                                scheme,
                                passes,
                                prop,
                                anchor,
                            };
                            for kind in [PolicyKind::rgp_las(tuning), PolicyKind::rgp_rr(tuning)] {
                                assert_eq!(kind.label().parse::<PolicyKind>(), Ok(kind), "{kind}");
                            }
                        }
                    }
                }
            }
        }
        // Every propagation and anchor token round-trips through the label.
        for prop in [
            Propagation::Las,
            Propagation::RoundRobin,
            Propagation::Repartition,
        ] {
            let kind = PolicyKind::rgp_las(RgpTuning::default().with_prop(prop));
            assert_eq!(kind.label().parse::<PolicyKind>(), Ok(kind), "{kind}");
        }
        for anchor in [
            AnchorMode::None,
            AnchorMode::Deps,
            AnchorMode::Homes,
            AnchorMode::Both,
        ] {
            let kind = PolicyKind::rgp_las(RgpTuning::default().with_anchor(anchor));
            assert_eq!(kind.label().parse::<PolicyKind>(), Ok(kind), "{kind}");
        }
    }

    #[test]
    fn propagation_and_anchor_knobs_parse_and_label() {
        assert_eq!(
            "rgp-las:prop=repart".parse::<PolicyKind>(),
            Ok(PolicyKind::RgpLasTuned(
                RgpTuning::default().with_prop(Propagation::Repartition)
            ))
        );
        assert_eq!(
            "rgp-las:w=512,prop=repart,anchor=deps".parse::<PolicyKind>(),
            Ok(PolicyKind::RgpLasTuned(
                RgpTuning::default()
                    .with_window(512)
                    .with_prop(Propagation::Repartition)
                    .with_anchor(AnchorMode::Deps)
            ))
        );
        // Canonical parameter order is stable regardless of input order.
        assert_eq!(
            "rgp-las:anchor=both,w=64,prop=repartition"
                .parse::<PolicyKind>()
                .unwrap()
                .label(),
            "RGP+LAS:w=64,prop=repart,anchor=both"
        );
        // Long spellings of the tokens are accepted.
        assert_eq!(
            "rgp-las:propagation=repartition,anchor=dependences".parse::<PolicyKind>(),
            Ok(PolicyKind::RgpLasTuned(
                RgpTuning::default()
                    .with_prop(Propagation::Repartition)
                    .with_anchor(AnchorMode::Deps)
            ))
        );
    }

    #[test]
    fn equivalent_policy_strings_canonicalize_to_one_label() {
        // The report cache in numadag-serve keys on canonical labels, so
        // every spelling of the same policy must collapse to one string.
        let spellings = [
            "rgp-las:w=512,scheme=rb,prop=repart",
            "rgp-las:scheme=rb,w=512,prop=repart",
            "rgp-las:prop=repartition,scheme=rb,window=512",
            "RGP+LAS:prop=repart,w=512,scheme=rb",
        ];
        let labels: Vec<String> = spellings
            .iter()
            .map(|s| s.parse::<PolicyKind>().unwrap().label())
            .collect();
        for label in &labels {
            assert_eq!(label, "RGP+LAS:w=512,scheme=rb,prop=repart");
        }
        // And the canonical label round-trips to the same kind.
        let kind = spellings[0].parse::<PolicyKind>().unwrap();
        assert_eq!(kind.label().parse::<PolicyKind>(), Ok(kind));
    }

    #[test]
    fn redundant_prop_knobs_normalize_to_the_plain_kinds() {
        // `prop=las` on rgp-las (and `prop=rr` on rgp-rr) restates the
        // propagation the base kind already implies.
        assert_eq!(
            "rgp-las:prop=las".parse::<PolicyKind>(),
            Ok(PolicyKind::RgpLas)
        );
        assert_eq!(
            "rgp-rr:prop=rr".parse::<PolicyKind>(),
            Ok(PolicyKind::RgpRr)
        );
        assert_eq!(
            "rgp-las:w=256,prop=las"
                .parse::<PolicyKind>()
                .unwrap()
                .label(),
            "RGP+LAS:w=256"
        );
        // The cross combinations stay explicit: they change behaviour.
        assert_eq!(
            "rgp-las:prop=rr".parse::<PolicyKind>().unwrap().label(),
            "RGP+LAS:prop=rr"
        );
        assert_eq!(
            "rgp-rr:prop=las".parse::<PolicyKind>().unwrap().label(),
            "RGP+RR:prop=las"
        );
        // Normalisation never weakens the params-on-non-RGP error.
        assert!("las:prop=las".parse::<PolicyKind>().is_err());
        assert!("dfifo:w=64".parse::<PolicyKind>().is_err());
    }

    #[test]
    fn parsing_is_forgiving_about_case_and_separators() {
        for s in ["rgp-las", "RGP+LAS", "Rgp_Las", " rgp las "] {
            assert_eq!(s.parse::<PolicyKind>(), Ok(PolicyKind::RgpLas), "{s:?}");
        }
        assert_eq!(
            "rgp-las:window=256".parse::<PolicyKind>(),
            Ok(PolicyKind::rgp_las_window(256))
        );
        assert_eq!(
            "RGP+RR:w=128".parse::<PolicyKind>(),
            Ok(PolicyKind::rgp_rr_window(128))
        );
        assert_eq!(
            "rgp-las:scheme=BFS".parse::<PolicyKind>(),
            Ok(PolicyKind::RgpLasTuned(
                RgpTuning::default().with_scheme(PartitionScheme::BfsGrowing)
            ))
        );
        assert_eq!(
            "rgp-las:p=2,s=rb".parse::<PolicyKind>(),
            Ok(PolicyKind::RgpLasTuned(
                RgpTuning::default()
                    .with_scheme(PartitionScheme::RecursiveBisection)
                    .with_passes(2)
            ))
        );
        assert_eq!("dfifo".parse::<PolicyKind>(), Ok(PolicyKind::Dfifo));
        // An empty parameter list is the plain kind.
        assert_eq!("rgp-las:".parse::<PolicyKind>(), Ok(PolicyKind::RgpLas));
    }

    #[test]
    fn bad_labels_are_rejected() {
        for s in [
            "",
            "fifo",
            "las:w=2",
            "rgp-las:w=0",
            "rgp-las:w=abc",
            "rgp-las:x=1",
            "rgp-las:scheme=quantum",
            "rgp-las:passes=lots",
            "rgp-las:prop=quantum",
            "rgp-las:anchor=elsewhere",
            "las:prop=repart",
        ] {
            assert!(s.parse::<PolicyKind>().is_err(), "{s:?} should not parse");
        }
        let msg = "nope".parse::<PolicyKind>().unwrap_err().to_string();
        assert!(msg.contains("nope"));
    }

    #[test]
    fn parse_list_splits_on_policies_not_parameters() {
        let kinds = PolicyKind::parse_list("dfifo, rgp-las:w=512, ep").unwrap();
        assert_eq!(
            kinds,
            vec![
                PolicyKind::Dfifo,
                PolicyKind::rgp_las_window(512),
                PolicyKind::Ep
            ]
        );
        // Parameter-list commas stay with their policy.
        let kinds = PolicyKind::parse_list("rgp-las:w=64,scheme=rb,las").unwrap();
        assert_eq!(
            kinds,
            vec![
                PolicyKind::RgpLasTuned(
                    RgpTuning::default()
                        .with_window(64)
                        .with_scheme(PartitionScheme::RecursiveBisection)
                ),
                PolicyKind::Las
            ]
        );
        assert!(PolicyKind::parse_list("dfifo,bogus").is_err());
    }

    #[test]
    fn with_window_parameterises_rgp_only() {
        assert_eq!(
            PolicyKind::RgpLas.with_window(64),
            Some(PolicyKind::rgp_las_window(64))
        );
        assert_eq!(
            PolicyKind::rgp_rr_window(8).with_window(16),
            Some(PolicyKind::rgp_rr_window(16))
        );
        assert_eq!(PolicyKind::Las.with_window(64), None);
        assert_eq!(
            PolicyKind::Dfifo.with_scheme(PartitionScheme::BfsGrowing),
            None
        );
        // Knobs compose without clobbering each other.
        let kind = PolicyKind::RgpLas
            .with_window(32)
            .unwrap()
            .with_scheme(PartitionScheme::RecursiveBisection)
            .unwrap()
            .with_passes(2)
            .unwrap();
        assert_eq!(kind.label(), "RGP+LAS:w=32,scheme=rb,passes=2");
        assert_eq!(kind.window(), Some(32));
    }

    #[test]
    fn default_tuning_normalises_to_plain_kinds() {
        assert_eq!(
            PolicyKind::rgp_las(RgpTuning::default()),
            PolicyKind::RgpLas
        );
        assert_eq!(PolicyKind::rgp_rr(RgpTuning::default()), PolicyKind::RgpRr);
        assert_eq!(PolicyKind::RgpLas.tuning(), Some(RgpTuning::default()));
        assert_eq!(PolicyKind::Ep.tuning(), None);
        // Even a hand-constructed Tuned variant with a default tuning (which
        // bypasses the normalising constructors) labels as the plain kind —
        // no dangling "RGP+LAS:" — and its label parses to the plain kind.
        let denormal = PolicyKind::RgpLasTuned(RgpTuning::default());
        assert_eq!(denormal.label(), "RGP+LAS");
        assert_eq!(
            denormal.label().parse::<PolicyKind>(),
            Ok(PolicyKind::RgpLas)
        );
    }

    #[test]
    fn factory_builds_every_policy() {
        let s = spec(true);
        for kind in PolicyKind::all() {
            let p = make_policy(kind, &s, 42).expect("policy should build");
            assert_eq!(p.name(), kind.label());
        }
        // Tuned kinds build the same named policy with the knobs applied.
        let p = make_policy(PolicyKind::rgp_las_window(1), &s, 42).unwrap();
        assert_eq!(p.name(), "RGP+LAS");
        let p = make_policy(
            PolicyKind::RgpLas
                .with_scheme(PartitionScheme::BfsGrowing)
                .unwrap(),
            &s,
            42,
        )
        .unwrap();
        assert_eq!(p.name(), "RGP+LAS");
        // Repartition propagation keeps the paper's display name: it is
        // still RGP with LAS propagation, only applied window by window.
        let p = make_policy(
            "rgp-las:prop=repart,anchor=both"
                .parse::<PolicyKind>()
                .unwrap(),
            &s,
            42,
        )
        .unwrap();
        assert_eq!(p.name(), "RGP+LAS");
    }

    #[test]
    fn ep_requires_a_placement() {
        let s = spec(false);
        assert!(make_policy(PolicyKind::Ep, &s, 1).is_none());
        assert!(make_policy(PolicyKind::Las, &s, 1).is_some());
    }

    #[test]
    fn window_override_reaches_rgp() {
        let s = spec(true);
        // Just exercises the code path; behaviour is covered in rgp tests.
        let p = make_policy_with_window(PolicyKind::RgpLas, &s, 3, Some(1)).unwrap();
        assert_eq!(p.name(), "RGP+LAS");
        // An explicit override wins over the kind's embedded window.
        let p = make_policy_with_window(PolicyKind::rgp_las_window(4096), &s, 3, Some(1)).unwrap();
        assert_eq!(p.name(), "RGP+LAS");
    }
}
