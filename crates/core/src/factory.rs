//! Convenience construction of policies by name, used by the benchmark
//! harness and the examples.

use numadag_tdg::TaskGraphSpec;

use crate::dfifo::DfifoPolicy;
use crate::ep::EpPolicy;
use crate::las::LasPolicy;
use crate::policy::SchedulingPolicy;
use crate::rgp::{Propagation, RgpConfig, RgpPolicy};

/// The scheduling policies evaluated in the paper (plus the RGP round-robin
/// propagation ablation).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Distributed FIFO.
    Dfifo,
    /// Expert programmer.
    Ep,
    /// Locality-aware scheduling (the baseline).
    Las,
    /// Runtime graph partitioning with LAS propagation (the contribution).
    RgpLas,
    /// Runtime graph partitioning with round-robin propagation (ablation).
    RgpRr,
}

impl PolicyKind {
    /// The four policies of the paper's Figure 1, in its plotting order.
    pub fn figure1() -> [PolicyKind; 4] {
        [
            PolicyKind::Dfifo,
            PolicyKind::RgpLas,
            PolicyKind::Ep,
            PolicyKind::Las,
        ]
    }

    /// All implemented policies.
    pub fn all() -> [PolicyKind; 5] {
        [
            PolicyKind::Dfifo,
            PolicyKind::Ep,
            PolicyKind::Las,
            PolicyKind::RgpLas,
            PolicyKind::RgpRr,
        ]
    }

    /// The display name used in reports (matches the paper's labels).
    pub fn label(&self) -> &'static str {
        match self {
            PolicyKind::Dfifo => "DFIFO",
            PolicyKind::Ep => "EP",
            PolicyKind::Las => "LAS",
            PolicyKind::RgpLas => "RGP+LAS",
            PolicyKind::RgpRr => "RGP+RR",
        }
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Instantiates a policy for a workload.
///
/// Returns `None` only for [`PolicyKind::Ep`] when the workload does not
/// define an expert placement.
pub fn make_policy(
    kind: PolicyKind,
    spec: &TaskGraphSpec,
    seed: u64,
) -> Option<Box<dyn SchedulingPolicy>> {
    make_policy_with_window(kind, spec, seed, None)
}

/// Like [`make_policy`] but with an explicit RGP window size (ignored by the
/// non-RGP policies). `None` uses the default window.
pub fn make_policy_with_window(
    kind: PolicyKind,
    spec: &TaskGraphSpec,
    seed: u64,
    window_size: Option<usize>,
) -> Option<Box<dyn SchedulingPolicy>> {
    let rgp_config = |propagation| {
        let mut cfg = RgpConfig::default()
            .with_seed(seed)
            .with_propagation(propagation);
        if let Some(w) = window_size {
            cfg = cfg.with_window_size(w);
        }
        cfg
    };
    Some(match kind {
        PolicyKind::Dfifo => Box::new(DfifoPolicy::new()) as Box<dyn SchedulingPolicy>,
        PolicyKind::Ep => Box::new(EpPolicy::from_spec(spec)?),
        PolicyKind::Las => Box::new(LasPolicy::new(seed)),
        PolicyKind::RgpLas => Box::new(RgpPolicy::new(rgp_config(Propagation::Las))),
        PolicyKind::RgpRr => Box::new(RgpPolicy::new(rgp_config(Propagation::RoundRobin))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use numadag_tdg::{TaskSpec, TdgBuilder};

    fn spec(with_ep: bool) -> TaskGraphSpec {
        let mut b = TdgBuilder::new();
        let r = b.region(64);
        b.submit(TaskSpec::new("w").writes(r, 64));
        b.submit(TaskSpec::new("r").reads(r, 64));
        let (g, sizes) = b.finish();
        let s = TaskGraphSpec::new("toy", g, sizes);
        if with_ep {
            s.with_ep_placement(vec![0, 0])
        } else {
            s
        }
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(PolicyKind::Dfifo.label(), "DFIFO");
        assert_eq!(PolicyKind::RgpLas.label(), "RGP+LAS");
        assert_eq!(PolicyKind::Las.to_string(), "LAS");
        assert_eq!(PolicyKind::figure1().len(), 4);
        assert_eq!(PolicyKind::all().len(), 5);
    }

    #[test]
    fn factory_builds_every_policy() {
        let s = spec(true);
        for kind in PolicyKind::all() {
            let p = make_policy(kind, &s, 42).expect("policy should build");
            assert_eq!(p.name(), kind.label());
        }
    }

    #[test]
    fn ep_requires_a_placement() {
        let s = spec(false);
        assert!(make_policy(PolicyKind::Ep, &s, 1).is_none());
        assert!(make_policy(PolicyKind::Las, &s, 1).is_some());
    }

    #[test]
    fn window_override_reaches_rgp() {
        let s = spec(true);
        // Just exercises the code path; behaviour is covered in rgp tests.
        let p = make_policy_with_window(PolicyKind::RgpLas, &s, 3, Some(1)).unwrap();
        assert_eq!(p.name(), "RGP+LAS");
    }
}
