//! The policy registry: every scheduling policy the workspace implements,
//! addressable by a stable, string-parseable label.
//!
//! [`PolicyKind`] is the single source of truth for "which policies exist".
//! Each kind has a canonical [`PolicyKind::label`] that round-trips through
//! [`PolicyKind::from_str`], so benchmark binaries, examples and tests can
//! select policies from CLI arguments or config files instead of hard-coded
//! match arms. Parameterised policies encode their parameters in the label
//! (e.g. `RGP+LAS:w=512` for RGP+LAS with a 512-task window).

use std::str::FromStr;

use numadag_tdg::TaskGraphSpec;

use crate::dfifo::DfifoPolicy;
use crate::ep::EpPolicy;
use crate::las::LasPolicy;
use crate::policy::SchedulingPolicy;
use crate::rgp::{Propagation, RgpConfig, RgpPolicy};

/// The scheduling policies evaluated in the paper (plus the RGP round-robin
/// propagation ablation). The `…Window` variants carry an explicit RGP
/// window size; the plain `Rgp…` variants use the default window.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Distributed FIFO.
    Dfifo,
    /// Expert programmer.
    Ep,
    /// Locality-aware scheduling (the baseline).
    Las,
    /// Runtime graph partitioning with LAS propagation (the contribution).
    RgpLas,
    /// Runtime graph partitioning with round-robin propagation (ablation).
    RgpRr,
    /// RGP+LAS with an explicit window size.
    RgpLasWindow(usize),
    /// RGP+RR with an explicit window size.
    RgpRrWindow(usize),
}

/// Error returned when a policy label cannot be parsed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParsePolicyError(String);

impl std::fmt::Display for ParsePolicyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown policy {:?} (expected one of: dfifo, ep, las, rgp-las, rgp-rr, \
             optionally with an RGP window suffix like rgp-las:w=512)",
            self.0
        )
    }
}

impl std::error::Error for ParsePolicyError {}

impl PolicyKind {
    /// The four policies of the paper's Figure 1, in its plotting order.
    pub fn figure1() -> [PolicyKind; 4] {
        [
            PolicyKind::Dfifo,
            PolicyKind::RgpLas,
            PolicyKind::Ep,
            PolicyKind::Las,
        ]
    }

    /// All registered base policies (windowed RGP variants are parameterised
    /// spellings of `RgpLas`/`RgpRr`, not separate registry entries).
    pub fn all() -> [PolicyKind; 5] {
        [
            PolicyKind::Dfifo,
            PolicyKind::Ep,
            PolicyKind::Las,
            PolicyKind::RgpLas,
            PolicyKind::RgpRr,
        ]
    }

    /// The canonical label: the paper's display name, with any parameters
    /// appended (`RGP+LAS:w=512`). Round-trips through [`PolicyKind::from_str`].
    pub fn label(&self) -> String {
        match self {
            PolicyKind::RgpLasWindow(w) => format!("RGP+LAS:w={w}"),
            PolicyKind::RgpRrWindow(w) => format!("RGP+RR:w={w}"),
            other => other.base_label().to_string(),
        }
    }

    /// The display name used in reports (matches the paper's labels); the
    /// window parameter, if any, is dropped.
    pub fn base_label(&self) -> &'static str {
        match self {
            PolicyKind::Dfifo => "DFIFO",
            PolicyKind::Ep => "EP",
            PolicyKind::Las => "LAS",
            PolicyKind::RgpLas | PolicyKind::RgpLasWindow(_) => "RGP+LAS",
            PolicyKind::RgpRr | PolicyKind::RgpRrWindow(_) => "RGP+RR",
        }
    }

    /// The explicit RGP window size encoded in this kind, if any.
    pub fn window(&self) -> Option<usize> {
        match self {
            PolicyKind::RgpLasWindow(w) | PolicyKind::RgpRrWindow(w) => Some(*w),
            _ => None,
        }
    }

    /// This kind with the given explicit RGP window. Returns `None` for
    /// policies that have no window parameter.
    pub fn with_window(&self, window: usize) -> Option<PolicyKind> {
        match self {
            PolicyKind::RgpLas | PolicyKind::RgpLasWindow(_) => {
                Some(PolicyKind::RgpLasWindow(window))
            }
            PolicyKind::RgpRr | PolicyKind::RgpRrWindow(_) => Some(PolicyKind::RgpRrWindow(window)),
            _ => None,
        }
    }

    /// Parses a comma-separated list of policy labels (CLI convenience).
    pub fn parse_list(s: &str) -> Result<Vec<PolicyKind>, ParsePolicyError> {
        s.split(',')
            .map(str::trim)
            .filter(|p| !p.is_empty())
            .map(PolicyKind::from_str)
            .collect()
    }
}

impl FromStr for PolicyKind {
    type Err = ParsePolicyError;

    /// Parses a policy label. Matching is case-insensitive and treats `+`,
    /// `-`, `_` and spaces as the same separator, so `RGP+LAS`, `rgp-las` and
    /// `rgp_las` all name the same policy. An optional `:`-separated
    /// parameter list selects the RGP window: `rgp-las:w=512` (also
    /// `window=512`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParsePolicyError(s.to_string());
        let normalized = s.trim().to_ascii_lowercase().replace(['+', '_', ' '], "-");
        let (base, params) = match normalized.split_once(':') {
            Some((b, p)) => (b, Some(p)),
            None => (normalized.as_str(), None),
        };
        let mut window = None;
        if let Some(params) = params {
            for param in params.split(',').filter(|p| !p.is_empty()) {
                match param.split_once('=') {
                    Some(("w" | "window", value)) => {
                        let w: usize = value.parse().map_err(|_| err())?;
                        if w == 0 {
                            return Err(err());
                        }
                        window = Some(w);
                    }
                    _ => return Err(err()),
                }
            }
        }
        let kind = match (base, window) {
            ("dfifo", None) => PolicyKind::Dfifo,
            ("ep", None) => PolicyKind::Ep,
            ("las", None) => PolicyKind::Las,
            ("rgp-las" | "rgplas", None) => PolicyKind::RgpLas,
            ("rgp-rr" | "rgprr", None) => PolicyKind::RgpRr,
            ("rgp-las" | "rgplas", Some(w)) => PolicyKind::RgpLasWindow(w),
            ("rgp-rr" | "rgprr", Some(w)) => PolicyKind::RgpRrWindow(w),
            _ => return Err(err()),
        };
        Ok(kind)
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// Instantiates a policy for a workload. RGP kinds use the window size
/// encoded in the kind (default window when none is encoded).
///
/// Returns `None` only for [`PolicyKind::Ep`] when the workload does not
/// define an expert placement.
pub fn make_policy(
    kind: PolicyKind,
    spec: &TaskGraphSpec,
    seed: u64,
) -> Option<Box<dyn SchedulingPolicy>> {
    make_policy_with_window(kind, spec, seed, kind.window())
}

/// Like [`make_policy`] but with an explicit RGP window size (ignored by the
/// non-RGP policies) that overrides any window encoded in `kind`. `None`
/// uses the default window.
pub fn make_policy_with_window(
    kind: PolicyKind,
    spec: &TaskGraphSpec,
    seed: u64,
    window_size: Option<usize>,
) -> Option<Box<dyn SchedulingPolicy>> {
    let rgp_config = |propagation| {
        let mut cfg = RgpConfig::default()
            .with_seed(seed)
            .with_propagation(propagation);
        if let Some(w) = window_size.or(kind.window()) {
            cfg = cfg.with_window_size(w);
        }
        cfg
    };
    Some(match kind {
        PolicyKind::Dfifo => Box::new(DfifoPolicy::new()) as Box<dyn SchedulingPolicy>,
        PolicyKind::Ep => Box::new(EpPolicy::from_spec(spec)?),
        PolicyKind::Las => Box::new(LasPolicy::new(seed)),
        PolicyKind::RgpLas | PolicyKind::RgpLasWindow(_) => {
            Box::new(RgpPolicy::new(rgp_config(Propagation::Las)))
        }
        PolicyKind::RgpRr | PolicyKind::RgpRrWindow(_) => {
            Box::new(RgpPolicy::new(rgp_config(Propagation::RoundRobin)))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use numadag_tdg::{TaskSpec, TdgBuilder};

    fn spec(with_ep: bool) -> TaskGraphSpec {
        let mut b = TdgBuilder::new();
        let r = b.region(64);
        b.submit(TaskSpec::new("w").writes(r, 64));
        b.submit(TaskSpec::new("r").reads(r, 64));
        let (g, sizes) = b.finish();
        let s = TaskGraphSpec::new("toy", g, sizes);
        if with_ep {
            s.with_ep_placement(vec![0, 0])
        } else {
            s
        }
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(PolicyKind::Dfifo.label(), "DFIFO");
        assert_eq!(PolicyKind::RgpLas.label(), "RGP+LAS");
        assert_eq!(PolicyKind::Las.to_string(), "LAS");
        assert_eq!(PolicyKind::RgpLasWindow(512).label(), "RGP+LAS:w=512");
        assert_eq!(PolicyKind::RgpRrWindow(64).base_label(), "RGP+RR");
        assert_eq!(PolicyKind::figure1().len(), 4);
        assert_eq!(PolicyKind::all().len(), 5);
    }

    #[test]
    fn every_registered_label_round_trips() {
        for kind in PolicyKind::all() {
            assert_eq!(kind.label().parse::<PolicyKind>(), Ok(kind), "{kind}");
        }
        for w in [1usize, 64, 512, 4096] {
            for kind in [PolicyKind::RgpLasWindow(w), PolicyKind::RgpRrWindow(w)] {
                assert_eq!(kind.label().parse::<PolicyKind>(), Ok(kind), "{kind}");
            }
        }
    }

    #[test]
    fn parsing_is_forgiving_about_case_and_separators() {
        for s in ["rgp-las", "RGP+LAS", "Rgp_Las", " rgp las "] {
            assert_eq!(s.parse::<PolicyKind>(), Ok(PolicyKind::RgpLas), "{s:?}");
        }
        assert_eq!(
            "rgp-las:window=256".parse::<PolicyKind>(),
            Ok(PolicyKind::RgpLasWindow(256))
        );
        assert_eq!(
            "RGP+RR:w=128".parse::<PolicyKind>(),
            Ok(PolicyKind::RgpRrWindow(128))
        );
        assert_eq!("dfifo".parse::<PolicyKind>(), Ok(PolicyKind::Dfifo));
    }

    #[test]
    fn bad_labels_are_rejected() {
        for s in [
            "",
            "fifo",
            "las:w=2",
            "rgp-las:w=0",
            "rgp-las:w=abc",
            "rgp-las:x=1",
        ] {
            assert!(s.parse::<PolicyKind>().is_err(), "{s:?} should not parse");
        }
        let msg = "nope".parse::<PolicyKind>().unwrap_err().to_string();
        assert!(msg.contains("nope"));
    }

    #[test]
    fn parse_list_splits_on_commas() {
        let kinds = PolicyKind::parse_list("dfifo, rgp-las:w=512, ep").unwrap();
        assert_eq!(
            kinds,
            vec![
                PolicyKind::Dfifo,
                PolicyKind::RgpLasWindow(512),
                PolicyKind::Ep
            ]
        );
        assert!(PolicyKind::parse_list("dfifo,bogus").is_err());
    }

    #[test]
    fn with_window_parameterises_rgp_only() {
        assert_eq!(
            PolicyKind::RgpLas.with_window(64),
            Some(PolicyKind::RgpLasWindow(64))
        );
        assert_eq!(
            PolicyKind::RgpRrWindow(8).with_window(16),
            Some(PolicyKind::RgpRrWindow(16))
        );
        assert_eq!(PolicyKind::Las.with_window(64), None);
    }

    #[test]
    fn factory_builds_every_policy() {
        let s = spec(true);
        for kind in PolicyKind::all() {
            let p = make_policy(kind, &s, 42).expect("policy should build");
            assert_eq!(p.name(), kind.label());
        }
        // Windowed kinds build the same named policy with the window applied.
        let p = make_policy(PolicyKind::RgpLasWindow(1), &s, 42).unwrap();
        assert_eq!(p.name(), "RGP+LAS");
    }

    #[test]
    fn ep_requires_a_placement() {
        let s = spec(false);
        assert!(make_policy(PolicyKind::Ep, &s, 1).is_none());
        assert!(make_policy(PolicyKind::Las, &s, 1).is_some());
    }

    #[test]
    fn window_override_reaches_rgp() {
        let s = spec(true);
        // Just exercises the code path; behaviour is covered in rgp tests.
        let p = make_policy_with_window(PolicyKind::RgpLas, &s, 3, Some(1)).unwrap();
        assert_eq!(p.name(), "RGP+LAS");
        // An explicit override wins over the kind's embedded window.
        let p = make_policy_with_window(PolicyKind::RgpLasWindow(4096), &s, 3, Some(1)).unwrap();
        assert_eq!(p.name(), "RGP+LAS");
    }
}
