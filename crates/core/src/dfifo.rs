//! Distributed FIFO (DFIFO): locality-blind cyclic assignment.
//!
//! "Unaware of data allocation, each task goes to a different CPU in a
//! cyclic order." Because the executors dispatch at socket granularity (the
//! cores of a socket share one queue), cycling over CPUs is equivalent to
//! cycling over sockets at a finer stride; we cycle over *cores* and report
//! the owning socket, so the distribution over sockets matches the paper's
//! description exactly even when the core count is not a multiple of the
//! socket count.

use numadag_numa::{CoreId, SocketId};
use numadag_tdg::TaskDescriptor;

use crate::policy::{DataLocator, SchedulingPolicy};

/// The DFIFO policy.
#[derive(Clone, Debug, Default)]
pub struct DfifoPolicy {
    next_core: usize,
}

impl DfifoPolicy {
    /// Creates a DFIFO policy starting at core 0.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SchedulingPolicy for DfifoPolicy {
    fn name(&self) -> &'static str {
        "DFIFO"
    }

    fn assign(&mut self, _task: &TaskDescriptor, locator: &dyn DataLocator) -> SocketId {
        let topo = locator.topology();
        let core = CoreId(self.next_core % topo.num_cores());
        self.next_core = (self.next_core + 1) % topo.num_cores();
        topo.socket_of(core)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::MemoryLocator;
    use numadag_numa::{MemoryMap, Topology};
    use numadag_tdg::{TaskDescriptor, TaskId};

    fn dummy_task(id: usize) -> TaskDescriptor {
        TaskDescriptor {
            id: TaskId(id),
            kind: "t".into(),
            work_units: 1.0,
            accesses: vec![],
        }
    }

    #[test]
    fn cycles_over_all_cores_and_sockets() {
        let topo = Topology::bullion_s16();
        let mem = MemoryMap::new();
        let loc = MemoryLocator::new(&topo, &mem);
        let mut p = DfifoPolicy::new();
        assert_eq!(p.name(), "DFIFO");
        let mut socket_counts = vec![0usize; topo.num_sockets()];
        for i in 0..64 {
            let s = p.assign(&dummy_task(i), &loc);
            socket_counts[s.index()] += 1;
        }
        // 64 tasks over 32 cores: every socket gets exactly 8 tasks.
        assert!(socket_counts.iter().all(|&c| c == 8), "{socket_counts:?}");
    }

    #[test]
    fn first_tasks_fill_socket_zero_first() {
        let topo = Topology::bullion_s16();
        let mem = MemoryMap::new();
        let loc = MemoryLocator::new(&topo, &mem);
        let mut p = DfifoPolicy::new();
        // Cores 0..3 belong to socket 0, core 4 to socket 1.
        assert_eq!(p.assign(&dummy_task(0), &loc), SocketId(0));
        assert_eq!(p.assign(&dummy_task(1), &loc), SocketId(0));
        assert_eq!(p.assign(&dummy_task(2), &loc), SocketId(0));
        assert_eq!(p.assign(&dummy_task(3), &loc), SocketId(0));
        assert_eq!(p.assign(&dummy_task(4), &loc), SocketId(1));
    }

    #[test]
    fn single_socket_machine_always_socket_zero() {
        let topo = Topology::uma(4);
        let mem = MemoryMap::new();
        let loc = MemoryLocator::new(&topo, &mem);
        let mut p = DfifoPolicy::new();
        for i in 0..10 {
            assert_eq!(p.assign(&dummy_task(i), &loc), SocketId(0));
        }
    }
}
