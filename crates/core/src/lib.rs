//! # numadag-core — NUMA-aware DAG scheduling policies
//!
//! This crate is the paper's contribution: task scheduling policies that use
//! the task dependency graph (TDG) and the physical location of data to
//! decide which NUMA socket each task should run on.
//!
//! Implemented policies, matching the evaluation of the paper:
//!
//! * [`dfifo::DfifoPolicy`] — *distributed FIFO*: locality-blind round-robin
//!   over the sockets; the "no NUMA awareness" lower bound.
//! * [`ep::EpPolicy`] — *expert programmer*: the placement hard-coded in the
//!   benchmark source (block/owner-computes distributions).
//! * [`las::LasPolicy`] — *locality-aware scheduling* (Drebes et al.,
//!   PACT'16): deferred allocation plus enhanced work pushing towards the
//!   socket holding most of the task's allocated data. The paper's baseline.
//! * [`rgp::RgpPolicy`] — *runtime graph partitioning*: the first window of
//!   the TDG is partitioned with a graph partitioner (one part per socket,
//!   edge weights = bytes); the partition is then propagated to the rest of
//!   the execution, either with LAS (`RGP+LAS`, the paper's technique) or
//!   with round-robin (an ablation).
//!
//! Policies are deliberately independent from the executor: they only see a
//! [`policy::DataLocator`] (where is each region?) and the ready task, so the
//! same policy drives both the discrete-event simulator and the threaded
//! executor in `numadag-runtime`.

#![warn(missing_docs)]

pub mod dfifo;
pub mod ep;
pub mod factory;
pub mod las;
pub mod policy;
pub mod rgp;
pub mod weights;

pub use dfifo::DfifoPolicy;
pub use ep::EpPolicy;
pub use factory::{make_policy, make_policy_with_window, ParsePolicyError, PolicyKind, RgpTuning};
// Re-exported so policy consumers can spell partitioner knobs without a
// direct numadag-graph dependency.
pub use las::LasPolicy;
pub use numadag_graph::{PartitionScheme, PartitionTuning};
pub use policy::{DataLocator, MemoryLocator, PartitionStats, SchedulingPolicy};
pub use rgp::{AnchorMode, Propagation, RgpConfig, RgpPolicy};
