//! Runtime graph partitioning (RGP) — the paper's proposed technique.
//!
//! The TDG is accumulated as tasks are instantiated. Once the window size
//! limit is reached (or a barrier is hit), the subgraph formed by the first
//! window of tasks is handed to a graph partitioner with one part per NUMA
//! socket; edge weights are the bytes the dependences represent and vertex
//! weights are the task compute costs, so the partitioner simultaneously
//! minimises the data shared across sockets and balances work.
//!
//! Tasks inside the window are scheduled on the socket of their part. Tasks
//! beyond the window are handled by a *propagation* policy:
//!
//! * [`Propagation::Las`] — the paper's `RGP+LAS`: locality-aware scheduling
//!   naturally extends the partition, because the data written by window
//!   tasks is already resident on "their" socket.
//! * [`Propagation::RoundRobin`] — an ablation that shows the partition alone
//!   is not enough without locality-aware propagation.
//! * [`Propagation::Repartition`] — *every* window is partitioned, lazily,
//!   as execution first crosses its boundary (a [`WindowCursor`] tracks the
//!   frontier). Each window is *anchored* to the placement already fixed by
//!   windows `0..k` — per-vertex socket-affinity terms built from
//!   cross-window dependences and/or the [`DataLocator`]-observed data homes
//!   (see [`AnchorMode`]) — and the resulting plan is fed to
//!   [`LasPolicy::assign_biased`] as the tie-break, so observed placements
//!   can still override it.

use std::sync::Arc;
use std::time::Instant;

use numadag_graph::{partition as gp, AffinityCosts, PartitionScheme, PartitionTuning};
use numadag_numa::SocketId;
use numadag_tdg::{
    window_to_csr, TaskDescriptor, TaskGraph, TaskId, TaskWindow, WindowConfig, WindowCursor,
};

use crate::las::LasPolicy;
use crate::policy::{DataLocator, PartitionStats, SchedulingPolicy};
use crate::weights::{socket_weights_into, SocketWeights};

/// How tasks beyond the partitioned window are scheduled.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Propagation {
    /// Propagate with locality-aware scheduling (the paper's RGP+LAS).
    #[default]
    Las,
    /// Propagate with a locality-blind round robin (ablation).
    RoundRobin,
    /// Re-partition every window as execution reaches it, anchored to the
    /// placements fixed by earlier windows.
    Repartition,
}

impl Propagation {
    /// The short, stable token used in policy labels (`prop=las`,
    /// `prop=rr`, `prop=repart`). Round-trips through
    /// [`Propagation::from_token`].
    pub fn token(&self) -> &'static str {
        match self {
            Propagation::Las => "las",
            Propagation::RoundRobin => "rr",
            Propagation::Repartition => "repart",
        }
    }

    /// Parses a propagation token (short or spelled-out, case-insensitive).
    pub fn from_token(s: &str) -> Option<Propagation> {
        match s.trim().to_ascii_lowercase().as_str() {
            "las" => Some(Propagation::Las),
            "rr" | "round-robin" | "roundrobin" => Some(Propagation::RoundRobin),
            "repart" | "repartition" => Some(Propagation::Repartition),
            _ => None,
        }
    }
}

/// Which anchors tie a re-partitioned window to the placements already made
/// (only used by [`Propagation::Repartition`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum AnchorMode {
    /// No anchors: every window is partitioned independently.
    None,
    /// Cross-window dependences into tasks whose socket is already decided.
    Deps,
    /// [`DataLocator`]-observed homes of each window task's data regions.
    Homes,
    /// Both dependence and observed-home anchors (the default).
    #[default]
    Both,
}

impl AnchorMode {
    /// The short, stable token used in policy labels (`anchor=none`,
    /// `anchor=deps`, `anchor=homes`, `anchor=both`). Round-trips through
    /// [`AnchorMode::from_token`].
    pub fn token(&self) -> &'static str {
        match self {
            AnchorMode::None => "none",
            AnchorMode::Deps => "deps",
            AnchorMode::Homes => "homes",
            AnchorMode::Both => "both",
        }
    }

    /// Parses an anchor-mode token (case-insensitive).
    pub fn from_token(s: &str) -> Option<AnchorMode> {
        match s.trim().to_ascii_lowercase().as_str() {
            "none" | "off" => Some(AnchorMode::None),
            "deps" | "dependences" | "dependencies" => Some(AnchorMode::Deps),
            "homes" | "data" => Some(AnchorMode::Homes),
            "both" | "all" => Some(AnchorMode::Both),
            _ => None,
        }
    }

    fn uses_deps(&self) -> bool {
        matches!(self, AnchorMode::Deps | AnchorMode::Both)
    }

    fn uses_homes(&self) -> bool {
        matches!(self, AnchorMode::Homes | AnchorMode::Both)
    }
}

/// Configuration of the RGP policy.
#[derive(Clone, Debug)]
pub struct RgpConfig {
    /// Window size limit: how many tasks are captured and partitioned.
    pub window: WindowConfig,
    /// Full partitioner configuration (scheme, imbalance, refinement
    /// passes, coarsening threshold); the part count and seed are filled in
    /// at [`SchedulingPolicy::prepare`] time from the machine topology.
    pub partitioner: PartitionTuning,
    /// Seed for the partitioner and for the propagation policy.
    pub seed: u64,
    /// Propagation used beyond the window.
    pub propagation: Propagation,
    /// Anchors used by [`Propagation::Repartition`] (ignored otherwise).
    pub anchor: AnchorMode,
}

impl Default for RgpConfig {
    fn default() -> Self {
        RgpConfig {
            window: WindowConfig::default(),
            partitioner: PartitionTuning::default(),
            seed: 0x56F1,
            propagation: Propagation::Las,
            anchor: AnchorMode::default(),
        }
    }
}

impl RgpConfig {
    /// Sets the window size.
    pub fn with_window_size(mut self, size: usize) -> Self {
        self.window = WindowConfig::new(size);
        self
    }

    /// Replaces the whole partitioner tuning.
    pub fn with_partitioner(mut self, partitioner: PartitionTuning) -> Self {
        self.partitioner = partitioner;
        self
    }

    /// Sets the allowed imbalance of the window partition.
    pub fn with_imbalance(mut self, imbalance: f64) -> Self {
        self.partitioner.imbalance = imbalance;
        self
    }

    /// Sets the partitioning scheme used on the window.
    pub fn with_scheme(mut self, scheme: PartitionScheme) -> Self {
        self.partitioner.scheme = scheme;
        self
    }

    /// Sets the refinement pass limit of the window partitioner.
    pub fn with_refine_passes(mut self, passes: usize) -> Self {
        self.partitioner.refine_passes = Some(passes);
        self
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the propagation mode.
    pub fn with_propagation(mut self, propagation: Propagation) -> Self {
        self.propagation = propagation;
        self
    }

    /// Sets the anchor mode used by [`Propagation::Repartition`].
    pub fn with_anchor(mut self, anchor: AnchorMode) -> Self {
        self.anchor = anchor;
        self
    }
}

/// The RGP policy (RGP+LAS by default).
pub struct RgpPolicy {
    config: RgpConfig,
    /// Socket decided by the partitioner for each window task.
    window_assignment: Vec<Option<SocketId>>,
    /// Fallback policy for tasks outside the window.
    las: LasPolicy,
    rr_next: usize,
    /// Statistics: edge cut of the window partition(s) (bytes; summed over
    /// all partitioned windows in repartition mode).
    window_edge_cut: i64,
    window_size_used: usize,
    /// Repartition mode: the graph the cursor walks (retained by `Arc` at
    /// `prepare` — `assign` receives only single tasks, but closing a later
    /// window needs the whole TDG back).
    graph: Option<Arc<TaskGraph>>,
    /// Repartition mode: the streaming window frontier.
    cursor: Option<WindowCursor>,
    /// Cost accounting: windows partitioned and partitioner wall time.
    partition_windows: usize,
    partition_wall_ns: f64,
    /// Scratch buffers reused by the partitioner across windows (repart mode
    /// re-coarsens every window; the arenas amortize those allocations).
    ctx: gp::PartitionCtx,
}

impl RgpPolicy {
    /// Creates an RGP policy with the given configuration.
    pub fn new(config: RgpConfig) -> Self {
        let las = LasPolicy::new(config.seed ^ 0x1A5);
        RgpPolicy {
            config,
            window_assignment: Vec::new(),
            las,
            rr_next: 0,
            window_edge_cut: 0,
            window_size_used: 0,
            graph: None,
            cursor: None,
            partition_windows: 0,
            partition_wall_ns: 0.0,
            ctx: gp::PartitionCtx::default(),
        }
    }

    /// Creates the paper's RGP+LAS with default parameters.
    pub fn rgp_las() -> Self {
        RgpPolicy::new(RgpConfig::default())
    }

    /// Edge cut (in bytes) of the partition of the initial window — summed
    /// over every partitioned window in repartition mode — available after
    /// [`SchedulingPolicy::prepare`].
    pub fn window_edge_cut(&self) -> i64 {
        self.window_edge_cut
    }

    /// Number of tasks captured in the (first) partitioned window.
    pub fn window_size_used(&self) -> usize {
        self.window_size_used
    }

    /// The socket the partitioner chose for `task`, if its window has been
    /// partitioned.
    pub fn window_socket_of(&self, task: TaskId) -> Option<SocketId> {
        self.window_assignment.get(task.index()).copied().flatten()
    }

    /// Number of windows handed to the partitioner so far.
    pub fn windows_partitioned(&self) -> usize {
        self.partition_windows
    }

    /// Partitions one window and records its plan into `window_assignment`.
    /// In repartition mode the window is anchored per [`RgpConfig::anchor`]:
    /// dependence anchors point at the recorded plan of earlier windows,
    /// home anchors at the observed placement of each task's data.
    fn partition_window_on(
        &mut self,
        graph: &TaskGraph,
        window: &TaskWindow,
        locator: &dyn DataLocator,
    ) {
        let num_sockets = locator.topology().num_sockets();
        if window.is_empty() || num_sockets <= 1 {
            return;
        }
        let started = Instant::now();
        let wg = window_to_csr(graph, window);
        // One seed per window keeps later windows decorrelated from the
        // first without losing determinism.
        let seed = self.config.seed.wrapping_add(self.partition_windows as u64);
        let cfg = self.config.partitioner.config_for(num_sockets, seed);
        let anchor = if self.config.propagation == Propagation::Repartition {
            self.config.anchor
        } else {
            AnchorMode::None
        };
        let partition = if anchor == AnchorMode::None {
            gp::partition_ctx(&wg.graph, &cfg, &mut self.ctx)
        } else {
            let mut affinity = AffinityCosts::zeros(wg.graph.num_vertices(), num_sockets);
            if anchor.uses_deps() {
                for ce in &wg.cross_edges {
                    if let Some(socket) = self.window_assignment[ce.predecessor.index()] {
                        affinity.add(ce.vertex, socket.index() as u32, ce.bytes);
                    }
                }
            }
            if anchor.uses_homes() {
                let mut w = SocketWeights {
                    weights: Vec::new(),
                    unallocated: 0,
                };
                let mut location = numadag_numa::memory::NodeBytes::default();
                for (v, &t) in wg.tasks.iter().enumerate() {
                    socket_weights_into(graph.task(t), locator, &mut w, &mut location);
                    for (s, &bytes) in w.weights.iter().enumerate() {
                        if bytes > 0 && s < num_sockets {
                            affinity.add(v as u32, s as u32, bytes as i64);
                        }
                    }
                }
            }
            gp::partition_anchored_ctx(&wg.graph, &cfg, &affinity, &mut self.ctx)
        };
        self.window_edge_cut += partition.edge_cut(&wg.graph);
        // Placement walks the precomputed part→members index (one O(window)
        // counting pass): the socket is resolved once per part rather than
        // once per task, and per-part member lists are the shape a per-part
        // consumer needs — the O(window·k) alternative of one
        // `members_of` scan per part never enters the hot path.
        for (part, members) in partition.members().iter() {
            let socket = SocketId(part as usize % num_sockets);
            for &v in members {
                self.window_assignment[wg.tasks[v as usize].index()] = Some(socket);
            }
        }
        self.partition_windows += 1;
        self.partition_wall_ns += started.elapsed().as_nanos() as f64;
    }

    /// Repartition mode: advances the cursor (partitioning each window it
    /// closes) until `task` is covered.
    fn ensure_covered(&mut self, task: TaskId, locator: &dyn DataLocator) {
        let Some(graph) = self.graph.take() else {
            return;
        };
        let Some(mut cursor) = self.cursor.take() else {
            self.graph = Some(graph);
            return;
        };
        while !cursor.covers(task) {
            match cursor.advance() {
                Some(window) => self.partition_window_on(&graph, &window, locator),
                None => break,
            }
        }
        self.cursor = Some(cursor);
        self.graph = Some(graph);
    }
}

impl SchedulingPolicy for RgpPolicy {
    fn name(&self) -> &'static str {
        match self.config.propagation {
            Propagation::Las | Propagation::Repartition => "RGP+LAS",
            Propagation::RoundRobin => "RGP+RR",
        }
    }

    fn prepare(&mut self, graph: &Arc<TaskGraph>, locator: &dyn DataLocator) {
        self.window_assignment = vec![None; graph.num_tasks()];
        match self.config.propagation {
            Propagation::Repartition => {
                let mut cursor = WindowCursor::new(graph, self.config.window);
                if let Some(window) = cursor.advance() {
                    self.window_size_used = window.len();
                    self.partition_window_on(graph, &window, locator);
                }
                self.cursor = Some(cursor);
                // Retaining the graph is a refcount bump, not a TDG copy.
                self.graph = Some(Arc::clone(graph));
            }
            Propagation::Las | Propagation::RoundRobin => {
                let window = TaskWindow::initial(graph, self.config.window);
                self.window_size_used = window.len();
                self.partition_window_on(graph, &window, locator);
            }
        }
    }

    fn assign(&mut self, task: &TaskDescriptor, locator: &dyn DataLocator) -> SocketId {
        if self.config.propagation == Propagation::Repartition {
            // Close (and partition) every window up to the one holding this
            // task, then let biased LAS arbitrate between the window plan
            // and the data homes actually observed at this point.
            self.ensure_covered(task.id, locator);
            let bias = self
                .window_assignment
                .get(task.id.index())
                .copied()
                .flatten();
            return self.las.assign_biased(task, locator, bias);
        }
        if let Some(Some(socket)) = self.window_assignment.get(task.id.index()) {
            return *socket;
        }
        match self.config.propagation {
            Propagation::Las | Propagation::Repartition => self.las.assign(task, locator),
            Propagation::RoundRobin => {
                let num_sockets = locator.topology().num_sockets();
                let s = SocketId(self.rr_next % num_sockets);
                self.rr_next = (self.rr_next + 1) % num_sockets;
                s
            }
        }
    }

    fn partition_stats(&self) -> Option<PartitionStats> {
        Some(PartitionStats {
            windows: self.partition_windows,
            wall_ns: self.partition_wall_ns,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::MemoryLocator;
    use numadag_numa::{MemoryMap, Topology};
    use numadag_tdg::{TaskSpec, TdgBuilder};

    /// Builds a workload with two independent heavy chains. A partitioner
    /// must put each chain on its own socket.
    fn two_chains(len: usize) -> (Arc<numadag_tdg::TaskGraph>, Vec<u64>) {
        let mut b = TdgBuilder::new();
        let ra = b.region(1 << 20);
        let rb = b.region(1 << 20);
        for _ in 0..len {
            b.submit(TaskSpec::new("a").work(10.0).reads_writes(ra, 1 << 20));
            b.submit(TaskSpec::new("b").work(10.0).reads_writes(rb, 1 << 20));
        }
        let (graph, sizes) = b.finish();
        (Arc::new(graph), sizes)
    }

    #[test]
    fn window_partition_separates_independent_chains() {
        let (graph, sizes) = two_chains(20);
        let topo = Topology::two_socket(4);
        let mut mem = MemoryMap::new();
        for s in &sizes {
            mem.register(*s);
        }
        let loc = MemoryLocator::new(&topo, &mem);
        let mut p = RgpPolicy::new(RgpConfig::default().with_window_size(40));
        p.prepare(&graph, &loc);
        assert_eq!(p.window_size_used(), 40);
        // Independent chains: zero cut is achievable.
        assert_eq!(p.window_edge_cut(), 0);
        // All tasks of chain "a" (even ids) on one socket, chain "b" on the other.
        let sa = p.window_socket_of(numadag_tdg::TaskId(0)).unwrap();
        let sb = p.window_socket_of(numadag_tdg::TaskId(1)).unwrap();
        assert_ne!(sa, sb);
        for t in graph.task_ids() {
            let expected = if t.index() % 2 == 0 { sa } else { sb };
            assert_eq!(p.window_socket_of(t), Some(expected), "task {t}");
        }
    }

    #[test]
    fn assign_uses_window_then_falls_back() {
        let (graph, sizes) = two_chains(30); // 60 tasks
        let topo = Topology::two_socket(4);
        let mut mem = MemoryMap::new();
        let regions: Vec<_> = sizes.iter().map(|s| mem.register(*s)).collect();
        let mut p = RgpPolicy::new(RgpConfig::default().with_window_size(20));
        {
            let loc = MemoryLocator::new(&topo, &mem);
            p.prepare(&graph, &loc);
        }
        // Window tasks reuse the partition.
        let t0 = graph.task(numadag_tdg::TaskId(0));
        let in_window = {
            let loc = MemoryLocator::new(&topo, &mem);
            p.assign(t0, &loc)
        };
        assert_eq!(Some(in_window), p.window_socket_of(numadag_tdg::TaskId(0)));
        // A task beyond the window whose data is by now resident follows LAS:
        // place region a on the socket opposite to the window choice and
        // check the fallback follows the data, not the stale window.
        let late = graph.task(numadag_tdg::TaskId(40));
        assert!(p.window_socket_of(numadag_tdg::TaskId(40)).is_none());
        let other = SocketId(1 - in_window.index());
        mem.place(regions[0], other.node());
        mem.place(regions[1], other.node());
        let loc = MemoryLocator::new(&topo, &mem);
        let s = p.assign(late, &loc);
        assert_eq!(s, other, "LAS propagation must follow the allocated data");
    }

    #[test]
    fn round_robin_propagation_cycles() {
        let (graph, sizes) = two_chains(5);
        let topo = Topology::four_socket(2);
        let mut mem = MemoryMap::new();
        for s in &sizes {
            mem.register(*s);
        }
        let loc = MemoryLocator::new(&topo, &mem);
        let mut p = RgpPolicy::new(
            RgpConfig::default()
                .with_window_size(2)
                .with_propagation(Propagation::RoundRobin),
        );
        assert_eq!(p.name(), "RGP+RR");
        p.prepare(&graph, &loc);
        // Tasks 2.. are outside the window; they cycle over sockets.
        let s: Vec<usize> = (2..6)
            .map(|i| p.assign(graph.task(numadag_tdg::TaskId(i)), &loc).index())
            .collect();
        assert_eq!(s, vec![0, 1, 2, 3]);
    }

    #[test]
    fn partitioner_tuning_reaches_the_window_partition() {
        // Two independent chains: the multilevel scheme finds the zero cut,
        // while the deliberately weight-oblivious BFS scheme (same config
        // otherwise) almost always pays a cut — and both must produce a
        // full, valid window assignment either way.
        let (graph, sizes) = two_chains(40);
        let topo = Topology::two_socket(4);
        let mut mem = MemoryMap::new();
        for s in &sizes {
            mem.register(*s);
        }
        let loc = MemoryLocator::new(&topo, &mem);
        for scheme in numadag_graph::PartitionScheme::all() {
            let mut p = RgpPolicy::new(
                RgpConfig::default()
                    .with_window_size(80)
                    .with_scheme(scheme)
                    .with_refine_passes(4),
            );
            p.prepare(&graph, &loc);
            assert_eq!(p.window_size_used(), 80, "{scheme:?}");
            for t in graph.task_ids() {
                assert!(p.window_socket_of(t).is_some(), "{scheme:?}: task {t}");
            }
        }
        let mut ml = RgpPolicy::new(RgpConfig::default().with_window_size(80));
        ml.prepare(&graph, &loc);
        assert_eq!(ml.window_edge_cut(), 0, "multilevel must find the zero cut");
    }

    #[test]
    fn single_socket_machine_needs_no_partition() {
        let (graph, sizes) = two_chains(5);
        let topo = Topology::uma(4);
        let mut mem = MemoryMap::new();
        for s in &sizes {
            mem.register(*s);
        }
        let loc = MemoryLocator::new(&topo, &mem);
        let mut p = RgpPolicy::rgp_las();
        p.prepare(&graph, &loc);
        assert_eq!(p.name(), "RGP+LAS");
        for t in graph.task_ids() {
            assert_eq!(p.assign(graph.task(t), &loc), SocketId(0));
        }
    }

    #[test]
    fn empty_graph_prepare_is_safe() {
        let graph = Arc::new(numadag_tdg::TaskGraph::new());
        let topo = Topology::two_socket(2);
        let mem = MemoryMap::new();
        let loc = MemoryLocator::new(&topo, &mem);
        let mut p = RgpPolicy::rgp_las();
        p.prepare(&graph, &loc);
        assert_eq!(p.window_size_used(), 0);
        assert_eq!(p.partition_stats().unwrap().windows, 0);
    }

    #[test]
    fn propagation_and_anchor_tokens_round_trip() {
        for prop in [
            Propagation::Las,
            Propagation::RoundRobin,
            Propagation::Repartition,
        ] {
            assert_eq!(Propagation::from_token(prop.token()), Some(prop));
        }
        assert_eq!(
            Propagation::from_token("Repartition"),
            Some(Propagation::Repartition)
        );
        assert_eq!(Propagation::from_token("nope"), None);
        for anchor in [
            AnchorMode::None,
            AnchorMode::Deps,
            AnchorMode::Homes,
            AnchorMode::Both,
        ] {
            assert_eq!(AnchorMode::from_token(anchor.token()), Some(anchor));
        }
        assert_eq!(AnchorMode::from_token("data"), Some(AnchorMode::Homes));
        assert_eq!(AnchorMode::from_token("nope"), None);
    }

    #[test]
    fn repartition_covers_every_window_lazily() {
        let (graph, sizes) = two_chains(30); // 60 tasks, window 20 → 3 windows
        let topo = Topology::two_socket(4);
        let mut mem = MemoryMap::new();
        for s in &sizes {
            mem.register(*s);
        }
        let loc = MemoryLocator::new(&topo, &mem);
        let mut p = RgpPolicy::new(
            RgpConfig::default()
                .with_window_size(20)
                .with_propagation(Propagation::Repartition),
        );
        assert_eq!(p.name(), "RGP+LAS");
        p.prepare(&graph, &loc);
        // Only the first window is partitioned up front.
        assert_eq!(p.windows_partitioned(), 1);
        assert!(p.window_socket_of(numadag_tdg::TaskId(0)).is_some());
        assert!(p.window_socket_of(numadag_tdg::TaskId(25)).is_none());
        // Assigning a task in the last window closes the middle one too.
        p.assign(graph.task(numadag_tdg::TaskId(45)), &loc);
        assert_eq!(p.windows_partitioned(), 3);
        for t in graph.task_ids() {
            assert!(p.window_socket_of(t).is_some(), "task {t} uncovered");
        }
        let stats = p.partition_stats().unwrap();
        assert_eq!(stats.windows, 3);
        assert!(stats.wall_ns > 0.0);
    }

    #[test]
    fn repartition_anchors_later_windows_to_fixed_homes() {
        // Two independent chains: whatever sockets the first window picks,
        // dependence anchors must keep each chain on its socket in every
        // later window (zero affinity to the other socket, heavy affinity to
        // its own), even with nothing allocated yet.
        let (graph, sizes) = two_chains(40); // 80 tasks
        let topo = Topology::two_socket(4);
        let mut mem = MemoryMap::new();
        for s in &sizes {
            mem.register(*s);
        }
        let loc = MemoryLocator::new(&topo, &mem);
        let mut p = RgpPolicy::new(
            RgpConfig::default()
                .with_window_size(16)
                .with_propagation(Propagation::Repartition)
                .with_anchor(AnchorMode::Deps),
        );
        p.prepare(&graph, &loc);
        p.assign(graph.task(numadag_tdg::TaskId(79)), &loc);
        assert_eq!(p.windows_partitioned(), 5);
        let sa = p.window_socket_of(numadag_tdg::TaskId(0)).unwrap();
        let sb = p.window_socket_of(numadag_tdg::TaskId(1)).unwrap();
        assert_ne!(sa, sb);
        for t in graph.task_ids() {
            let expected = if t.index() % 2 == 0 { sa } else { sb };
            assert_eq!(
                p.window_socket_of(t),
                Some(expected),
                "task {t} strayed from its chain's socket"
            );
        }
    }

    #[test]
    fn repartition_home_anchors_follow_observed_placement() {
        // Place both regions on one socket before the second window closes:
        // home anchors must pull the second window there.
        let (graph, sizes) = two_chains(20); // 40 tasks
        let topo = Topology::two_socket(4);
        let mut mem = MemoryMap::new();
        let regions: Vec<_> = sizes.iter().map(|s| mem.register(*s)).collect();
        let mut p = RgpPolicy::new(
            RgpConfig::default()
                .with_window_size(20)
                .with_propagation(Propagation::Repartition)
                .with_anchor(AnchorMode::Homes),
        );
        {
            let loc = MemoryLocator::new(&topo, &mem);
            p.prepare(&graph, &loc);
        }
        let target = SocketId(1);
        mem.place(regions[0], target.node());
        mem.place(regions[1], target.node());
        let loc = MemoryLocator::new(&topo, &mem);
        let s = p.assign(graph.task(numadag_tdg::TaskId(39)), &loc);
        assert_eq!(p.windows_partitioned(), 2);
        // The balance constraint caps how much of the window the anchors can
        // pull to one socket, but the final assignment must follow the
        // observed homes: biased LAS sees every byte resident on `target`.
        assert_eq!(s, target, "assignment must follow the observed homes");
    }
}
