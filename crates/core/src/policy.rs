//! The scheduling-policy abstraction and the runtime-facing data-location
//! interface.

use std::sync::Arc;

use numadag_numa::memory::NodeBytes;
use numadag_numa::{MemoryMap, RegionId, SocketId, Topology};
use numadag_tdg::{TaskDescriptor, TaskGraph};

/// What a policy is allowed to ask about the machine and the current
/// placement of data. Implemented by the executors in `numadag-runtime`
/// (backed by their [`MemoryMap`]) and by [`MemoryLocator`] for direct use.
pub trait DataLocator {
    /// The machine topology.
    fn topology(&self) -> &Topology;
    /// How the bytes of `region` are currently distributed over NUMA nodes.
    fn region_location(&self, region: RegionId) -> NodeBytes;
    /// [`DataLocator::region_location`] into a caller-owned buffer, so hot
    /// paths (one lookup per task access) can reuse the allocation. The
    /// default implementation falls back to the allocating call.
    fn region_location_into(&self, region: RegionId, out: &mut NodeBytes) {
        *out = self.region_location(region);
    }
    /// Size of `region` in bytes.
    fn region_size(&self, region: RegionId) -> u64;
}

/// Cost accounting of a partitioning policy: how many windows it partitioned
/// and how long the partitioner ran, summed over the whole execution.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PartitionStats {
    /// Number of windows handed to the graph partitioner.
    pub windows: usize,
    /// Total wall time spent inside the partitioner, in nanoseconds.
    pub wall_ns: f64,
}

/// A scheduling policy: decides, for every task that becomes ready, which
/// socket it should be pushed to.
///
/// The runtime calls [`SchedulingPolicy::prepare`] once with the TDG it has
/// accumulated (the paper's runtime builds this graph on the fly; in the
/// reproduction the graph of the whole execution is available up front, and
/// the policy itself decides how much of it to look at — RGP only uses the
/// first window), and then [`SchedulingPolicy::assign`] every time a task's
/// dependences are satisfied.
pub trait SchedulingPolicy: Send {
    /// Short name used in reports (`"LAS"`, `"RGP+LAS"`, ...). `'static`
    /// because reports embed it by reference — policies answer with string
    /// literals, never per-run formatted names.
    fn name(&self) -> &'static str;

    /// Called once before execution starts with the task graph. The graph
    /// arrives behind an [`Arc`] so window-propagating policies can retain
    /// it across `assign` calls without cloning the task vectors.
    fn prepare(&mut self, _graph: &Arc<TaskGraph>, _locator: &dyn DataLocator) {}

    /// Called when `task` becomes ready; returns the socket to run it on.
    fn assign(&mut self, task: &TaskDescriptor, locator: &dyn DataLocator) -> SocketId;

    /// Partitioning cost accounting, if this policy partitions windows.
    /// `None` (the default) means the policy never runs a partitioner.
    fn partition_stats(&self) -> Option<PartitionStats> {
        None
    }
}

/// A [`DataLocator`] backed directly by a [`Topology`] and a [`MemoryMap`].
/// The executors wrap their internal state in this; tests use it directly.
pub struct MemoryLocator<'a> {
    topology: &'a Topology,
    memory: &'a MemoryMap,
}

impl<'a> MemoryLocator<'a> {
    /// Creates a locator over the given topology and memory state.
    pub fn new(topology: &'a Topology, memory: &'a MemoryMap) -> Self {
        MemoryLocator { topology, memory }
    }
}

impl DataLocator for MemoryLocator<'_> {
    fn topology(&self) -> &Topology {
        self.topology
    }

    fn region_location(&self, region: RegionId) -> NodeBytes {
        self.memory.bytes_per_node(region)
    }

    fn region_location_into(&self, region: RegionId, out: &mut NodeBytes) {
        self.memory.bytes_per_node_into(region, out);
    }

    fn region_size(&self, region: RegionId) -> u64 {
        self.memory.size_of(region)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numadag_numa::NodeId;

    #[test]
    fn memory_locator_reports_placement() {
        let topo = Topology::two_socket(4);
        let mut mem = MemoryMap::new();
        let r = mem.register(4096);
        mem.place(r, NodeId(1));
        let loc = MemoryLocator::new(&topo, &mem);
        assert_eq!(loc.topology().num_sockets(), 2);
        assert_eq!(loc.region_size(r), 4096);
        let nb = loc.region_location(r);
        assert_eq!(nb.per_node, vec![(NodeId(1), 4096)]);
        assert_eq!(nb.unallocated, 0);
    }

    #[test]
    fn memory_locator_reports_unallocated() {
        let topo = Topology::uma(2);
        let mut mem = MemoryMap::new();
        let r = mem.register(100);
        let loc = MemoryLocator::new(&topo, &mem);
        let nb = loc.region_location(r);
        assert!(nb.per_node.is_empty());
        assert_eq!(nb.unallocated, 100);
    }
}
