//! `serve-client` — CLI client of the sweep service (used by CI).
//!
//! ```text
//! serve-client --addr HOST:PORT [--timeout SECS] submit [--apps LIST]
//!              [--scale S] [--policies LIST] [--backend B] [--seed N]
//!              [--reps N] [--stream] [--json PATH]
//! serve-client --addr HOST:PORT [--timeout SECS] status JOB
//! serve-client --addr HOST:PORT [--timeout SECS] stats
//! serve-client --addr HOST:PORT [--timeout SECS] cancel JOB
//! serve-client --addr HOST:PORT [--timeout SECS] shutdown
//! ```
//!
//! `--timeout SECS` bounds both the connect and every read: a server that
//! accepts but never answers (or a firewalled address) produces a
//! `timed out waiting for the server` error and exit code 1 instead of a
//! hung client. Without the flag, the client waits indefinitely — the right
//! default for long `submit` jobs.
//!
//! `submit` blocks until the report arrives, prints a one-line summary
//! (`job=1 cache_hit=true executed_cells=0 hydrated_cells=0`) on stdout
//! and, with `--json`,
//! writes the exact report bytes to disk — byte-identical to `figure1
//! --json` output for the same sweep, so `cmp`/`bench-diff` against the
//! committed baselines both work. `--stream` echoes per-cell progress on
//! stderr. Malformed arguments exit 2; connection or server errors exit 1.

use numadag_serve::client::ServeClient;
use numadag_serve::protocol::{Response, SweepSpec};

fn usage_error(message: String) -> ! {
    eprintln!("error: {message}");
    eprintln!(
        "usage: serve-client --addr HOST:PORT [--timeout SECS] \
         submit [--apps LIST] [--scale S] [--policies LIST] [--backend B] \
         [--seed N] [--reps N] [--stream] [--json PATH] \
         | status JOB | stats | cancel JOB | shutdown"
    );
    std::process::exit(2);
}

fn flag_value(args: &[String], i: usize) -> &str {
    match args.get(i + 1) {
        Some(value) => value,
        None => usage_error(format!("{} needs a value", args[i])),
    }
}

fn connect(addr: &str, timeout: Option<std::time::Duration>) -> ServeClient {
    let connected = match timeout {
        Some(timeout) => ServeClient::connect_with_timeout(addr, timeout),
        None => ServeClient::connect(addr).map_err(Into::into),
    };
    match connected {
        Ok(client) => client,
        Err(e) => {
            eprintln!("error: could not connect to {addr}: {e}");
            std::process::exit(1);
        }
    }
}

fn fail(e: impl std::fmt::Display) -> ! {
    eprintln!("error: {e}");
    std::process::exit(1);
}

fn parse_job(value: &str) -> u64 {
    match value.parse() {
        Ok(job) => job,
        Err(_) => usage_error(format!("job id must be an unsigned integer, got {value:?}")),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr: Option<String> = None;
    let mut timeout: Option<std::time::Duration> = None;
    let mut i = 0;
    while i < args.len() && args[i].starts_with("--") {
        match args[i].as_str() {
            "--addr" => addr = Some(flag_value(&args, i).to_string()),
            "--timeout" => match flag_value(&args, i).parse::<u64>() {
                Ok(secs) if secs > 0 => timeout = Some(std::time::Duration::from_secs(secs)),
                _ => usage_error(format!(
                    "--timeout needs a positive number of seconds, got {:?}",
                    flag_value(&args, i)
                )),
            },
            other => usage_error(format!("unknown argument {other:?}")),
        }
        i += 2;
    }
    let Some(addr) = addr else {
        usage_error("--addr HOST:PORT is required".to_string());
    };
    let Some(command) = args.get(i) else {
        usage_error("missing command".to_string());
    };
    let rest = &args[i + 1..];

    match command.as_str() {
        "submit" => run_submit(&addr, timeout, rest),
        "status" => {
            let job = parse_job(rest.first().map(String::as_str).unwrap_or_else(|| {
                usage_error("status needs a job id".to_string());
            }));
            let mut client = connect(&addr, timeout);
            match client.status(job) {
                Ok(Response::JobStatus {
                    job,
                    state,
                    completed,
                    total,
                }) => println!("job={job} state={state} completed={completed} total={total}"),
                Ok(other) => fail(format!("unexpected response {other:?}")),
                Err(e) => fail(e),
            }
        }
        "stats" => {
            let mut client = connect(&addr, timeout);
            match client.stats() {
                Ok(stats) => {
                    use serde::Serialize;
                    let pretty = serde_json::to_string_pretty(&stats.to_value())
                        .expect("stats are always encodable");
                    println!("{pretty}");
                }
                Err(e) => fail(e),
            }
        }
        "cancel" => {
            let job = parse_job(rest.first().map(String::as_str).unwrap_or_else(|| {
                usage_error("cancel needs a job id".to_string());
            }));
            let mut client = connect(&addr, timeout);
            match client.cancel(job) {
                Ok(Response::Cancelled { job }) => println!("job={job} cancelled"),
                Ok(other) => fail(format!("unexpected response {other:?}")),
                Err(e) => fail(e),
            }
        }
        "shutdown" => {
            let mut client = connect(&addr, timeout);
            match client.shutdown() {
                Ok(()) => println!("server shutting down"),
                Err(e) => fail(e),
            }
        }
        other => usage_error(format!("unknown command {other:?}")),
    }
}

fn run_submit(addr: &str, timeout: Option<std::time::Duration>, args: &[String]) {
    let mut spec = SweepSpec::default();
    let mut stream = false;
    let mut json_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--apps" => {
                spec.apps = flag_value(args, i).to_string();
            }
            "--scale" => {
                spec.scale = flag_value(args, i).to_string();
            }
            "--policies" => {
                spec.policies = flag_value(args, i).to_string();
            }
            "--backend" => {
                spec.backend = flag_value(args, i).to_string();
            }
            "--seed" => match flag_value(args, i).parse() {
                Ok(seed) => spec.seed = seed,
                Err(_) => usage_error(format!(
                    "--seed needs an unsigned integer, got {:?}",
                    flag_value(args, i)
                )),
            },
            "--reps" => match flag_value(args, i).parse() {
                Ok(reps) if reps > 0 => spec.reps = reps,
                _ => usage_error(format!(
                    "--reps needs a positive integer, got {:?}",
                    flag_value(args, i)
                )),
            },
            "--stream" => {
                stream = true;
                i += 1;
                continue;
            }
            "--json" => json_path = Some(flag_value(args, i).to_string()),
            other => usage_error(format!("unknown argument {other:?}")),
        }
        i += 2;
    }

    // Validate locally first so spelling mistakes exit 2 (usage) rather
    // than 1 (server error) — the same errors the server would return.
    if let Err(e) = spec.resolve() {
        usage_error(e);
    }

    let mut client = connect(addr, timeout);
    let outcome = client.submit(spec, stream, |progress| {
        if let Response::Progress {
            completed,
            total,
            application,
            policy,
            repetition,
            ..
        } = progress
        {
            eprintln!("[{completed:>3}/{total}] {application} / {policy} / rep {repetition}");
        }
    });
    match outcome {
        Ok(outcome) => {
            println!(
                "job={} cache_hit={} executed_cells={} hydrated_cells={}",
                outcome.job, outcome.cache_hit, outcome.executed_cells, outcome.hydrated_cells
            );
            if let Some(path) = json_path {
                if let Err(e) = std::fs::write(&path, &outcome.report_json) {
                    fail(format!("could not write {path}: {e}"));
                }
            }
        }
        Err(e) => fail(e),
    }
}
