//! `numadag-serve` — the sweep-service daemon.
//!
//! ```text
//! numadag-serve [--addr HOST:PORT] [--pool N] [--cache-capacity N]
//!               [--cell-capacity N] [--batch-cells N]
//!               [--max-queued-cells N] [--max-active-jobs N]
//!               [--port-file PATH] [--cache-file PATH]
//! ```
//!
//! Binds the listener (port 0 picks an ephemeral port), prints the actual
//! address on stdout (and into `--port-file`, which scripts can poll), then
//! serves until a client sends `Shutdown`. `--jobs N` is accepted as a
//! deprecated alias of `--pool N`. Malformed arguments exit with code 2
//! like the other bins; a bind failure exits with code 1.
//!
//! `--cache-file PATH` makes the report cache persistent: the daemon loads
//! the snapshot at boot (a missing file is fine, a corrupt one is a warning)
//! and rewrites it on clean shutdown, so a restarted daemon answers the
//! previous run's sweeps with `cache_hit=true` without executing a cell.

use numadag_serve::server::{serve, ServeConfig};

fn usage_error(message: String) -> ! {
    eprintln!("error: {message}");
    eprintln!(
        "usage: numadag-serve [--addr HOST:PORT] [--pool N] \
         [--cache-capacity N] [--cell-capacity N] [--batch-cells N] \
         [--max-queued-cells N] [--max-active-jobs N] [--port-file PATH] \
         [--cache-file PATH]"
    );
    std::process::exit(2);
}

fn flag_value(args: &[String], i: usize) -> &str {
    match args.get(i + 1) {
        Some(value) => value,
        None => usage_error(format!("{} needs a value", args[i])),
    }
}

fn positive(args: &[String], i: usize) -> usize {
    match flag_value(args, i).parse() {
        Ok(value) if value > 0 => value,
        _ => usage_error(format!(
            "{} needs a positive integer, got {:?}",
            args[i],
            flag_value(args, i)
        )),
    }
}

fn main() {
    // Become a proc-backend worker if the pool re-exec'd us, and register
    // the proc factory so submitted sweeps may say `--backend proc`.
    numadag_proc::maybe_run_worker();
    numadag_proc::install();
    let mut config = ServeConfig::default();
    let mut port_file: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => config.addr = flag_value(&args, i).to_string(),
            // --jobs is the pre-pool spelling; kept as an alias so older
            // scripts keep working.
            "--pool" | "--jobs" => config.pool = positive(&args, i),
            "--cache-capacity" => config.cache_capacity = positive(&args, i),
            "--cell-capacity" => config.cell_capacity = positive(&args, i),
            "--batch-cells" => config.batch_cells = positive(&args, i),
            "--max-queued-cells" => config.max_queued_cells = positive(&args, i),
            "--max-active-jobs" => config.max_active_jobs = positive(&args, i),
            "--port-file" => port_file = Some(flag_value(&args, i).to_string()),
            "--cache-file" => config.cache_file = Some(flag_value(&args, i).to_string()),
            other => usage_error(format!("unknown argument {other:?}")),
        }
        i += 2;
    }

    let handle = match serve(config.clone()) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("error: could not bind {}: {e}", config.addr);
            std::process::exit(1);
        }
    };
    let addr = handle.addr();
    println!(
        "numadag-serve listening on {addr} (pool={}, report-cache={}, cell-cache={})",
        config.pool, config.cache_capacity, config.cell_capacity
    );
    use std::io::Write;
    let _ = std::io::stdout().flush();
    if let Some(path) = port_file {
        if let Err(e) = std::fs::write(&path, format!("{addr}\n")) {
            eprintln!("error: could not write {path}: {e}");
            handle.shutdown();
            handle.join();
            std::process::exit(1);
        }
    }
    handle.join();
    println!("numadag-serve: shutdown complete");
}
