//! `numadag-serve` — the sweep-service daemon.
//!
//! ```text
//! numadag-serve [--addr HOST:PORT] [--jobs N] [--cache-capacity N]
//!               [--port-file PATH]
//! ```
//!
//! Binds the listener (port 0 picks an ephemeral port), prints the actual
//! address on stdout (and into `--port-file`, which scripts can poll), then
//! serves until a client sends `Shutdown`. Malformed arguments exit with
//! code 2 like the other bins; a bind failure exits with code 1.

use numadag_serve::server::{serve, ServeConfig};

fn usage_error(message: String) -> ! {
    eprintln!("error: {message}");
    eprintln!(
        "usage: numadag-serve [--addr HOST:PORT] [--jobs N] \
         [--cache-capacity N] [--port-file PATH]"
    );
    std::process::exit(2);
}

fn flag_value(args: &[String], i: usize) -> &str {
    match args.get(i + 1) {
        Some(value) => value,
        None => usage_error(format!("{} needs a value", args[i])),
    }
}

fn main() {
    let mut config = ServeConfig::default();
    let mut port_file: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => config.addr = flag_value(&args, i).to_string(),
            "--jobs" => match flag_value(&args, i).parse() {
                Ok(jobs) => config.jobs = jobs,
                Err(_) => usage_error(format!(
                    "--jobs needs an unsigned integer, got {:?}",
                    flag_value(&args, i)
                )),
            },
            "--cache-capacity" => match flag_value(&args, i).parse() {
                Ok(capacity) if capacity > 0 => config.cache_capacity = capacity,
                _ => usage_error(format!(
                    "--cache-capacity needs a positive integer, got {:?}",
                    flag_value(&args, i)
                )),
            },
            "--port-file" => port_file = Some(flag_value(&args, i).to_string()),
            other => usage_error(format!("unknown argument {other:?}")),
        }
        i += 2;
    }

    let handle = match serve(config.clone()) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("error: could not bind {}: {e}", config.addr);
            std::process::exit(1);
        }
    };
    let addr = handle.addr();
    println!(
        "numadag-serve listening on {addr} (jobs={}, report-cache={})",
        config.jobs, config.cache_capacity
    );
    use std::io::Write;
    let _ = std::io::stdout().flush();
    if let Some(path) = port_file {
        if let Err(e) = std::fs::write(&path, format!("{addr}\n")) {
            eprintln!("error: could not write {path}: {e}");
            handle.shutdown();
            handle.join();
            std::process::exit(1);
        }
    }
    handle.join();
    println!("numadag-serve: shutdown complete");
}
