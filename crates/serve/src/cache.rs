//! Content-addressed LRU cache of finished sweep reports.
//!
//! Keys are the canonical request fingerprints
//! ([`crate::protocol::ResolvedSweep::fingerprint`]); values are the exact
//! serialized measurement bytes of the report. Storing bytes rather than the
//! structured report is the point: a repeated request is answered with a
//! byte-identical body, so clients can `cmp` cached responses against
//! committed `BENCH_*.json` baselines and caching stays observationally
//! invisible apart from latency.

use std::collections::HashMap;
use std::sync::Arc;

/// A finished sweep report as served to clients.
#[derive(Debug)]
pub struct CachedReport {
    /// The exact `SweepReport::to_json_string` bytes of the report.
    pub bytes: String,
    /// Cells the sweep executed to produce it (for accounting; repeats
    /// served from cache execute zero).
    pub executed_cells: usize,
}

#[derive(Debug)]
struct Entry {
    report: Arc<CachedReport>,
    /// Logical timestamp of the last lookup or insertion; the entry with
    /// the smallest value is the eviction victim.
    last_used: u64,
}

/// An LRU report cache with hit/miss/eviction counters. Not internally
/// synchronized — the server keeps it inside its state mutex.
#[derive(Debug)]
pub struct ReportCache {
    entries: HashMap<u64, Entry>,
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ReportCache {
    /// An empty cache holding at most `capacity` reports (minimum 1).
    pub fn new(capacity: usize) -> Self {
        ReportCache {
            entries: HashMap::new(),
            capacity: capacity.max(1),
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Looks up a report, counting a hit (and refreshing recency) or a miss.
    pub fn lookup(&mut self, key: u64) -> Option<Arc<CachedReport>> {
        self.tick += 1;
        match self.entries.get_mut(&key) {
            Some(entry) => {
                entry.last_used = self.tick;
                self.hits += 1;
                Some(Arc::clone(&entry.report))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a report, evicting the least-recently-used entry when full.
    /// Re-inserting an existing key refreshes both value and recency.
    pub fn insert(&mut self, key: u64, report: Arc<CachedReport>) {
        self.tick += 1;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            if let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
            {
                self.entries.remove(&victim);
                self.evictions += 1;
            }
        }
        self.entries.insert(
            key,
            Entry {
                report,
                last_used: self.tick,
            },
        );
    }

    /// Requests served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that found nothing (each corresponds to one executed sweep).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries discarded by the LRU policy.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Reports currently resident.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Maximum resident reports before eviction.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(tag: &str) -> Arc<CachedReport> {
        Arc::new(CachedReport {
            bytes: format!("{{\"tag\": \"{tag}\"}}"),
            executed_cells: 4,
        })
    }

    #[test]
    fn lookup_counts_hits_and_misses_and_returns_exact_bytes() {
        let mut cache = ReportCache::new(4);
        assert!(cache.lookup(1).is_none());
        cache.insert(1, report("a"));
        let hit = cache.lookup(1).expect("inserted key must hit");
        assert_eq!(hit.bytes, "{\"tag\": \"a\"}");
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
    }

    #[test]
    fn evicts_least_recently_used_beyond_capacity() {
        let mut cache = ReportCache::new(2);
        cache.insert(1, report("a"));
        cache.insert(2, report("b"));
        // Touch 1 so 2 becomes the LRU victim.
        assert!(cache.lookup(1).is_some());
        cache.insert(3, report("c"));
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(1).is_some(), "recently used must survive");
        assert!(cache.lookup(2).is_none(), "LRU entry must be evicted");
        assert!(cache.lookup(3).is_some());
    }

    #[test]
    fn reinserting_a_key_replaces_without_eviction() {
        let mut cache = ReportCache::new(2);
        cache.insert(1, report("a"));
        cache.insert(2, report("b"));
        cache.insert(1, report("a2"));
        assert_eq!(cache.evictions(), 0);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.lookup(1).unwrap().bytes, "{\"tag\": \"a2\"}");
    }

    #[test]
    fn capacity_has_a_floor_of_one() {
        let mut cache = ReportCache::new(0);
        assert_eq!(cache.capacity(), 1);
        cache.insert(1, report("a"));
        cache.insert(2, report("b"));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.evictions(), 1);
    }
}
