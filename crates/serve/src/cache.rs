//! Content-addressed LRU caches of finished work, at two granularities.
//!
//! [`ReportCache`] keys whole sweeps on the canonical request fingerprints
//! ([`crate::protocol::ResolvedSweep::fingerprint`]); values are the exact
//! serialized measurement bytes of the report. Storing bytes rather than the
//! structured report is the point: a repeated request is answered with a
//! byte-identical body, so clients can `cmp` cached responses against
//! committed `BENCH_*.json` baselines and caching stays observationally
//! invisible apart from latency.
//!
//! [`CellCache`] keys individual sweep **cells** on
//! [`crate::protocol::cell_fingerprint`] — (workload spec fingerprint ×
//! canonical policy label × backend label × sweep seed × repetition ×
//! socket count) — and stores the raw [`CellOutcome`] measurements. Because
//! a cell's measurement depends only on that key, sweeps of *different*
//! shapes share work: a request that adds one policy column to an
//! already-served sweep hydrates every old cell from this cache and
//! executes only the new column. The deterministic keyed post-pass then
//! reassembles the report from hydrated + fresh cells byte-identically to
//! direct execution.

use std::collections::HashMap;
use std::sync::Arc;

use numadag_runtime::CellOutcome;

/// A finished sweep report as served to clients.
#[derive(Debug)]
pub struct CachedReport {
    /// The exact `SweepReport::to_json_string` bytes of the report.
    pub bytes: String,
    /// Cells the sweep executed to produce it (for accounting; repeats
    /// served from cache execute zero — and cells hydrated from the cell
    /// cache never counted in the first place).
    pub executed_cells: usize,
    /// Cells the sweep contains in total (executed + hydrated).
    pub total_cells: usize,
}

#[derive(Debug)]
struct Entry {
    report: Arc<CachedReport>,
    /// Logical timestamp of the last lookup or insertion; the entry with
    /// the smallest value is the eviction victim.
    last_used: u64,
}

/// An LRU report cache with hit/miss/eviction counters. Not internally
/// synchronized — the server keeps it inside its state mutex.
#[derive(Debug)]
pub struct ReportCache {
    entries: HashMap<u64, Entry>,
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ReportCache {
    /// An empty cache holding at most `capacity` reports (minimum 1).
    pub fn new(capacity: usize) -> Self {
        ReportCache {
            entries: HashMap::new(),
            capacity: capacity.max(1),
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Looks up a report, counting a hit (and refreshing recency) or a miss.
    pub fn lookup(&mut self, key: u64) -> Option<Arc<CachedReport>> {
        self.tick += 1;
        match self.entries.get_mut(&key) {
            Some(entry) => {
                entry.last_used = self.tick;
                self.hits += 1;
                Some(Arc::clone(&entry.report))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a report, evicting the least-recently-used entry when full.
    /// Re-inserting an existing key refreshes both value and recency.
    pub fn insert(&mut self, key: u64, report: Arc<CachedReport>) {
        self.tick += 1;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            if let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
            {
                self.entries.remove(&victim);
                self.evictions += 1;
            }
        }
        self.entries.insert(
            key,
            Entry {
                report,
                last_used: self.tick,
            },
        );
    }

    /// Like [`ReportCache::lookup`], but an absent key does not count a
    /// miss — both admission phases use this, and the admission path counts
    /// exactly one [`ReportCache::note_miss`] when it actually creates an
    /// executing job, so racing identical submissions never inflate the
    /// miss counter.
    pub fn revalidate(&mut self, key: u64) -> Option<Arc<CachedReport>> {
        if self.entries.contains_key(&key) {
            self.lookup(key)
        } else {
            None
        }
    }

    /// Counts one miss. The admission path calls this when a submission
    /// passes both [`ReportCache::revalidate`] phases and becomes an
    /// executing job, keeping the invariant that each miss corresponds to
    /// exactly one executed sweep.
    pub fn note_miss(&mut self) {
        self.misses += 1;
    }

    /// Requests served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that found nothing (each corresponds to one executed sweep).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries discarded by the LRU policy.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Reports currently resident.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Maximum resident reports before eviction.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Every resident entry, least-recently-used first. Re-inserting them in
    /// this order into an empty cache reproduces the same LRU recency
    /// ranking — the contract the daemon's `--cache-file` persistence relies
    /// on across restarts.
    pub fn snapshot(&self) -> Vec<(u64, Arc<CachedReport>)> {
        let mut entries: Vec<(&u64, &Entry)> = self.entries.iter().collect();
        entries.sort_by_key(|(_, e)| e.last_used);
        entries
            .into_iter()
            .map(|(&k, e)| (k, Arc::clone(&e.report)))
            .collect()
    }
}

#[derive(Debug)]
struct CellEntry {
    outcome: CellOutcome,
    last_used: u64,
}

/// An LRU cache of per-cell outcomes keyed by
/// [`crate::protocol::cell_fingerprint`]. Skipped outcomes are cached too —
/// whether a (workload, policy) pair skips is as deterministic as its
/// measurement. Not internally synchronized — the server keeps it inside
/// its state mutex.
#[derive(Debug)]
pub struct CellCache {
    entries: HashMap<u64, CellEntry>,
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl CellCache {
    /// An empty cache holding at most `capacity` cell outcomes (minimum 1).
    pub fn new(capacity: usize) -> Self {
        CellCache {
            entries: HashMap::new(),
            capacity: capacity.max(1),
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Looks up a cell outcome, counting a hit (and refreshing recency) or
    /// a miss.
    pub fn lookup(&mut self, key: u64) -> Option<CellOutcome> {
        self.tick += 1;
        match self.entries.get_mut(&key) {
            Some(entry) => {
                entry.last_used = self.tick;
                self.hits += 1;
                Some(entry.outcome.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Peeks without touching the hit/miss counters or recency — used by
    /// pool workers to skip cells another job already executed between
    /// admission and dispatch.
    pub fn peek(&self, key: u64) -> Option<CellOutcome> {
        self.entries.get(&key).map(|e| e.outcome.clone())
    }

    /// Inserts a cell outcome, evicting the least-recently-used entry when
    /// full. Re-inserting an existing key refreshes both value and recency.
    pub fn insert(&mut self, key: u64, outcome: CellOutcome) {
        self.tick += 1;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            if let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
            {
                self.entries.remove(&victim);
                self.evictions += 1;
            }
        }
        self.entries.insert(
            key,
            CellEntry {
                outcome,
                last_used: self.tick,
            },
        );
    }

    /// Admission-time lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Admission-time lookups that found nothing (novel cells).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries discarded by the LRU policy.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Cell outcomes currently resident.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Maximum resident outcomes before eviction.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(tag: &str) -> Arc<CachedReport> {
        Arc::new(CachedReport {
            bytes: format!("{{\"tag\": \"{tag}\"}}"),
            executed_cells: 4,
            total_cells: 4,
        })
    }

    #[test]
    fn lookup_counts_hits_and_misses_and_returns_exact_bytes() {
        let mut cache = ReportCache::new(4);
        assert!(cache.lookup(1).is_none());
        cache.insert(1, report("a"));
        let hit = cache.lookup(1).expect("inserted key must hit");
        assert_eq!(hit.bytes, "{\"tag\": \"a\"}");
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
    }

    #[test]
    fn evicts_least_recently_used_beyond_capacity() {
        let mut cache = ReportCache::new(2);
        cache.insert(1, report("a"));
        cache.insert(2, report("b"));
        // Touch 1 so 2 becomes the LRU victim.
        assert!(cache.lookup(1).is_some());
        cache.insert(3, report("c"));
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(1).is_some(), "recently used must survive");
        assert!(cache.lookup(2).is_none(), "LRU entry must be evicted");
        assert!(cache.lookup(3).is_some());
    }

    #[test]
    fn reinserting_a_key_replaces_without_eviction() {
        let mut cache = ReportCache::new(2);
        cache.insert(1, report("a"));
        cache.insert(2, report("b"));
        cache.insert(1, report("a2"));
        assert_eq!(cache.evictions(), 0);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.lookup(1).unwrap().bytes, "{\"tag\": \"a2\"}");
    }

    #[test]
    fn capacity_has_a_floor_of_one() {
        let mut cache = ReportCache::new(0);
        assert_eq!(cache.capacity(), 1);
        cache.insert(1, report("a"));
        cache.insert(2, report("b"));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.evictions(), 1);
    }

    #[test]
    fn revalidate_counts_hits_but_never_misses() {
        let mut cache = ReportCache::new(2);
        assert!(cache.revalidate(1).is_none());
        assert_eq!(cache.misses(), 0, "absent revalidation is not a miss");
        cache.insert(1, report("a"));
        assert!(cache.revalidate(1).is_some());
        assert_eq!(cache.hits(), 1, "present revalidation is a hit");
        cache.note_miss();
        assert_eq!(cache.misses(), 1, "misses are counted explicitly");
    }

    #[test]
    fn snapshot_orders_least_recently_used_first() {
        let mut cache = ReportCache::new(4);
        cache.insert(1, report("a"));
        cache.insert(2, report("b"));
        cache.insert(3, report("c"));
        // Touch 1 so the recency order becomes 2, 3, 1.
        assert!(cache.lookup(1).is_some());
        let keys: Vec<u64> = cache.snapshot().iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![2, 3, 1]);
        // Re-inserting in snapshot order reproduces the same victim choice.
        let mut reloaded = ReportCache::new(3);
        for (k, r) in cache.snapshot() {
            reloaded.insert(k, r);
        }
        reloaded.insert(4, report("d"));
        assert!(reloaded.revalidate(2).is_none(), "old LRU entry evicted");
        assert!(reloaded.revalidate(1).is_some(), "recent entry survives");
    }

    #[test]
    fn cell_cache_counts_and_evicts_like_the_report_cache() {
        let mut cache = CellCache::new(2);
        assert!(cache.lookup(1).is_none());
        cache.insert(1, CellOutcome::Skipped);
        cache.insert(2, CellOutcome::Skipped);
        assert!(cache.lookup(1).is_some(), "inserted key must hit");
        cache.insert(3, CellOutcome::Skipped);
        assert_eq!(cache.evictions(), 1);
        assert!(cache.lookup(1).is_some(), "recently used must survive");
        assert!(cache.lookup(2).is_none(), "LRU entry must be evicted");
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.len(), 2);
        assert_eq!(CellCache::new(0).capacity(), 1);
    }

    #[test]
    fn cell_cache_peek_is_counter_neutral() {
        let mut cache = CellCache::new(2);
        cache.insert(1, CellOutcome::Skipped);
        assert!(cache.peek(1).is_some());
        assert!(cache.peek(9).is_none());
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 0);
        // Peeks do not refresh recency: 1 stays the LRU victim.
        cache.insert(2, CellOutcome::Skipped);
        cache.insert(3, CellOutcome::Skipped);
        assert!(cache.peek(1).is_none(), "peek must not protect from LRU");
    }
}
