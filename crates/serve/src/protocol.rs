//! Wire protocol of the sweep service: newline-delimited JSON envelopes.
//!
//! Every message is one JSON value on one line; the line layer itself
//! (size-capped reads, truncation/UTF-8 error taxonomy) lives in the shared
//! [`numadag_runtime::framing`] module, which this protocol and the
//! multi-process executor's IPC both ride on. Envelopes use serde's
//! externally-tagged enum encoding (`"Stats"`, `{"Status": {"job": 1}}`),
//! produced by the vendored `#[derive(Serialize)]` and parsed back by the
//! hand-written `from_value` decoders below (the vendored serde has no
//! Deserialize framework).
//!
//! The sweep spec itself reuses the CLI grammar verbatim: applications,
//! policies, scale and backend travel as the same comma-separated strings
//! `figure1`/`ablation` accept, so anything expressible on a command line is
//! expressible in a request.

use numadag_core::PolicyKind;
use numadag_kernels::{Application, ProblemScale, SpecCache};
use numadag_numa::Topology;
use numadag_runtime::{Backend, Experiment};
use serde::{Serialize, Value};

/// Default seed of the service's sweeps — the same value the benchmark
/// harness uses, so default service requests reproduce the committed
/// `BENCH_figure1_*.json` baselines byte-for-byte.
pub const DEFAULT_SEED: u64 = 0xF1617E;

/// Default policy list of a sweep request (the Figure-1 column set).
pub const DEFAULT_POLICIES: &str = "dfifo,rgp-las,ep";

// FNV-1a, same parameters as `TaskGraphSpec::fingerprint`.
fn mix(hash: &mut u64, value: u64) {
    for byte in value.to_le_bytes() {
        *hash ^= u64::from(byte);
        *hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

fn mix_str(hash: &mut u64, s: &str) {
    for byte in s.as_bytes() {
        *hash ^= u64::from(*byte);
        *hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // Terminator so "ab"+"c" and "a"+"bc" hash differently.
    *hash ^= 0xff;
    *hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
}

/// The content fingerprint of one sweep **cell** — the unit of the server's
/// cell cache. A cell's measurement depends only on the workload spec, the
/// policy, the sweep seed, the repetition index, the backend and the machine
/// topology, so two sweeps of different overall shapes (different app
/// subsets, policy supersets, added repetitions) that contain the same cell
/// share one entry.
///
/// Key schema (FNV-1a over, in order): workload spec fingerprint
/// ([`numadag_kernels::SpecCache::fingerprint`], which already encodes
/// application, scale and socket count) × canonical policy label × sweep
/// seed × repetition index × backend label × socket count.
pub fn cell_fingerprint(
    spec_fp: u64,
    policy_label: &str,
    backend_label: &str,
    seed: u64,
    rep: u64,
    num_sockets: u64,
) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    mix(&mut hash, spec_fp);
    mix_str(&mut hash, policy_label);
    mix_str(&mut hash, backend_label);
    mix(&mut hash, seed);
    mix(&mut hash, rep);
    mix(&mut hash, num_sockets);
    hash
}

/// A sweep request in the CLI string grammar.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct SweepSpec {
    /// Comma-separated applications (`"jacobi,nstream"`), or `"all"`/empty
    /// for the whole Figure-1 suite.
    pub apps: String,
    /// Problem scale: `tiny`, `small` or `full`.
    pub scale: String,
    /// Comma-separated policy labels in registry grammar
    /// (`"dfifo,rgp-las:w=512,ep"`). The LAS baseline always runs.
    pub policies: String,
    /// Execution backend: `simulated`, `threaded`, `proc` or `proc:w=N`
    /// (the multi-process backend; the daemon must have called
    /// `numadag_proc::install()`).
    pub backend: String,
    /// Seed for all seeded components.
    pub seed: u64,
    /// Repetitions per cell.
    pub reps: usize,
}

impl Default for SweepSpec {
    fn default() -> Self {
        SweepSpec {
            apps: "all".to_string(),
            scale: "tiny".to_string(),
            policies: DEFAULT_POLICIES.to_string(),
            backend: "simulated".to_string(),
            seed: DEFAULT_SEED,
            reps: 1,
        }
    }
}

impl SweepSpec {
    /// Parses every string field through the existing registry grammars.
    pub fn resolve(&self) -> Result<ResolvedSweep, String> {
        let apps = Application::parse_list(&self.apps)?;
        let scale: ProblemScale = self.scale.parse()?;
        let policies = PolicyKind::parse_list(&self.policies).map_err(|e| e.to_string())?;
        if policies.is_empty() {
            return Err("policies must name at least one policy".to_string());
        }
        let backend: Backend = self.backend.parse()?;
        if self.reps == 0 {
            return Err("reps must be at least 1".to_string());
        }
        if apps.is_empty() {
            return Err("apps must name at least one application".to_string());
        }
        Ok(ResolvedSweep {
            apps,
            scale,
            policies,
            backend,
            seed: self.seed,
            reps: self.reps,
        })
    }
}

/// A validated sweep request: every string field parsed into the registry
/// types. The service keys its report cache on the canonical
/// [`ResolvedSweep::fingerprint`], so two requests spelling the same sweep
/// differently (`rgp-las:scheme=rb,w=512` vs `rgp-las:w=512,scheme=rb`)
/// share one cache entry.
#[derive(Clone, Debug, PartialEq)]
pub struct ResolvedSweep {
    pub apps: Vec<Application>,
    pub scale: ProblemScale,
    pub policies: Vec<PolicyKind>,
    pub backend: Backend,
    pub seed: u64,
    pub reps: usize,
}

impl ResolvedSweep {
    /// The policy columns in report order: the configured policies with the
    /// LAS baseline deduplicated out and appended last — the same
    /// normalization [`Experiment::plan`] applies, so the cache key matches
    /// the cells the report will actually contain.
    pub fn report_policies(&self) -> Vec<PolicyKind> {
        let mut policies: Vec<PolicyKind> = self
            .policies
            .iter()
            .copied()
            .filter(|&k| k != PolicyKind::Las)
            .collect();
        policies.push(PolicyKind::Las);
        policies
    }

    /// Total cells the sweep will execute (including skippable ones).
    pub fn total_cells(&self) -> usize {
        self.apps.len() * self.report_policies().len() * self.reps
    }

    /// The canonical content fingerprint of this sweep: workload spec hashes
    /// × canonical policy labels × seed × backend × rep count. Workload
    /// hashes come from [`SpecCache::fingerprint`], so the first request for
    /// a workload builds it (and warms the spec cache for the run itself).
    pub fn fingerprint(&self, specs: &SpecCache, num_sockets: usize) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        mix_str(&mut hash, self.backend.label());
        mix(&mut hash, self.seed);
        mix(&mut hash, self.reps as u64);
        mix(&mut hash, num_sockets as u64);
        mix(&mut hash, self.apps.len() as u64);
        for &app in &self.apps {
            mix(&mut hash, specs.fingerprint(app, self.scale, num_sockets));
        }
        for policy in self.report_policies() {
            mix_str(&mut hash, &policy.label());
        }
        hash
    }

    /// The [`cell_fingerprint`] of every cell of this sweep, in the exact
    /// order [`Experiment::plan`] materializes its jobs (applications outer,
    /// then report-order policies, then repetitions) — so `cell_keys()[i]`
    /// keys the outcome of `plan.run_cell(i, …)`.
    pub fn cell_keys(&self, specs: &SpecCache, num_sockets: usize) -> Vec<u64> {
        let policies = self.report_policies();
        let backend = self.backend.label();
        let mut keys = Vec::with_capacity(self.total_cells());
        for &app in &self.apps {
            let spec_fp = specs.fingerprint(app, self.scale, num_sockets);
            for policy in &policies {
                let label = policy.label();
                for rep in 0..self.reps {
                    keys.push(cell_fingerprint(
                        spec_fp,
                        &label,
                        backend,
                        self.seed,
                        rep as u64,
                        num_sockets as u64,
                    ));
                }
            }
        }
        keys
    }

    /// The experiment this sweep denotes, bound to the paper's machine and
    /// baseline exactly like the `figure1` harness — so a default request
    /// reproduces the committed baselines byte-for-byte.
    pub fn experiment(&self, topology: Topology, specs: std::sync::Arc<SpecCache>) -> Experiment {
        Experiment::new()
            .topology(topology)
            .apps(self.apps.iter().copied())
            .scale(self.scale)
            .policies(self.policies.iter().copied())
            .baseline(PolicyKind::Las)
            .backend(self.backend)
            .repetitions(self.reps)
            .seed(self.seed)
            .spec_cache(specs)
    }
}

/// A client request. Externally tagged on the wire:
/// `{"SubmitSweep": {"spec": {...}, "stream": false}}`, `{"Status":
/// {"job": 1}}`, `"Stats"`, `{"CancelJob": {"job": 1}}`, `"Shutdown"`.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub enum Request {
    /// Submit a sweep; the connection receives `Submitted`, then (with
    /// `stream`) per-cell `Progress` lines, then a terminal `Report`.
    SubmitSweep { spec: SweepSpec, stream: bool },
    /// Query the state of a job submitted on any connection.
    Status { job: u64 },
    /// Cancel a job that is still queued or running; its unexecuted cells
    /// are freed from the pool queue.
    CancelJob { job: u64 },
    /// Server counters: admission, report cache, spec cache.
    Stats,
    /// Stop accepting work, fail queued jobs and exit the daemon.
    Shutdown,
}

/// Server counters returned by [`Request::Stats`].
#[derive(Clone, Debug, Default, PartialEq, Serialize)]
pub struct ServerStats {
    /// Jobs admitted to the queue (cache misses that will execute).
    pub jobs_submitted: u64,
    /// Submissions coalesced onto an already queued/running identical job.
    pub jobs_coalesced: u64,
    /// Jobs that finished executing.
    pub jobs_completed: u64,
    /// Jobs cancelled while queued or running.
    pub jobs_cancelled: u64,
    /// Jobs failed (currently only by shutdown draining the queue).
    pub jobs_failed: u64,
    /// Submissions rejected by the admission quotas (`Overloaded`).
    pub jobs_rejected: u64,
    /// Malformed request lines answered with `Error`.
    pub requests_malformed: u64,
    /// Cells actually executed across all jobs — cache hits do not grow
    /// this, which is how tests verify repeats do not re-execute.
    pub executed_cells_total: u64,
    /// Cells hydrated from the cell cache at admission instead of executed.
    pub cells_hydrated_total: u64,
    /// Report-cache entries currently resident.
    pub report_cache_entries: u64,
    /// Report-cache capacity (LRU evicts beyond this).
    pub report_cache_capacity: u64,
    /// Requests served byte-identically from the report cache.
    pub report_cache_hits: u64,
    /// Requests that missed the report cache (and executed).
    pub report_cache_misses: u64,
    /// Cached reports evicted by the LRU policy.
    pub report_cache_evictions: u64,
    /// Cell-cache entries currently resident.
    pub cell_cache_entries: u64,
    /// Cell-cache capacity (LRU evicts beyond this).
    pub cell_cache_capacity: u64,
    /// Admission-time cell lookups served from the cell cache.
    pub cell_cache_hits: u64,
    /// Admission-time cell lookups that missed (novel cells).
    pub cell_cache_misses: u64,
    /// Cached cell outcomes evicted by the LRU policy.
    pub cell_cache_evictions: u64,
    /// Pool workers executing cell batches.
    pub pool_workers: u64,
    /// Lifetime workload builds of the process-wide spec cache.
    pub spec_cache_builds: u64,
    /// Lifetime workload lookups served by the process-wide spec cache.
    pub spec_cache_hits: u64,
    /// Distinct workload instances resident in the spec cache.
    pub spec_cache_entries: u64,
}

/// A server response. One line each; `SubmitSweep` produces a `Submitted`
/// line, optional `Progress` lines, and a terminal `Report` (or `Error` /
/// `Cancelled`).
#[derive(Clone, Debug, PartialEq, Serialize)]
pub enum Response {
    /// The job id assigned to a submission. `cached` is true when the
    /// terminal `Report` follows immediately from the report cache.
    Submitted { job: u64, cached: bool },
    /// One finished cell of a streaming submission.
    Progress {
        job: u64,
        completed: u64,
        total: u64,
        application: String,
        policy: String,
        repetition: u64,
    },
    /// Terminal response of a submission: the exact measurement-JSON bytes
    /// of the sweep report (`SweepReport::to_json_string`), embedded as a
    /// string so the envelope stays one line. `executed_cells` is the number
    /// of cells executed *for this request* — 0 when served from cache;
    /// `hydrated_cells` is the number answered from the cell cache instead
    /// of executed (overlap with previously executed sweeps).
    Report {
        job: u64,
        cache_hit: bool,
        executed_cells: u64,
        hydrated_cells: u64,
        report_json: String,
    },
    /// State of a job: `queued`, `running`, `done`, `cancelled` or `failed`.
    JobStatus {
        job: u64,
        state: String,
        completed: u64,
        total: u64,
    },
    /// Acknowledges a successful `CancelJob`.
    Cancelled { job: u64 },
    /// A submission bounced off the admission quotas: the pool queue already
    /// holds `queued_cells` cells against a limit of `limit`. Retry later.
    Overloaded { queued_cells: u64, limit: u64 },
    /// Server counters.
    Stats(ServerStats),
    /// Structured failure: the connection stays open, mirroring the bins'
    /// exit-2-on-usage-error convention without dropping the session.
    Error { message: String },
    /// Acknowledges `Shutdown`; the daemon exits after this line.
    ShuttingDown,
}

// The framing layer (one-line serialization, envelope untagging, typed
// field accessors) started here and moved to `numadag_runtime::framing` so
// the multi-process executor's IPC shares it; re-exported for callers that
// import it from the protocol module.
pub use numadag_runtime::framing::to_line;
use numadag_runtime::framing::{bool_field, field, str_field, u64_field, untag};

impl SweepSpec {
    /// Decodes a spec object. Missing fields fall back to the defaults, so
    /// clients may send only what they override.
    pub fn from_value(value: &Value) -> Result<SweepSpec, String> {
        if value.as_object().is_none() {
            return Err("SubmitSweep.spec must be an object".to_string());
        }
        let defaults = SweepSpec::default();
        let str_or = |name: &str, default: &str| -> Result<String, String> {
            match value.get(name) {
                None => Ok(default.to_string()),
                Some(v) => v
                    .as_str()
                    .map(str::to_string)
                    .ok_or_else(|| format!("spec.{name} must be a string")),
            }
        };
        let u64_or = |name: &str, default: u64| -> Result<u64, String> {
            match value.get(name) {
                None => Ok(default),
                Some(v) => v
                    .as_u64()
                    .ok_or_else(|| format!("spec.{name} must be an unsigned integer")),
            }
        };
        Ok(SweepSpec {
            apps: str_or("apps", &defaults.apps)?,
            scale: str_or("scale", &defaults.scale)?,
            policies: str_or("policies", &defaults.policies)?,
            backend: str_or("backend", &defaults.backend)?,
            seed: u64_or("seed", defaults.seed)?,
            reps: u64_or("reps", defaults.reps as u64)? as usize,
        })
    }
}

impl Request {
    /// Decodes a request envelope.
    pub fn from_value(value: &Value) -> Result<Request, String> {
        let (tag, payload) = untag(value)?;
        match tag.as_str() {
            "SubmitSweep" => Ok(Request::SubmitSweep {
                spec: SweepSpec::from_value(field(payload, "SubmitSweep", "spec")?)?,
                stream: match payload.get("stream") {
                    None => false,
                    Some(_) => bool_field(payload, "SubmitSweep", "stream")?,
                },
            }),
            "Status" => Ok(Request::Status {
                job: u64_field(payload, "Status", "job")?,
            }),
            "CancelJob" => Ok(Request::CancelJob {
                job: u64_field(payload, "CancelJob", "job")?,
            }),
            "Stats" => Ok(Request::Stats),
            "Shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown request {other:?}")),
        }
    }

    /// Decodes one wire line.
    pub fn from_line(line: &str) -> Result<Request, String> {
        let value = serde_json::from_str(line).map_err(|e| format!("invalid JSON: {e}"))?;
        Request::from_value(&value)
    }
}

impl ServerStats {
    fn from_value(value: &Value) -> Result<ServerStats, String> {
        let get = |name: &str| u64_field(value, "Stats", name);
        Ok(ServerStats {
            jobs_submitted: get("jobs_submitted")?,
            jobs_coalesced: get("jobs_coalesced")?,
            jobs_completed: get("jobs_completed")?,
            jobs_cancelled: get("jobs_cancelled")?,
            jobs_failed: get("jobs_failed")?,
            jobs_rejected: get("jobs_rejected")?,
            requests_malformed: get("requests_malformed")?,
            executed_cells_total: get("executed_cells_total")?,
            cells_hydrated_total: get("cells_hydrated_total")?,
            report_cache_entries: get("report_cache_entries")?,
            report_cache_capacity: get("report_cache_capacity")?,
            report_cache_hits: get("report_cache_hits")?,
            report_cache_misses: get("report_cache_misses")?,
            report_cache_evictions: get("report_cache_evictions")?,
            cell_cache_entries: get("cell_cache_entries")?,
            cell_cache_capacity: get("cell_cache_capacity")?,
            cell_cache_hits: get("cell_cache_hits")?,
            cell_cache_misses: get("cell_cache_misses")?,
            cell_cache_evictions: get("cell_cache_evictions")?,
            pool_workers: get("pool_workers")?,
            spec_cache_builds: get("spec_cache_builds")?,
            spec_cache_hits: get("spec_cache_hits")?,
            spec_cache_entries: get("spec_cache_entries")?,
        })
    }
}

impl Response {
    /// Decodes a response envelope.
    pub fn from_value(value: &Value) -> Result<Response, String> {
        let (tag, payload) = untag(value)?;
        match tag.as_str() {
            "Submitted" => Ok(Response::Submitted {
                job: u64_field(payload, "Submitted", "job")?,
                cached: bool_field(payload, "Submitted", "cached")?,
            }),
            "Progress" => Ok(Response::Progress {
                job: u64_field(payload, "Progress", "job")?,
                completed: u64_field(payload, "Progress", "completed")?,
                total: u64_field(payload, "Progress", "total")?,
                application: str_field(payload, "Progress", "application")?,
                policy: str_field(payload, "Progress", "policy")?,
                repetition: u64_field(payload, "Progress", "repetition")?,
            }),
            "Report" => Ok(Response::Report {
                job: u64_field(payload, "Report", "job")?,
                cache_hit: bool_field(payload, "Report", "cache_hit")?,
                executed_cells: u64_field(payload, "Report", "executed_cells")?,
                hydrated_cells: u64_field(payload, "Report", "hydrated_cells")?,
                report_json: str_field(payload, "Report", "report_json")?,
            }),
            "JobStatus" => Ok(Response::JobStatus {
                job: u64_field(payload, "JobStatus", "job")?,
                state: str_field(payload, "JobStatus", "state")?,
                completed: u64_field(payload, "JobStatus", "completed")?,
                total: u64_field(payload, "JobStatus", "total")?,
            }),
            "Cancelled" => Ok(Response::Cancelled {
                job: u64_field(payload, "Cancelled", "job")?,
            }),
            "Overloaded" => Ok(Response::Overloaded {
                queued_cells: u64_field(payload, "Overloaded", "queued_cells")?,
                limit: u64_field(payload, "Overloaded", "limit")?,
            }),
            "Stats" => Ok(Response::Stats(ServerStats::from_value(payload)?)),
            "Error" => Ok(Response::Error {
                message: str_field(payload, "Error", "message")?,
            }),
            "ShuttingDown" => Ok(Response::ShuttingDown),
            other => Err(format!("unknown response {other:?}")),
        }
    }

    /// Decodes one wire line.
    pub fn from_line(line: &str) -> Result<Response, String> {
        let value = serde_json::from_str(line).map_err(|e| format!("invalid JSON: {e}"))?;
        Response::from_value(&value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_the_wire_form() {
        let requests = [
            Request::SubmitSweep {
                spec: SweepSpec::default(),
                stream: true,
            },
            Request::Status { job: 7 },
            Request::CancelJob { job: 2 },
            Request::Stats,
            Request::Shutdown,
        ];
        for req in requests {
            let line = to_line(&req);
            assert!(!line.contains('\n'), "wire form must be one line: {line}");
            assert_eq!(Request::from_line(&line), Ok(req.clone()), "{line}");
        }
    }

    #[test]
    fn responses_round_trip_through_the_wire_form() {
        let responses = [
            Response::Submitted {
                job: 1,
                cached: false,
            },
            Response::Progress {
                job: 1,
                completed: 3,
                total: 32,
                application: "Jacobi".to_string(),
                policy: "RGP+LAS".to_string(),
                repetition: 0,
            },
            Response::Report {
                job: 1,
                cache_hit: true,
                executed_cells: 0,
                hydrated_cells: 0,
                report_json: "{\n  \"machine\": \"bullion_s16\"\n}".to_string(),
            },
            Response::JobStatus {
                job: 1,
                state: "running".to_string(),
                completed: 3,
                total: 32,
            },
            Response::Cancelled { job: 2 },
            Response::Overloaded {
                queued_cells: 4096,
                limit: 4096,
            },
            Response::Stats(ServerStats::default()),
            Response::Error {
                message: "unknown scale 'huge'".to_string(),
            },
            Response::ShuttingDown,
        ];
        for resp in responses {
            let line = to_line(&resp);
            assert!(!line.contains('\n'), "wire form must be one line: {line}");
            assert_eq!(Response::from_line(&line), Ok(resp.clone()), "{line}");
        }
    }

    #[test]
    fn report_json_bytes_survive_embedding_exactly() {
        // The embedded report is multi-line pretty JSON; the envelope must
        // carry it byte-exactly so clients can `cmp` against baselines.
        let pretty = "{\n  \"a\": [1, 2],\n  \"s\": \"x\\\"y\"\n}";
        let line = to_line(&Response::Report {
            job: 9,
            cache_hit: false,
            executed_cells: 4,
            hydrated_cells: 0,
            report_json: pretty.to_string(),
        });
        match Response::from_line(&line).unwrap() {
            Response::Report { report_json, .. } => assert_eq!(report_json, pretty),
            other => panic!("expected Report, got {other:?}"),
        }
    }

    #[test]
    fn spec_resolution_reuses_the_cli_grammar() {
        let spec = SweepSpec {
            apps: "jacobi,nstream".to_string(),
            scale: "small".to_string(),
            policies: "dfifo,rgp-las:scheme=rb,w=64".to_string(),
            backend: "sim".to_string(),
            seed: 42,
            reps: 2,
        };
        let resolved = spec.resolve().unwrap();
        assert_eq!(
            resolved.apps,
            vec![Application::Jacobi, Application::NStream]
        );
        assert_eq!(resolved.scale, ProblemScale::Small);
        assert_eq!(resolved.backend, Backend::Simulated);
        // dfifo, rgp-las:..., + appended baseline LAS.
        assert_eq!(resolved.report_policies().len(), 3);
        assert_eq!(resolved.total_cells(), 2 * 3 * 2);
    }

    #[test]
    fn malformed_specs_resolve_to_errors() {
        for (field, value) in [
            ("scale", "huge"),
            ("policies", "bogus"),
            ("backend", "gpu"),
            ("apps", "fft"),
        ] {
            let mut spec = SweepSpec::default();
            match field {
                "scale" => spec.scale = value.to_string(),
                "policies" => spec.policies = value.to_string(),
                "backend" => spec.backend = value.to_string(),
                _ => spec.apps = value.to_string(),
            }
            assert!(spec.resolve().is_err(), "{field}={value} must fail");
        }
        let spec = SweepSpec {
            reps: 0,
            ..SweepSpec::default()
        };
        assert!(spec.resolve().is_err());
    }

    #[test]
    fn equivalent_policy_spellings_share_a_fingerprint() {
        let specs = SpecCache::new();
        let a = SweepSpec {
            policies: "rgp-las:scheme=rb,w=512".to_string(),
            ..SweepSpec::default()
        };
        let b = SweepSpec {
            policies: "RGP+LAS:w=512,scheme=rb".to_string(),
            ..SweepSpec::default()
        };
        let c = SweepSpec {
            policies: "rgp-las:w=256".to_string(),
            ..SweepSpec::default()
        };
        let fa = a.resolve().unwrap().fingerprint(&specs, 2);
        let fb = b.resolve().unwrap().fingerprint(&specs, 2);
        let fc = c.resolve().unwrap().fingerprint(&specs, 2);
        assert_eq!(fa, fb, "reordered params must share a cache key");
        assert_ne!(fa, fc, "different windows must not collide");
    }

    #[test]
    fn fingerprint_tracks_seed_backend_reps_and_scale() {
        let specs = SpecCache::new();
        let base = SweepSpec::default().resolve().unwrap();
        let fp = base.fingerprint(&specs, 2);
        let mut seeded = base.clone();
        seeded.seed = 1;
        assert_ne!(fp, seeded.fingerprint(&specs, 2));
        let mut reps = base.clone();
        reps.reps = 3;
        assert_ne!(fp, reps.fingerprint(&specs, 2));
        let mut backend = base.clone();
        backend.backend = Backend::Threaded;
        assert_ne!(fp, backend.fingerprint(&specs, 2));
        let mut scale = base.clone();
        scale.scale = ProblemScale::Small;
        assert_ne!(fp, scale.fingerprint(&specs, 2));
        assert_ne!(fp, base.fingerprint(&specs, 4), "socket count matters");
    }

    #[test]
    fn cell_keys_are_distinct_and_cover_every_cell() {
        let specs = SpecCache::new();
        let sweep = SweepSpec::default().resolve().unwrap();
        let keys = sweep.cell_keys(&specs, 2);
        assert_eq!(keys.len(), sweep.total_cells());
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), keys.len(), "cell keys must not collide");
    }

    #[test]
    fn overlapping_sweeps_share_exactly_their_common_cells() {
        let specs = SpecCache::new();
        let base = SweepSpec::default().resolve().unwrap();
        let base_keys: std::collections::HashSet<u64> =
            base.cell_keys(&specs, 2).into_iter().collect();

        // A policy superset shares every base cell; only the new column's
        // cells (apps × reps) are novel.
        let wider = SweepSpec {
            policies: format!("{DEFAULT_POLICIES},rgp-las:prop=repart"),
            ..SweepSpec::default()
        }
        .resolve()
        .unwrap();
        let wider_keys = wider.cell_keys(&specs, 2);
        let novel = wider_keys.iter().filter(|k| !base_keys.contains(k)).count();
        assert_eq!(novel, base.apps.len() * base.reps);

        // An app subset is entirely contained in the base sweep.
        let subset = SweepSpec {
            apps: "jacobi,nstream".to_string(),
            ..SweepSpec::default()
        }
        .resolve()
        .unwrap();
        assert!(subset
            .cell_keys(&specs, 2)
            .iter()
            .all(|k| base_keys.contains(k)));

        // Added repetitions keep rep-0 cells and add only the rep-1 ones.
        let more_reps = SweepSpec {
            reps: 2,
            ..SweepSpec::default()
        }
        .resolve()
        .unwrap();
        let rep_keys = more_reps.cell_keys(&specs, 2);
        let shared = rep_keys.iter().filter(|k| base_keys.contains(k)).count();
        assert_eq!(shared, base.total_cells());
        assert_eq!(rep_keys.len(), 2 * base.total_cells());

        // A different seed shares nothing.
        let reseeded = SweepSpec {
            seed: 1,
            ..SweepSpec::default()
        }
        .resolve()
        .unwrap();
        assert!(reseeded
            .cell_keys(&specs, 2)
            .iter()
            .all(|k| !base_keys.contains(k)));
    }

    #[test]
    fn partial_spec_objects_fill_in_defaults() {
        let value = serde_json::from_str(r#"{"scale": "small", "seed": 9}"#).unwrap();
        let spec = SweepSpec::from_value(&value).unwrap();
        assert_eq!(spec.scale, "small");
        assert_eq!(spec.seed, 9);
        assert_eq!(spec.policies, DEFAULT_POLICIES);
        assert_eq!(spec.apps, "all");
    }
}
