//! Blocking client for the sweep service, shared by the `serve-client` bin,
//! the load-generator bench and the integration tests.

use std::io::{BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use numadag_runtime::framing::{read_frame, FrameError};

use crate::protocol::{Request, Response, ServerStats, SweepSpec};

/// Errors a client interaction can produce.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// A connect or read deadline expired (see
    /// [`ServeClient::connect_with_timeout`]).
    Timeout,
    /// The server sent something the protocol decoder rejects.
    Protocol(String),
    /// The server answered with a structured `Error` response.
    Server(String),
    /// The server bounced the submission off its admission quotas.
    Overloaded {
        /// Cells already sitting in the server's pool queue.
        queued_cells: u64,
        /// The server's queued-cell quota.
        limit: u64,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Timeout => write!(f, "timed out waiting for the server"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
            ClientError::Overloaded {
                queued_cells,
                limit,
            } => write!(
                f,
                "server overloaded: {queued_cells} cells queued (limit {limit})"
            ),
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        if matches!(
            e.kind(),
            std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
        ) {
            ClientError::Timeout
        } else {
            ClientError::Io(e)
        }
    }
}

/// Outcome of a completed submission.
#[derive(Debug)]
pub struct SubmitOutcome {
    /// Server-assigned job id.
    pub job: u64,
    /// True when the report came from the report cache without executing.
    pub cache_hit: bool,
    /// Cells executed for this request (0 on a cache hit).
    pub executed_cells: u64,
    /// Cells hydrated from the server's cell cache instead of executed
    /// (overlap with previously executed sweeps of other shapes).
    pub hydrated_cells: u64,
    /// The exact measurement-JSON bytes of the sweep report.
    pub report_json: String,
}

/// One connection to the daemon. Requests are answered in order, so a
/// client can issue any number of them over one connection.
pub struct ServeClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl ServeClient {
    /// Connects to `addr` (`"127.0.0.1:PORT"`).
    pub fn connect(addr: &str) -> std::io::Result<ServeClient> {
        Self::wrap(TcpStream::connect(addr)?)
    }

    /// Connects with a deadline on both the connect itself and every later
    /// read, so a dead (or wedged) daemon surfaces as
    /// [`ClientError::Timeout`] instead of hanging the client forever.
    pub fn connect_with_timeout(addr: &str, timeout: Duration) -> Result<ServeClient, ClientError> {
        let target = addr
            .to_socket_addrs()
            .map_err(ClientError::from)?
            .next()
            .ok_or_else(|| ClientError::Protocol(format!("unresolvable address {addr:?}")))?;
        let stream = TcpStream::connect_timeout(&target, timeout).map_err(ClientError::from)?;
        stream
            .set_read_timeout(Some(timeout))
            .map_err(ClientError::from)?;
        Self::wrap(stream).map_err(ClientError::from)
    }

    fn wrap(stream: TcpStream) -> std::io::Result<ServeClient> {
        // One-line request/response turnarounds: Nagle + delayed ACK would
        // add ~40 ms to every exchange.
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(ServeClient {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one request line.
    pub fn send(&mut self, request: &Request) -> std::io::Result<()> {
        let mut line = crate::protocol::to_line(request);
        line.push('\n');
        self.writer.write_all(line.as_bytes())
    }

    /// Reads one response line. Read-deadline expiry (when connected via
    /// [`ServeClient::connect_with_timeout`]) maps to
    /// [`ClientError::Timeout`].
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        let line = match read_frame(&mut self.reader) {
            Ok(Some(line)) => line,
            Ok(None) => {
                return Err(ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                )))
            }
            Err(FrameError::Io(e)) => return Err(ClientError::from(e)),
            Err(e) => return Err(ClientError::Protocol(format!("bad frame: {e}"))),
        };
        Response::from_line(line.trim_end()).map_err(ClientError::Protocol)
    }

    /// Sends a request and reads its single response.
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        self.send(request)?;
        self.recv()
    }

    /// Submits a sweep and blocks until its terminal report. `on_progress`
    /// sees every streamed `Progress` line (pass `|_| ()` when `stream` is
    /// false).
    pub fn submit(
        &mut self,
        spec: SweepSpec,
        stream: bool,
        mut on_progress: impl FnMut(&Response),
    ) -> Result<SubmitOutcome, ClientError> {
        self.send(&Request::SubmitSweep { spec, stream })?;
        let job = match self.recv()? {
            Response::Submitted { job, .. } => job,
            Response::Error { message } => return Err(ClientError::Server(message)),
            Response::Overloaded {
                queued_cells,
                limit,
            } => {
                return Err(ClientError::Overloaded {
                    queued_cells,
                    limit,
                })
            }
            other => {
                return Err(ClientError::Protocol(format!(
                    "expected Submitted, got {other:?}"
                )))
            }
        };
        loop {
            match self.recv()? {
                Response::Progress { .. } if !stream => {
                    return Err(ClientError::Protocol(
                        "unrequested Progress line".to_string(),
                    ))
                }
                progress @ Response::Progress { .. } => on_progress(&progress),
                Response::Report {
                    job: report_job,
                    cache_hit,
                    executed_cells,
                    hydrated_cells,
                    report_json,
                } => {
                    return Ok(SubmitOutcome {
                        job: report_job.max(job),
                        cache_hit,
                        executed_cells,
                        hydrated_cells,
                        report_json,
                    })
                }
                Response::Error { message } => return Err(ClientError::Server(message)),
                Response::Cancelled { job } => {
                    return Err(ClientError::Server(format!("job {job} was cancelled")))
                }
                other => {
                    return Err(ClientError::Protocol(format!(
                        "unexpected response {other:?}"
                    )))
                }
            }
        }
    }

    /// Queries a job's state.
    pub fn status(&mut self, job: u64) -> Result<Response, ClientError> {
        match self.request(&Request::Status { job })? {
            Response::Error { message } => Err(ClientError::Server(message)),
            other => Ok(other),
        }
    }

    /// Cancels a queued or running job.
    pub fn cancel(&mut self, job: u64) -> Result<Response, ClientError> {
        match self.request(&Request::CancelJob { job })? {
            Response::Error { message } => Err(ClientError::Server(message)),
            other => Ok(other),
        }
    }

    /// Fetches the server counters.
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        match self.request(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            Response::Error { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Protocol(format!(
                "expected Stats, got {other:?}"
            ))),
        }
    }

    /// Asks the daemon to shut down.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            Response::Error { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Protocol(format!(
                "expected ShuttingDown, got {other:?}"
            ))),
        }
    }
}
