//! The sweep daemon: a TCP listener, an admission queue, and one worker
//! thread draining admitted jobs through a single shared
//! [`SweepDriver`] over the process-wide [`SpecCache`].
//!
//! Life of a request:
//!
//! 1. A connection handler parses one JSON line into a
//!    [`Request`](crate::protocol::Request). Malformed lines are answered
//!    with a structured `Error` and the connection survives (the service
//!    analogue of the bins' exit-2 usage convention).
//! 2. `SubmitSweep` resolves the spec through the CLI grammar, computes the
//!    canonical fingerprint, and admits the job: coalesced onto an identical
//!    queued/running job, answered instantly from the report cache, or
//!    enqueued. The handler then blocks on the job's subscriber channel,
//!    forwarding `Progress` lines (when streaming) until the terminal
//!    `Report`.
//! 3. The worker pops the queue, plans the experiment against the shared
//!    spec cache, executes it on the shared driver (whose
//!    `on_cell_complete` hook fans progress out to subscribers), serializes
//!    the measurement bytes once, stores them in the LRU report cache and
//!    hands the same bytes to every subscriber — byte-identical for all
//!    clients, now and on every future cache hit.

use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use numadag_kernels::SpecCache;
use numadag_numa::Topology;
use numadag_runtime::{CellProgress, SweepDriver};

use crate::cache::{CachedReport, ReportCache};
use crate::protocol::{Request, ResolvedSweep, Response, ServerStats, SweepSpec};

/// Configuration of a daemon instance.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listen address; port 0 binds an ephemeral port (read the actual one
    /// from [`ServeHandle::addr`]).
    pub addr: String,
    /// Report-cache capacity (LRU evicts beyond this).
    pub cache_capacity: usize,
    /// Worker threads per sweep (the driver's `parallelism`; 0 = one per
    /// core).
    pub jobs: usize,
    /// Machine topology every sweep runs on (the paper's bullion S16 by
    /// default, matching the `figure1` harness).
    pub topology: Topology,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            cache_capacity: 64,
            jobs: 1,
            topology: Topology::bullion_s16(),
        }
    }
}

/// Job lifecycle states, as reported by `Status`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum JobState {
    Queued,
    Running,
    Done,
    Cancelled,
    Failed,
}

impl JobState {
    fn label(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Cancelled => "cancelled",
            JobState::Failed => "failed",
        }
    }
}

/// One subscriber of a job: the sending half of the handler's channel, plus
/// whether it asked for per-cell progress.
struct Subscriber {
    tx: Sender<Response>,
    wants_progress: bool,
}

struct Job {
    key: u64,
    spec: ResolvedSweep,
    state: JobState,
    completed: usize,
    total: usize,
    result: Option<Arc<CachedReport>>,
    subscribers: Vec<Subscriber>,
}

#[derive(Default)]
struct Counters {
    submitted: u64,
    coalesced: u64,
    completed: u64,
    cancelled: u64,
    failed: u64,
    malformed: u64,
    executed_cells: u64,
}

struct State {
    next_job: u64,
    queue: VecDeque<u64>,
    jobs: HashMap<u64, Job>,
    cache: ReportCache,
    /// The job the worker is currently executing (routes driver progress
    /// callbacks; the worker runs one sweep at a time).
    current: Option<u64>,
    counters: Counters,
}

struct Shared {
    config: ServeConfig,
    addr: SocketAddr,
    specs: Arc<SpecCache>,
    state: Mutex<State>,
    work: Condvar,
    shutdown: AtomicBool,
}

/// A running daemon: join it to block until shutdown.
pub struct ServeHandle {
    shared: Arc<Shared>,
    accept: JoinHandle<()>,
    worker: JoinHandle<()>,
}

impl ServeHandle {
    /// The actual bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The process-wide spec cache the daemon serves from.
    pub fn specs(&self) -> Arc<SpecCache> {
        Arc::clone(&self.shared.specs)
    }

    /// Requests shutdown without a client connection (used by tests and the
    /// load generator; remote clients send [`Request::Shutdown`]).
    pub fn shutdown(&self) {
        begin_shutdown(&self.shared);
    }

    /// Blocks until the daemon has shut down.
    pub fn join(self) {
        self.accept.join().expect("accept thread panicked");
        self.worker.join().expect("worker thread panicked");
    }
}

/// Binds the listener and spawns the accept + worker threads. Returns once
/// the address is bound, so callers can immediately connect.
pub fn serve(config: ServeConfig) -> std::io::Result<ServeHandle> {
    serve_with_specs(config, Arc::new(SpecCache::new()))
}

/// Like [`serve`], but over a caller-provided spec cache (so embedding
/// processes — tests, the load generator — can share or inspect it).
pub fn serve_with_specs(
    config: ServeConfig,
    specs: Arc<SpecCache>,
) -> std::io::Result<ServeHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let cache_capacity = config.cache_capacity;
    let shared = Arc::new(Shared {
        config,
        addr,
        specs,
        state: Mutex::new(State {
            next_job: 1,
            queue: VecDeque::new(),
            jobs: HashMap::new(),
            cache: ReportCache::new(cache_capacity),
            current: None,
            counters: Counters::default(),
        }),
        work: Condvar::new(),
        shutdown: AtomicBool::new(false),
    });

    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || accept_loop(listener, shared))
    };
    let worker = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || worker_loop(shared))
    };
    Ok(ServeHandle {
        shared,
        accept,
        worker,
    })
}

/// Flags shutdown and wakes both the worker (condvar) and the accept loop
/// (self-connection, since `accept` has no timeout in std).
fn begin_shutdown(shared: &Arc<Shared>) {
    shared.shutdown.store(true, Ordering::SeqCst);
    shared.work.notify_all();
    let _ = TcpStream::connect(shared.addr);
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(&shared);
        // Handlers are detached: they exit when their client disconnects or
        // after answering the terminal response of a dead daemon.
        std::thread::spawn(move || handle_connection(stream, shared));
    }
}

fn write_line(stream: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    let mut line = crate::protocol::to_line(response);
    line.push('\n');
    stream.write_all(line.as_bytes())
}

fn handle_connection(stream: TcpStream, shared: Arc<Shared>) {
    // See `ServeClient::connect`: without this, Nagle + delayed ACK cost
    // ~40 ms per request/response turnaround.
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let request = match Request::from_line(&line) {
            Ok(request) => request,
            Err(message) => {
                // Malformed request: structured error, connection survives.
                shared.state.lock().unwrap().counters.malformed += 1;
                if write_line(&mut writer, &Response::Error { message }).is_err() {
                    break;
                }
                continue;
            }
        };
        let keep_going = match request {
            Request::SubmitSweep { spec, stream } => {
                handle_submit(&shared, &mut writer, &spec, stream)
            }
            Request::Status { job } => {
                write_line(&mut writer, &status_response(&shared, job)).is_ok()
            }
            Request::CancelJob { job } => {
                write_line(&mut writer, &cancel_job(&shared, job)).is_ok()
            }
            Request::Stats => write_line(&mut writer, &Response::Stats(stats(&shared))).is_ok(),
            Request::Shutdown => {
                let _ = write_line(&mut writer, &Response::ShuttingDown);
                begin_shutdown(&shared);
                false
            }
        };
        if !keep_going {
            break;
        }
    }
}

/// Admits a submission and forwards its responses; returns false when the
/// connection died.
fn handle_submit(
    shared: &Arc<Shared>,
    writer: &mut TcpStream,
    spec: &SweepSpec,
    wants_progress: bool,
) -> bool {
    if shared.shutdown.load(Ordering::SeqCst) {
        return write_line(
            writer,
            &Response::Error {
                message: "server is shutting down".to_string(),
            },
        )
        .is_ok();
    }
    let resolved = match spec.resolve() {
        Ok(resolved) => resolved,
        Err(message) => {
            return write_line(writer, &Response::Error { message }).is_ok();
        }
    };
    // Fingerprinting may build workload specs (warming the shared spec
    // cache for the run itself) — do it outside the state lock.
    let key = resolved.fingerprint(&shared.specs, shared.config.topology.num_sockets());
    let total = resolved.total_cells();

    let (tx, rx) = channel::<Response>();
    let (job_id, admitted) = {
        let mut state = shared.state.lock().unwrap();
        // 1) Coalesce onto an identical queued/running job: it executes
        //    once, every subscriber gets the same bytes.
        let in_flight = state
            .jobs
            .iter()
            .filter(|(_, j)| {
                j.key == key && matches!(j.state, JobState::Queued | JobState::Running)
            })
            .map(|(&id, _)| id)
            .next();
        if let Some(id) = in_flight {
            state.counters.coalesced += 1;
            let job = state.jobs.get_mut(&id).unwrap();
            job.subscribers.push(Subscriber { tx, wants_progress });
            (id, Admission::Coalesced)
        } else {
            let id = state.next_job;
            state.next_job += 1;
            // 2) Serve a repeat from the report cache without executing.
            if let Some(report) = state.cache.lookup(key) {
                state.jobs.insert(
                    id,
                    Job {
                        key,
                        spec: resolved,
                        state: JobState::Done,
                        completed: total,
                        total,
                        result: Some(Arc::clone(&report)),
                        subscribers: Vec::new(),
                    },
                );
                (id, Admission::CacheHit(report))
            } else {
                // 3) Fresh work: enqueue for the worker.
                state.counters.submitted += 1;
                state.jobs.insert(
                    id,
                    Job {
                        key,
                        spec: resolved,
                        state: JobState::Queued,
                        completed: 0,
                        total,
                        result: None,
                        subscribers: vec![Subscriber { tx, wants_progress }],
                    },
                );
                state.queue.push_back(id);
                shared.work.notify_all();
                (id, Admission::Enqueued)
            }
        }
    };

    let cached = matches!(admitted, Admission::CacheHit(_));
    if write_line(
        writer,
        &Response::Submitted {
            job: job_id,
            cached,
        },
    )
    .is_err()
    {
        return false;
    }
    match admitted {
        Admission::CacheHit(report) => write_line(
            writer,
            &Response::Report {
                job: job_id,
                cache_hit: true,
                executed_cells: 0,
                report_json: report.bytes.clone(),
            },
        )
        .is_ok(),
        Admission::Coalesced | Admission::Enqueued => {
            // Forward progress + terminal from the worker. The sender side
            // is dropped once the job reaches a terminal state, ending the
            // iteration even if we somehow miss a terminal message.
            for response in rx {
                let terminal = matches!(
                    response,
                    Response::Report { .. } | Response::Error { .. } | Response::Cancelled { .. }
                );
                if write_line(writer, &response).is_err() {
                    return false;
                }
                if terminal {
                    break;
                }
            }
            true
        }
    }
}

enum Admission {
    Enqueued,
    Coalesced,
    CacheHit(Arc<CachedReport>),
}

fn status_response(shared: &Arc<Shared>, job: u64) -> Response {
    let state = shared.state.lock().unwrap();
    match state.jobs.get(&job) {
        Some(j) => Response::JobStatus {
            job,
            state: j.state.label().to_string(),
            completed: j.completed as u64,
            total: j.total as u64,
        },
        None => Response::Error {
            message: format!("unknown job {job}"),
        },
    }
}

fn cancel_job(shared: &Arc<Shared>, job: u64) -> Response {
    let mut state = shared.state.lock().unwrap();
    let Some(j) = state.jobs.get_mut(&job) else {
        return Response::Error {
            message: format!("unknown job {job}"),
        };
    };
    match j.state {
        JobState::Queued => {
            j.state = JobState::Cancelled;
            for sub in j.subscribers.drain(..) {
                let _ = sub.tx.send(Response::Cancelled { job });
            }
            state.queue.retain(|&id| id != job);
            state.counters.cancelled += 1;
            Response::Cancelled { job }
        }
        other => Response::Error {
            message: format!(
                "job {job} is {}; only queued jobs can be cancelled",
                other.label()
            ),
        },
    }
}

fn stats(shared: &Arc<Shared>) -> ServerStats {
    let state = shared.state.lock().unwrap();
    ServerStats {
        jobs_submitted: state.counters.submitted,
        jobs_coalesced: state.counters.coalesced,
        jobs_completed: state.counters.completed,
        jobs_cancelled: state.counters.cancelled,
        jobs_failed: state.counters.failed,
        requests_malformed: state.counters.malformed,
        executed_cells_total: state.counters.executed_cells,
        report_cache_entries: state.cache.len() as u64,
        report_cache_capacity: state.cache.capacity() as u64,
        report_cache_hits: state.cache.hits(),
        report_cache_misses: state.cache.misses(),
        report_cache_evictions: state.cache.evictions(),
        spec_cache_builds: shared.specs.builds() as u64,
        spec_cache_hits: shared.specs.hits() as u64,
        spec_cache_entries: shared.specs.len() as u64,
    }
}

/// The single worker: one shared driver, one sweep at a time, every plan
/// drawn from the process-wide spec cache.
fn worker_loop(shared: Arc<Shared>) {
    let driver = {
        let shared = Arc::clone(&shared);
        SweepDriver::new()
            .parallelism(shared.config.jobs)
            .on_cell_complete(move |progress: &CellProgress| on_progress(&shared, progress))
    };

    loop {
        let (job_id, spec) = {
            let mut state = shared.state.lock().unwrap();
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    drain_on_shutdown(&mut state);
                    return;
                }
                if let Some(id) = state.queue.pop_front() {
                    let job = state.jobs.get_mut(&id).expect("queued job must exist");
                    job.state = JobState::Running;
                    state.current = Some(id);
                    let spec = state.jobs[&id].spec.clone();
                    break (id, spec);
                }
                state = shared.work.wait(state).unwrap();
            }
        };

        let plan = spec
            .experiment(shared.config.topology.clone(), Arc::clone(&shared.specs))
            .plan();
        let report = driver.execute(&plan);
        let bytes = report.to_json_string();
        let executed = report.cells.len();

        let mut state = shared.state.lock().unwrap();
        let cached = Arc::new(CachedReport {
            bytes,
            executed_cells: executed,
        });
        let key = state.jobs[&job_id].key;
        state.cache.insert(key, Arc::clone(&cached));
        state.counters.completed += 1;
        state.counters.executed_cells += executed as u64;
        state.current = None;
        let job = state.jobs.get_mut(&job_id).unwrap();
        job.state = JobState::Done;
        job.completed = job.total;
        job.result = Some(Arc::clone(&cached));
        for sub in job.subscribers.drain(..) {
            let _ = sub.tx.send(Response::Report {
                job: job_id,
                cache_hit: false,
                executed_cells: executed as u64,
                report_json: cached.bytes.clone(),
            });
        }
    }
}

/// Routes a driver progress callback to the running job's subscribers.
fn on_progress(shared: &Arc<Shared>, progress: &CellProgress) {
    let mut state = shared.state.lock().unwrap();
    let Some(job_id) = state.current else { return };
    let Some(job) = state.jobs.get_mut(&job_id) else {
        return;
    };
    job.completed = progress.completed;
    for sub in job.subscribers.iter().filter(|s| s.wants_progress) {
        let _ = sub.tx.send(Response::Progress {
            job: job_id,
            completed: progress.completed as u64,
            total: progress.total as u64,
            application: progress.application.clone(),
            policy: progress.policy.clone(),
            repetition: progress.repetition as u64,
        });
    }
}

/// Fails everything still queued when the daemon stops, so blocked
/// submitters get a terminal response instead of hanging.
fn drain_on_shutdown(state: &mut State) {
    while let Some(id) = state.queue.pop_front() {
        state.counters.failed += 1;
        let job = state.jobs.get_mut(&id).expect("queued job must exist");
        job.state = JobState::Failed;
        for sub in job.subscribers.drain(..) {
            let _ = sub.tx.send(Response::Error {
                message: "server shut down before the job ran".to_string(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_binds_ephemeral_loopback() {
        let config = ServeConfig::default();
        assert_eq!(config.addr, "127.0.0.1:0");
        assert_eq!(config.topology.num_sockets(), 8);
        assert_eq!(config.cache_capacity, 64);
    }

    #[test]
    fn job_states_have_stable_labels() {
        for (state, label) in [
            (JobState::Queued, "queued"),
            (JobState::Running, "running"),
            (JobState::Done, "done"),
            (JobState::Cancelled, "cancelled"),
            (JobState::Failed, "failed"),
        ] {
            assert_eq!(state.label(), label);
        }
    }
}
